"""A1 — ablation: satisfiability backends on the E2 workload.

Compares, per single pairwise check (one product of 4 inequalities):

* the interval-propagation fast path (our default);
* the two-phase Simplex (the paper's prototype used a C Simplex
  library);
* the sampling baseline (cheap but incomplete — its disagreement rate
  against the exact answer is printed).
"""

import pytest

from benchmarks.conftest import median_seconds, report
from repro.baselines.naive_conflict import sampling_conflict_check
from repro.core.satisfiability import conditions_jointly_satisfiable
from repro.workloads.rules import build_rule_population

PAIRS = 64


@pytest.fixture(scope="module")
def condition_pairs():
    population = build_rule_population(total_rules=PAIRS + 1,
                                       same_device_rules=PAIRS + 1,
                                       device_count=2, seed="a1-pairs")
    rules = population.database.all_rules()
    probe = rules[0]
    return [(probe.condition, other.condition) for other in rules[1:]]


def test_interval_fast_path(benchmark, condition_pairs):
    def run():
        return [
            conditions_jointly_satisfiable(a, b, prefer_intervals=True)
            for a, b in condition_pairs
        ]

    verdicts = benchmark(run)
    per_check = median_seconds(benchmark) / len(condition_pairs)
    report("A1", f"interval fast path ({len(condition_pairs)} checks; "
                 f"{sum(verdicts)} joint-sat)",
           "n/a (ablation)", per_check)


def test_simplex_backend(benchmark, condition_pairs):
    def run():
        return [
            conditions_jointly_satisfiable(a, b, prefer_intervals=False)
            for a, b in condition_pairs
        ]

    verdicts = benchmark(run)
    per_check = median_seconds(benchmark) / len(condition_pairs)
    report("A1", f"two-phase Simplex ({len(condition_pairs)} checks; "
                 f"{sum(verdicts)} joint-sat)",
           "0.002 ms/check (C library)", per_check)


def test_backends_agree(condition_pairs):
    """Correctness side of the ablation: exact backends always agree."""
    for first, second in condition_pairs:
        assert conditions_jointly_satisfiable(
            first, second, prefer_intervals=True
        ) == conditions_jointly_satisfiable(
            first, second, prefer_intervals=False
        )


def test_sampling_baseline(benchmark, condition_pairs):
    def run():
        return [
            sampling_conflict_check(a, b, samples=64)
            for a, b in condition_pairs
        ]

    verdicts = benchmark(run)
    exact = [
        conditions_jointly_satisfiable(a, b) for a, b in condition_pairs
    ]
    false_negatives = sum(
        1 for sampled, truth in zip(verdicts, exact) if truth and not sampled
    )
    per_check = median_seconds(benchmark) / len(condition_pairs)
    report("A1", f"sampling baseline, 64 samples "
                 f"({false_negatives}/{sum(exact)} conflicts missed)",
           "n/a (ablation)", per_check)
    # Sampling must never invent a conflict the exact checker rules out.
    assert all(truth or not sampled
               for sampled, truth in zip(verdicts, exact))
