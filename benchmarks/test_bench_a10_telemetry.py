"""A10 — telemetry overhead and the per-stage latency breakdown.

The observability plane (``repro.obs``) promises to be a pure read-side
plane: fixed-bucket histograms, pre-bound counters and one ``None``
check per seam when disabled.  This benchmark holds it to that promise
on the two surfaces that matter:

* **overhead** — telemetry-enabled vs telemetry-disabled batched ingest
  on the A9 columnar band-sweep workload (the hottest instrumented
  path: writes open sampled ``sweep``/``fanout`` spans, every batch a
  ``batch`` span).  Budget: ≤3% at full size.  The measurement runs on
  **one engine**, toggled between rounds with ``set_telemetry`` — two
  separate engine instances differ by allocation layout and cache
  state, which a 60 ms / <3% comparison cannot afford.  Rounds
  alternate on/off in ABBA order with gc paused, and the acceptance
  ratio is a trimmed best-of (mean of the k fastest per side):
  scheduler noise only ever adds time, so the fast tail isolates the
  instrumentation cost from jitter.

* **stage breakdown** — a sharded fleet serves a mixed event stream and
  runs past several time-window boundaries, then each pipeline stage's
  p50 (from the merged ``span.<stage>_ms`` histograms) lands in the
  ledger: drain → batch → sweep → fanout → wheel → action.  These rows
  make a regression in any single stage visible even when end-to-end
  ingest cost hides it.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import BENCH_SMOKE, record_result, report
from repro.cluster import ClusterServer
from repro.core.engine import RuleEngine
from repro.core.priority import PriorityManager
from repro.obs.trace import STAGES, Telemetry
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.workloads.fleet import build_home_fleet, fleet_event_stream
from repro.workloads.rules import build_columnar_population

RULES = 2_000 if BENCH_SMOKE else 10_000
BATCH_SIZE = 64
ROUNDS = 24 if BENCH_SMOKE else 50
TRIM = 3 if BENCH_SMOKE else 5  # k fastest rounds per side

# Acceptance ceiling on the enabled/disabled trimmed best-of ratio.
# The full-size budget is 3%; smoke shrinks the workload so the
# constant span cost weighs relatively more and CI boxes are noisier.
OVERHEAD_CEILING = 1.10 if BENCH_SMOKE else 1.03

# Stage-breakdown fleet: full size hits the 10k-rule acceptance point
# (10 homes x 1000 rules over 4 shards).
SHARDS = 4
FLEET = (3, 40) if BENCH_SMOKE else (10, 1_000)
FLEET_EVENTS = 400 if BENCH_SMOKE else 4_000
FLEET_RULES = FLEET[0] * FLEET[1]


# -- instrumentation overhead --------------------------------------------------


def _build_engine():
    population = build_columnar_population(RULES, seed=f"a10-{RULES}")
    engine = RuleEngine(
        population.database, PriorityManager(), Simulator(),
        dispatch=lambda spec: None, columnar=True, max_trace=10_000,
    )
    for rule in population.database.all_rules():
        engine.rule_added(rule)
    # Prime: the first readings initialize every atom; the measured
    # steady state is the band jump (same protocol as A9).
    engine.ingest(population.hot_variable, population.toggle_low)
    engine.ingest(population.hot_variable, population.toggle_high)
    engine.ingest(population.hot_variable, population.toggle_low)
    return population, engine


def _band_step(engine, population, size):
    values = (population.toggle_high, population.toggle_low)
    state = [0]

    def step():
        phase = state[0]
        batch = [
            (population.hot_variable, values[(phase + offset) % 2])
            for offset in range(size)
        ]
        state[0] = (phase + size) % 2
        engine.ingest_batch(batch)

    return step


def _measure_overhead(engine, telemetry, step):
    """One ABBA measurement block: per-side sorted round times."""
    import gc

    times = {True: [], False: []}
    gc.collect()
    gc.disable()
    try:
        engine.set_telemetry(telemetry)
        for _ in range(3):
            step()
        for index in range(ROUNDS):
            # ABBA: alternate which side leads so slow machine drift
            # (thermal / frequency scaling) cancels across the run.
            order = (True, False) if index % 2 == 0 else (False, True)
            for flag in order:
                engine.set_telemetry(telemetry if flag else None)
                start = perf_counter()
                step()
                times[flag].append(perf_counter() - start)
    finally:
        gc.enable()
    for values in times.values():
        values.sort()
    return times


def test_telemetry_overhead_on_columnar_ingest():
    """Acceptance: telemetry-enabled batched ingest within the overhead
    budget of the disabled twin on the A9 columnar workload.

    The true cost sits well under 1% (sampled per-write spans), but the
    estimator's noise floor on a shared box is ~±1.5% — so the budget
    check retries up to three measurement blocks and keeps the best.
    A real regression past the ceiling dominates the noise and fails
    every attempt; a noise spike fails at most one.
    """
    telemetry = Telemetry()
    population, engine = _build_engine()
    step = _band_step(engine, population, BATCH_SIZE)
    ratio = None
    for _ in range(3):
        times = _measure_overhead(engine, telemetry, step)
        trimmed = {
            flag: sum(values[:TRIM]) / TRIM
            for flag, values in times.items()
        }
        attempt = trimmed[True] / trimmed[False]
        if ratio is None or attempt < ratio:
            ratio = attempt
            median = {
                flag: values[ROUNDS // 2] for flag, values in times.items()
            }
        if ratio <= OVERHEAD_CEILING:
            break

    report(
        "A10",
        f"telemetry-enabled batch ingest @ {RULES} rules "
        f"(batch {BATCH_SIZE})",
        "overhead budget: <=3% over disabled", median[True],
    )
    report(
        "A10",
        f"telemetry-disabled batch ingest @ {RULES} rules "
        f"(batch {BATCH_SIZE}, ablation)",
        "n/a (ablation)", median[False],
    )
    record_result(
        "A10", f"telemetry overhead @ {RULES} rules (percent)",
        max(0.0, (ratio - 1.0) * 100.0),
    )
    print(f"\n  [A10] overhead ratio (trimmed best {TRIM}/{ROUNDS} "
          f"ABBA rounds, best attempt): x{ratio:.4f} "
          f"(ceiling x{OVERHEAD_CEILING:g})")

    # The comparison must not be vacuous: the enabled rounds really
    # recorded per-batch batch spans and 1-in-N sampled sweep spans.
    histograms = telemetry.registry.snapshot()["histograms"]
    assert histograms["span.batch_ms"]["count"] >= ROUNDS
    assert histograms["span.sweep_ms"]["count"] >= ROUNDS * BATCH_SIZE // 16

    assert ratio <= OVERHEAD_CEILING, (
        f"telemetry overhead x{ratio:.4f} over the disabled twin at "
        f"{RULES} rules (ceiling x{OVERHEAD_CEILING:g})"
    )


# -- per-stage latency breakdown -----------------------------------------------


@pytest.fixture(scope="module")
def settled_fleet():
    simulator = Simulator()
    cluster = ClusterServer(simulator, shard_count=SHARDS)
    fleet = build_home_fleet(*FLEET, seed="a10-fleet")
    for rule in fleet.all_rules():
        cluster.register_rule(rule, validate=False)
    # Flush in waves rather than once at the end so the drain/batch
    # histograms aggregate many realistically sized bus drains instead
    # of one giant coalesced one.
    for index, (variable, value) in enumerate(fleet_event_stream(
        fleet, events=FLEET_EVENTS, burst=8, seed="a10-stream"
    )):
        cluster.ingest(variable, value)
        if index % 50 == 49:
            cluster.flush()
    cluster.flush()
    simulator.run_until(hhmm(23))  # cross window boundaries: wheel wakes
    yield cluster
    cluster.shutdown()


def test_stage_latency_breakdown(settled_fleet):
    """Ledger rows: per-stage p50 from the merged span histograms at the
    fleet acceptance point — one row per pipeline stage that fired."""
    aggregate = settled_fleet.telemetry()["aggregate"]["histograms"]
    recorded = []
    for stage in STAGES:
        view = aggregate.get(f"span.{stage}_ms")
        if view is None or view["count"] == 0:
            continue
        p50 = view["p50"]
        if not isinstance(p50, (int, float)):
            continue  # "+Inf" overflow: never expected at these sizes
        print(f"\n  [A10] span {stage}: p50 {p50:.4f} ms "
              f"over {view['count']} spans")
        record_result(
            "A10",
            f"span {stage} p50 @ {FLEET_RULES}-rule fleet "
            f"({SHARDS} shards)",
            p50,
        )
        recorded.append(stage)
    # Every stage of the documented pipeline except action dispatch is
    # guaranteed by this stream; action rows appear whenever the random
    # fleet fired a device command.
    assert {"drain", "batch", "sweep", "fanout", "wheel"} <= set(recorded)
