"""A3 — ablation: compiled rule objects vs CADEL interpretation.

Paper Sect. 4.1: "The rule execution module does not executes rules by
interpreting CADEL descriptions, but ... a CADEL description is
expressed as equivalent a 'rule object'".  This ablation measures what
that buys: evaluating a compiled condition against the world state vs
re-parsing + re-binding the CADEL sentence on every evaluation.
"""

import pytest

from benchmarks.conftest import median_seconds, report
from repro.baselines.interpreter import InterpretedRule
from repro.cadel.binding import Binder, HomeDirectory
from repro.cadel.compiler import RuleCompiler
from repro.cadel.parser import CadelParser
from repro.home.environment import Room
from repro.home.sensors import Hygrometer, Thermometer
from repro.upnp.registry import DeviceRecord, DeviceRegistry

RULE_TEXT = (
    "If humidity is higher than 80 percent and temperature is higher than "
    "28 degrees, turn on the air conditioner with 25 degrees of temperature "
    "setting."
)
EVALUATIONS = 200


class _Ctx:
    """Minimal evaluation context over two fixed sensor readings."""

    def __init__(self, values):
        self._values = values

    def numeric(self, variable):
        return self._values.get(variable)

    def discrete(self, variable):
        return None

    def set_members(self, variable):
        return frozenset()

    def time_of_day(self):
        return 0.0

    def weekday(self):
        return 0

    def event_fired(self, event_type, subject):
        return False

    def held(self, key, currently_true, duration):
        return currently_true


@pytest.fixture(scope="module")
def setup():
    from repro.home.appliances import AirConditioner

    living = Room("living room")
    registry = DeviceRegistry()
    thermometer = Thermometer("thermometer", living)
    hygrometer = Hygrometer("hygrometer", living)
    for device in (thermometer, hygrometer,
                   AirConditioner("air conditioner", location="living room")):
        registry.add(DeviceRecord.from_description(device.describe()))
    directory = HomeDirectory(users=["Tom"], current_user="Tom")
    binder = Binder(registry, directory)
    values = {
        f"{thermometer.udn}:temperature:temperature": 30.0,
        f"{hygrometer.udn}:humidity:humidity": 85.0,
    }
    return binder, _Ctx(values)


def test_compiled_rule_object_evaluation(benchmark, setup):
    binder, ctx = setup
    ruledef = CadelParser().parse(RULE_TEXT)
    rule = RuleCompiler(binder).compile_rule(ruledef, name="r", owner="Tom")

    def run():
        hits = 0
        for _ in range(EVALUATIONS):
            if rule.condition.evaluate(ctx):
                hits += 1
        return hits

    hits = benchmark(run)
    assert hits == EVALUATIONS
    report("A3", f"compiled rule object, {EVALUATIONS} evaluations",
           "n/a (the framework's choice)",
           median_seconds(benchmark))


def test_interpreted_cadel_evaluation(benchmark, setup):
    binder, ctx = setup
    interpreted = InterpretedRule(RULE_TEXT, binder)

    def run():
        hits = 0
        for _ in range(EVALUATIONS):
            if interpreted.evaluate(ctx):
                hits += 1
        return hits

    hits = benchmark.pedantic(run, rounds=5, iterations=1)
    assert hits == EVALUATIONS
    report("A3", f"re-parse + re-bind CADEL text, {EVALUATIONS} evaluations",
           "n/a (the road not taken)",
           median_seconds(benchmark))


def test_interpreted_agrees_with_compiled(setup):
    binder, ctx = setup
    ruledef = CadelParser().parse(RULE_TEXT)
    rule = RuleCompiler(binder).compile_rule(ruledef, name="r", owner="Tom")
    interpreted = InterpretedRule(RULE_TEXT, binder)
    assert rule.condition.evaluate(ctx) == interpreted.evaluate(ctx)
