"""A7 — cross-rule sharing: ingest vs template duplication, tick vs
window-rule count.

Real fleets are dominated by *templated* rules: the same vendor rule
pack stamped out per apartment, so atoms and whole conjunctions repeat
across hundreds of rules.  This benchmark shows the two hot paths
scaling with *distinct context* rather than rule count:

* **ingest** — a templated population (``templates`` distinct two-atom
  clauses × ``duplication`` copies) absorbs a shared-sensor toggle that
  flips every distinct atom while every clause stays false.  With the
  shared evaluation network (``shared=True``) the cost is O(templates),
  ~flat as duplication grows; the per-rule ablation (``shared=False``)
  pays O(templates × duplication).  Target: ≥5× at 100× duplication.
* **clock tick** — a dense window population (boundaries spread across
  the day).  The time-window wheel (``wheel=True``) wakes only rules
  whose boundary a tick crossed, ~flat in the population; the per-tick
  ablation re-evaluates every window rule each tick.  Target: ≥10×.
"""

import pytest

from benchmarks.conftest import BENCH_SMOKE, median_seconds, report
from repro.core.engine import RuleEngine
from repro.core.priority import PriorityManager
from repro.sim.events import Simulator
from repro.workloads.rules import (
    build_templated_population,
    build_window_population,
)

TEMPLATES = 25 if BENCH_SMOKE else 50
# Full sweep peaks at the acceptance point (100× duplication).
DUPLICATIONS = (1, 20) if BENCH_SMOKE else (1, 10, 100)
WINDOW_SWEEP = (256, 1024) if BENCH_SMOKE else (512, 4096)

# Acceptance floors: ≥5× ingest at 100× duplication and ≥10× tick on the
# dense-window population; smoke sizes shrink the advantage, so CI
# guards a proportionally smaller floor.
SHARED_SPEEDUP_FLOOR = 3.0 if BENCH_SMOKE else 5.0
WHEEL_SPEEDUP_FLOOR = 5.0 if BENCH_SMOKE else 10.0

TICK_PERIOD = 60.0

MEDIANS: dict[tuple[str, int], float] = {}


def _discard(spec) -> None:
    pass


# -- ingest vs duplication -----------------------------------------------------


def _build_templated(duplication):
    population = build_templated_population(
        templates=TEMPLATES, duplication=duplication,
        seed=f"a7-{duplication}",
    )
    simulator = Simulator()
    engines = {}
    for shared in (True, False):
        engine = RuleEngine(
            population.database, PriorityManager(), simulator,
            dispatch=_discard, shared=shared, max_trace=10_000,
        )
        for rule in population.database.all_rules():
            engine.rule_added(rule)
        # Prime: the first reading fans out to every atom regardless of
        # strategy; the sweep measures the steady-state toggle.
        engine.ingest(population.hot_variable, population.toggle_low)
        engine.ingest(population.hot_variable, population.toggle_high)
        engine.ingest(population.hot_variable, population.toggle_low)
        engines[shared] = engine
    return population, engines


@pytest.fixture(scope="module")
def templated_setups():
    return {
        duplication: _build_templated(duplication)
        for duplication in DUPLICATIONS
    }


def _toggling_ingest(engine, population):
    state = {"high": False}

    def step():
        state["high"] = not state["high"]
        engine.ingest(
            population.hot_variable,
            population.toggle_high if state["high"]
            else population.toggle_low,
        )

    return step


@pytest.mark.parametrize("duplication", DUPLICATIONS)
def test_shared_ingest(benchmark, templated_setups, duplication):
    population, engines = templated_setups[duplication]

    benchmark(_toggling_ingest(engines[True], population))

    median = median_seconds(benchmark)
    MEDIANS[("shared", duplication)] = median
    report("A7", f"shared-network ingest @ {duplication}x duplication "
                 f"({population.total_rules} rules)",
           "~flat in duplication factor", median)


@pytest.mark.parametrize("duplication", DUPLICATIONS)
def test_per_rule_ingest(benchmark, templated_setups, duplication):
    population, engines = templated_setups[duplication]

    benchmark(_toggling_ingest(engines[False], population))

    median = median_seconds(benchmark)
    MEDIANS[("per-rule", duplication)] = median
    report("A7", f"per-rule ingest @ {duplication}x duplication "
                 f"({population.total_rules} rules, ablation)",
           "n/a (ablation)", median)


def test_ingest_scaling_shape():
    """Acceptance: shared ingest ≥5× faster than the per-rule ablation
    at 100× duplication, and ~flat across the duplication sweep."""
    needed = [(mode, duplication) for mode in ("shared", "per-rule")
              for duplication in (DUPLICATIONS[0], DUPLICATIONS[-1])]
    if any(key not in MEDIANS for key in needed):
        pytest.skip("ingest sweep did not run (filtered?)")
    peak = DUPLICATIONS[-1]
    speedup = MEDIANS[("per-rule", peak)] / MEDIANS[("shared", peak)]
    flatness = (
        MEDIANS[("shared", peak)] / MEDIANS[("shared", DUPLICATIONS[0])]
    )
    print(
        f"\n  [A7] ingest @ {peak}x duplication: shared x{speedup:.1f} "
        f"faster than per-rule; shared growth x{flatness:.2f} "
        f"across {DUPLICATIONS[0]}x -> {peak}x"
    )
    assert speedup >= SHARED_SPEEDUP_FLOOR, (
        f"shared network only x{speedup:.2f} over the per-rule path at "
        f"{peak}x duplication (floor x{SHARED_SPEEDUP_FLOOR:g})"
    )
    assert flatness <= 3.0, (
        f"shared ingest grew x{flatness:.2f} across the duplication "
        "sweep (expected ~flat: cost tracks distinct templates)"
    )


# -- clock tick vs window-rule count -------------------------------------------


def _build_windows(count):
    population = build_window_population(count, seed=f"a7-w{count}")
    sides = {}
    for wheel in (True, False):
        simulator = Simulator()
        engine = RuleEngine(
            population.database, PriorityManager(), simulator,
            dispatch=_discard, wheel=wheel, max_trace=10_000,
        )
        for rule in population.database.all_rules():
            engine.rule_added(rule)
        sides[wheel] = (simulator, engine)
    return sides


@pytest.fixture(scope="module")
def window_setups():
    return {count: _build_windows(count) for count in WINDOW_SWEEP}


def _ticking(simulator, engine):
    def step():
        simulator.run_until(simulator.now + TICK_PERIOD)
        engine.clock_tick()

    return step


@pytest.mark.parametrize("count", WINDOW_SWEEP)
def test_wheel_tick(benchmark, window_setups, count):
    simulator, engine = window_setups[count][True]

    benchmark(_ticking(simulator, engine))

    median = median_seconds(benchmark)
    MEDIANS[("wheel", count)] = median
    report("A7", f"wheel clock tick @ {count} window rules",
           "O(crossings): ~flat in window-rule count", median)


@pytest.mark.parametrize("count", WINDOW_SWEEP)
def test_per_tick_reevaluation(benchmark, window_setups, count):
    simulator, engine = window_setups[count][False]

    benchmark.pedantic(
        _ticking(simulator, engine),
        rounds=20, iterations=1, warmup_rounds=2,
    )

    median = median_seconds(benchmark)
    MEDIANS[("per-tick", count)] = median
    report("A7", f"per-tick re-evaluation @ {count} window rules "
                 "(ablation)",
           "n/a (ablation)", median)


def test_tick_scaling_shape():
    """Acceptance: the wheel beats blanket per-tick re-evaluation ≥10×
    on the dense-window population."""
    needed = [(mode, count) for mode in ("wheel", "per-tick")
              for count in (WINDOW_SWEEP[0], WINDOW_SWEEP[-1])]
    if any(key not in MEDIANS for key in needed):
        pytest.skip("tick sweep did not run (filtered?)")
    peak = WINDOW_SWEEP[-1]
    speedup = MEDIANS[("per-tick", peak)] / MEDIANS[("wheel", peak)]
    print(
        f"\n  [A7] tick @ {peak} window rules: wheel x{speedup:.1f} "
        f"faster than per-tick re-evaluation"
    )
    assert speedup >= WHEEL_SPEEDUP_FLOOR, (
        f"wheel only x{speedup:.2f} over per-tick re-evaluation at "
        f"{peak} window rules (floor x{WHEEL_SPEEDUP_FLOOR:g})"
    )
