"""A2 — ablation: device-indexed extraction vs linear scan.

The paper's ≤ 10 ms extraction over 10,000 rules presumes the rule
database can find same-device rules without touching every rule.  This
sweep (1k → 50k rules) shows the indexed path staying flat while the
scan grows linearly — the crossover argument for the index.
"""

import pytest

from benchmarks.conftest import median_seconds, report
from repro.core.conflict import ConflictChecker
from repro.workloads.rules import build_rule_population

SWEEP = (1_000, 10_000, 50_000)


@pytest.fixture(scope="module")
def populations():
    return {
        size: build_rule_population(size, min(100, size // 10),
                                    seed=f"a2-{size}")
        for size in SWEEP
    }


@pytest.mark.parametrize("size", SWEEP)
def test_indexed_extraction(benchmark, populations, size):
    population = populations[size]
    checker = ConflictChecker(population.database, use_device_index=True)

    extracted = benchmark(
        checker.extract_same_device_rules, population.probe_rule
    )

    assert len(extracted) == population.same_device_rules
    report("A2", f"indexed extraction @ {size:,} rules",
           "10 ms or less @ 10,000 rules", median_seconds(benchmark))


@pytest.mark.parametrize("size", SWEEP)
def test_scan_extraction(benchmark, populations, size):
    population = populations[size]
    checker = ConflictChecker(population.database, use_device_index=False)

    extracted = benchmark.pedantic(
        checker.extract_same_device_rules, args=(population.probe_rule,),
        rounds=5, iterations=1,
    )

    assert len(extracted) == population.same_device_rules
    report("A2", f"linear-scan extraction @ {size:,} rules",
           "n/a (ablation)", median_seconds(benchmark))


def test_index_and_scan_agree(populations):
    population = populations[10_000]
    indexed = ConflictChecker(population.database, use_device_index=True)
    scanned = ConflictChecker(population.database, use_device_index=False)
    assert (
        [r.name for r in indexed.extract_same_device_rules(
            population.probe_rule)]
        == [r.name for r in scanned.extract_same_device_rules(
            population.probe_rule)]
    )
