"""F1 — the Fig. 1 control scenario, regenerated as a time-chart.

The paper's Fig. 1 is qualitative (device ownership over the evening);
this benchmark re-runs the full-stack scenario, prints the chart rows,
and asserts the published ownership sequence.  The benchmark statistic
is the wall-clock cost of simulating the whole 5pm-8pm evening —
CADEL compilation, registration pipeline, UPnP traffic, physics and
arbitration included.
"""

from benchmarks.conftest import median_seconds, report
from repro.scenarios import run_fig1_scenario


def test_fig1_scenario_time_chart(benchmark):
    result = benchmark.pedantic(run_fig1_scenario, rounds=3, iterations=1)

    print("\n  [F1] Fig. 1 control scenario — regenerated time-chart:")
    for row in result.timeline_rows():
        print(f"    {row}")

    # The published ownership sequence must hold exactly.
    snapshots = result.snapshots
    assert snapshots["17:10 Tom home"].stereo_holder == "tom-s1-jazz-speakers"
    assert snapshots["17:45 Alan home"].tv_holder == "alan-t2-baseball"
    assert snapshots["17:45 Alan home"].stereo_holder == \
        "tom-s1p-jazz-headphones"
    assert snapshots["18:32 Emily home"].tv_holder == "emily-t3-movie"
    assert snapshots["18:32 Emily home"].stereo_holder == \
        "emily-s3-movie-sound"
    assert snapshots["18:32 Emily home"].recorder_holder == \
        "alan-t2-baseball"
    assert snapshots["18:32 Emily home"].aircon_holder == "emily-a3-aircon"

    report("F1", "simulate the full 3-hour evening end-to-end",
           "(not timed in the paper)", median_seconds(benchmark))
