"""Validate the ``BENCH_results.json`` ledger.

The bench-smoke CI job runs this after the benchmarks: a benchmark that
writes a malformed row (missing fields, non-numeric measurement) or a
duplicate ``(experiment, row, config)`` key fails the build instead of
silently corrupting the perf trajectory (PR 2's follow-up appended 264
lines of duplicate rows before the ledger was keyed).

Usage: ``python benchmarks/check_ledger.py [path]`` — exits non-zero
with one line per violation.  The validation lives in
:func:`validate_ledger` so tests can assert the committed ledger is
clean without shelling out.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

DEFAULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"

REQUIRED_FIELDS = ("experiment", "row", "measured_ms", "run")
KNOWN_CONFIGS = ("full", "smoke")

# A10's stage-breakdown rows must use the documented span taxonomy
# (kept literal here — this script runs standalone, without PYTHONPATH;
# ``repro.obs.trace.STAGES`` is the source of truth and a test pins the
# two in sync).
A10_STAGES = ("drain", "batch", "sweep", "fanout", "wheel", "action")


def validate_ledger(rows: object) -> list[str]:
    """All invariant violations in a loaded ledger (empty = clean)."""
    if not isinstance(rows, list):
        return [f"ledger root must be a list, got {type(rows).__name__}"]
    errors: list[str] = []
    seen: dict[tuple, int] = {}
    for index, entry in enumerate(rows):
        where = f"row {index}"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        for field in REQUIRED_FIELDS:
            if field not in entry:
                errors.append(f"{where}: missing field {field!r}")
        experiment = entry.get("experiment")
        row = entry.get("row")
        for label, value in (("experiment", experiment), ("row", row)):
            if label in entry and (
                not isinstance(value, str) or not value.strip()
            ):
                errors.append(f"{where}: {label!r} must be a non-empty string")
        measured = entry.get("measured_ms")
        if "measured_ms" in entry and (
            not isinstance(measured, (int, float))
            or isinstance(measured, bool)
            or not math.isfinite(measured)
            or measured < 0
        ):
            errors.append(
                f"{where}: 'measured_ms' must be a finite non-negative "
                f"number, got {measured!r}"
            )
        config = entry.get("config", "full")
        if config not in KNOWN_CONFIGS:
            errors.append(f"{where}: unknown config {config!r}")
        key = (experiment, row, config)
        if key in seen:
            errors.append(
                f"{where}: duplicate of row {seen[key]} "
                f"(experiment={experiment!r}, row={row!r}, "
                f"config={config!r})"
            )
        else:
            seen[key] = index
    # A10 invariants: stage-breakdown rows stay on the span taxonomy,
    # and the overhead comparison stays a pair — an enabled row without
    # its disabled ablation (or vice versa) means the budget was never
    # actually measured against anything.
    a10_sides: dict[str, set[str]] = {}
    for index, entry in enumerate(rows):
        if not isinstance(entry, dict) or entry.get("experiment") != "A10":
            continue
        row = entry.get("row")
        if not isinstance(row, str):
            continue
        config = entry.get("config", "full")
        if row.startswith("span "):
            stage = row.split(" ", 2)[1]
            if stage not in A10_STAGES:
                errors.append(
                    f"row {index}: A10 span row names unknown stage "
                    f"{stage!r} (taxonomy: {', '.join(A10_STAGES)})"
                )
        for side in ("telemetry-enabled", "telemetry-disabled"):
            if row.startswith(side):
                a10_sides.setdefault(config, set()).add(side)
    for config, sides in sorted(a10_sides.items()):
        for side in sorted(
            {"telemetry-enabled", "telemetry-disabled"} - sides
        ):
            errors.append(
                f"A10 ({config}): missing {side} ingest row — the "
                f"overhead comparison must record both sides"
            )
    # A11 invariants: the WAL overhead comparison stays a pair, and a
    # recovery-time sweep without its cold-replay baseline (or vice
    # versa) means the speedup claim was never measured against
    # anything.
    a11_sides: dict[str, set[str]] = {}
    a11_kinds: dict[str, set[str]] = {}
    for entry in rows:
        if not isinstance(entry, dict) or entry.get("experiment") != "A11":
            continue
        row = entry.get("row")
        if not isinstance(row, str):
            continue
        config = entry.get("config", "full")
        for side in ("wal-enabled", "wal-disabled"):
            if row.startswith(side):
                a11_sides.setdefault(config, set()).add(side)
        if row.startswith("restore @"):
            a11_kinds.setdefault(config, set()).add("restore")
        if row.startswith("cold full replay"):
            a11_kinds.setdefault(config, set()).add("cold replay")
    for config, sides in sorted(a11_sides.items()):
        for side in sorted({"wal-enabled", "wal-disabled"} - sides):
            errors.append(
                f"A11 ({config}): missing {side} ingest row — the WAL "
                f"overhead comparison must record both sides"
            )
    for config, kinds in sorted(a11_kinds.items()):
        for kind in sorted({"restore", "cold replay"} - kinds):
            errors.append(
                f"A11 ({config}): missing {kind} row — the recovery "
                f"sweep must record restore times and the cold-replay "
                f"baseline together"
            )
    # A12 invariants: the distribution sweep records both backends (a
    # process-only sweep has no in-thread twin to compare against), and
    # the wire-codec overhead row never lands without its apply-cost
    # baseline — the ≤15% acceptance claim is a ratio of the two.
    a12_backends: dict[str, set[str]] = {}
    a12_codec: dict[str, set[str]] = {}
    for entry in rows:
        if not isinstance(entry, dict) or entry.get("experiment") != "A12":
            continue
        row = entry.get("row")
        if not isinstance(row, str):
            continue
        config = entry.get("config", "full")
        if row.startswith("aggregate ingest,"):
            for backend in ("process", "thread"):
                if f"({backend}" in row:
                    a12_backends.setdefault(config, set()).add(backend)
        if row.startswith("wire codec encode+decode"):
            a12_codec.setdefault(config, set()).add("wire codec")
        if row.startswith("columnar batch apply"):
            a12_codec.setdefault(config, set()).add("batch apply baseline")
    for config, backends in sorted(a12_backends.items()):
        for backend in sorted({"process", "thread"} - backends):
            errors.append(
                f"A12 ({config}): missing {backend}-backend ingest rows "
                f"— the distribution sweep must record both backends"
            )
    for config, parts in sorted(a12_codec.items()):
        for part in sorted({"wire codec", "batch apply baseline"} - parts):
            errors.append(
                f"A12 ({config}): missing {part} row — codec overhead "
                f"is a ratio and needs both sides recorded"
            )
    return errors


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    try:
        rows = json.loads(path.read_text())
    except OSError as exc:
        print(f"cannot read {path}: {exc}")
        return 1
    except ValueError as exc:
        print(f"{path} is not valid JSON: {exc}")
        return 1
    errors = validate_ledger(rows)
    for error in errors:
        print(f"{path}: {error}")
    if errors:
        return 1
    count = len(rows)
    print(f"{path}: OK ({count} rows, all keys unique)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
