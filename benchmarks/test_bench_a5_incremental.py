"""A5 — incremental evaluation: ingest cost vs rule-population size.

The paper's server must react within its ≤10 ms bound while holding
10,000+ rules.  This sweep ingests a shared sensor variable into mixed-
atom populations of 1k → 50k rules through both evaluation strategies:

* **incremental** — atom-delta propagation over the compiled-plan /
  threshold-index core; cost tracks *what changed*, staying ~flat as
  the population grows;
* **baseline** — the seed full-re-evaluation path (``incremental=False``),
  which re-walks the condition tree of every rule reading the variable
  and therefore grows linearly with the population.

The probe toggles the shared temperature between two adjacent values so
steady-state cost is measured (no rule edges fire); the final test
asserts the scaling shapes both ways.
"""

import pytest

from benchmarks.conftest import BENCH_SMOKE, median_seconds, report
from repro.core.engine import RuleEngine
from repro.core.priority import PriorityManager
from repro.sim.events import Simulator
from repro.workloads.rules import build_mixed_population

# Smoke mode (REPRO_BENCH_SMOKE=1, the CI fail-fast job) shrinks the
# sweep; the shape assertions scale with the sweep ratio below.
SWEEP = (1_000, 10_000) if BENCH_SMOKE else (1_000, 5_000, 20_000, 50_000)

# Full sweep: 50x rules ⇒ baseline ≥5x; smoke: 10x rules ⇒ ≥2x.
BASELINE_GROWTH_FLOOR = max(2.0, (SWEEP[-1] / SWEEP[0]) / 10.0)

MEDIANS: dict[tuple[str, int], float] = {}


def _discard(spec) -> None:
    pass


def _build(count):
    population = build_mixed_population(count, seed=f"a5-{count}")
    simulator = Simulator()
    incremental = RuleEngine(
        population.database, PriorityManager(), simulator,
        dispatch=_discard, max_trace=10_000,
    )
    baseline = RuleEngine(
        population.database, PriorityManager(), simulator,
        dispatch=_discard, incremental=False, max_trace=10_000,
    )
    for rule in population.database.all_rules():
        incremental.rule_added(rule)
        baseline.rule_added(rule)
    # Prime both worlds so the sweep measures steady state, not the
    # one-time "first reading of this variable" fan-out.
    for engine in (incremental, baseline):
        engine.ingest(population.hot_variable, 25.0)
        engine.ingest(population.hot_variable, 25.000001)
        engine.ingest(population.hot_variable, 25.0)
    return population, incremental, baseline


@pytest.fixture(scope="module")
def setups():
    return {count: _build(count) for count in SWEEP}


def _toggling_ingest(engine, variable):
    state = {"high": False}

    def step():
        state["high"] = not state["high"]
        engine.ingest(variable, 25.000001 if state["high"] else 25.0)

    return step


@pytest.mark.parametrize("count", SWEEP)
def test_incremental_ingest(benchmark, setups, count):
    population, incremental, _baseline = setups[count]

    benchmark(_toggling_ingest(incremental, population.hot_variable))

    median = median_seconds(benchmark)
    MEDIANS[("incremental", count)] = median
    report("A5", f"incremental ingest @ {count} rules",
           "within the 10 ms reaction bound at any scale", median)


@pytest.mark.parametrize("count", SWEEP)
def test_baseline_full_reeval_ingest(benchmark, setups, count):
    population, _incremental, baseline = setups[count]

    benchmark.pedantic(
        _toggling_ingest(baseline, population.hot_variable),
        rounds=10, iterations=1, warmup_rounds=2,
    )

    median = median_seconds(benchmark)
    MEDIANS[("baseline", count)] = median
    report("A5", f"seed full re-eval ingest @ {count} rules "
                 "(ablation)",
           "n/a (ablation)", median)


def test_scaling_shape():
    """Acceptance: incremental stays ~flat over the sweep (≤3× its
    smallest-size median) while the seed path grows ~linearly with the
    population (ratio floor scaled to the sweep size)."""
    needed = [(mode, count) for mode in ("incremental", "baseline")
              for count in (SWEEP[0], SWEEP[-1])]
    if any(key not in MEDIANS for key in needed):
        pytest.skip("sweep benchmarks did not run (filtered?)")
    incremental_ratio = (
        MEDIANS[("incremental", SWEEP[-1])]
        / MEDIANS[("incremental", SWEEP[0])]
    )
    baseline_ratio = (
        MEDIANS[("baseline", SWEEP[-1])]
        / MEDIANS[("baseline", SWEEP[0])]
    )
    print(
        f"\n  [A5] scaling 1k -> 50k: "
        f"incremental x{incremental_ratio:.2f}, "
        f"baseline x{baseline_ratio:.2f}"
    )
    assert incremental_ratio <= 3.0, (
        f"incremental ingest grew x{incremental_ratio:.2f} from "
        f"{SWEEP[0]} to {SWEEP[-1]} rules (expected ~flat)"
    )
    assert baseline_ratio >= BASELINE_GROWTH_FLOOR, (
        f"baseline full re-eval grew only x{baseline_ratio:.2f} "
        f"(floor x{BASELINE_GROWTH_FLOOR:.1f}); "
        "the ablation should scale with population"
    )
