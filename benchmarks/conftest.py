"""Shared benchmark helpers.

Every benchmark prints a ``[paper]``/``[ours]`` comparison row after
measuring, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
paper's reported numbers next to ours (EXPERIMENTS.md records a full
run).  Absolute values are expected to differ — the paper ran on a 2005
Athlon 2200+ with a C Simplex library; the *shape* (single-digit-ms
retrieval/extraction, sub-ms batched feasibility) is the target.
"""

from __future__ import annotations


def report(experiment: str, row: str, paper: str, measured_s: float) -> None:
    """Print one paper-vs-measured comparison row."""
    measured_ms = measured_s * 1e3
    print(
        f"\n  [{experiment}] {row}\n"
        f"    paper:    {paper}\n"
        f"    measured: {measured_ms:.3f} ms"
    )


def median_seconds(benchmark) -> float:
    """Median of a completed pytest-benchmark fixture run."""
    return benchmark.stats.stats.median
