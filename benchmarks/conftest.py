"""Shared benchmark helpers.

Every benchmark prints a ``[paper]``/``[ours]`` comparison row after
measuring, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
paper's reported numbers next to ours (EXPERIMENTS.md records a full
run).  Absolute values are expected to differ — the paper ran on a 2005
Athlon 2200+ with a C Simplex library; the *shape* (single-digit-ms
retrieval/extraction, sub-ms batched feasibility) is the target.

Besides printing, :func:`report` appends every measured row to
``BENCH_results.json`` at the repository root (``experiment``, ``row``,
``measured_ms``), so the perf trajectory is machine-readable across PRs
instead of living only in scrollback.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the scaling sweeps (A5/A6) to CI
smoke sizes; the shape assertions adapt to the smaller ratios.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"

# One stamp per pytest process: rows of the same run group together, so
# the ledger stays reconstructible when several runs append over time.
RUN_STAMP = time.strftime("%Y-%m-%dT%H:%M:%S")

BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") \
    not in ("", "0", "false", "no")


def record_result(experiment: str, row: str, measured_ms: float) -> None:
    """Append one row to the repo-root ``BENCH_results.json`` ledger."""
    rows: list[dict] = []
    if RESULTS_PATH.exists():
        try:
            loaded = json.loads(RESULTS_PATH.read_text())
            if isinstance(loaded, list):
                rows = loaded
        except (OSError, ValueError):
            rows = []  # a corrupt ledger must never fail a benchmark
    rows.append({
        "experiment": experiment,
        "row": row,
        "measured_ms": round(measured_ms, 6),
        "run": RUN_STAMP,
    })
    try:
        RESULTS_PATH.write_text(json.dumps(rows, indent=2) + "\n")
    except OSError:
        pass  # read-only checkout: keep the printed row at least


def report(experiment: str, row: str, paper: str, measured_s: float) -> None:
    """Print one paper-vs-measured comparison row and record it."""
    measured_ms = measured_s * 1e3
    print(
        f"\n  [{experiment}] {row}\n"
        f"    paper:    {paper}\n"
        f"    measured: {measured_ms:.3f} ms"
    )
    record_result(experiment, row, measured_ms)


def median_seconds(benchmark) -> float:
    """Median of a completed pytest-benchmark fixture run."""
    return benchmark.stats.stats.median
