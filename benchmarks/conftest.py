"""Shared benchmark helpers.

Every benchmark prints a ``[paper]``/``[ours]`` comparison row after
measuring, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
paper's reported numbers next to ours (EXPERIMENTS.md records a full
run).  Absolute values are expected to differ — the paper ran on a 2005
Athlon 2200+ with a C Simplex library; the *shape* (single-digit-ms
retrieval/extraction, sub-ms batched feasibility) is the target.

Besides printing, :func:`report` upserts every measured row into
``BENCH_results.json`` at the repository root.  The ledger is **keyed**:
one row per ``(experiment, row, config)`` — re-running a benchmark
replaces its row instead of appending a duplicate, so the file stays a
current snapshot rather than an append-only log.  Each row records the
measurement (``measured_ms``), the run stamp and the git commit it was
measured at; ``config`` separates full-size runs from the shrunken
``REPRO_BENCH_SMOKE=1`` CI sweeps so neither clobbers the other.
``benchmarks/check_ledger.py`` validates the invariants and fails CI on
malformed or duplicate rows.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"

# One stamp per pytest process: rows of the same run carry one stamp, so
# a partial re-run is visible in the ledger (mixed stamps per sweep).
RUN_STAMP = time.strftime("%Y-%m-%dT%H:%M:%S")

BENCH_SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") \
    not in ("", "0", "false", "no")

CONFIG = "smoke" if BENCH_SMOKE else "full"


def _git_sha() -> str:
    """The measuring commit, with a ``-dirty`` marker when the working
    tree differs from it — a row measured from uncommitted code must not
    credit the parent commit with its numbers."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=RESULTS_PATH.parent, capture_output=True, text=True,
            timeout=10,
        ).stdout.strip()
        if not sha:
            return "unknown"
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=RESULTS_PATH.parent, capture_output=True, text=True,
            timeout=10,
        ).stdout.strip()
        return f"{sha}-dirty" if dirty else sha
    except (OSError, subprocess.SubprocessError):
        return "unknown"


GIT_SHA = _git_sha()


def row_key(entry: dict) -> tuple:
    """The ledger's uniqueness key (rows predating the ``config`` field
    count as full-size runs)."""
    return (
        entry.get("experiment"),
        entry.get("row"),
        entry.get("config", "full"),
    )


def load_ledger() -> list[dict]:
    if not RESULTS_PATH.exists():
        return []
    try:
        loaded = json.loads(RESULTS_PATH.read_text())
    except (OSError, ValueError):
        return []  # a corrupt ledger must never fail a benchmark
    return loaded if isinstance(loaded, list) else []


def record_result(experiment: str, row: str, measured_ms: float) -> None:
    """Upsert one row into the repo-root ``BENCH_results.json`` ledger,
    replacing any previous measurement of the same key."""
    key = (experiment, row, CONFIG)
    rows = [entry for entry in load_ledger() if row_key(entry) != key]
    rows.append({
        "experiment": experiment,
        "row": row,
        "config": CONFIG,
        "measured_ms": round(measured_ms, 6),
        "run": RUN_STAMP,
        "sha": GIT_SHA,
    })
    rows.sort(key=lambda entry: (
        entry.get("experiment") or "",
        entry.get("config", "full"),
        entry.get("row") or "",
    ))
    document = json.dumps(rows, indent=2) + "\n"
    try:
        # Atomic replace: a crash (or ctrl-C) mid-write must never leave
        # a truncated ledger behind — benchmarks run from a src layout,
        # so fall back to a plain write if repro isn't importable.
        try:
            from repro.support.fsio import atomic_write_text
        except ImportError:
            RESULTS_PATH.write_text(document)
        else:
            atomic_write_text(str(RESULTS_PATH), document)
    except OSError:
        pass  # read-only checkout: keep the printed row at least


def report(experiment: str, row: str, paper: str, measured_s: float) -> None:
    """Print one paper-vs-measured comparison row and record it."""
    measured_ms = measured_s * 1e3
    print(
        f"\n  [{experiment}] {row}\n"
        f"    paper:    {paper}\n"
        f"    measured: {measured_ms:.3f} ms"
    )
    record_result(experiment, row, measured_ms)


def median_seconds(benchmark) -> float:
    """Median of a completed pytest-benchmark fixture run."""
    return benchmark.stats.stats.median
