"""A4 — scaling: retrieval cost vs device-population size.

Extends E1's 50-device point to a 10 → 500 sweep, for both the indexed
registry lookup (flat) and an unindexed linear scan (linear), plus the
discovery cost of populating the registry in the first place.
"""

import pytest

from benchmarks.conftest import median_seconds, report
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.upnp import ssdp
from repro.upnp.control_point import ControlPoint
from repro.workloads.devices import build_device_population

SWEEP = (10, 50, 200, 500)


@pytest.fixture(scope="module")
def populations():
    built = {}
    for count in SWEEP:
        simulator = Simulator()
        bus = NetworkBus(simulator)
        build_device_population(simulator, bus, count)
        control_point = ControlPoint(bus, simulator, name=f"cp-{count}")
        control_point.search(ssdp.ST_ALL)
        assert len(control_point.registry) == count
        built[count] = control_point
    return built


@pytest.mark.parametrize("count", SWEEP)
def test_indexed_name_lookup(benchmark, populations, count):
    control_point = populations[count]
    target = f"thermo-{min(count - 1, 25):03d}"
    if target not in {r.friendly_name for r in control_point.registry.all()}:
        target = control_point.registry.all()[count // 2].friendly_name

    record = benchmark(control_point.find_by_name, target)

    assert record.friendly_name == target
    report("A4", f"indexed name lookup @ {count} devices",
           "10 ms or less @ 50 devices", median_seconds(benchmark))


@pytest.mark.parametrize("count", SWEEP)
def test_scan_name_lookup(benchmark, populations, count):
    control_point = populations[count]
    target = control_point.registry.all()[count // 2].friendly_name

    records = benchmark(control_point.registry.scan_by_name, target)

    assert len(records) == 1
    report("A4", f"linear-scan name lookup @ {count} devices",
           "n/a (ablation)", median_seconds(benchmark))


@pytest.mark.parametrize("count", (10, 50, 200))
def test_full_discovery_sweep(benchmark, count):
    """M-SEARCH ssdp:all + harvest + describe every device."""

    def discover():
        simulator = Simulator()
        bus = NetworkBus(simulator)
        build_device_population(simulator, bus, count)
        control_point = ControlPoint(bus, simulator, name="sweep-cp")
        return control_point.search(ssdp.ST_ALL)

    records = benchmark.pedantic(discover, rounds=3, iterations=1)

    assert len(records) == count
    report("A4", f"full discovery of {count} devices "
                 "(search + describe all)",
           "n/a (setup cost)", median_seconds(benchmark))
