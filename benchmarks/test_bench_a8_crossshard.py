"""A8 — cross-shard rules: ingest throughput vs the fraction of
cross-home (building) rules, at a fixed shard count.

PR 5 lets a rule span homes: it is homed on the shard owning its action
devices and every foreign condition variable is mirrored into that
shard through the ingest bus.  Mirroring is not free — a write to a
mirrored sensor is applied once per subscribed shard and is excluded
from coalescing — so the question this benchmark answers is *how much*
a realistic share of building-wide rules costs the hot ingest path.

The sweep keeps the total rule count constant and replaces a growing
fraction of per-home rules with building templates
(:func:`~repro.workloads.fleet.build_building_rules`), then drives the
same fleet-wide sensor stream through a 4-shard cluster, timing each
shard's drain in isolation (critical path = the slowest shard, as in
A6).  Acceptance: at 10% cross-home rules, aggregate throughput stays
within ~2x of the all-local fleet.

Sizes shrink under ``REPRO_BENCH_SMOKE=1`` (the CI fail-fast job).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_SMOKE, report
from repro.cluster import ClusterServer
from repro.sim.events import Simulator
from repro.workloads.fleet import (
    build_building_rules,
    build_home_fleet,
    fleet_event_stream,
)

if BENCH_SMOKE:
    FLEET_HOMES, RULES_PER_HOME = 16, 30
    FRACTIONS = (0.0, 0.10)
    EVENTS = 500
else:
    FLEET_HOMES, RULES_PER_HOME = 32, 100
    FRACTIONS = (0.0, 0.05, 0.10, 0.20)
    EVENTS = 2_000

SHARDS = 4
BUILDING_SIZE = 4
ROUNDS = 5
OVERHEAD_CEILING = 2.0   # throughput(10%) must stay within ~2x of 0%

THROUGHPUTS: dict[float, float] = {}


@pytest.fixture(scope="module")
def fleet():
    return build_home_fleet(FLEET_HOMES, RULES_PER_HOME, seed="a8-fleet")


@pytest.fixture(scope="module")
def building_pool(fleet):
    """One deterministic pool of building rules, sliced per fraction."""
    total = FLEET_HOMES * RULES_PER_HOME
    buildings = FLEET_HOMES // BUILDING_SIZE
    need = int(total * max(FRACTIONS))
    per_building = -(-need // buildings)  # ceil
    return build_building_rules(
        fleet, building_size=BUILDING_SIZE,
        rules_per_building=per_building, seed="a8-buildings",
    )


def _build_cluster(fleet, building_pool, fraction):
    """A 4-shard cluster with a constant total rule count: ``fraction``
    of the population is building (cross-home) rules, the rest the
    standard per-home archetypes."""
    total = FLEET_HOMES * RULES_PER_HOME
    cross = int(total * fraction)
    cluster = ClusterServer(
        Simulator(), shard_count=SHARDS, coalesce=True, max_trace=10_000,
    )
    for rule in fleet.all_rules()[:total - cross]:
        cluster.register_rule(rule, validate=False)
    for rule in building_pool[:cross]:
        cluster.register_rule(rule, validate=False)
    # Prime every sensor once so the sweep measures steady state.
    for home in fleet.homes:
        for variable in fleet.sensors_by_home[home]:
            cluster.ingest(variable, 50.0)
    cluster.flush()
    return cluster, cross


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_crossshard_ingest_overhead(fleet, building_pool, fraction):
    """Publish one fleet-wide stream, then time each shard's drain in
    isolation; mirrored variables fan out to their subscriber shards
    inside those drains."""
    cluster, cross = _build_cluster(fleet, building_pool, fraction)
    stream = fleet_event_stream(fleet, events=EVENTS, burst=1,
                                seed="a8-stream")
    criticals = []
    for round_index in range(ROUNDS):
        offset = 0.013 * (round_index + 1)  # every write changes value
        for variable, value in stream:
            cluster.ingest(variable, value + offset)
        shard_times = []
        for index in range(SHARDS):
            start = time.perf_counter()
            cluster.bus.flush(shard=index)
            shard_times.append(time.perf_counter() - start)
        criticals.append(max(shard_times))
    criticals.sort()
    critical = criticals[len(criticals) // 2]
    throughput = EVENTS / critical
    THROUGHPUTS[fraction] = throughput
    if fraction > 0.0:
        assert cross > 0
        assert cluster.stats().mirrored > 0, \
            "cross-home fraction produced no mirror fan-out"
        mirrored = cluster.bus.mirror_route_count()
        context = (f"{throughput:,.0f} events/s; {cross} building rules, "
                   f"{mirrored} mirrored variables")
    else:
        context = f"{throughput:,.0f} events/s; all-local baseline"
    report(
        "A8",
        f"ingest critical path @ {int(fraction * 100)}% cross-home rules "
        f"({SHARDS} shards, {FLEET_HOMES} homes)",
        f"n/a (cross-shard experiment; {context})",
        critical,
    )
    cluster.shutdown()


def test_crossshard_overhead_shape():
    """Acceptance: mirrored ingest at 10% cross-home rules stays within
    ~2x of the all-local critical path."""
    if 0.0 not in THROUGHPUTS or 0.10 not in THROUGHPUTS:
        pytest.skip("fraction sweep did not run (filtered?)")
    base = THROUGHPUTS[0.0]
    at_ten = THROUGHPUTS[0.10]
    overhead = base / at_ten
    print(
        f"\n  [A8] ingest overhead at 10% cross-home rules: "
        f"x{overhead:.2f} (ceiling x{OVERHEAD_CEILING:.1f})"
    )
    assert overhead <= OVERHEAD_CEILING, (
        f"10% cross-home rules cost x{overhead:.2f} in ingest throughput "
        f"(ceiling x{OVERHEAD_CEILING:.1f}); mirroring fan-out is too "
        "expensive"
    )
