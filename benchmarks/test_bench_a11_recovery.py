"""A11 — durability overhead and recovery time.

The durability plane (:mod:`repro.cluster.durability`) promises that
crash safety is cheap on the hot path and that recovery is snapshot +
tail-replay, not a full re-run of history.  Two surfaces hold it to
that:

* **WAL append overhead** — wal-enabled vs wal-disabled batched ingest
  on the A9 columnar band-sweep workload through a one-shard cluster
  bus (every drain appends one framed, checksummed record before the
  batch applies; fsyncs are batched).  Budget: ≤10% at full size.  Same
  ABBA/trimmed-best-of protocol as A10, on one cluster toggled between
  rounds — two separate clusters differ by allocation layout and cache
  state.

* **recovery time** — restore (manifest + snapshot overlay + WAL tail
  replay) measured against tail length, next to a cold full replay of
  the same event history through a fresh cluster.  The acceptance
  assertion is the paper-shaped one: snapshot + short-tail restore
  beats replaying the whole history.
"""

from time import perf_counter

from benchmarks.conftest import BENCH_SMOKE, record_result, report
from repro.cluster import ClusterServer, DurabilityPlane, restore_cluster
from repro.sim.events import Simulator
from repro.workloads.rules import build_columnar_population

RULES = 2_000 if BENCH_SMOKE else 10_000
BATCH = 64
ROUNDS = 24 if BENCH_SMOKE else 50
TRIM = 3 if BENCH_SMOKE else 5  # k fastest rounds per side
FSYNC_INTERVAL = 64  # fsync batching: one barrier per 64 appended records

# Acceptance ceiling on the enabled/disabled trimmed best-of ratio.
# Full-size budget is 10%; smoke shrinks the per-batch engine work so
# the constant framing/write cost weighs relatively more.
OVERHEAD_CEILING = 1.25 if BENCH_SMOKE else 1.10

# Recovery-time population: smaller, so four cluster builds stay cheap.
R_RULES = 400 if BENCH_SMOKE else 2_000
TAILS = (0, 256, 1_024) if not BENCH_SMOKE else (0, 64, 256)  # writes
HISTORY = 1_024 if BENCH_SMOKE else 4_096  # total writes in the life


def _build_cluster(population):
    cluster = ClusterServer(
        Simulator(), shard_count=1, coalesce=False, columnar=True,
    )
    for rule in population.database.all_rules():
        cluster.register_rule(rule, validate=False)
    return cluster


def _toggle_step(cluster, population, size):
    """One measured step: ``size`` band-toggle writes queued, then one
    synchronous drain (= one WAL record when durability is on)."""
    values = (population.toggle_high, population.toggle_low)
    state = [0]

    def step():
        phase = state[0]
        for offset in range(size):
            cluster.ingest(
                population.hot_variable, values[(phase + offset) % 2])
        state[0] = (phase + size) % 2
        cluster.flush()

    return step


def _drive(cluster, population, writes):
    step = _toggle_step(cluster, population, BATCH)
    for _ in range(writes // BATCH):
        step()


# -- WAL append overhead -------------------------------------------------------


def test_wal_append_overhead_on_batched_ingest(tmp_path):
    """Acceptance: wal-enabled batched ingest within the overhead budget
    of the wal-disabled twin on the A9 band-sweep workload."""
    import gc

    population = build_columnar_population(RULES, seed=f"a11-{RULES}")
    cluster = _build_cluster(population)
    plane = DurabilityPlane(str(tmp_path), fsync_interval=FSYNC_INTERVAL)
    cluster.attach_durability(plane)
    step = _toggle_step(cluster, population, BATCH)
    for _ in range(3):
        step()  # prime atoms, file handles, page cache

    def measure():
        """One ABBA block: per-side sorted round times.  The toggle is
        the bus's durability hook itself — exactly the seam a disabled
        plane leaves as one ``None`` check per drain."""
        times = {True: [], False: []}
        gc.collect()
        gc.disable()
        try:
            for index in range(ROUNDS):
                order = (True, False) if index % 2 == 0 else (False, True)
                for flag in order:
                    cluster.bus._durability = plane if flag else None
                    start = perf_counter()
                    step()
                    times[flag].append(perf_counter() - start)
        finally:
            gc.enable()
            cluster.bus._durability = plane
        for values in times.values():
            values.sort()
        return times

    ratio = None
    for _ in range(3):
        times = measure()
        trimmed = {
            flag: sum(values[:TRIM]) / TRIM for flag, values in times.items()
        }
        attempt = trimmed[True] / trimmed[False]
        if ratio is None or attempt < ratio:
            ratio = attempt
            median = {
                flag: values[ROUNDS // 2] for flag, values in times.items()
            }
        if ratio <= OVERHEAD_CEILING:
            break

    report(
        "A11",
        f"wal-enabled batch ingest @ {RULES} rules (batch {BATCH})",
        "overhead budget: <=10% over disabled", median[True],
    )
    report(
        "A11",
        f"wal-disabled batch ingest @ {RULES} rules "
        f"(batch {BATCH}, ablation)",
        "n/a (ablation)", median[False],
    )
    record_result(
        "A11", f"wal overhead @ {RULES} rules (percent)",
        max(0.0, (ratio - 1.0) * 100.0),
    )
    print(f"\n  [A11] wal overhead ratio (trimmed best {TRIM}/{ROUNDS} "
          f"ABBA rounds, best attempt): x{ratio:.4f} "
          f"(ceiling x{OVERHEAD_CEILING:g})")

    # Not vacuous: the enabled rounds really appended framed records.
    counters = cluster.bus.registry.snapshot()["counters"]
    assert counters["recovery.wal_records"] >= ROUNDS
    assert counters["recovery.wal_bytes"] > 0
    cluster.shutdown()

    assert ratio <= OVERHEAD_CEILING, (
        f"WAL append overhead x{ratio:.4f} over the disabled twin at "
        f"{RULES} rules (ceiling x{OVERHEAD_CEILING:g})"
    )


# -- recovery time -------------------------------------------------------------


def _timed_restore(directory, population):
    start = perf_counter()
    server, restore_report = restore_cluster(
        str(directory), Simulator(),
        list(population.database.all_rules()), attach=False,
    )
    elapsed = perf_counter() - start
    assert restore_report.ok()
    server.shutdown()
    return elapsed


def test_recovery_time_vs_tail_length(tmp_path):
    """Ledger rows: restore wall time for growing WAL tails, plus the
    cold full-replay baseline.  Acceptance: snapshot + short-tail
    restore beats replaying the whole history from scratch."""
    population = build_columnar_population(R_RULES, seed=f"a11-r{R_RULES}")
    restore_times = {}
    for tail in TAILS:
        directory = tmp_path / f"tail-{tail}"
        cluster = _build_cluster(population)
        cluster.attach_durability(
            DurabilityPlane(str(directory), fsync_interval=FSYNC_INTERVAL))
        _drive(cluster, population, HISTORY - tail)
        cluster.checkpoint()
        _drive(cluster, population, tail)
        # Abrupt kill: the tail past the checkpoint is replayed from the
        # WAL on restore.
        restore_times[tail] = min(
            _timed_restore(directory, population) for _ in range(3))
        report(
            "A11",
            f"restore @ {R_RULES} rules, wal tail {tail} writes",
            "recovery = snapshot overlay + tail replay",
            restore_times[tail],
        )

    def cold_replay():
        start = perf_counter()
        cluster = _build_cluster(population)
        _drive(cluster, population, HISTORY)
        elapsed = perf_counter() - start
        cluster.shutdown()
        return elapsed

    cold = min(cold_replay() for _ in range(3))
    report(
        "A11",
        f"cold full replay @ {R_RULES} rules, {HISTORY} writes",
        "n/a (no-snapshot baseline)", cold,
    )
    record_result(
        "A11",
        f"restore speedup over cold replay @ {R_RULES} rules (ratio)",
        cold / restore_times[TAILS[0]],
    )
    assert restore_times[TAILS[0]] < cold, (
        f"snapshot restore ({restore_times[TAILS[0]] * 1e3:.1f} ms) "
        f"should beat cold replay of {HISTORY} writes "
        f"({cold * 1e3:.1f} ms)"
    )
