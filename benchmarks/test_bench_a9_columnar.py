"""A9 — columnar batch ingest vs the object-graph path.

The columnar backend keeps global atom truth, per-clause false-atom
counters and clause→rule fan-out in flat arrays (``repro.core.columnar``)
and sweeps a numeric write's whole candidate threshold window with one
vectorized comparison instead of a per-atom Python ``evaluate`` loop.
This benchmark measures that critical path on the worst-case band sweep:
a population of rules whose thresholds span one shared sensor variable,
driven by batches of writes that each jump across the entire band and
therefore flip *every* distinct threshold atom — while a shared
never-true companion atom keeps every clause false, isolating atom-flip
and clause-counter cost from rule evaluation and arbitration.

Two sweeps:

* **rule count** at a fixed batch size — the columnar path should win by
  an order of magnitude at 10k+ rules (acceptance floor ≥5×);
* **batch size** at the peak rule count — per-write cost should be ~flat
  in batch size for both paths (batching amortizes only call overhead;
  per-event semantics are preserved write by write).

Counter rows (atoms flipped / clauses touched per batch) land in the
ledger alongside the timings so regressions in sweep *width* are as
visible as regressions in sweep *speed*.
"""

import pytest

from benchmarks.conftest import (
    BENCH_SMOKE,
    median_seconds,
    record_result,
    report,
)
from repro.core.engine import RuleEngine
from repro.core.priority import PriorityManager
from repro.sim.events import Simulator
from repro.workloads.rules import build_columnar_population

RULE_SWEEP = (1_000, 5_000) if BENCH_SMOKE else (1_000, 10_000, 20_000)
# Full-size acceptance point: 10k rules (20k only extends the rule-count
# sweep; the batch-size sweep would be needlessly slow there).
RULES_PEAK = 5_000 if BENCH_SMOKE else 10_000
BATCH_SIZE = 64
BATCH_SWEEP = (1,) if BENCH_SMOKE else (1, 256)

# Acceptance floor: ≥5× columnar over the object path at ≥10k rules with
# batch ≥64; smoke sizes shrink the vectorization advantage, so CI
# guards a proportionally smaller floor.
COLUMNAR_SPEEDUP_FLOOR = 2.0 if BENCH_SMOKE else 5.0

MEDIANS: dict[tuple[str, int, int], float] = {}


def _discard(spec) -> None:
    pass


def _build(rules):
    population = build_columnar_population(rules, seed=f"a9-{rules}")
    simulator = Simulator()
    engines = {}
    for columnar in (True, False):
        engine = RuleEngine(
            population.database, PriorityManager(), simulator,
            dispatch=_discard, columnar=columnar, max_trace=10_000,
        )
        for rule in population.database.all_rules():
            engine.rule_added(rule)
        # Prime: the first reading initializes every atom regardless of
        # strategy; the sweep measures the steady-state band jump.
        engine.ingest(population.hot_variable, population.toggle_low)
        engine.ingest(population.hot_variable, population.toggle_high)
        engine.ingest(population.hot_variable, population.toggle_low)
        engines[columnar] = engine
    return population, engines


@pytest.fixture(scope="module")
def setups():
    return {rules: _build(rules) for rules in RULE_SWEEP}


def _batched_ingest(engine, population, size):
    """One step = one ``ingest_batch`` of ``size`` band-jumping writes.

    Values alternate high/low starting opposite to where the previous
    step ended, so *every* write crosses the whole threshold band and
    odd batch sizes stay consistent across rounds.
    """
    values = (population.toggle_high, population.toggle_low)
    state = {"phase": 0}

    def step():
        phase = state["phase"]
        batch = [
            (population.hot_variable, values[(phase + offset) % 2])
            for offset in range(size)
        ]
        state["phase"] = (phase + size) % 2
        engine.ingest_batch(batch)

    return step


# -- ingest vs rule count ------------------------------------------------------


@pytest.mark.parametrize("rules", RULE_SWEEP)
def test_columnar_batch_ingest(benchmark, setups, rules):
    population, engines = setups[rules]

    benchmark(_batched_ingest(engines[True], population, BATCH_SIZE))

    median = median_seconds(benchmark)
    MEDIANS[("columnar", rules, BATCH_SIZE)] = median
    report("A9", f"columnar batch ingest @ {rules} rules "
                 f"(batch {BATCH_SIZE})",
           "vectorized sweep: ~10x over object path", median)


@pytest.mark.parametrize("rules", RULE_SWEEP)
def test_object_batch_ingest(benchmark, setups, rules):
    population, engines = setups[rules]

    benchmark.pedantic(
        _batched_ingest(engines[False], population, BATCH_SIZE),
        rounds=5, iterations=1, warmup_rounds=1,
    )

    median = median_seconds(benchmark)
    MEDIANS[("object", rules, BATCH_SIZE)] = median
    report("A9", f"object-path batch ingest @ {rules} rules "
                 f"(batch {BATCH_SIZE}, ablation)",
           "n/a (ablation)", median)


# -- ingest vs batch size ------------------------------------------------------


@pytest.mark.parametrize("size", BATCH_SWEEP)
def test_columnar_batch_size(benchmark, setups, size):
    population, engines = setups[RULES_PEAK]

    benchmark(_batched_ingest(engines[True], population, size))

    median = median_seconds(benchmark)
    MEDIANS[("columnar", RULES_PEAK, size)] = median
    report("A9", f"columnar batch ingest @ batch {size} "
                 f"({RULES_PEAK} rules)",
           "per-write cost ~flat in batch size", median)


@pytest.mark.parametrize("size", BATCH_SWEEP)
def test_object_batch_size(benchmark, setups, size):
    population, engines = setups[RULES_PEAK]

    benchmark.pedantic(
        _batched_ingest(engines[False], population, size),
        rounds=3, iterations=1, warmup_rounds=1,
    )

    median = median_seconds(benchmark)
    MEDIANS[("object", RULES_PEAK, size)] = median
    report("A9", f"object-path batch ingest @ batch {size} "
                 f"({RULES_PEAK} rules, ablation)",
           "n/a (ablation)", median)


# -- sweep-width counters ------------------------------------------------------


def test_columnar_counters(setups):
    """Ledger rows for sweep *width*: atoms flipped and clauses touched
    per batch at the peak configuration (every write flips every distinct
    threshold atom, each sitting in one clause)."""
    population, engines = setups[RULES_PEAK]
    engine = engines[True]
    stats = engine.columnar_stats
    before = (stats.batches, stats.atoms_flipped, stats.clauses_touched)
    step = _batched_ingest(engine, population, BATCH_SIZE)
    for _ in range(4):
        step()
    batches = stats.batches - before[0]
    flipped = (stats.atoms_flipped - before[1]) / batches
    touched = (stats.clauses_touched - before[2]) / batches
    print(
        f"\n  [A9] per batch of {BATCH_SIZE} @ {RULES_PEAK} rules: "
        f"{flipped:.0f} atoms flipped, {touched:.0f} clauses touched"
    )
    assert flipped > 0 and touched > 0
    record_result(
        "A9", f"atoms flipped per batch @ {RULES_PEAK} rules (count)",
        flipped,
    )
    record_result(
        "A9", f"clauses touched per batch @ {RULES_PEAK} rules (count)",
        touched,
    )


# -- acceptance ----------------------------------------------------------------


def test_batch_scaling_shape():
    """Acceptance: columnar batch ingest ≥5× faster than the object path
    at the peak rule count with batch ≥64."""
    needed = [(mode, rules, BATCH_SIZE) for mode in ("columnar", "object")
              for rules in (RULE_SWEEP[0], RULES_PEAK)]
    if any(key not in MEDIANS for key in needed):
        pytest.skip("ingest sweep did not run (filtered?)")
    speedup = (
        MEDIANS[("object", RULES_PEAK, BATCH_SIZE)]
        / MEDIANS[("columnar", RULES_PEAK, BATCH_SIZE)]
    )
    print(
        f"\n  [A9] batch ingest @ {RULES_PEAK} rules: columnar "
        f"x{speedup:.1f} faster than the object path"
    )
    assert speedup >= COLUMNAR_SPEEDUP_FLOOR, (
        f"columnar path only x{speedup:.2f} over the object path at "
        f"{RULES_PEAK} rules (floor x{COLUMNAR_SPEEDUP_FLOOR:g})"
    )
