"""E1 — "Time for Retrieving Devices" (paper Sect. 5).

Paper setup: 50 virtual UPnP devices; retrieval of a specified device by
its device name took ≤ 10 ms, and by service name also ≤ 10 ms.

Rows regenerated here:

* retrieval by device name (control-point cache, the CyberLink
  ``getDevice(friendlyName)`` analogue);
* retrieval by service name;
* a cold multicast M-SEARCH + response harvest + description fetch
  (supplementary: the full protocol path on the simulated LAN).
"""

import pytest

from benchmarks.conftest import median_seconds, report
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.upnp import ssdp
from repro.upnp.control_point import ControlPoint
from repro.workloads.devices import build_device_population

DEVICE_COUNT = 50
TARGET_NAME = "thermo-025"
TARGET_SERVICE = "urn:repro:service:TemperatureSensor:1"


@pytest.fixture(scope="module")
def population():
    simulator = Simulator()
    bus = NetworkBus(simulator)
    devices = build_device_population(simulator, bus, DEVICE_COUNT)
    control_point = ControlPoint(bus, simulator, name="bench-cp")
    control_point.search(ssdp.ST_ALL)  # warm the registry
    assert len(control_point.registry) == DEVICE_COUNT
    return simulator, bus, control_point, devices


def test_retrieve_by_device_name(benchmark, population):
    _, _, control_point, _ = population

    result = benchmark(control_point.find_by_name, TARGET_NAME)

    assert result.friendly_name == TARGET_NAME
    report("E1", f"retrieve 1 of {DEVICE_COUNT} devices by device name",
           "10 ms or less", median_seconds(benchmark))
    assert median_seconds(benchmark) < 0.010  # the paper's bound holds


def test_retrieve_by_service_name(benchmark, population):
    _, _, control_point, _ = population

    result = benchmark(control_point.find_by_service, TARGET_SERVICE)

    assert len(result) > 0
    report("E1", f"retrieve devices by service name ({DEVICE_COUNT} devices)",
           "10 ms or less", median_seconds(benchmark))
    assert median_seconds(benchmark) < 0.010


def test_cold_search_protocol_path(benchmark, population):
    """Full M-SEARCH → responses → description fetch for one device."""
    simulator, bus, control_point, devices = population
    target_udn = next(d.udn for d in devices if d.friendly_name == TARGET_NAME)

    def cold_lookup():
        records = control_point.search(f"uuid:{target_udn}")
        return records[0]

    result = benchmark(cold_lookup)

    assert result.udn == target_udn
    report("E1", "cold M-SEARCH by UDN incl. description fetch",
           "(not reported; subsumed by the 10 ms bound)",
           median_seconds(benchmark))
