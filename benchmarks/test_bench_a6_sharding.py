"""A6 — cluster sharding: ingest throughput vs shard count, and the
batched/coalescing ingest bus vs per-event dispatch.

The ROADMAP's production target is millions of users; no single engine
serves that, so the cluster layer fans homes out across independent
shards.  Two shapes are measured:

* **Shard scaling** — the same fleet-wide event stream is routed to 1,
  2, 4 and 8 shards and each shard's drain is timed separately.  Shards
  share no mutable state, so in a real deployment they drain on
  separate cores; the aggregate throughput is therefore governed by the
  *critical path* — the slowest shard — which this benchmark reports.
  With homes spread by consistent hashing, the critical path shrinks
  ~linearly as shards are added.
* **Batched drain vs per-event dispatch** — a bursty stream (chatty
  sensors emitting runs of readings) through the batching/coalescing
  bus versus the per-event ablation (one scheduler callback per
  reading).  Coalescing collapses each run to its settled value, so the
  batched bus wins on exactly the streams that hurt most.

Sizes shrink under ``REPRO_BENCH_SMOKE=1`` (the CI fail-fast job); the
shape assertions adapt.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import BENCH_SMOKE, report
from repro.cluster import ClusterServer
from repro.sim.events import Simulator
from repro.workloads.fleet import build_home_fleet, fleet_event_stream

if BENCH_SMOKE:
    FLEET_HOMES, RULES_PER_HOME = 16, 40
    SHARD_SWEEP = (1, 4)
    SCALING_EVENTS, BURSTY_EVENTS = 600, 1_200
    SCALING_FLOOR = 1.6     # 16 homes hash unevenly over 4 shards
else:
    FLEET_HOMES, RULES_PER_HOME = 64, 125
    SHARD_SWEEP = (1, 2, 4, 8)
    SCALING_EVENTS, BURSTY_EVENTS = 2_000, 3_200
    SCALING_FLOOR = 4.0     # ~linear: ≥4x aggregate throughput at 8 shards

ROUNDS = 5
BURST = 16

THROUGHPUTS: dict[int, float] = {}


@pytest.fixture(scope="module")
def fleet():
    return build_home_fleet(FLEET_HOMES, RULES_PER_HOME, seed="a6-fleet")


def _build_cluster(fleet, shard_count, *, coalesce, batch=True):
    cluster = ClusterServer(
        Simulator(), shard_count=shard_count,
        coalesce=coalesce, batch=batch, max_trace=10_000,
    )
    for rule in fleet.all_rules():
        cluster.register_rule(rule, validate=False)
    # Prime every sensor once so the sweep measures steady state, not
    # the one-time "first reading of this variable" fan-out.
    for home in fleet.homes:
        for variable in fleet.sensors_by_home[home]:
            cluster.ingest(variable, 50.0)
    cluster.flush()
    # flush() only drains queues; batch=False primes are scheduled
    # directly on the simulator and must be run to apply.
    cluster.simulator.run_until(cluster.simulator.now)
    return cluster


@pytest.mark.parametrize("shard_count", SHARD_SWEEP)
def test_shard_scaling(fleet, shard_count):
    """Publish one fleet-wide stream, then time each shard's drain in
    isolation; the critical path (max shard drain) sets the aggregate
    throughput of a one-core-per-shard deployment."""
    cluster = _build_cluster(fleet, shard_count, coalesce=False)
    stream = fleet_event_stream(
        fleet, events=SCALING_EVENTS, burst=1, seed="a6-scaling"
    )
    criticals = []
    for round_index in range(ROUNDS):
        offset = 0.013 * (round_index + 1)  # every write changes value
        for variable, value in stream:
            cluster.ingest(variable, value + offset)
        shard_times = []
        for index in range(shard_count):
            start = time.perf_counter()
            cluster.bus.flush(shard=index)
            shard_times.append(time.perf_counter() - start)
        criticals.append(max(shard_times))
    criticals.sort()
    critical = criticals[len(criticals) // 2]
    throughput = SCALING_EVENTS / critical
    THROUGHPUTS[shard_count] = throughput
    # Measured throughput goes in the printed context, never the row
    # label: ledger rows are keyed by (experiment, row, config), and a
    # value-bearing label would mint a fresh key every rerun.
    report(
        "A6",
        f"ingest critical path @ {shard_count} shards "
        f"({FLEET_HOMES} homes, {fleet.total_rules} rules)",
        f"n/a (scaling experiment; {throughput:,.0f} events/s aggregate)",
        critical,
    )
    cluster.shutdown()


def test_shard_scaling_shape():
    """Acceptance: aggregate ingest throughput grows ~linearly with the
    shard count (within consistent-hash balance), because shards share
    nothing and the critical path shrinks with the largest home share."""
    if any(count not in THROUGHPUTS for count in SHARD_SWEEP):
        pytest.skip("shard sweep did not run (filtered?)")
    base = THROUGHPUTS[SHARD_SWEEP[0]]
    top = THROUGHPUTS[SHARD_SWEEP[-1]]
    ratio = top / base
    print(
        f"\n  [A6] aggregate throughput scaling "
        f"{SHARD_SWEEP[0]} -> {SHARD_SWEEP[-1]} shards: x{ratio:.2f}"
    )
    assert ratio >= SCALING_FLOOR, (
        f"aggregate throughput grew only x{ratio:.2f} from "
        f"{SHARD_SWEEP[0]} to {SHARD_SWEEP[-1]} shards "
        f"(floor x{SCALING_FLOOR:.1f})"
    )
    for small, large in zip(SHARD_SWEEP, SHARD_SWEEP[1:]):
        assert THROUGHPUTS[large] > THROUGHPUTS[small], (
            f"throughput did not improve from {small} to {large} shards"
        )


def test_batched_drain_beats_per_event_dispatch(fleet):
    """Acceptance: on bursty streams the batching/coalescing bus beats
    per-event dispatch (one simulator callback per reading)."""
    shard_count = SHARD_SWEEP[-1] // 2 or 1
    batched = _build_cluster(fleet, shard_count, coalesce=True, batch=True)
    per_event = _build_cluster(fleet, shard_count, coalesce=False, batch=False)
    stream = fleet_event_stream(
        fleet, events=BURSTY_EVENTS, burst=BURST, seed="a6-bursty"
    )

    def run(cluster, offset):
        start = time.perf_counter()
        for variable, value in stream:
            cluster.ingest(variable, value + offset)
        cluster.flush()
        simulator = cluster.simulator
        simulator.run_until(simulator.now)  # settles per-event dispatches
        return time.perf_counter() - start

    batched_times, per_event_times = [], []
    for round_index in range(ROUNDS):
        offset = 0.013 * (round_index + 1)
        batched_times.append(run(batched, offset))
        per_event_times.append(run(per_event, offset))
    batched_times.sort()
    per_event_times.sort()
    batched_median = batched_times[len(batched_times) // 2]
    per_event_median = per_event_times[len(per_event_times) // 2]
    speedup = per_event_median / batched_median

    stats = batched.stats()
    report(
        "A6",
        f"batched+coalesced drain, bursts of {BURST}",
        f"n/a (bus ablation; applied {stats.applied}/{stats.published} "
        "writes)",
        batched_median,
    )
    report(
        "A6",
        f"per-event dispatch, bursts of {BURST}",
        f"n/a (bus ablation; x{speedup:.2f} slower than batched)",
        per_event_median,
    )
    batched.shutdown()
    per_event.shutdown()

    assert stats.coalesced > 0, "bursty stream never coalesced a write"
    assert speedup >= 1.3, (
        f"batched drain only x{speedup:.2f} vs per-event dispatch "
        "(expected a clear win on bursty streams)"
    )
