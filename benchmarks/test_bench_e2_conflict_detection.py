"""E2 — "Time for Detecting Conflicting Rules" (paper Sect. 5).

Paper setup: 10,000 registered rules; 100 of them specify the same
device in their action parts; each condition is a logical product of two
inequalities, so each pairwise check evaluates a product of four
inequalities.  Paper results: same-device extraction ≤ 10 ms; evaluating
the 4-inequality product 100 times ≈ 0.2 ms (C Simplex library).

Rows regenerated here:

* step 1 — indexed extraction of the 100 same-device rules;
* steps 2-3 — 100 joint-satisfiability checks (interval fast path, the
  default), and the same with the Simplex backend (the paper's method);
* the complete registration-time check (extraction + all checks).
"""

import pytest

from benchmarks.conftest import median_seconds, report
from repro.core.conflict import ConflictChecker
from repro.core.satisfiability import conditions_jointly_satisfiable
from repro.workloads.rules import build_rule_population

TOTAL_RULES = 10_000
SAME_DEVICE = 100


@pytest.fixture(scope="module")
def population():
    return build_rule_population(TOTAL_RULES, SAME_DEVICE)


def test_extract_same_device_rules(benchmark, population):
    checker = ConflictChecker(population.database)

    extracted = benchmark(
        checker.extract_same_device_rules, population.probe_rule
    )

    assert len(extracted) == SAME_DEVICE
    report("E2", f"extract {SAME_DEVICE} same-device rules out of "
                 f"{TOTAL_RULES:,}",
           "10 ms or less", median_seconds(benchmark))
    assert median_seconds(benchmark) < 0.010


@pytest.mark.parametrize("prefer_intervals,label", [
    (True, "interval fast path"),
    (False, "two-phase Simplex (the paper's method)"),
])
def test_hundred_pairwise_checks(benchmark, population, prefer_intervals,
                                 label):
    checker = ConflictChecker(population.database,
                              prefer_intervals=prefer_intervals)
    probe = population.probe_rule
    extracted = checker.extract_same_device_rules(probe)
    assert len(extracted) == SAME_DEVICE

    def run_checks():
        hits = 0
        for existing in extracted:
            if conditions_jointly_satisfiable(
                probe.condition, existing.condition,
                prefer_intervals=prefer_intervals,
            ):
                hits += 1
        return hits

    hits = benchmark(run_checks)

    assert 0 <= hits <= SAME_DEVICE
    report("E2", f"evaluate 100 products of 4 inequalities — {label}",
           "about 0.2 ms (C library)", median_seconds(benchmark))


def test_full_registration_check(benchmark, population):
    checker = ConflictChecker(population.database)

    reports = benchmark(checker.find_conflicts, population.probe_rule)

    assert isinstance(reports, list)
    report("E2", "full registration-time conflict check "
                 "(extraction + satisfiability + effect comparison)",
           "≈ extraction + 0.2 ms", median_seconds(benchmark))
