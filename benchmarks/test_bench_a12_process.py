"""A12 — out-of-process shards: aggregate ingest throughput of worker
processes vs the in-thread cluster, and the wire codec's overhead.

The GIL caps the in-thread cluster at one core no matter how many
shards it runs; ``backend="process"`` moves each shard into its own
worker process behind the framed wire protocol, so shard drains
overlap on real cores.  Two shapes are measured:

* **Worker scaling** — the same fleet stream fed through 1, 2, 4 and 8
  worker processes (and the in-thread twin at the same shard counts).
  Feeding is one-way pipelined BATCH frames; the timed section closes
  with the counter barrier, so it covers serialization, transport and
  every worker's apply.  The ≥3x-at-4-workers acceptance assertion is
  **gated on the runner actually having ≥4 cores** (and skipped in
  smoke runs): on fewer cores the workers time-slice one core and no
  scaling is physically available — rows are still recorded so the
  ledger shows the single-core shape honestly.
* **Wire codec overhead** — encode+decode of realistic ingest batches
  (steady state: key table warm after the first batch) against the
  columnar apply cost of those same batches on a rule-loaded shard.
  Acceptance (asserted on every runner): codec ≤15% of apply — the
  protocol must never dominate the work it ships.

Sizes shrink under ``REPRO_BENCH_SMOKE=1`` (the CI fail-fast job).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import BENCH_SMOKE, report
from repro.cluster import ClusterServer
from repro.cluster.shard import EngineShard
from repro.cluster.wire import FrameReader, WireDecoder, WireEncoder
from repro.sim.events import Simulator
from repro.workloads.fleet import build_home_fleet, fleet_event_stream

if BENCH_SMOKE:
    FLEET_HOMES, RULES_PER_HOME = 8, 25
    WORKER_SWEEP = (1, 2)
    SCALING_EVENTS = 400
    CODEC_BATCHES, CODEC_BATCH_SIZE = 40, 128
else:
    FLEET_HOMES, RULES_PER_HOME = 32, 60
    WORKER_SWEEP = (1, 2, 4, 8)
    SCALING_EVENTS = 1_600
    CODEC_BATCHES, CODEC_BATCH_SIZE = 200, 256

ROUNDS = 5
SCALING_FLOOR = 3.0       # process backend, 1 -> 4 workers, ≥4 cores
CODEC_CEILING = 0.15      # encode+decode ≤15% of columnar apply

THROUGHPUTS: dict[tuple[str, int], float] = {}


@pytest.fixture(scope="module")
def fleet():
    return build_home_fleet(FLEET_HOMES, RULES_PER_HOME, seed="a12-fleet")


def _build_cluster(fleet, shard_count, backend):
    cluster = ClusterServer(
        Simulator(), shard_count=shard_count, backend=backend,
        coalesce=False, batch=True, max_trace=None, telemetry=False,
    )
    for rule in fleet.all_rules():
        cluster.register_rule(rule, validate=False)
    for home in fleet.homes:
        for variable in fleet.sensors_by_home[home]:
            cluster.ingest(variable, 50.0)
    cluster.flush()
    return cluster


def _run_stream(cluster, stream):
    """Feed + settle, wall-clock.  flush() is the barrier on the
    process backend: it drains every queue into BATCH frames and then
    awaits every worker's counter reply, so apply time is inside."""
    times = []
    for round_index in range(ROUNDS):
        offset = 0.013 * (round_index + 1)
        start = time.perf_counter()
        for variable, value in stream:
            cluster.ingest(variable, value + offset)
        cluster.flush()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


@pytest.mark.hard_timeout(600)
@pytest.mark.parametrize("backend", ("thread", "process"))
@pytest.mark.parametrize("workers", WORKER_SWEEP)
def test_aggregate_ingest(fleet, backend, workers):
    cluster = _build_cluster(fleet, workers, backend)
    try:
        stream = fleet_event_stream(
            fleet, events=SCALING_EVENTS, burst=1, seed="a12-scaling")
        median = _run_stream(cluster, stream)
    finally:
        cluster.shutdown()
    throughput = SCALING_EVENTS / median
    THROUGHPUTS[(backend, workers)] = throughput
    unit = "workers" if backend == "process" else "shards"
    report(
        "A12",
        f"aggregate ingest, {workers} {unit} ({backend}, "
        f"{FLEET_HOMES} homes, {fleet.total_rules} rules)",
        f"n/a (distribution experiment; {throughput:,.0f} events/s "
        "aggregate)",
        median,
    )


def test_worker_scaling_shape():
    """Acceptance: ≥3x aggregate throughput at 4 workers over 1 —
    asserted only where the hardware can express it (≥4 cores, full
    size); single-core runners record the rows and skip the shape."""
    measured = [count for backend, count in THROUGHPUTS
                if backend == "process"]
    if not measured:
        pytest.skip("worker sweep did not run (filtered?)")
    base = THROUGHPUTS[("process", 1)]
    cores = os.cpu_count() or 1
    for count in sorted(set(measured) - {1}):
        ratio = THROUGHPUTS[("process", count)] / base
        print(f"\n  [A12] process scaling 1 -> {count} workers: "
              f"x{ratio:.2f} ({cores} cores)")
    if BENCH_SMOKE:
        pytest.skip("smoke sizes are too small for a stable scaling shape")
    if cores < 4 or 4 not in measured:
        pytest.skip(f"scaling acceptance needs >=4 cores (have {cores})")
    ratio = THROUGHPUTS[("process", 4)] / base
    assert ratio >= SCALING_FLOOR, (
        f"aggregate throughput grew only x{ratio:.2f} from 1 to 4 "
        f"workers on {cores} cores (floor x{SCALING_FLOOR:.1f})"
    )


@pytest.mark.hard_timeout(600)
def test_wire_codec_overhead(fleet):
    """Acceptance (every runner): encoding + decoding a batch costs
    ≤15% of applying it — measured against the columnar apply on a
    shard loaded with the fleet's rules."""
    shard = EngineShard(0, Simulator(), telemetry=None)
    for rule in fleet.all_rules():
        shard.register_rule(rule, validate=False)
    sensors = [v for home in fleet.homes
               for v in fleet.sensors_by_home[home]]
    for variable in sensors:
        shard.ingest(variable, 50.0)

    batches = []
    for index in range(CODEC_BATCHES):
        base = 20.0 + (index % 7)
        batches.append([
            (sensors[(index * 31 + slot) % len(sensors)],
             base + 0.013 * slot)
            for slot in range(CODEC_BATCH_SIZE)
        ])

    encoder, decoder, frames = WireEncoder(), WireDecoder(), FrameReader()

    def codec_pass():
        start = time.perf_counter()
        for t, batch in enumerate(batches):
            frames.feed(encoder.encode_batch(float(t), batch))
            for _frame_type, payload in frames.frames():
                decoder.decode_batch(payload)
        return time.perf_counter() - start

    def apply_pass(offset):
        start = time.perf_counter()
        for batch in batches:
            shard.ingest_batch([(variable, value + offset)
                                for variable, value in batch])
        return time.perf_counter() - start

    codec_pass()  # warm the key table: steady state is the fair shape
    codec_times, apply_times = [], []
    for round_index in range(ROUNDS):
        codec_times.append(codec_pass())
        apply_times.append(apply_pass(0.013 * (round_index + 1)))
    codec_times.sort()
    apply_times.sort()
    codec_median = codec_times[len(codec_times) // 2]
    apply_median = apply_times[len(apply_times) // 2]
    ratio = codec_median / apply_median

    per_batch = codec_median / CODEC_BATCHES
    report(
        "A12",
        f"wire codec encode+decode, batch of {CODEC_BATCH_SIZE}",
        f"n/a (codec overhead; {ratio * 100:.1f}% of columnar apply)",
        per_batch,
    )
    report(
        "A12",
        f"columnar batch apply, batch of {CODEC_BATCH_SIZE} "
        f"({fleet.total_rules} rules)",
        "n/a (codec overhead baseline)",
        apply_median / CODEC_BATCHES,
    )
    shard.shutdown()
    assert ratio <= CODEC_CEILING, (
        f"wire codec costs {ratio * 100:.1f}% of the columnar apply "
        f"(ceiling {CODEC_CEILING * 100:.0f}%)"
    )
