#!/usr/bin/env python
"""Device privileges: the paper's Sect. 6 security extension, working.

The paper closes with: "we are going to implement in our framework some
security mechanisms, e.g., for limiting access or allowable operations
to each device depending on users' privileges."  This example shows the
implemented extension:

* Tom (the kid) may only turn the TV **off**, never on;
* the entrance-door lock answers to Alan and Emily only;
* everything else stays open.

Enforcement happens twice — at registration (bad rules never enter the
database) and at dispatch (defence in depth for imported rules).

Run:  python examples/privileged_devices.py
"""

from repro.cadel.binding import HomeDirectory
from repro.core.access import AccessDeniedError
from repro.core.server import HomeServer
from repro.home import build_demo_home
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.support.authoring import AuthoringSession


def main() -> None:
    simulator = Simulator()
    bus = NetworkBus(simulator)
    server = HomeServer(simulator, bus)
    home = build_demo_home(simulator, bus, event_sink=server.post_event)
    server.discover()

    directory = HomeDirectory(
        users=list(home.locator.residents),
        locator_udn=home.locator.udn,
        epg_udn=home.epg.udn,
    )
    sessions = {
        name: AuthoringSession(server, name, directory)
        for name in ("Tom", "Alan", "Emily")
    }

    # -- install the household policy ------------------------------------------
    server.access.grant("Tom", home.tv.udn, actions={"TurnOff"})
    server.access.grant("Alan", home.tv.udn)
    server.access.grant("Emily", home.tv.udn)
    server.access.grant("Alan", home.door.udn)
    server.access.grant("Emily", home.door.udn)
    print("policy installed:")
    print("  TV:    Tom may only TurnOff; Alan and Emily unrestricted")
    print("  door:  Alan and Emily only")
    print("  all other devices: open\n")

    # -- Tom tries to claim the TV ------------------------------------------------
    try:
        sessions["Tom"].submit(
            "If I am in the living room, turn on the TV",
            rule_name="tom-tv-on",
        )
    except AccessDeniedError as exc:
        print(f"registration rejected: {exc}")

    # ...but his curfew rule (turning it OFF) is within his privileges:
    outcome = sessions["Tom"].submit(
        "After 22:00, if the TV is turned on, turn off the TV",
        rule_name="tom-tv-curfew",
    )
    print(f"registration accepted: {outcome.rule.describe()}")

    # -- Tom tries the door lock -----------------------------------------------------
    try:
        sessions["Tom"].submit(
            "If nobody is at the living room, unlock the entrance door",
            rule_name="tom-door",
        )
    except AccessDeniedError as exc:
        print(f"registration rejected: {exc}")

    # Emily's equivalent rule is fine:
    sessions["Emily"].submit(
        "At night, if nobody is at the hall, lock the entrance door",
        rule_name="emily-door-lock",
    )
    print("Emily's door rule registered.\n")

    # -- the privileges dialog ----------------------------------------------------------
    for name in ("Tom", "Alan"):
        grants = server.access.grants_for(name)
        rendered = ", ".join(
            f"{g.device_udn}:{sorted(g.actions)}" for g in grants
        ) or "(none — open devices only)"
        print(f"{name}'s grants: {rendered}")


if __name__ == "__main__":
    main()
