#!/usr/bin/env python
"""Multi-home quickstart: an apartment block on the cluster layer.

Three apartments share one `ClusterServer`.  Every variable and device
carries a home prefix (``"apt-2/thermo:svc:temperature"``), so the
consistent-hash router places each apartment's rules on one shard and
the batched ingest bus fans sensor bursts out per shard — the same
rules, arbitration and trace semantics as a single `HomeServer`, scaled
sideways.

The demo registers three rules per apartment (climate, presence lamp,
an evening TV pair that *conflicts* and needs a priority order) plus a
**building-wide** rule — "if any apartment overheats, start the lobby
exhaust fan" — whose condition spans every apartment: the cluster homes
it with the lobby's fan and mirrors the foreign thermometers into that
shard (PR 5's cross-shard placement).  Then it replays a chatty
evening: temperature bursts, residents moving around, one targeted
"returns home" event.  Watch the output for

* the home → shard placement map (and the lobby rule's mirror set),
* bus statistics (how many bursty writes coalesced away, how many
  fanned out to mirrors),
* each apartment's own trace slice.

The finale kills the block mid-evening and brings it back: a
`DurabilityPlane` checkpoints every shard and logs every drained batch
to a WAL, so a simulated power cut (no shutdown, no flush — the process
just dies) recovers to the exact same truth, holders and traces via
snapshot + tail replay.

Run:  python examples/apartment_block.py
"""

import shutil
import tempfile

from repro.cluster import ClusterServer, DurabilityPlane, restore_cluster
from repro.support.console import render_telemetry
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    EventAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

APARTMENTS = ("apt-1", "apt-2", "apt-3")


def temp(home: str) -> str:
    return f"{home}/thermo:svc:temperature"


def place(home: str) -> str:
    return f"{home}/locator:svc:place"


def hotter_than(home: str, bound: float) -> NumericAtom:
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(temp(home)), Relation.GT, bound),
        text=f"{home} temperature is higher than {bound:g} degrees",
    )


def command(home: str, device: str, action: str, **settings) -> ActionSpec:
    return ActionSpec(
        device_udn=f"{home}/{device}", device_name=f"{home} {device}",
        service_id="svc", action_name=action,
        settings=tuple(Setting(k, v) for k, v in settings.items()),
    )


def apartment_rules(home: str) -> list[Rule]:
    evening = TimeWindowAtom(hhmm(17), hhmm(22), label="in the evening")
    return [
        Rule(name=f"{home}-cool", owner="resident",
             condition=hotter_than(home, 27.0),
             action=command(home, "aircon", "On", temperature=25),
             stop_action=command(home, "aircon", "Off")),
        Rule(name=f"{home}-lamp", owner="resident",
             condition=DiscreteAtom(place(home), "living room"),
             action=command(home, "lamp", "On", level=70)),
        Rule(name=f"{home}-kid-cartoons", owner="kid",
             condition=AndCondition([evening,
                                     DiscreteAtom(place(home),
                                                  "living room")]),
             action=command(home, "tv", "Show", channel="cartoons")),
        Rule(name=f"{home}-news", owner="parent",
             condition=AndCondition([evening,
                                     EventAtom("returns home")]),
             action=command(home, "tv", "Show", channel="news")),
    ]


def building_rule() -> Rule:
    """The building-wide rule: its condition reads every apartment's
    thermometer but its fan lives in the lobby — homed with the fan,
    apartments mirrored in."""
    return Rule(
        name="lobby-exhaust", owner="superintendent",
        condition=OrCondition([hotter_than(home, 28.5)
                               for home in APARTMENTS]),
        action=command("lobby", "exhaust-fan", "On", speed=3),
        stop_action=command("lobby", "exhaust-fan", "Off"),
    )


def all_rules() -> list[Rule]:
    return [rule for home in APARTMENTS
            for rule in apartment_rules(home)] + [building_rule()]


def tv_orders() -> list[PriorityOrder]:
    # Both TV rules contest the same set: the parent outranks the kid.
    return [PriorityOrder(f"{home}/tv", ("parent", "kid"))
            for home in APARTMENTS]


def main() -> None:
    simulator = Simulator()
    commands: list[str] = []
    cluster = ClusterServer(
        simulator, shard_count=2,
        dispatch=lambda spec: commands.append(spec.describe()),
    )

    conflicts = 0
    for rule in all_rules():
        conflicts += len(cluster.register_rule(rule))
    for order in tv_orders():
        cluster.add_priority_order(order)
    print(f"registered {cluster.rule_count()} rules across "
          f"{len(APARTMENTS)} apartments + the lobby "
          f"({conflicts} registration conflicts arbitrated by priority):")
    for home in APARTMENTS + ("lobby",):
        shard = cluster.router.shard_of_key(home)
        print(f"  {home} -> shard {shard}")
    lobby_shard = cluster.shards[cluster.shard_of_rule("lobby-exhaust")]
    print(f"  lobby-exhaust mirrors "
          f"{len(lobby_shard.mirrors_of_rule('lobby-exhaust'))} foreign "
          "thermometers into the lobby's shard "
          f"(reads {len(cluster.mirrors_of_rule('lobby-exhaust'))} "
          "foreign variables in total)")

    # An evening: start at 18:00, residents at home, a heat wave in
    # bursts (chatty sensors), and one targeted arrival event.
    simulator.run_until(hhmm(18))
    for home in APARTMENTS:
        cluster.ingest(place(home), "living room")
    for step in range(40):          # 10 bursty readings per apartment+
        home = APARTMENTS[step % 3]
        cluster.ingest(temp(home), 26.0 + 0.2 * (step % 14))
    cluster.post_event("returns home", "parent", home="apt-2")
    cluster.flush()

    print(f"\nbus: {cluster.stats().describe()}")
    for line in cluster.describe_shards():
        print(f"  {line}")

    # The observability plane: per-shard health (ingest latency
    # percentiles, queue depth, tick/wake/churn counters) merged into a
    # cluster aggregate — the same snapshot ClusterServer.telemetry()
    # serves as JSON and ClusterServer.prometheus() as scrape text.
    print("\ntelemetry:")
    for line in render_telemetry(cluster.telemetry()).splitlines():
        print(f"  {line}")

    print("\nper-apartment traces (+ the lobby's):")
    for home in APARTMENTS + ("lobby",):
        print(f"  {home}:")
        for entry in cluster.trace(home=home):
            print(f"    {entry.describe()}")

    holder = cluster.holder_of("apt-2/tv")
    print(f"\napt-2 TV holder: {holder[0] if holder else 'nobody'} "
          "(the parent's arrival preempted the cartoons for the news "
          "flash, then the standing cartoons rule won the TV back)")
    lobby_fired = sum(1 for entry in cluster.trace(home="lobby")
                      if entry.kind == "fire")
    print(f"lobby exhaust fan fired {lobby_fired}x during the heat "
          "wave — the apartment spikes reached the building rule "
          "through its mirrors (mirrored writes are never coalesced, "
          "so no spike can be merged away)")
    print(f"dispatched {len(commands)} device commands, e.g. "
          f"{commands[0]!r}")

    # -- power cut and recovery ------------------------------------------------
    # Attach the durability plane mid-evening (the attach takes the
    # first checkpoint), let one more heat spike land as a WAL tail
    # past it, then cut the power: no shutdown, no flush — recovery
    # only gets what already hit disk.
    state_dir = tempfile.mkdtemp(prefix="apartment-block-")
    cluster.attach_durability(DurabilityPlane(state_dir))
    for step in range(12):
        home = APARTMENTS[step % 3]
        cluster.ingest(temp(home), 28.0 + 0.25 * (step % 6))
    cluster.flush()
    before_traces = {
        home: [entry.describe() for entry in cluster.trace(home=home)]
        for home in APARTMENTS + ("lobby",)
    }
    before_holder = cluster.holder_of("apt-2/tv")

    replayed: list[str] = []
    revived, recovery = restore_cluster(
        state_dir, Simulator(), all_rules(),
        priority_orders=tv_orders(),
        dispatch=lambda spec: replayed.append(spec.describe()),
    )
    print(f"\npower cut; recovered: {recovery.describe()}")
    after_traces = {
        home: [entry.describe() for entry in revived.trace(home=home)]
        for home in APARTMENTS + ("lobby",)
    }
    assert recovery.ok(), "recovery dropped rules or truncated a WAL"
    assert after_traces == before_traces, "traces diverged across the crash"
    after_holder = revived.holder_of("apt-2/tv")
    assert (before_holder is None) == (after_holder is None)
    assert before_holder is None or before_holder[0] == after_holder[0]
    tail = sum(shard.records_replayed for shard in recovery.shards)
    print(f"  snapshot overlay + {tail} WAL records replayed; every "
          "apartment's trace, rule truth and device holder came back "
          "bit-identical")
    print(f"  replay re-dispatched {len(replayed)} commands "
          "(at-least-once at the actuators, exactly-once for rule state)")

    revived.shutdown()
    cluster.shutdown()
    shutil.rmtree(state_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
