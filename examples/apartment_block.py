#!/usr/bin/env python
"""Multi-home quickstart: an apartment block on the cluster layer.

Three apartments share one `ClusterServer`.  Every variable and device
carries a home prefix (``"apt-2/thermo:svc:temperature"``), so the
consistent-hash router places each apartment's rules on one shard and
the batched ingest bus fans sensor bursts out per shard — the same
rules, arbitration and trace semantics as a single `HomeServer`, scaled
sideways.

The demo registers three rules per apartment (climate, presence lamp,
an evening TV pair that *conflicts* and needs a priority order) plus a
**building-wide** rule — "if any apartment overheats, start the lobby
exhaust fan" — whose condition spans every apartment: the cluster homes
it with the lobby's fan and mirrors the foreign thermometers into that
shard (PR 5's cross-shard placement).  Then it replays a chatty
evening: temperature bursts, residents moving around, one targeted
"returns home" event.  Watch the output for

* the home → shard placement map (and the lobby rule's mirror set),
* bus statistics (how many bursty writes coalesced away, how many
  fanned out to mirrors),
* each apartment's own trace slice.

Run:  python examples/apartment_block.py
"""

from repro.cluster import ClusterServer
from repro.support.console import render_telemetry
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    EventAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

APARTMENTS = ("apt-1", "apt-2", "apt-3")


def temp(home: str) -> str:
    return f"{home}/thermo:svc:temperature"


def place(home: str) -> str:
    return f"{home}/locator:svc:place"


def hotter_than(home: str, bound: float) -> NumericAtom:
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(temp(home)), Relation.GT, bound),
        text=f"{home} temperature is higher than {bound:g} degrees",
    )


def command(home: str, device: str, action: str, **settings) -> ActionSpec:
    return ActionSpec(
        device_udn=f"{home}/{device}", device_name=f"{home} {device}",
        service_id="svc", action_name=action,
        settings=tuple(Setting(k, v) for k, v in settings.items()),
    )


def apartment_rules(home: str) -> list[Rule]:
    evening = TimeWindowAtom(hhmm(17), hhmm(22), label="in the evening")
    return [
        Rule(name=f"{home}-cool", owner="resident",
             condition=hotter_than(home, 27.0),
             action=command(home, "aircon", "On", temperature=25),
             stop_action=command(home, "aircon", "Off")),
        Rule(name=f"{home}-lamp", owner="resident",
             condition=DiscreteAtom(place(home), "living room"),
             action=command(home, "lamp", "On", level=70)),
        Rule(name=f"{home}-kid-cartoons", owner="kid",
             condition=AndCondition([evening,
                                     DiscreteAtom(place(home),
                                                  "living room")]),
             action=command(home, "tv", "Show", channel="cartoons")),
        Rule(name=f"{home}-news", owner="parent",
             condition=AndCondition([evening,
                                     EventAtom("returns home")]),
             action=command(home, "tv", "Show", channel="news")),
    ]


def main() -> None:
    simulator = Simulator()
    commands: list[str] = []
    cluster = ClusterServer(
        simulator, shard_count=2,
        dispatch=lambda spec: commands.append(spec.describe()),
    )

    conflicts = 0
    for home in APARTMENTS:
        for rule in apartment_rules(home):
            conflicts += len(cluster.register_rule(rule))
        # Both TV rules contest the same set: the parent outranks the kid.
        cluster.add_priority_order(
            PriorityOrder(f"{home}/tv", ("parent", "kid"))
        )
    # The building-wide rule: its condition reads every apartment's
    # thermometer but its fan lives in the lobby — homed with the fan,
    # apartments mirrored in.
    lobby_fan = Rule(
        name="lobby-exhaust", owner="superintendent",
        condition=OrCondition([hotter_than(home, 28.5)
                               for home in APARTMENTS]),
        action=command("lobby", "exhaust-fan", "On", speed=3),
        stop_action=command("lobby", "exhaust-fan", "Off"),
    )
    cluster.register_rule(lobby_fan)
    print(f"registered {cluster.rule_count()} rules across "
          f"{len(APARTMENTS)} apartments + the lobby "
          f"({conflicts} registration conflicts arbitrated by priority):")
    for home in APARTMENTS + ("lobby",):
        shard = cluster.router.shard_of_key(home)
        print(f"  {home} -> shard {shard}")
    lobby_shard = cluster.shards[cluster.shard_of_rule("lobby-exhaust")]
    print(f"  lobby-exhaust mirrors "
          f"{len(lobby_shard.mirrors_of_rule('lobby-exhaust'))} foreign "
          "thermometers into the lobby's shard "
          f"(reads {len(cluster.mirrors_of_rule('lobby-exhaust'))} "
          "foreign variables in total)")

    # An evening: start at 18:00, residents at home, a heat wave in
    # bursts (chatty sensors), and one targeted arrival event.
    simulator.run_until(hhmm(18))
    for home in APARTMENTS:
        cluster.ingest(place(home), "living room")
    for step in range(40):          # 10 bursty readings per apartment+
        home = APARTMENTS[step % 3]
        cluster.ingest(temp(home), 26.0 + 0.2 * (step % 14))
    cluster.post_event("returns home", "parent", home="apt-2")
    cluster.flush()

    print(f"\nbus: {cluster.stats().describe()}")
    for line in cluster.describe_shards():
        print(f"  {line}")

    # The observability plane: per-shard health (ingest latency
    # percentiles, queue depth, tick/wake/churn counters) merged into a
    # cluster aggregate — the same snapshot ClusterServer.telemetry()
    # serves as JSON and ClusterServer.prometheus() as scrape text.
    print("\ntelemetry:")
    for line in render_telemetry(cluster.telemetry()).splitlines():
        print(f"  {line}")

    print("\nper-apartment traces (+ the lobby's):")
    for home in APARTMENTS + ("lobby",):
        print(f"  {home}:")
        for entry in cluster.trace(home=home):
            print(f"    {entry.describe()}")

    holder = cluster.holder_of("apt-2/tv")
    print(f"\napt-2 TV holder: {holder[0] if holder else 'nobody'} "
          "(the parent's arrival preempted the cartoons for the news "
          "flash, then the standing cartoons rule won the TV back)")
    lobby_fired = sum(1 for entry in cluster.trace(home="lobby")
                      if entry.kind == "fire")
    print(f"lobby exhaust fan fired {lobby_fired}x during the heat "
          "wave — the apartment spikes reached the building rule "
          "through its mirrors (mirrored writes are never coalesced, "
          "so no spike can be merged away)")
    print(f"dispatched {len(commands)} device commands, e.g. "
          f"{commands[0]!r}")
    cluster.shutdown()


if __name__ == "__main__":
    main()
