#!/usr/bin/env python
"""Multi-user climate control: personalized words, conflict detection,
priorities, and the lookup service.

Demonstrates the paper's personalization story in isolation:

1. each resident defines *their own* "hot and stuffy" (Sect. 4.2's
   CondDef) with personal thresholds;
2. each registers an air-conditioner rule phrased with their word;
3. the framework detects the registration-time conflicts (Sect. 4.4)
   and a priority order resolves them at runtime;
4. the lookup service answers the paper's Fig. 5 queries — devices by
   sensor type, sensors by user-defined word, words by sensor.

Run:  python examples/multi_user_climate.py
"""

from repro.cadel.binding import HomeDirectory
from repro.core.server import HomeServer
from repro.home import build_demo_home
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.support.authoring import AuthoringSession
from repro.support.lookup import LookupQuery, LookupService


def main() -> None:
    simulator = Simulator()
    bus = NetworkBus(simulator)
    server = HomeServer(simulator, bus)
    home = build_demo_home(simulator, bus, event_sink=server.post_event)
    server.discover()

    directory = HomeDirectory(
        users=list(home.locator.residents),
        locator_udn=home.locator.udn,
        epg_udn=home.epg.udn,
    )
    sessions = {
        name: AuthoringSession(server, name, directory)
        for name in ("Tom", "Alan", "Emily")
    }

    # -- 1. personal word definitions ----------------------------------------
    thresholds = {"Tom": (26, 65), "Alan": (25, 60), "Emily": (29, 75)}
    for name, (temp, humid) in thresholds.items():
        sessions[name].submit(
            f"Let's call the condition that temperature is higher than "
            f'{temp} degrees and humidity is over {humid} percent '
            f'"hot and stuffy"'
        )
        print(f"{name} defined 'hot and stuffy' as > {temp} °C and "
              f"> {humid} %")

    # -- 2 & 3. rules, conflicts, priority ------------------------------------
    setpoints = {"Tom": (25, 60), "Alan": (24, 55), "Emily": (27, 65)}
    print()
    for name, (temp, humid) in setpoints.items():
        outcome = sessions[name].submit(
            f'If I am in the living room and the living room is '
            f'"hot and stuffy", turn on the air conditioner with {temp} '
            f'degrees of temperature setting and {humid} percent of '
            f'humidity setting',
            rule_name=f"{name.lower()}-climate",
        )
        if outcome.conflicts:
            for conflict in outcome.conflicts:
                print(f"  framework: {conflict.describe()}")
        else:
            print(f"  {name}'s rule registered without conflicts")

    sessions["Alan"].set_priority("air conditioner",
                                  ["Alan", "Emily", "Tom"])
    print("\npriority order on the air conditioner: Alan > Emily > Tom")

    # -- run: everyone home in a hot muggy room --------------------------------
    living = home.environment.room("living room")
    living.temperature, living.humidity = 31.0, 80.0
    for name in ("Tom", "Alan", "Emily"):
        home.household.arrive_home(name, "work", "living room")
    simulator.run_until(simulator.now + 600.0)
    holder = server.engine.holder_of(home.aircon.udn)
    print(f"everyone is home, room at 31 °C/80 % -> the air conditioner "
          f"runs {holder[0]!r} (target "
          f"{home.aircon.target_temperature:.0f} °C)")

    # -- 4. lookup-service queries (Fig. 5 / Fig. 6) -----------------------------
    lookup = LookupService(server.control_point.registry,
                           words=sessions["Tom"].words)
    print("\nlookup: devices concerning 'temperature' (sensor-type query):")
    for record in lookup.search(LookupQuery(sensor_type="temperature")):
        print(f"  - {record.friendly_name}")
    print("lookup: sensors behind the word 'hot and stuffy':")
    for record in lookup.by_word("hot and stuffy"):
        print(f"  - {record.friendly_name}")
    thermometer = server.control_point.registry.by_name("thermometer")[0]
    print(f"reverse lookup: words involving the thermometer: "
          f"{lookup.words_for_device(thermometer)}")


if __name__ == "__main__":
    main()
