#!/usr/bin/env python
"""Quickstart: one CADEL rule, end to end, in ~40 lines.

Builds the simulated home, discovers its appliances over the UPnP
substrate, registers the paper's first example rule —

    "If humidity is higher than 80 percent and temperature is higher
     than 28 degrees, turn on the air conditioner with 25 degrees of
     temperature setting."

— then makes the living room hot and muggy and watches the framework
close the loop: sensors publish, the rule fires, the air-conditioner
cools the room back down.

Run:  python examples/quickstart.py
"""

from repro.cadel.binding import HomeDirectory
from repro.core.server import HomeServer
from repro.home import build_demo_home
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.support.authoring import AuthoringSession


def main() -> None:
    simulator = Simulator()
    bus = NetworkBus(simulator)
    server = HomeServer(simulator, bus)
    home = build_demo_home(simulator, bus, event_sink=server.post_event)

    records = server.discover()
    print(f"discovered {len(records)} devices over simulated UPnP:")
    for record in sorted(records, key=lambda r: r.friendly_name):
        print(f"  - {record.friendly_name:<28} [{record.category}] "
              f"{record.location or '(whole home)'}")

    directory = HomeDirectory(
        users=list(home.locator.residents),
        locator_udn=home.locator.udn,
        epg_udn=home.epg.udn,
    )
    session = AuthoringSession(server, "Tom", directory)
    outcome = session.submit(
        "If humidity is higher than 80 percent and temperature is higher "
        "than 28 degrees, turn on the air conditioner with 25 degrees of "
        "temperature setting.",
        rule_name="quickstart-rule",
    )
    print(f"\nregistered rule: {outcome.rule.describe()}")

    living = home.environment.room("living room")
    living.temperature, living.humidity = 31.0, 85.0
    print(f"\nroom forced to {living.temperature:.1f} °C / "
          f"{living.humidity:.0f} %; simulating two hours...")
    simulator.run_until(simulator.now + 2 * 3600.0)

    print(f"air conditioner on: {home.aircon.is_on} "
          f"(target {home.aircon.target_temperature:.0f} °C)")
    print(f"room now: {living.temperature:.1f} °C / {living.humidity:.0f} %")
    print("\nengine trace:")
    for entry in server.engine.trace:
        print(f"  {entry.describe()}")


if __name__ == "__main__":
    main()
