#!/usr/bin/env python
"""The paper's Figure 1 control scenario, reproduced end to end.

Three residents (Tom, Alan, Emily) register their CADEL preferences for
the living-room stereo, TV, video recorder, lights and air-conditioner;
context-attached priority orders resolve the conflicts exactly as in
Sect. 3.1/3.2 of the paper; the evening of 17:00-20:00 then plays out:

    s1 → s'1 → s3   (stereo: Tom's jazz → headphones → Emily's movie sound)
    t2 → t3         (TV: Alan's baseball → Emily's movie)
    r2              (recorder: Alan's fallback once he loses the TV)
    l1, l3          (floor-lamp half-lighting, then fluorescent bright)
    a1 → a2 → a3    (air-conditioner: Tom's → Alan's → Emily's setpoints)

Run:  python examples/living_room_scenario.py
"""

from repro.scenarios import run_fig1_scenario


def main() -> None:
    print("running the Fig. 1 evening (simulated 17:00-20:00)...\n")
    result = run_fig1_scenario()

    print("registration-time conflicts the framework detected:")
    for line in result.registration_conflicts:
        print(f"  ! {line}")

    print("\ntime-chart (device ownership at each labelled instant):")
    for row in result.timeline_rows():
        print(f"  {row}")

    print("\nkey arbitration decisions from the engine trace:")
    interesting = ("preempt", "fallback", "conflict")
    for entry in result.trace:
        if entry.kind in interesting:
            print(f"  {entry.describe()}")

    snap = result.snapshots["18:32 Emily home"]
    print(
        f"\nat 18:32 — TV channel {snap.tv_channel:.0f} (Emily's movie), "
        f"stereo playing {snap.stereo_source!r}, recorder "
        f"{'RECORDING' if snap.recording else 'idle'} (Alan's game), "
        f"air-conditioner target {snap.aircon_target:.0f} °C (Emily's)."
    )


if __name__ == "__main__":
    main()
