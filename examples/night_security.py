#!/usr/bin/env python
"""Night security: the paper's example rules (2) and (3).

    (2) "After evening, if someone returns home and the hall is dark,
         turn on the light at the hall."
    (3) "At night, if entrance door is unlocked for 1 hour, turn on
         the alarm."

Shows two condition families the quickstart doesn't: instantaneous
events ("returns home") and duration-held conditions ("unlocked for
1 hour") with their virtual-time timers.

Run:  python examples/night_security.py
"""

from repro.cadel.binding import HomeDirectory
from repro.core.server import HomeServer
from repro.home import build_demo_home
from repro.net.bus import NetworkBus
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.support.authoring import AuthoringSession


def main() -> None:
    simulator = Simulator()
    bus = NetworkBus(simulator)
    server = HomeServer(simulator, bus)
    home = build_demo_home(simulator, bus, event_sink=server.post_event)
    server.discover()

    directory = HomeDirectory(
        users=list(home.locator.residents),
        locator_udn=home.locator.udn,
        epg_udn=home.epg.udn,
    )
    session = AuthoringSession(server, "Alan", directory)
    session.submit(
        "After evening, if someone returns home and the hall is dark, "
        "turn on the light at the hall.",
        rule_name="hall-welcome-light",
    )
    session.submit(
        "At night, if entrance door is unlocked for 1 hour, turn on the "
        "alarm.",
        rule_name="door-ajar-alarm",
    )
    print("registered the paper's example rules (2) and (3).\n")

    # -- 19:30: Alan comes home to a dark hall -------------------------------
    simulator.run_until(hhmm(19, 30))
    print(f"[{simulator.clock.timestamp()}] Alan returns home; "
          f"hall illuminance = "
          f"{home.environment.room('hall').illuminance:.0f} lux")
    home.household.arrive_home("Alan", "work", "hall")
    print(f"  -> hall light on: {home.hall_light.is_on}")

    # -- 22:00: the entrance door is left unlocked ----------------------------
    simulator.run_until(hhmm(22, 0))
    home.door.service("lock").invoke("Unlock")
    print(f"\n[{simulator.clock.timestamp()}] entrance door unlocked "
          "(and forgotten)")

    simulator.run_until(hhmm(22, 45))
    print(f"[{simulator.clock.timestamp()}] 45 minutes later: "
          f"alarm on = {home.alarm.is_on} (needs a full hour)")

    simulator.run_until(hhmm(23, 5))
    print(f"[{simulator.clock.timestamp()}] one hour and five minutes "
          f"later: alarm on = {home.alarm.is_on}")

    # -- reset and show the timer cancelling ---------------------------------
    home.alarm.service("alarm").invoke("TurnOff")
    home.door.service("lock").invoke("Lock")
    simulator.run_until(hhmm(23, 30))
    home.door.service("lock").invoke("Unlock")
    print(f"\n[{simulator.clock.timestamp()}] door unlocked again...")
    simulator.run_until(hhmm(23, 50))
    home.door.service("lock").invoke("Lock")
    print(f"[{simulator.clock.timestamp()}] ...but re-locked after 20 "
          "minutes")
    simulator.run_until(hhmm(23, 59) + 3600.0)
    print(f"alarm stayed off: {not home.alarm.is_on}")

    print("\nengine trace:")
    for entry in server.engine.trace:
        print(f"  {entry.describe()}")


if __name__ == "__main__":
    main()
