#!/usr/bin/env python
"""Lint: the evaluation core must stay importable without the obs plane.

Walks every module under ``src/repro/core/`` and fails if any imports
the ``repro.obs`` package at module top level — except the no-op facade
``repro.obs.noop``, which deliberately imports nothing and is the one
obs module core code may depend on.  Core modules instead take a
duck-typed ``telemetry`` object (or None) at construction, so the
telemetry subsystem can be absent, stubbed, or broken without taking
rule evaluation down with it.

Run:  python tools/check_obs_imports.py   (exit 1 on violations)
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

CORE = Path(__file__).resolve().parent.parent / "src" / "repro" / "core"
ALLOWED = "repro.obs.noop"


def violations_in(path: Path) -> list[str]:
    """Top-level (non-function-local) obs imports in one module, minus
    the allowed no-op facade."""
    tree = ast.parse(path.read_text(), filename=str(path))
    found: list[str] = []
    # Module top level only: an import inside a function body is lazy
    # and does not break import-without-obs; walk the module's direct
    # statements plus top-level if/try blocks (the usual guard idioms).
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.If, ast.Try)):
            stack.extend(node.body)
            stack.extend(getattr(node, "orelse", []))
            stack.extend(getattr(node, "finalbody", []))
            for handler in getattr(node, "handlers", []):
                stack.extend(handler.body)
            continue
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.name
                if name.startswith("repro.obs") and name != ALLOWED:
                    found.append(f"{path.name}:{node.lineno}: import {name}")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.obs") and module != ALLOWED:
                found.append(
                    f"{path.name}:{node.lineno}: from {module} import ..."
                )
    return found


def main() -> int:
    problems: list[str] = []
    for path in sorted(CORE.rglob("*.py")):
        problems.extend(violations_in(path))
    if problems:
        print("repro.core must not import the obs package at module top "
              f"level (only the no-op facade {ALLOWED} is allowed):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"obs-import lint: {len(list(CORE.rglob('*.py')))} core modules "
          "clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
