"""The committed benchmark ledger must satisfy the keyed-row invariants
(one row per (experiment, row, config), well-formed fields) that
``benchmarks/check_ledger.py`` enforces in CI — and the validator
itself must actually catch the failure modes it exists for."""

import json

from benchmarks.check_ledger import A10_STAGES, DEFAULT_PATH, validate_ledger


def test_committed_ledger_is_clean():
    rows = json.loads(DEFAULT_PATH.read_text())
    assert validate_ledger(rows) == []
    assert rows, "ledger unexpectedly empty"


def test_validator_flags_duplicates():
    row = {"experiment": "A1", "row": "x", "measured_ms": 1.0,
           "run": "2026-01-01T00:00:00", "config": "full"}
    errors = validate_ledger([row, dict(row)])
    assert any("duplicate" in error for error in errors)


def test_validator_flags_malformed_rows():
    assert validate_ledger({}) != []
    assert any("missing field" in error
               for error in validate_ledger([{"experiment": "A1"}]))
    bad_measure = {"experiment": "A1", "row": "x",
                   "measured_ms": float("nan"), "run": "r"}
    assert any("measured_ms" in error
               for error in validate_ledger([bad_measure]))
    bad_config = {"experiment": "A1", "row": "x", "measured_ms": 1.0,
                  "run": "r", "config": "weird"}
    assert any("config" in error for error in validate_ledger([bad_config]))


def test_smoke_and_full_rows_do_not_collide():
    base = {"experiment": "A7", "row": "x", "measured_ms": 1.0, "run": "r"}
    rows = [dict(base, config="full"), dict(base, config="smoke")]
    assert validate_ledger(rows) == []


def test_a10_stage_taxonomy_matches_the_span_recorder():
    from repro.obs.trace import STAGES

    assert A10_STAGES == STAGES


def test_validator_flags_unknown_a10_stage():
    rows = [
        {"experiment": "A10", "row": "span teleport p50 @ x", "config": "full",
         "measured_ms": 1.0, "run": "r"},
        {"experiment": "A10", "row": "telemetry-enabled batch ingest @ x",
         "config": "full", "measured_ms": 1.0, "run": "r"},
        {"experiment": "A10", "row": "telemetry-disabled batch ingest @ x",
         "config": "full", "measured_ms": 1.0, "run": "r"},
    ]
    errors = validate_ledger(rows)
    assert any("unknown stage 'teleport'" in error for error in errors)


def test_validator_flags_unpaired_a10_overhead_row():
    enabled_only = [
        {"experiment": "A10", "row": "telemetry-enabled batch ingest @ x",
         "config": "smoke", "measured_ms": 1.0, "run": "r"},
    ]
    errors = validate_ledger(enabled_only)
    assert any("missing telemetry-disabled" in error for error in errors)
    # A10 rows in one config must not demand a pair in the other.
    paired = enabled_only + [
        {"experiment": "A10", "row": "telemetry-disabled batch ingest @ x",
         "config": "smoke", "measured_ms": 1.0, "run": "r"},
    ]
    assert validate_ledger(paired) == []
