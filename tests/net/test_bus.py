"""Unit tests for the simulated network bus."""

import pytest

from repro.errors import NetworkError
from repro.net.bus import NetworkBus
from repro.net.latency import FixedLatency, JitteredLatency, ZeroLatency
from repro.net.message import Message
from repro.sim.events import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def bus(sim):
    return NetworkBus(sim)


def collect(bus, address):
    """Bind ``address`` and return the list its messages land in."""
    inbox = []
    bus.bind(address, inbox.append)
    return inbox


class TestBinding:
    def test_bind_and_send_unicast(self, sim, bus):
        inbox = collect(bus, "b")
        bus.bind("a", lambda m: None)
        bus.send(Message(source="a", destination="b", body={"x": 1}))
        sim.run()
        assert len(inbox) == 1
        assert inbox[0].body == {"x": 1}

    def test_duplicate_bind_rejected(self, bus):
        bus.bind("a", lambda m: None)
        with pytest.raises(NetworkError):
            bus.bind("a", lambda m: None)

    def test_unbind_then_rebind(self, bus):
        bus.bind("a", lambda m: None)
        bus.unbind("a")
        bus.bind("a", lambda m: None)  # no error

    def test_unbind_unknown_rejected(self, bus):
        with pytest.raises(NetworkError):
            bus.unbind("ghost")

    def test_send_to_unknown_is_silent_drop(self, sim, bus):
        bus.send(Message(source="a", destination="nowhere"))
        sim.run()
        assert bus.dropped_count == 1
        assert bus.delivered_count == 0

    def test_addresses_sorted(self, bus):
        bus.bind("b", lambda m: None)
        bus.bind("a", lambda m: None)
        assert bus.addresses() == ["a", "b"]


class TestMulticast:
    def test_group_fanout(self, sim, bus):
        inboxes = {name: collect(bus, name) for name in ("a", "b", "c")}
        for name in inboxes:
            bus.join_group(name, "grp")
        bus.bind("sender", lambda m: None)
        bus.send(Message(source="sender", destination="grp"))
        sim.run()
        assert all(len(inbox) == 1 for inbox in inboxes.values())

    def test_no_loopback_to_sender(self, sim, bus):
        inbox_a = collect(bus, "a")
        inbox_b = collect(bus, "b")
        bus.join_group("a", "grp")
        bus.join_group("b", "grp")
        bus.send(Message(source="a", destination="grp"))
        sim.run()
        assert len(inbox_a) == 0
        assert len(inbox_b) == 1

    def test_leave_group_stops_delivery(self, sim, bus):
        inbox = collect(bus, "a")
        bus.bind("s", lambda m: None)
        bus.join_group("a", "grp")
        bus.leave_group("a", "grp")
        bus.send(Message(source="s", destination="grp"))
        sim.run()
        assert inbox == []

    def test_unbind_removes_from_groups(self, sim, bus):
        bus.bind("a", lambda m: None)
        bus.join_group("a", "grp")
        bus.unbind("a")
        assert bus.group_members("grp") == []

    def test_join_requires_bound_endpoint(self, bus):
        with pytest.raises(NetworkError):
            bus.join_group("ghost", "grp")


class TestLatency:
    def test_fixed_latency_delays_delivery(self, sim):
        bus = NetworkBus(sim, latency=FixedLatency(0.5))
        arrivals = []
        bus.bind("b", lambda m: arrivals.append(sim.now))
        bus.bind("a", lambda m: None)
        bus.send(Message(source="a", destination="b"))
        sim.run()
        assert arrivals == [0.5]

    def test_zero_latency_still_asynchronous(self, sim):
        bus = NetworkBus(sim)
        delivered = []
        bus.bind("b", lambda m: delivered.append(m))
        bus.bind("a", lambda m: None)
        bus.send(Message(source="a", destination="b"))
        assert delivered == []  # not synchronous
        sim.run()
        assert len(delivered) == 1

    def test_negative_latency_rejected(self):
        with pytest.raises(NetworkError):
            FixedLatency(-0.1)

    def test_jittered_latency_within_bounds(self):
        model = JitteredLatency(base=0.1, jitter=0.05, seed=1)
        for _ in range(100):
            delay = model.delay("a", "b")
            assert 0.1 <= delay <= 0.15

    def test_jittered_latency_deterministic(self):
        first = JitteredLatency(0.1, 0.05, seed=42)
        second = JitteredLatency(0.1, 0.05, seed=42)
        assert [first.delay("a", "b") for _ in range(10)] == [
            second.delay("a", "b") for _ in range(10)
        ]


class TestFailureInjection:
    def test_drop_rate_one_drops_everything(self, sim):
        bus = NetworkBus(sim, drop_rate=1.0)
        inbox = collect(bus, "b")
        bus.bind("a", lambda m: None)
        for _ in range(20):
            bus.send(Message(source="a", destination="b"))
        sim.run()
        assert inbox == []
        assert bus.dropped_count == 20

    def test_drop_rate_partial_is_deterministic(self, sim):
        bus = NetworkBus(sim, drop_rate=0.5, seed=7)
        inbox = collect(bus, "b")
        bus.bind("a", lambda m: None)
        for _ in range(100):
            bus.send(Message(source="a", destination="b"))
        sim.run()
        delivered_first = len(inbox)
        assert 0 < delivered_first < 100

        sim2 = Simulator()
        bus2 = NetworkBus(sim2, drop_rate=0.5, seed=7)
        inbox2 = []
        bus2.bind("b", inbox2.append)
        bus2.bind("a", lambda m: None)
        for _ in range(100):
            bus2.send(Message(source="a", destination="b"))
        sim2.run()
        assert len(inbox2) == delivered_first

    def test_bad_drop_rate_rejected(self, sim):
        with pytest.raises(NetworkError):
            NetworkBus(sim, drop_rate=1.5)

    def test_delivery_to_unbound_in_flight_counts_dropped(self, sim):
        bus = NetworkBus(sim, latency=FixedLatency(1.0))
        bus.bind("b", lambda m: None)
        bus.bind("a", lambda m: None)
        bus.send(Message(source="a", destination="b"))
        bus.unbind("b")  # receiver leaves while message in flight
        sim.run()
        assert bus.dropped_count == 1


class TestMessage:
    def test_header_case_insensitive(self):
        msg = Message(source="a", destination="b", headers={"Content-Type": "x"})
        assert msg.header("content-type") == "x"
        assert msg.header("CONTENT-TYPE") == "x"

    def test_header_default(self):
        msg = Message(source="a", destination="b")
        assert msg.header("missing", "dflt") == "dflt"

    def test_reply_swaps_addresses(self):
        msg = Message(source="a", destination="b")
        reply = msg.reply({"METHOD": "OK"})
        assert reply.source == "b"
        assert reply.destination == "a"

    def test_message_ids_unique(self):
        first = Message(source="a", destination="b")
        second = Message(source="a", destination="b")
        assert first.message_id != second.message_id
