"""Tests for room physics and the environment tick."""

import pytest

from repro.errors import HomeModelError
from repro.home.environment import (
    Environment,
    Room,
    default_daylight,
    default_outdoor_humidity,
    default_outdoor_temperature,
)
from repro.sim.clock import hhmm
from repro.sim.events import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def env(sim):
    environment = Environment(sim, tick_period=60.0)
    environment.add_room(Room("living room", temperature=22.0, humidity=55.0))
    return environment


class TestRooms:
    def test_room_validation(self):
        with pytest.raises(HomeModelError):
            Room("")
        with pytest.raises(HomeModelError):
            Room("x", volume_factor=0.0)

    def test_duplicate_room_rejected(self, env):
        with pytest.raises(HomeModelError):
            env.add_room(Room("living room"))

    def test_unknown_room_raises(self, env):
        with pytest.raises(HomeModelError):
            env.room("attic")

    def test_bad_tick_period(self, sim):
        with pytest.raises(HomeModelError):
            Environment(sim, tick_period=0.0)


class TestDynamics:
    def test_temperature_drifts_toward_ambient(self, sim, env):
        env.outdoor_temperature = lambda tod: 35.0
        env.outdoor_humidity = lambda tod: 55.0
        room = env.room("living room")
        start = room.temperature
        env.start()
        sim.run_until(2 * 3600.0)
        assert room.temperature > start
        assert room.temperature < 35.0  # asymptotic, not instant

    def test_humidity_clamped(self, sim, env):
        env.outdoor_humidity = lambda tod: 150.0  # absurd ambient
        env.start()
        sim.run_until(48 * 3600.0)
        assert env.room("living room").humidity <= 100.0

    def test_climate_actor_pulls_to_setpoint(self, sim, env):
        class FixedCooler:
            def climate_effect(self, room, dt):
                room.temperature += (20.0 - room.temperature) * min(
                    1.0, 2.0 * dt / 3600.0
                )

        env.outdoor_temperature = lambda tod: 30.0
        env.add_climate_actor("living room", FixedCooler())
        env.start()
        sim.run_until(6 * 3600.0)
        # Equilibrium sits between ambient pull and cooler pull, below
        # the no-cooler value.
        assert env.room("living room").temperature < 25.0

    def test_light_actor_adds_illuminance(self, sim, env):
        class FixedLamp:
            def light_output(self, room):
                return 123.0

        env.daylight = lambda tod: 0.0
        env.add_light_actor("living room", FixedLamp())
        env.start()
        sim.run_until(60.0)
        assert env.room("living room").illuminance == 123.0

    def test_windowless_room_gets_no_daylight(self, sim):
        environment = Environment(sim, tick_period=60.0)
        environment.add_room(Room("cave", has_window=False))
        environment.daylight = lambda tod: 400.0
        environment.start()
        sim.run_until(60.0)
        assert environment.room("cave").illuminance == 0.0

    def test_sensors_sampled_each_tick(self, sim, env):
        samples = []

        class Probe:
            def sample(self):
                samples.append(sim.now)

        env.add_sensor(Probe())
        env.start()
        sim.run_until(300.0)
        assert samples == [60.0, 120.0, 180.0, 240.0, 300.0]

    def test_stop_halts_ticks(self, sim, env):
        env.start()
        sim.run_until(120.0)
        env.stop()
        room = env.room("living room")
        temp = room.temperature
        sim.run_until(7200.0)
        assert room.temperature == temp


class TestAmbientProfiles:
    def test_outdoor_temperature_peaks_afternoon(self):
        assert default_outdoor_temperature(hhmm(14)) > \
            default_outdoor_temperature(hhmm(4))

    def test_outdoor_humidity_antiphase(self):
        assert default_outdoor_humidity(hhmm(4)) > \
            default_outdoor_humidity(hhmm(14))

    def test_daylight_zero_at_night(self):
        assert default_daylight(hhmm(2)) == 0.0
        assert default_daylight(hhmm(22)) == 0.0

    def test_daylight_positive_at_midday(self):
        assert default_daylight(hhmm(13)) > 400.0
