"""Tests for the appliance models: actions, state, physical feedback."""

import pytest

from repro.errors import UPnPError
from repro.home.appliances import (
    AirConditioner,
    Alarm,
    DoorLock,
    ElectricFan,
    Lamp,
    Stereo,
    Television,
    VideoRecorder,
)
from repro.home.environment import Room


class TestTelevision:
    def test_turn_on_with_channel_and_volume(self):
        tv = Television()
        tv.service("power").invoke("TurnOn", {"channel": 7, "volume": 40})
        assert tv.is_on
        assert tv.channel == 7.0
        assert tv.get_state("power", "volume") == 40.0

    def test_turn_on_defaults_keep_previous_channel(self):
        tv = Television()
        tv.service("power").invoke("SetChannel", {"channel": 3})
        tv.service("power").invoke("TurnOn")
        assert tv.channel == 3.0

    def test_turn_off(self):
        tv = Television()
        tv.service("power").invoke("TurnOn")
        tv.service("power").invoke("TurnOff")
        assert not tv.is_on

    def test_channel_range_enforced(self):
        tv = Television()
        with pytest.raises(UPnPError):
            tv.service("power").invoke("TurnOn", {"channel": 10_000})


class TestStereo:
    def test_play_music_full_config(self):
        stereo = Stereo()
        stereo.service("player").invoke(
            "PlayMusic",
            {"genre": "jazz", "volume": 25, "output": "headphones",
             "source": "music"},
        )
        assert stereo.is_on
        assert stereo.get_state("player", "genre") == "jazz"
        assert stereo.output == "headphones"

    def test_set_output_while_playing(self):
        stereo = Stereo()
        stereo.service("player").invoke("PlayMusic", {"genre": "jazz"})
        stereo.service("player").invoke("SetOutput", {"output": "headphones"})
        assert stereo.is_on and stereo.output == "headphones"

    def test_invalid_output_rejected(self):
        stereo = Stereo()
        with pytest.raises(UPnPError):
            stereo.service("player").invoke("SetOutput",
                                            {"output": "megaphone"})

    def test_stop(self):
        stereo = Stereo()
        stereo.service("player").invoke("PlayMusic", {})
        stereo.service("player").invoke("Stop")
        assert not stereo.is_on


class TestAirConditioner:
    def test_setpoints(self):
        aircon = AirConditioner()
        aircon.service("climate").invoke(
            "TurnOn", {"temperature": 24, "humidity": 50, "mode": "cool"}
        )
        assert aircon.is_on
        assert aircon.target_temperature == 24.0
        assert aircon.target_humidity == 50.0

    def test_climate_effect_pulls_room(self):
        room = Room("r", temperature=30.0, humidity=70.0)
        aircon = AirConditioner(room=room)
        aircon.service("climate").invoke(
            "TurnOn", {"temperature": 24, "humidity": 50}
        )
        for _ in range(60):
            aircon.climate_effect(room, 60.0)
        assert room.temperature < 27.0
        assert room.humidity < 62.0

    def test_no_effect_when_off(self):
        room = Room("r", temperature=30.0)
        aircon = AirConditioner(room=room)
        aircon.climate_effect(room, 3600.0)
        assert room.temperature == 30.0

    def test_setpoint_range_enforced(self):
        aircon = AirConditioner()
        with pytest.raises(UPnPError):
            aircon.service("climate").invoke("TurnOn", {"temperature": 5})


class TestLamp:
    def test_turn_on_full_by_default(self):
        lamp = Lamp("lamp")
        lamp.service("power").invoke("TurnOn")
        assert lamp.is_on and lamp.level == 100.0

    def test_half_lighting(self):
        lamp = Lamp("lamp", max_lux=150.0)
        lamp.service("power").invoke("TurnOn", {"level": 50})
        assert lamp.level == 50.0
        assert lamp.light_output(Room("r")) == 75.0

    def test_off_contributes_nothing(self):
        lamp = Lamp("lamp")
        assert lamp.light_output(Room("r")) == 0.0

    def test_dim_preserves_power_state(self):
        lamp = Lamp("lamp")
        lamp.service("power").invoke("TurnOn")
        lamp.service("power").invoke("Dim", {"level": 20})
        assert lamp.is_on and lamp.level == 20.0


class TestRecorderAlarmDoorFan:
    def test_recorder_records_program(self):
        recorder = VideoRecorder()
        recorder.service("recorder").invoke(
            "Record", {"channel": 4, "program": "baseball"}
        )
        assert recorder.is_recording
        assert recorder.get_state("recorder", "program") == "baseball"
        recorder.service("recorder").invoke("Stop")
        assert not recorder.is_recording

    def test_alarm_toggles(self):
        alarm = Alarm()
        alarm.service("alarm").invoke("TurnOn")
        assert alarm.is_on
        alarm.service("alarm").invoke("TurnOff")
        assert not alarm.is_on

    def test_door_open_unlocks_first(self):
        door = DoorLock()
        assert door.is_locked
        door.service("lock").invoke("Open")
        assert door.is_open and not door.is_locked

    def test_door_lock_closes(self):
        door = DoorLock()
        door.service("lock").invoke("Open")
        door.service("lock").invoke("Lock")
        assert door.is_locked and not door.is_open

    def test_fan_cools_mildly(self):
        room = Room("r", temperature=30.0)
        fan = ElectricFan()
        fan.service("fan").invoke("TurnOn", {"speed": 100})
        fan.climate_effect(room, 3600.0)
        assert 29.3 < room.temperature < 30.0
