"""Tests for sensor models, the EPG feed and resident avatars."""

import pytest

from repro.errors import HomeModelError
from repro.home.environment import Room
from repro.home.residents import Household
from repro.home.sensors import (
    EPGFeed,
    Hygrometer,
    LightSensor,
    PersonLocator,
    PresenceSensor,
    Program,
    Thermometer,
)
from repro.sim.events import Simulator


class TestClimateSensors:
    def test_thermometer_quantizes(self):
        room = Room("r", temperature=23.4567)
        thermometer = Thermometer("t", room)
        thermometer.sample()
        assert thermometer.reading == pytest.approx(23.5)

    def test_hygrometer_quantizes(self):
        room = Room("r", humidity=61.26)
        hygrometer = Hygrometer("h", room)
        hygrometer.sample()
        assert hygrometer.reading == pytest.approx(61.5)

    def test_light_sensor_rounds_to_lux(self):
        room = Room("r")
        room.illuminance = 87.6
        sensor = LightSensor("l", room)
        sensor.sample()
        assert sensor.reading == 88.0

    def test_location_inherited_from_room(self):
        room = Room("study")
        assert Thermometer("t", room).location == "study"


class TestPresenceAndLocator:
    def test_presence_tracks_occupants(self):
        sensor = PresenceSensor("p", "living room")
        sensor.person_entered("Tom")
        sensor.person_entered("Alan")
        assert sensor.get_state("presence", "occupied") is True
        assert sensor.occupants() == {"Tom", "Alan"}
        assert sensor.get_state("presence", "occupants") == "Alan,Tom"
        sensor.person_left("Tom")
        sensor.person_left("Alan")
        assert sensor.get_state("presence", "occupied") is False

    def test_leaving_when_absent_is_noop(self):
        sensor = PresenceSensor("p", "living room")
        sensor.person_left("Ghost")
        assert sensor.occupants() == frozenset()

    def test_locator_variables_per_resident(self):
        locator = PersonLocator(["Tom", "Alan"])
        assert locator.place_of("Tom") == "away"
        locator.set_place("Tom", "kitchen")
        locator.set_last_arrival("Tom", "work")
        assert locator.place_of("Tom") == "kitchen"
        assert locator.last_arrival_of("Tom") == "work"

    def test_locator_unknown_resident(self):
        locator = PersonLocator(["Tom"])
        with pytest.raises(HomeModelError):
            locator.set_place("Zorro", "kitchen")

    def test_locator_needs_residents(self):
        with pytest.raises(HomeModelError):
            PersonLocator([])


class TestEPG:
    def test_program_validation(self):
        with pytest.raises(HomeModelError):
            Program("bad", 1, start=100.0, end=50.0)

    def test_keywords_follow_schedule(self):
        sim = Simulator()
        epg = EPGFeed()
        epg.schedule(Program("game", 4, start=100.0, end=200.0,
                             keywords=("baseball", "sports")))
        epg.start_feed(sim)
        assert epg.get_state("guide", "keywords") == ""
        sim.run_until(150.0)
        assert set(epg.get_state("guide", "keywords").split(",")) == \
            {"baseball", "sports"}
        sim.run_until(250.0)
        assert epg.get_state("guide", "keywords") == ""

    def test_overlapping_programs_union_keywords(self):
        sim = Simulator()
        epg = EPGFeed()
        epg.schedule(Program("a", 1, start=0.0, end=100.0, keywords=("x",)))
        epg.schedule(Program("b", 2, start=50.0, end=150.0, keywords=("y",)))
        epg.start_feed(sim)
        sim.run_until(75.0)
        assert set(epg.get_state("guide", "keywords").split(",")) == {"x", "y"}

    def test_channel_showing(self):
        sim = Simulator()
        epg = EPGFeed()
        epg.schedule(Program("game", 4, start=0.0, end=100.0,
                             keywords=("baseball",)))
        epg.start_feed(sim)
        assert epg.channel_showing("baseball", 50.0) == 4
        assert epg.channel_showing("baseball", 150.0) is None
        assert epg.channel_showing("opera", 50.0) is None

    def test_scheduling_after_start_arms_timers(self):
        sim = Simulator()
        epg = EPGFeed()
        epg.start_feed(sim)
        epg.schedule(Program("late", 9, start=50.0, end=100.0,
                             keywords=("news",)))
        sim.run_until(60.0)
        assert "news" in epg.get_state("guide", "keywords")


class TestHousehold:
    def _household(self):
        locator = PersonLocator(["Tom", "Alan"])
        presence = {
            "living room": PresenceSensor("p1", "living room"),
            "hall": PresenceSensor("p2", "hall"),
        }
        events = []
        household = Household(
            locator, presence,
            event_sink=lambda kind, who: events.append((kind, who)),
        )
        return household, locator, presence, events

    def test_arrive_home_full_effects(self):
        household, locator, presence, events = self._household()
        household.arrive_home("Tom", "work", "living room")
        assert locator.place_of("Tom") == "living room"
        assert locator.last_arrival_of("Tom") == "work"
        assert presence["living room"].occupants() == {"Tom"}
        assert events == [("returns home", "Tom")]

    def test_double_arrival_rejected(self):
        household, _, _, _ = self._household()
        household.arrive_home("Tom", "work", "living room")
        with pytest.raises(HomeModelError, match="already home"):
            household.arrive_home("Tom", "shopping", "hall")

    def test_move_between_rooms(self):
        household, locator, presence, _ = self._household()
        household.arrive_home("Tom", "work", "living room")
        household.move("Tom", "hall")
        assert presence["living room"].occupants() == frozenset()
        assert presence["hall"].occupants() == {"Tom"}
        assert locator.place_of("Tom") == "hall"

    def test_leave_home_clears_context(self):
        household, locator, presence, _ = self._household()
        household.arrive_home("Tom", "work", "living room")
        household.leave_home("Tom")
        assert locator.place_of("Tom") == "away"
        assert locator.last_arrival_of("Tom") == "none"
        assert presence["living room"].occupants() == frozenset()

    def test_whereabouts(self):
        household, _, _, _ = self._household()
        household.arrive_home("Tom", "work", "hall")
        assert household.whereabouts() == {"Tom": "hall", "Alan": "away"}

    def test_unknown_resident(self):
        household, _, _, _ = self._household()
        with pytest.raises(HomeModelError):
            household.move("Zorro", "hall")
