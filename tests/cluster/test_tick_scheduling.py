"""Wheel-aware tick scheduling (PR-5 satellite): a shard with the time
wheel on sleeps until the next armed window boundary instead of waking
every period — and stays trace-identical to a fixed-cadence shard,
because adaptive wakes land exactly on the fixed cadence grid and every
skipped tick would have been a no-op.

The fixed cadence must survive whenever a tick can do work without a
boundary crossing: tick-stateful duration-over-window plans, DENIED
clock-watchers retrying arbitration, holders with a clock-reading
``until``, and disabled-skipped clock rules.  Demand growing mid-sleep
(a rule turning DENIED off an ingest, a freshly registered window rule)
must pull the next wake in through the engine's clock-demand hook.
"""

import pytest

from repro.cluster.shard import EngineShard
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    NumericAtom,
    TimeWindowAtom,
)
from repro.core.engine import RuleState
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

HOME = "home-0000"
TEMP = f"{HOME}/thermo:svc:temperature"
PLACE = f"{HOME}/locator:svc:place"

PERIOD = 60.0


def num(variable, relation, bound):
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


def act(device, name="Set"):
    return ActionSpec(
        device_udn=device, device_name=device, service_id="svc",
        action_name=name, settings=(Setting("level", 1),),
    )


def window_rule(name="evening", start=17, end=21, device=f"{HOME}/lamp"):
    return Rule(
        name=name, owner="Tom",
        condition=TimeWindowAtom(hhmm(start), hhmm(end)),
        action=act(device),
    )


def make_shard(adaptive, **kwargs):
    simulator = Simulator()
    shard = EngineShard(0, simulator, adaptive_ticks=adaptive,
                        clock_tick_period=PERIOD, **kwargs)
    return simulator, shard


class TestSleeping:
    def test_no_clock_rules_means_no_ticks(self):
        simulator, shard = make_shard(adaptive=True)
        shard.register_rule(Rule(name="hot", owner="Tom",
                                 condition=num(TEMP, Relation.GT, 26.0),
                                 action=act(f"{HOME}/aircon")))
        simulator.run_until(hhmm(6))  # six idle hours
        assert shard.ticks == 0
        shard.shutdown()

    def test_sleeps_to_window_boundary_on_the_grid(self):
        simulator, shard = make_shard(adaptive=True)
        shard.register_rule(window_rule())
        simulator.run_until(hhmm(16, 59))
        assert shard.ticks == 0  # hours before the window: no wakes
        simulator.run_until(hhmm(17, 30))
        # One wake at the start boundary (17:00, on the minute grid).
        assert shard.ticks == 1
        assert shard.engine.rule_truth("evening") is True
        shard.shutdown()

    def test_fixed_cadence_fallback_ticks_every_period(self):
        simulator, shard = make_shard(adaptive=False)
        shard.register_rule(window_rule())
        simulator.run_until(hhmm(2))
        assert shard.ticks == int(hhmm(2) / PERIOD)
        shard.shutdown()

    def test_adaptive_ticks_disabled_without_the_wheel(self):
        simulator, shard = make_shard(adaptive=True, wheel=False)
        assert shard.adaptive_ticks is False
        shard.register_rule(window_rule())
        simulator.run_until(hhmm(1))
        assert shard.ticks == int(hhmm(1) / PERIOD)
        shard.shutdown()

    def test_off_grid_boundary_observed_at_next_grid_tick(self):
        """A 09:10:30 boundary lands mid-minute; both schedules must
        observe it at the 09:11:00 tick."""
        simulator, shard = make_shard(adaptive=True)
        shard.register_rule(Rule(
            name="offgrid", owner="Tom",
            condition=TimeWindowAtom(hhmm(9, 10, 30), hhmm(10, 0)),
            action=act(f"{HOME}/lamp"),
        ))
        simulator.run_until(hhmm(9, 10, 29))
        assert shard.engine.rule_truth("offgrid") is False
        simulator.run_until(hhmm(9, 10, 59))
        assert shard.engine.rule_truth("offgrid") is False  # mid-minute
        simulator.run_until(hhmm(9, 11))
        assert shard.engine.rule_truth("offgrid") is True
        shard.shutdown()


class TestDemandGrowth:
    def test_registration_mid_sleep_pulls_the_wake_in(self):
        simulator, shard = make_shard(adaptive=True)
        shard.register_rule(window_rule("late", start=20, end=23))
        simulator.run_until(hhmm(10))
        assert shard.ticks == 0
        # A rule whose window opens at 11:00 arrives while the shard
        # sleeps toward 20:00; the demand hook must re-arm.
        shard.register_rule(window_rule("soon", start=11, end=12,
                                        device=f"{HOME}/lamp2"))
        simulator.run_until(hhmm(11, 30))
        assert shard.engine.rule_truth("soon") is True
        assert shard.ticks >= 1
        shard.shutdown()

    def test_denied_clock_watcher_restores_every_tick_retry(self):
        """A DENIED windowed rule retries arbitration each tick; the
        adaptive schedule must keep the fixed cadence while it stands."""
        simulator, shard = make_shard(adaptive=True)
        shard.register_rule(Rule(
            name="tom-tv", owner="Tom",
            condition=TimeWindowAtom(0.0, hhmm(23, 59)),
            action=act(f"{HOME}/tv"),
        ))
        shard.register_rule(Rule(
            name="alan-tv", owner="Alan",
            condition=TimeWindowAtom(0.0, hhmm(23, 59)),
            action=act(f"{HOME}/tv"),
        ))
        shard.add_priority_order(PriorityOrder(f"{HOME}/tv",
                                               ("Tom", "Alan")))
        simulator.run_until(PERIOD)  # first tick fires both; Alan loses
        assert shard.engine.rule_state("alan-tv") is RuleState.DENIED
        ticks_before = shard.ticks
        simulator.run_until(PERIOD + 10 * PERIOD)
        assert shard.ticks - ticks_before == 10  # every period, no sleep
        shard.shutdown()

    def test_duration_over_window_keeps_fixed_cadence(self):
        simulator, shard = make_shard(adaptive=True)
        shard.register_rule(Rule(
            name="linger", owner="Tom",
            condition=DurationAtom(
                AndCondition([TimeWindowAtom(0.0, hhmm(23, 59)),
                              DiscreteAtom(PLACE, "living room")]),
                600.0),
            action=act(f"{HOME}/lamp"),
        ))
        simulator.run_until(5 * PERIOD)
        assert shard.ticks == 5  # tick-stateful: held() samples per tick
        shard.shutdown()


class TestTraceEquivalence:
    @pytest.mark.parametrize("seed", (3, 11))
    def test_adaptive_and_fixed_shards_trace_identically(self, seed):
        """Twin shards (adaptive vs fixed cadence) fed one scripted
        stream — window edges, contention, churn, long idle gaps — must
        produce identical traces at identical times."""
        import random
        rng = random.Random(seed)
        twins = [make_shard(adaptive=True), make_shard(adaptive=False)]

        def both(operation):
            for simulator, shard in twins:
                operation(simulator, shard)

        def rules():
            return [
                window_rule("evening", 17, 21),
                window_rule("early", 6, 9, device=f"{HOME}/lamp-b"),
                Rule(name="warm-evening", owner="Alan",
                     condition=AndCondition([
                         TimeWindowAtom(hhmm(17), hhmm(21)),
                         num(TEMP, Relation.GT, 24.0)]),
                     action=act(f"{HOME}/fan"),
                     until=num(TEMP, Relation.GT, 35.0),
                     stop_action=act(f"{HOME}/fan", "Off")),
                Rule(name="contender", owner="Emily",
                     condition=TimeWindowAtom(hhmm(17), hhmm(22)),
                     action=act(f"{HOME}/lamp")),
            ]

        both(lambda s, sh: [sh.register_rule(r) for r in rules()])
        now = 0.0
        removed = False
        for step in range(120):
            op = rng.random()
            if op < 0.45:
                value = rng.choice([15.0 + i for i in range(25)])
                both(lambda s, sh, v=value: sh.ingest(TEMP, v))
            elif op < 0.6:
                room = rng.choice(("living room", "kitchen"))
                both(lambda s, sh, r=room: sh.ingest(PLACE, r))
            else:
                delta = rng.choice((30.0, 90.0, 600.0, 3_600.0, 7_200.0))
                now += delta
                both(lambda s, sh, t=now: s.run_until(t))
            if step == 60 and not removed:
                both(lambda s, sh: sh.remove_rule("early"))
                removed = True
        fixed_trace = [
            (e.time, e.kind, e.rule, e.device)
            for e in twins[1][1].engine.trace
        ]
        adaptive_trace = [
            (e.time, e.kind, e.rule, e.device)
            for e in twins[0][1].engine.trace
        ]
        assert adaptive_trace == fixed_trace
        assert fixed_trace, "stream never produced a trace entry"
        # The adaptive shard must actually have slept through idle time.
        assert twins[0][1].ticks < twins[1][1].ticks
        both(lambda s, sh: sh.shutdown())

    def test_shutdown_cancels_the_adaptive_wake(self):
        simulator, shard = make_shard(adaptive=True)
        shard.register_rule(window_rule())
        shard.shutdown()
        simulator.run()  # nothing left scheduled
        assert shard.ticks == 0
