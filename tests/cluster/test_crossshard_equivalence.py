"""Property test: a ClusterServer serving *cross-home* rules is
observably identical to one merged-home HomeServer oracle.

Independent per-home HomeServers (the PR-2 twin) cannot host a rule
spanning homes, so this suite compares against a single `HomeServer`
holding every rule of every home — home-prefixed variable ids are just
names to it, and it evaluates the global stream synchronously, which is
exactly the semantics variable mirroring must reproduce.

A seeded random event stream (sensor bursts, place changes, door locks,
broadcast and home-scoped events, time advances across window
boundaries, mid-stream churn of both local and cross-home rules) is
driven through both; after every settled step rule truth, rule states
and device holders must agree for every rule, and — with coalescing off
so intermediate edges are preserved — each home's trace slice must
match the oracle's entry for entry.  About 10% of the population is
cross-home (building) rules: any-of/all-of conditions over foreign
sensors, a multi-variable aggregate, a window+foreign-discrete pair
(wheel × mirror), an event+foreign pair, contention on an anchor
device, and an anchored ``until``.

The oracle ticks its clock on the fixed 60 s cadence while the cluster
shards run the PR-5 wheel-aware adaptive schedule, so exact trace
equality here also pins the satellite claim that adaptive ticks are
trace-invisible.
"""

import random

import pytest

from repro.cluster import ClusterServer
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    EventAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.core.server import HomeServer
from repro.net.bus import NetworkBus
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

HOMES = tuple(f"home-{index:04d}" for index in range(6))
LOBBY = "lobby"
ROOMS = ("living room", "kitchen", "bedroom", "hall")
EVENTS = ("returns home", "smoke alarm")
PEOPLE = ("Tom", "Alan", "Emily")
VALUE_GRID = [15.0 + 0.5 * i for i in range(60)]


def temp(home):
    return f"{home}/thermo:svc:temperature"


def smoke(home):
    return f"{home}/smoke:svc:level"


def place_var(home):
    return f"{home}/locator:svc:place"


def door_var(home):
    return f"{home}/door:svc:locked"


def num(variable, relation, bound):
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


def act(device, name="Set", level=1):
    return ActionSpec(
        device_udn=device, device_name=device, service_id="svc",
        action_name=name, settings=(Setting("level", level),),
    )


def build_local_rules(home):
    """Per-home rules covering stop actions, untils, windows, events."""
    dev = lambda suffix: f"{home}/{suffix}"
    evening = TimeWindowAtom(hhmm(17), hhmm(21), label="evening")
    return [
        Rule(name=f"{home}-cool", owner="Tom",
             condition=num(temp(home), Relation.GT, 26.0),
             action=act(dev("aircon")),
             stop_action=act(dev("aircon"), "Off")),
        Rule(name=f"{home}-heat", owner="Alan",
             condition=num(temp(home), Relation.LT, 20.0),
             action=act(dev("heater")),
             until=num(temp(home), Relation.GT, 24.0),
             stop_action=act(dev("heater"), "Off")),
        Rule(name=f"{home}-lamp", owner="Tom",
             condition=DiscreteAtom(place_var(home), "living room"),
             action=act(dev("lamp"))),
        Rule(name=f"{home}-evening", owner="Emily",
             condition=AndCondition([evening,
                                     DiscreteAtom(place_var(home),
                                                  "living room")]),
             action=act(dev("lamp2"))),
    ]


def build_cross_rules():
    """The ~10% building layer: rules anchored in the lobby (or one
    apartment) whose conditions read other homes' variables.  Returns
    ``(rules, foreign_homes)`` with each rule's foreign-home set, which
    the oracle needs to scope home-targeted events the way the cluster
    does (anchored rules + remote watchers)."""
    rules: list[Rule] = []
    foreign: dict[str, frozenset[str]] = {}

    def add(rule, homes):
        rules.append(rule)
        foreign[rule.name] = frozenset(homes)

    add(Rule(name="bldg-any-smoke", owner="manager",
             condition=OrCondition([num(smoke(h), Relation.GT, 40.0)
                                    for h in HOMES[:3]]),
             action=act(f"{LOBBY}/door", "Unlock"),
             stop_action=act(f"{LOBBY}/door", "Lock")),
        HOMES[:3])
    add(Rule(name="bldg-aggregate", owner="manager",
             condition=NumericAtom(LinearConstraint.make(
                 LinearExpr.var(temp(HOMES[0]))
                 + LinearExpr.var(temp(HOMES[1])),
                 Relation.GT, 58.0)),
             action=act(f"{LOBBY}/vent")),
        HOMES[:2])
    add(Rule(name="bldg-evening-porch", owner="manager",
             condition=AndCondition([
                 TimeWindowAtom(hhmm(18), hhmm(23), label="night"),
                 DiscreteAtom(place_var(HOMES[2]), "hall"),
             ]),
             action=act(f"{LOBBY}/porch-light")),
        (HOMES[2],))
    add(Rule(name="bldg-evac", owner="manager",
             condition=AndCondition([
                 EventAtom("smoke alarm"),
                 num(smoke(HOMES[1]), Relation.GT, 20.0),
             ]),
             action=act(f"{LOBBY}/siren")),
        (HOMES[1],))
    # Two cross-home rules contesting the lobby display: arbitration of
    # a previously impossible rule shape (ISSUE acceptance).
    add(Rule(name="bldg-ad-board", owner="manager",
             condition=num(temp(HOMES[3]), Relation.GT, 24.0),
             action=act(f"{LOBBY}/display", "ShowAds")),
        (HOMES[3],))
    add(Rule(name="bldg-warning-board", owner="fire-chief",
             condition=num(smoke(HOMES[3]), Relation.GT, 30.0),
             action=act(f"{LOBBY}/display", "ShowWarning")),
        (HOMES[3],))
    # Anchored until: foreign condition, until + devices in one home.
    add(Rule(name=f"{HOMES[4]}-neighbour-watch", owner="Tom",
             condition=num(smoke(HOMES[5]), Relation.GT, 35.0),
             action=act(f"{HOMES[4]}/buzzer"),
             until=DiscreteAtom(door_var(HOMES[4]), "true"),
             stop_action=act(f"{HOMES[4]}/buzzer", "Off")),
        (HOMES[5],))
    return rules, foreign


def late_cross_rule():
    return Rule(
        name="bldg-late-watch", owner="manager",
        condition=OrCondition([num(smoke(h), Relation.GT, 45.0)
                               for h in HOMES[3:5]]),
        action=act(f"{LOBBY}/spare-siren"),
    ), frozenset(HOMES[3:5])


class MergedTwin:
    """The same mixed fleet through the cluster and one merged oracle."""

    def __init__(self, shard_count, coalesce):
        self.cluster_sim = Simulator()
        self.cluster = ClusterServer(
            self.cluster_sim, shard_count=shard_count, coalesce=coalesce,
        )
        self.oracle_sim = Simulator()
        self.oracle = HomeServer(self.oracle_sim,
                                 NetworkBus(self.oracle_sim))
        self.oracle.engine.dispatch = lambda spec: None
        self.rule_names: list[str] = []
        self.devices: set[str] = set()
        # rule -> anchor home and rule -> foreign homes, for scoping
        # home-targeted events and slicing traces like the cluster does.
        self.anchor: dict[str, str] = {}
        self.foreign: dict[str, frozenset[str]] = {}
        for home in HOMES:
            for rule in build_local_rules(home):
                self._register(rule, frozenset())
        cross, foreign = build_cross_rules()
        for rule in cross:
            self._register(rule, foreign[rule.name])
        for order in (
            PriorityOrder(f"{LOBBY}/display",
                          ("fire-chief", "manager")),
        ):
            self.oracle.add_priority_order(order)
            self.cluster.add_priority_order(order)
        self.now = 0.0

    def _register(self, rule, foreign_homes):
        self.oracle.register_rule(rule)
        self.cluster.register_rule(rule)
        self.rule_names.append(rule.name)
        self.anchor[rule.name] = self.cluster._home_of_rule[rule.name]
        self.foreign[rule.name] = foreign_homes
        self.devices |= rule.devices()

    # -- mirrored operations ---------------------------------------------------

    def ingest(self, variable, value):
        self.oracle.ingest(variable, value)
        self.cluster.ingest(variable, value)

    def broadcast_event(self, event_type, subject):
        self.oracle.post_event(event_type, subject)
        self.cluster.post_event(event_type, subject)

    def post_home_event(self, home, event_type, subject):
        """Home-scoped: the cluster wakes the home's own rules plus the
        cross-home watchers mirroring it; the oracle reproduces that
        membership through the engine's ``only`` scope."""
        members = {
            name for name in self.rule_names
            if self.anchor.get(name) == home or home in self.foreign[name]
        }
        self.oracle.engine.post_event(event_type, subject, only=members)
        self.cluster.post_event(event_type, subject, home=home)

    def advance(self, seconds):
        self.now += seconds
        self.oracle_sim.run_until(self.now)
        self.cluster_sim.run_until(self.now)

    def churn_remove(self, name):
        self.oracle.remove_rule(name)
        self.cluster.remove_rule(name)
        self.rule_names.remove(name)

    def churn_add_late(self):
        rule, foreign_homes = late_cross_rule()
        self._register(rule, foreign_homes)

    # -- checks ----------------------------------------------------------------

    def settle_and_check(self, step):
        self.cluster.flush()
        engine = self.oracle.engine
        for name in self.rule_names:
            assert engine.rule_truth(name) == \
                self.cluster.rule_truth(name), \
                f"step {step}: truth of {name!r} diverged"
            assert engine.rule_state(name) == \
                self.cluster.rule_state(name), \
                f"step {step}: state of {name!r} diverged"
        for udn in sorted(self.devices):
            base = engine.holder_of(udn)
            ours = self.cluster.holder_of(udn)
            assert (base is None) == (ours is None), \
                f"step {step}: holder presence of {udn!r} diverged"
            if base is not None:
                assert base[0] == ours[0], \
                    f"step {step}: holder of {udn!r} diverged"

    def check_traces(self):
        """Per anchor-home slices: within one home every rule lives on
        one shard, so the cluster slice is an exact FIFO the oracle's
        filtered trace must equal entry for entry."""
        homes = sorted({*self.anchor.values()})
        for home in homes:
            baseline = [
                (entry.time, entry.kind, entry.rule, entry.device)
                for entry in self.oracle.engine.trace
                if self.anchor.get(entry.rule) == home
            ]
            clustered = [
                (entry.time, entry.kind, entry.rule, entry.device)
                for entry in self.cluster.trace(home=home)
            ]
            assert baseline == clustered, f"trace of {home} diverged"

    def shutdown(self):
        self.cluster.shutdown()
        self.oracle.shutdown()


def drive(twin, seed, steps=150):
    rng = random.Random(seed)
    for step in range(steps):
        home = HOMES[rng.randrange(len(HOMES))]
        op = rng.random()
        if op < 0.40:
            variable = rng.choice((temp(home), smoke(home)))
            for value in rng.sample(VALUE_GRID, rng.choice((1, 1, 3, 5))):
                twin.ingest(variable, value)
        elif op < 0.55:
            twin.ingest(place_var(home), rng.choice(ROOMS))
        elif op < 0.62:
            twin.ingest(door_var(home), rng.choice(("true", "false")))
        elif op < 0.72:
            # Smoke spikes target the mirrored sensors specifically.
            spiked = rng.choice(HOMES[:4])
            twin.ingest(smoke(spiked), rng.choice((10.0, 50.0, 80.0)))
        elif op < 0.82:
            if rng.random() < 0.4:
                twin.broadcast_event(rng.choice(EVENTS),
                                     rng.choice(PEOPLE))
            else:
                twin.post_home_event(home, rng.choice(EVENTS),
                                     rng.choice(PEOPLE))
        else:
            twin.advance(rng.choice((30.0, 120.0, 660.0, 3_600.0)))
        if step == 40:
            twin.churn_remove("bldg-any-smoke")
        if step == 70:
            twin.churn_add_late()
        if step == 100:
            twin.churn_remove("bldg-aggregate")
        twin.settle_and_check(step)
    fired = [e for e in twin.cluster.trace() if e.kind == "fire"]
    assert any(e.rule.startswith("bldg-") for e in fired), \
        "stream never fired a cross-home rule"
    if len(twin.cluster.shards) > 1:
        # One shard owns everything (no fan-out); with several, the
        # stream must actually have crossed a shard boundary.
        assert twin.cluster.stats().mirrored > 0, \
            "stream never exercised mirror fan-out"


@pytest.mark.parametrize("seed", (7, 20260730))
@pytest.mark.parametrize("shard_count", (1, 4))
def test_cluster_with_cross_home_rules_matches_merged_oracle(
        seed, shard_count):
    """Acceptance: truth/states/holders match the merged-home oracle
    exactly with coalescing on (the production default)."""
    twin = MergedTwin(shard_count=shard_count, coalesce=True)
    try:
        drive(twin, seed)
    finally:
        twin.shutdown()


@pytest.mark.parametrize("seed", (7, 20260730))
def test_cross_home_traces_match_without_coalescing(seed):
    """With coalescing off every intermediate edge is preserved, so each
    anchor home's trace slice equals the oracle's exactly — including
    the cross-home rules' entries."""
    twin = MergedTwin(shard_count=4, coalesce=False)
    try:
        drive(twin, seed)
        twin.check_traces()
    finally:
        twin.shutdown()
