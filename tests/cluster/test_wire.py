"""Property/fuzz tests for the cluster wire codec.

The codec sits under every byte the process backend moves, so these
tests lean on hypothesis: round-trips over randomized batches, events
and call payloads; framing survival under arbitrary stream chunking;
rejection of truncated frames, unknown types and oversized lengths;
and key-table resync after a reconnect."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import wire
from repro.errors import WireError

# -- strategies ----------------------------------------------------------------

variable_names = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
    min_size=1, max_size=24,
)

scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=16),
    st.frozensets(st.text(max_size=8), max_size=4),
)

batches = st.lists(st.tuples(variable_names, scalar_values), max_size=32)

timestamps = st.floats(min_value=0.0, max_value=86_400.0,
                       allow_nan=False, allow_infinity=False)


def roundtrip_frame(frame: bytes) -> tuple[int, bytes]:
    reader = wire.FrameReader()
    reader.feed(frame)
    (decoded,) = list(reader.frames())
    reader.at_eof()
    return decoded


# -- batch / event round-trips -------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(t=timestamps, writes=batches)
def test_batch_roundtrip(t, writes):
    encoder, decoder = wire.WireEncoder(), wire.WireDecoder()
    frame_type, payload = roundtrip_frame(encoder.encode_batch(t, writes))
    assert frame_type == wire.BATCH
    got_t, got_writes = decoder.decode_batch(payload)
    assert got_t == t
    assert got_writes == list(writes)


@settings(max_examples=100, deadline=None)
@given(t=timestamps, chunks=st.lists(batches, min_size=2, max_size=6))
def test_batch_stream_roundtrip_shares_one_key_table(t, chunks):
    """A sequence of batches on one connection decodes exactly, and
    names are only ever defined once."""
    encoder, decoder = wire.WireEncoder(), wire.WireDecoder()
    defined: set[str] = set()
    for writes in chunks:
        _, payload = roundtrip_frame(encoder.encode_batch(t, writes))
        _, defs, _, _ = wire.decode_pickled(payload)
        for _, name in defs:
            assert name not in defined, "name re-defined on same connection"
            defined.add(name)
        _, got = decoder.decode_batch(payload)
        assert got == list(writes)


@settings(max_examples=100, deadline=None)
@given(
    t=timestamps,
    event_type=st.sampled_from(["registered", "removed", "recovered", "tv"]),
    subject=st.one_of(st.none(), variable_names),
    only=st.one_of(st.none(), st.lists(variable_names, max_size=8)),
)
def test_event_roundtrip(t, event_type, subject, only):
    encoder, decoder = wire.WireEncoder(), wire.WireDecoder()
    frame_type, payload = roundtrip_frame(
        encoder.encode_event(t, event_type, subject, only))
    assert frame_type == wire.EVENT
    got_t, got_type, got_subject, got_only = decoder.decode_event(payload)
    assert (got_t, got_type, got_subject) == (t, event_type, subject)
    assert got_only == (sorted(only) if only is not None else None)


def test_interning_shrinks_repeat_batches():
    encoder = wire.WireEncoder()
    writes = [(f"home-0001/sensor-{i}/temp", 21.5) for i in range(16)]
    first = encoder.encode_batch(0.0, writes)
    second = encoder.encode_batch(1.0, writes)
    assert len(second) < len(first) / 2


# -- framing under arbitrary chunking ------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    payloads=st.lists(st.binary(max_size=64), min_size=1, max_size=8),
    cuts=st.lists(st.integers(min_value=1, max_value=32), max_size=16),
    data=st.data(),
)
def test_frame_reader_reassembles_any_chunking(payloads, cuts, data):
    frame_types = [
        data.draw(st.sampled_from(sorted(wire.FRAME_NAMES)))
        for _ in payloads
    ]
    stream = b"".join(
        wire.encode_frame(ft, p) for ft, p in zip(frame_types, payloads))
    reader = wire.FrameReader()
    decoded: list[tuple[int, bytes]] = []
    position = 0
    for cut in cuts:
        reader.feed(stream[position:position + cut])
        position += cut
        decoded.extend(reader.frames())
    reader.feed(stream[position:])
    decoded.extend(reader.frames())
    reader.at_eof()
    assert decoded == list(zip(frame_types, payloads))


@settings(max_examples=100, deadline=None)
@given(payload=st.binary(max_size=64), drop=st.integers(min_value=1, max_value=8))
def test_truncated_frame_rejected_at_eof(payload, drop):
    frame = wire.encode_frame(wire.BATCH, payload)
    reader = wire.FrameReader()
    reader.feed(frame[:max(1, len(frame) - drop)])
    list(reader.frames())
    with pytest.raises(WireError, match="mid-frame"):
        reader.at_eof()


@settings(max_examples=50, deadline=None)
@given(bad_type=st.integers(min_value=0, max_value=255).filter(
    lambda b: b not in wire.FRAME_NAMES))
def test_unknown_frame_type_rejected(bad_type):
    reader = wire.FrameReader()
    reader.feed(struct.pack("<IB", 0, bad_type))
    with pytest.raises(WireError, match="unknown frame type"):
        list(reader.frames())
    with pytest.raises(WireError):
        wire.encode_frame(bad_type, b"")


def test_oversized_length_prefix_rejected():
    reader = wire.FrameReader()
    reader.feed(struct.pack("<IB", wire.MAX_FRAME + 1, wire.BATCH))
    with pytest.raises(WireError, match="MAX_FRAME"):
        list(reader.frames())


def test_undecodable_payloads_rejected():
    decoder = wire.WireDecoder()
    with pytest.raises(WireError):
        decoder.decode_batch(b"\xff not json")
    with pytest.raises(WireError):
        decoder.decode_batch(b'{"wrong": "shape"}')
    with pytest.raises(WireError):
        decoder.decode_event(b"[1,2]")
    with pytest.raises(WireError):
        wire.decode_pickled(b"\x80\x05 garbage")


# -- key-table resync ----------------------------------------------------------

def test_undefined_key_id_rejected():
    encoder = wire.WireEncoder()
    stale = wire.WireDecoder()
    first = encoder.encode_batch(0.0, [("kitchen/temp", 20)])
    # warm decoder consumes the defs; the stale one never sees them
    warm = wire.WireDecoder()
    warm.decode_batch(roundtrip_frame(first)[1])
    second = encoder.encode_batch(1.0, [("kitchen/temp", 21)])
    with pytest.raises(WireError, match="never defined"):
        stale.decode_batch(roundtrip_frame(second)[1])


def test_key_table_resync_after_reconnect():
    encoder = wire.WireEncoder()
    old_decoder = wire.WireDecoder()
    old_decoder.decode_batch(
        roundtrip_frame(encoder.encode_batch(0.0, [("a/x", 1), ("a/y", 2)]))[1])

    # Reconnect: encoder resets, the new connection's decoder starts
    # empty, and the first batch re-defines everything it names.
    encoder.reset()
    new_decoder = wire.WireDecoder()
    _, writes = new_decoder.decode_batch(
        roundtrip_frame(encoder.encode_batch(5.0, [("a/y", 3), ("a/z", 4)]))[1])
    assert writes == [("a/y", 3), ("a/z", 4)]


# -- call plumbing -------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    req_id=st.integers(min_value=0, max_value=2**31),
    method=st.sampled_from(["barrier", "rule_truth", "coalesce_safe"]),
    t=timestamps,
    args=st.lists(st.one_of(st.none(), st.integers(), st.text(max_size=8)),
                  max_size=4),
)
def test_call_result_roundtrip(req_id, method, t, args):
    _, payload = roundtrip_frame(wire.encode_call(req_id, method, t, args))
    assert wire.decode_call(payload) == (req_id, method, t, list(args))
    _, payload = roundtrip_frame(wire.encode_result(req_id, args))
    assert wire.decode_result(payload) == (req_id, list(args))


def test_error_frame_carries_typed_exception():
    from repro.errors import WorkerCrashed
    original = WorkerCrashed(2, -9, "drain")
    _, payload = roundtrip_frame(wire.encode_error(17, original, "tb text"))
    req_id, exc, tb = wire.decode_pickled(payload)
    assert req_id == 17 and tb == "tb text"
    assert isinstance(exc, WorkerCrashed)
    assert (exc.shard_id, exc.exitcode) == (2, -9)


def test_unpicklable_exception_degrades_to_wire_error():
    class Hostile(Exception):
        def __reduce__(self):
            raise TypeError("nope")

    _, payload = roundtrip_frame(wire.encode_error(3, Hostile("x"), "tb"))
    req_id, exc, _ = wire.decode_pickled(payload)
    assert req_id == 3
    assert isinstance(exc, WireError)
    assert "Hostile" in str(exc)


def test_value_tagging_roundtrips_frozensets():
    tagged = wire.encode_value(frozenset({"b", "a"}))
    assert tagged == {"set": ["a", "b"]}
    assert wire.decode_value(tagged) == frozenset({"a", "b"})
    assert wire.decode_value(3.5) == 3.5
