"""Unit tests for the consistent-hash shard router."""

import pytest

from repro.cluster.router import ShardRouter, home_key, stable_hash
from repro.errors import RuleError


class TestHomeKey:
    def test_home_prefixed_variable(self):
        assert home_key("home-0007/thermo:svc:temperature") == "home-0007"

    def test_home_prefixed_device_udn(self):
        assert home_key("home-0007/aircon") == "home-0007"

    def test_plain_variable_falls_back_to_udn(self):
        assert home_key("thermo:t:temperature") == "thermo"

    def test_ambient_pseudo_variables(self):
        assert home_key("clock:time_of_day") == "clock"
        assert home_key("event:returns home") == "event"


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("home-0001") == stable_hash("home-0001")

    def test_spreads_distinct_keys(self):
        hashes = {stable_hash(f"home-{i:04d}") for i in range(100)}
        assert len(hashes) == 100


class TestShardRouter:
    def test_rejects_bad_counts(self):
        with pytest.raises(RuleError):
            ShardRouter(0)
        with pytest.raises(RuleError):
            ShardRouter(2, replicas=0)

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        assert all(
            router.shard_of_key(f"home-{i}") == 0 for i in range(50)
        )

    def test_routing_is_deterministic_and_in_range(self):
        router = ShardRouter(4)
        again = ShardRouter(4)
        for i in range(200):
            key = f"home-{i:04d}"
            shard = router.shard_of_key(key)
            assert 0 <= shard < 4
            assert again.shard_of_key(key) == shard

    def test_variable_and_device_of_one_home_colocate(self):
        router = ShardRouter(8)
        shard = router.shard_of("home-0042/thermo:svc:temperature")
        assert router.shard_of("home-0042/aircon") == shard
        assert router.shard_of_key("home-0042") == shard

    def test_load_spreads_over_shards(self):
        router = ShardRouter(8)
        owners = {router.shard_of_key(f"home-{i:04d}") for i in range(256)}
        assert owners == set(range(8))

    def test_resharding_moves_few_homes(self):
        """Consistent hashing: growing 8 → 9 shards remaps only a small
        fraction of homes (a modulo hash would remap ~8/9 of them)."""
        before = ShardRouter(8)
        after = ShardRouter(9)
        homes = [f"home-{i:04d}" for i in range(512)]
        moved = sum(
            1 for home in homes
            if before.shard_of_key(home) != after.shard_of_key(home)
        )
        assert moved < len(homes) * 0.35

    def test_custom_key_extractor(self):
        router = ShardRouter(4, key_of=lambda ident: ident.split("|")[0])
        assert router.shard_of("zoneA|anything") == \
            router.shard_of("zoneA|other")


class TestPlacement:
    def test_single_home_footprint(self):
        router = ShardRouter(4)
        plan = router.placement_plan(
            ["home-0001/thermo:svc:temperature",
             "home-0001/presence:svc:room"],
            ["home-0001/aircon"],
        )
        assert plan.home == "home-0001"
        assert plan.mirrors == frozenset()
        assert not plan.spans_homes

    def test_ambient_variables_do_not_constrain(self):
        router = ShardRouter(4)
        plan = router.placement_plan(
            ["clock:time_of_day", "event:returns home"],
            ["home-0002/lamp"],
        )
        assert plan.home == "home-0002"
        assert plan.mirrors == frozenset()

    def test_spanning_condition_becomes_mirror_set(self):
        """The PR-5 refactor: a rule reading other homes' variables is
        homed on its device's shard and the foreign variables are
        mirrored — no longer rejected."""
        router = ShardRouter(4)
        plan = router.placement_plan(
            ["home-0001/thermo:svc:temperature",
             "home-0003/smoke:svc:level",
             "home-0002/door:svc:locked"],
            ["home-0002/lobby-door"],
            rule_name="building-unlock",
        )
        assert plan.home == "home-0002"
        assert plan.mirrors == frozenset({
            "home-0001/thermo:svc:temperature",
            "home-0003/smoke:svc:level",
        })
        assert plan.spans_homes
        assert "2 mirrored" in plan.describe()

    def test_until_variables_anchor_the_home(self):
        router = ShardRouter(4)
        plan = router.placement_plan(
            ["home-0001/thermo:svc:temperature",
             "home-0002/door:svc:locked"],
            ["home-0002/aircon"],
            until_variables=["home-0002/door:svc:locked"],
        )
        assert plan.home == "home-0002"
        assert plan.mirrors == frozenset(
            {"home-0001/thermo:svc:temperature"}
        )

    def test_anchor_spanning_homes_rejected(self):
        """Actions (and untils) cannot span homes: arbitration for a
        device happens on the shard owning it."""
        router = ShardRouter(4)
        with pytest.raises(RuleError, match="anchors to multiple homes"):
            router.placement_plan(
                ["home-0001/thermo:svc:temperature"],
                ["home-0001/aircon", "home-0002/aircon"],
                rule_name="two-faced",
            )
        with pytest.raises(RuleError, match="anchors to multiple homes"):
            router.placement_plan(
                ["home-0001/thermo:svc:temperature"],
                ["home-0001/aircon"],
                until_variables=["home-0002/door:svc:locked"],
            )

    def test_no_anchor_falls_back_to_single_condition_home(self):
        router = ShardRouter(4)
        plan = router.placement_plan(
            ["home-0004/thermo:svc:temperature"], [],
        )
        assert plan.home == "home-0004"
        assert plan.mirrors == frozenset()

    def test_no_anchor_with_spanning_condition_rejected(self):
        router = ShardRouter(4)
        with pytest.raises(RuleError, match="cannot choose"):
            router.placement_plan(
                ["home-0001/thermo:svc:temperature",
                 "home-0002/thermo:svc:temperature"], [],
            )

    def test_empty_footprint_rejected(self):
        router = ShardRouter(4)
        with pytest.raises(RuleError, match="no home-keyed"):
            router.placement_plan(["clock:time_of_day"], [])
