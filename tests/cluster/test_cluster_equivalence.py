"""Property test: a ClusterServer is observably identical, home by
home, to independent HomeServers.

A seeded random event stream (sensor bursts, place changes, EPG feeds,
door locks, instantaneous events, time advances, mid-stream rule churn)
is driven through

* a :class:`~repro.cluster.ClusterServer` with N shards behind its
  batching/coalescing ingest bus, and
* one :class:`~repro.core.server.HomeServer` per home fed the same
  per-home stream synchronously,

asserting after every settled step that rule truth, rule states and
device holders agree for every home, and — when coalescing is off, so
intermediate edges are preserved — that each home's trace matches the
corresponding HomeServer's trace entry for entry.
"""

import random

import pytest

from repro.cluster import ClusterServer
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.core.server import HomeServer
from repro.net.bus import NetworkBus
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

HOMES = tuple(f"home-{index:04d}" for index in range(4))
PEOPLE = ("Tom", "Alan", "Emily")
ROOMS = ("living room", "kitchen", "bedroom", "hall")
KEYWORDS = ("baseball", "news", "movie", "jazz")
EVENTS = ("returns home", "leaves home")
VALUE_GRID = [15.0 + 0.5 * i for i in range(60)]


def temp(home):
    return f"{home}/thermo:svc:temperature"


def humid(home):
    return f"{home}/hygro:svc:humidity"


def lux(home):
    return f"{home}/lux:svc:illuminance"


def place_var(home, person):
    return f"{home}/locator:svc:place-{person}"


def epg_var(home):
    return f"{home}/epg:svc:keywords"


def door_var(home):
    return f"{home}/door:svc:locked"


def dark_var(home):
    return f"{home}/hall:svc:dark"


def num(variable, relation, bound):
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


def place(home, person, room, negated=False):
    return DiscreteAtom(place_var(home, person), room, negated=negated)


def act(device, name="Set", level=1):
    return ActionSpec(
        device_udn=device, device_name=device, service_id="svc",
        action_name=name, settings=(Setting("level", level),),
    )


def build_home_rules(home):
    """Fresh rule objects covering every interesting engine path:
    stop actions, untils, arbitration with fallback, negation, EPG
    membership, time windows, events and duration atoms."""
    dev = lambda suffix: f"{home}/{suffix}"
    evening = TimeWindowAtom(hhmm(17), hhmm(21), label="evening")
    return [
        Rule(name=f"{home}-cool", owner="Tom",
             condition=num(temp(home), Relation.GT, 26.0),
             action=act(dev("aircon")),
             stop_action=act(dev("aircon"), "Off")),
        Rule(name=f"{home}-fan", owner="Tom",
             condition=AndCondition([num(temp(home), Relation.GT, 28.0),
                                     num(humid(home), Relation.GT, 24.0)]),
             action=act(dev("fan"))),
        Rule(name=f"{home}-heat", owner="Alan",
             condition=num(temp(home), Relation.LT, 20.0),
             action=act(dev("heater")),
             until=num(temp(home), Relation.GT, 24.0),
             stop_action=act(dev("heater"), "Off")),
        Rule(name=f"{home}-tom-tv", owner="Tom",
             condition=OrCondition([place(home, "Tom", "living room"),
                                    place(home, "Alan", "living room")]),
             action=act(dev("tv"), "ShowJazz")),
        Rule(name=f"{home}-emily-tv", owner="Emily",
             condition=place(home, "Emily", "living room"),
             action=act(dev("tv"), "ShowMovie"),
             fallback=act(dev("recorder"), "Record")),
        Rule(name=f"{home}-lamp", owner="Tom",
             condition=AndCondition([
                 place(home, "Tom", "kitchen", negated=True),
                 num(lux(home), Relation.LT, 30.0)]),
             action=act(dev("lamp"))),
        Rule(name=f"{home}-ballgame", owner="Alan",
             condition=MembershipAtom(epg_var(home), "baseball"),
             action=act(dev("tv2"), "ShowBaseball")),
        Rule(name=f"{home}-evening-lamp", owner="Tom",
             condition=AndCondition([evening,
                                     place(home, "Tom", "living room")]),
             action=act(dev("lamp2"))),
        Rule(name=f"{home}-hall-light", owner="Tom",
             condition=EventAtom("returns home"),
             action=act(dev("hall-light"))),
        Rule(name=f"{home}-alan-arrives", owner="Alan",
             condition=AndCondition([
                 EventAtom("returns home", subject="Alan"),
                 DiscreteAtom(dark_var(home), "true")]),
             action=act(dev("hall-light2"))),
        Rule(name=f"{home}-door-alarm", owner="Emily",
             condition=DurationAtom(
                 DiscreteAtom(door_var(home), "false"), 600.0),
             action=act(dev("alarm")), stop_action=act(dev("alarm"), "Off")),
        Rule(name=f"{home}-muggy", owner="Alan",
             condition=NumericAtom(LinearConstraint.make(
                 LinearExpr.var(temp(home)) - LinearExpr.var(humid(home)),
                 Relation.GT, 5.0)),
             action=act(dev("dehumid"))),
    ]


def late_rule(home):
    return Rule(
        name=f"{home}-late-comer", owner="Tom",
        condition=AndCondition([num(temp(home), Relation.GT, 22.0),
                                place(home, "Alan", "bedroom")]),
        action=act(f"{home}/lamp3"),
    )


class FleetTwin:
    """The same fleet through the cluster and through per-home servers."""

    def __init__(self, shard_count, coalesce):
        self.cluster_sim = Simulator()
        self.cluster = ClusterServer(
            self.cluster_sim, shard_count=shard_count, coalesce=coalesce,
        )
        self.baselines = {}
        self.devices = {}
        self.rule_names = {home: [] for home in HOMES}
        for home in HOMES:
            simulator = Simulator()
            server = HomeServer(simulator, NetworkBus(simulator))
            # The baseline would try to invoke UPnP devices that do not
            # exist in this synthetic fleet; the cluster side discards
            # dispatches, so the baseline must too.
            server.engine.dispatch = lambda spec: None
            self.baselines[home] = (simulator, server)
            for baseline_rule, cluster_rule in zip(build_home_rules(home),
                                                   build_home_rules(home)):
                server.register_rule(baseline_rule)
                self.cluster.register_rule(cluster_rule)
                self.rule_names[home].append(baseline_rule.name)
            server.add_priority_order(
                PriorityOrder(f"{home}/tv", ("Emily", "Tom")))
            self.cluster.add_priority_order(
                PriorityOrder(f"{home}/tv", ("Emily", "Tom")))
            self.devices[home] = sorted({
                udn for rule in build_home_rules(home)
                for udn in rule.devices()
            } | {f"{home}/lamp3"})
        self.now = 0.0

    # -- mirrored operations ---------------------------------------------------

    def ingest(self, home, variable, value):
        self.baselines[home][1].ingest(variable, value)
        self.cluster.ingest(variable, value)

    def post_event(self, home, event_type, subject):
        self.baselines[home][1].post_event(event_type, subject)
        self.cluster.post_event(event_type, subject, home=home)

    def broadcast_event(self, event_type, subject):
        for home in HOMES:
            self.baselines[home][1].post_event(event_type, subject)
        self.cluster.post_event(event_type, subject)

    def advance(self, seconds):
        self.now += seconds
        for simulator, _server in self.baselines.values():
            simulator.run_until(self.now)
        self.cluster_sim.run_until(self.now)

    def add_late_rule(self, home):
        self.baselines[home][1].register_rule(late_rule(home))
        self.cluster.register_rule(late_rule(home))
        self.rule_names[home].append(late_rule(home).name)

    def remove_rule(self, home, name):
        self.baselines[home][1].remove_rule(name)
        self.cluster.remove_rule(name)
        self.rule_names[home].remove(name)

    def set_enabled(self, home, name, enabled):
        self.baselines[home][1].database.get(name).enabled = enabled
        shard = self.cluster.shards[self.cluster.shard_of_rule(name)]
        shard.database.get(name).enabled = enabled

    # -- checks ----------------------------------------------------------------

    def settle_and_check(self, step):
        self.cluster.flush()
        for home in HOMES:
            engine = self.baselines[home][1].engine
            for name in self.rule_names[home]:
                assert engine.rule_truth(name) == \
                    self.cluster.rule_truth(name), \
                    f"step {step}: truth of {name!r} diverged"
                assert engine.rule_state(name) == \
                    self.cluster.rule_state(name), \
                    f"step {step}: state of {name!r} diverged"
            for udn in self.devices[home]:
                base_holder = engine.holder_of(udn)
                cluster_holder = self.cluster.holder_of(udn)
                assert (base_holder is None) == (cluster_holder is None), \
                    f"step {step}: holder presence of {udn!r} diverged"
                if base_holder is not None:
                    assert base_holder[0] == cluster_holder[0], \
                        f"step {step}: holder of {udn!r} diverged"

    def check_traces(self):
        for home in HOMES:
            baseline = [
                (entry.time, entry.kind, entry.rule, entry.device)
                for entry in self.baselines[home][1].engine.trace
            ]
            clustered = [
                (entry.time, entry.kind, entry.rule, entry.device)
                for entry in self.cluster.trace(home=home)
            ]
            assert baseline == clustered, f"trace of {home} diverged"

    def shutdown(self):
        self.cluster.shutdown()
        for _sim, server in self.baselines.values():
            server.shutdown()


def drive(twin, seed, steps=160):
    rng = random.Random(seed)
    fired_any = False
    for step in range(steps):
        home = HOMES[rng.randrange(len(HOMES))]
        op = rng.random()
        if op < 0.40:
            variable = rng.choice(
                (temp(home), humid(home), lux(home)))
            # Bursts exercise coalescing; singles exercise the trickle.
            for value in rng.sample(VALUE_GRID, rng.choice((1, 1, 3, 5))):
                twin.ingest(home, variable, value)
        elif op < 0.55:
            person = rng.choice(PEOPLE)
            twin.ingest(home, place_var(home, person), rng.choice(ROOMS))
        elif op < 0.63:
            members = frozenset(
                keyword for keyword in KEYWORDS if rng.random() < 0.4
            )
            twin.ingest(home, epg_var(home), members)
        elif op < 0.70:
            twin.ingest(home, door_var(home), rng.choice(("true", "false")))
        elif op < 0.74:
            twin.ingest(home, dark_var(home), rng.random() < 0.5)
        elif op < 0.82:
            if rng.random() < 0.3:
                twin.broadcast_event(rng.choice(EVENTS), rng.choice(PEOPLE))
            else:
                twin.post_event(home, rng.choice(EVENTS), rng.choice(PEOPLE))
        else:
            twin.advance(rng.choice((30.0, 120.0, 660.0, 3_600.0)))
        if step == 50:
            twin.set_enabled("home-0002", "home-0002-cool", False)
        if step == 60:
            twin.remove_rule("home-0001", "home-0001-fan")
        if step == 90:
            twin.set_enabled("home-0002", "home-0002-cool", True)
        if step == 100:
            twin.add_late_rule("home-0003")
        twin.settle_and_check(step)
        fired_any = fired_any or len(twin.cluster.trace()) > 0
    assert fired_any, "stream never fired a rule"


@pytest.mark.parametrize("seed", (11, 20260730))
@pytest.mark.parametrize("shard_count", (1, 3))
def test_cluster_matches_independent_home_servers(seed, shard_count):
    """Acceptance: with coalescing on (the production default), per-home
    truth/states/holders match independent HomeServers exactly."""
    twin = FleetTwin(shard_count=shard_count, coalesce=True)
    try:
        drive(twin, seed)
        assert twin.cluster.stats().coalesced > 0, \
            "stream never exercised coalescing"
    finally:
        twin.shutdown()


@pytest.mark.parametrize("seed", (11, 20260730))
def test_cluster_traces_match_without_coalescing(seed):
    """With coalescing off every intermediate edge is preserved, so each
    home's merged-trace slice equals its HomeServer's trace exactly."""
    twin = FleetTwin(shard_count=3, coalesce=False)
    try:
        drive(twin, seed)
        twin.check_traces()
    finally:
        twin.shutdown()
