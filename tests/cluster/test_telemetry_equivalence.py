"""Property test: telemetry must never perturb evaluation.

A telemetry-enabled cluster and a telemetry-disabled twin serve the
same randomized mixed fleet stream (sensor bursts, place changes, EPG
feeds, door/dark flips, events, time advances, mid-stream rule churn);
truth, states and holders are asserted after every settled step and the
per-home traces must match entry for entry — observability is a pure
read-side plane.

Reuses :class:`ClusterAblationTwin`, whose second side takes arbitrary
``ClusterServer`` kwargs: here the "ablation" is ``telemetry=False``.
"""

import random

import pytest

from tests.cluster.test_cluster_ablation_equivalence import (
    ClusterAblationTwin,
)
from tests.cluster.test_cluster_equivalence import (
    EVENTS,
    HOMES,
    KEYWORDS,
    PEOPLE,
    ROOMS,
    VALUE_GRID,
    dark_var,
    door_var,
    epg_var,
    humid,
    late_rule,
    lux,
    place_var,
    temp,
)


@pytest.mark.parametrize("seed", (11, 20260807))
def test_telemetry_on_off_equivalence(seed):
    rng = random.Random(seed)
    twin = ClusterAblationTwin({"telemetry": False})
    fired_any = False
    try:
        for step in range(110):
            home = HOMES[rng.randrange(len(HOMES))]
            op = rng.random()
            if op < 0.35:
                variable = rng.choice((temp(home), humid(home), lux(home)))
                for value in rng.sample(VALUE_GRID, rng.choice((1, 1, 3))):
                    twin.ingest(variable, value)
            elif op < 0.50:
                person = rng.choice(PEOPLE)
                twin.ingest(place_var(home, person), rng.choice(ROOMS))
            elif op < 0.58:
                members = frozenset(
                    keyword for keyword in KEYWORDS if rng.random() < 0.4
                )
                twin.ingest(epg_var(home), members)
            elif op < 0.64:
                twin.ingest(door_var(home), rng.choice(("true", "false")))
            elif op < 0.68:
                twin.ingest(dark_var(home), rng.random() < 0.5)
            elif op < 0.76:
                twin.post_event(home, rng.choice(EVENTS), rng.choice(PEOPLE))
            else:
                twin.advance(rng.choice(
                    (60.0, 300.0, 1_800.0, 3_600.0, 14_400.0)))
            if step == 35:
                twin.set_enabled("home-0002-night", False)
            if step == 50:
                twin.remove_rule("home-0001", "home-0001-offgrid")
            if step == 70:
                twin.set_enabled("home-0002-night", True)
            if step == 85:
                twin.add_late_rule("home-0003")
            twin.settle_and_check(step)
            fired_any = fired_any or len(twin.sides[0][1].trace()) > 0
        assert fired_any, "stream never fired a rule"
        twin.check_traces()
        # The enabled side actually recorded something — the equivalence
        # must not be vacuous because telemetry silently no-opped.
        enabled = twin.sides[0][1]
        snapshot = enabled.telemetry()
        assert snapshot["enabled"]
        assert snapshot["aggregate"]["histograms"]["ingest.write_ms"][
            "count"] + snapshot["aggregate"]["histograms"]["ingest.batch_ms"][
            "count"] > 0
        disabled = twin.sides[1][1]
        assert not disabled.telemetry()["enabled"]
        assert disabled.telemetry()["shards"] == []
    finally:
        twin.shutdown()
