"""Cluster telemetry: snapshot contents, BusStats view, exposition.

Pins the acceptance surface of the observability plane: the merged
:meth:`ClusterServer.telemetry` snapshot covers ingest latency
percentiles, queue depth, coalesce/mirror rates and wheel wake counts;
the Prometheus exposition round-trips; BusStats keeps its historical
attribute API as a registry view whose counters survive bus re-creation
over re-registered shards.
"""

import json
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.cluster import BusStats, ClusterServer, IngestBus
from repro.obs.prom import parse_prometheus
from repro.obs.trace import STAGES, Telemetry
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.support.console import render_telemetry
from repro.workloads.fleet import build_home_fleet, fleet_event_stream


@pytest.fixture(scope="module")
def settled_cluster():
    simulator = Simulator()
    cluster = ClusterServer(simulator, shard_count=3)
    fleet = build_home_fleet(6, 20, seed="telemetry-fixture")
    for rule in fleet.all_rules():
        cluster.register_rule(rule, validate=False)
    for variable, value in fleet_event_stream(
        fleet, events=600, burst=4, seed="telemetry-stream"
    ):
        cluster.ingest(variable, value)
    cluster.flush()
    simulator.run_until(hhmm(23))  # cross window boundaries -> wheel wakes
    yield cluster
    cluster.shutdown()


def test_snapshot_covers_the_acceptance_surface(settled_cluster):
    snapshot = settled_cluster.telemetry()
    assert snapshot["enabled"]
    assert len(snapshot["shards"]) == 3
    aggregate = snapshot["aggregate"]
    # Ingest latency percentiles (batched writes dominate this stream).
    batch = aggregate["histograms"]["ingest.batch_ms"]
    assert batch["count"] > 0
    assert batch["p50"] is not None
    assert batch["p95"] is not None
    # Queue depth gauge exists per shard and aggregates.
    assert "bus.queue_depth" in aggregate["gauges"]
    for shard_view in snapshot["shards"]:
        assert "bus.queue_depth" in shard_view["gauges"]
    # Coalesce/mirror rates from the bus registry.
    rates = snapshot["bus"]["rates"]
    assert 0.0 <= rates["coalesce"] <= 1.0
    assert 0.0 <= rates["mirror"] <= 1.0
    assert rates["coalesce"] > 0.0  # bursty stream must coalesce some
    # Wheel wake counts: window rules crossed boundaries by 23:00.
    assert aggregate["counters"]["wheel.wakes"] > 0
    assert aggregate["counters"]["shard.ticks"] > 0
    assert aggregate["counters"]["wheel.armed_total"] > 0
    # Columnar counters folded from the engine's stats.
    assert aggregate["counters"]["columnar.writes"] > 0


def test_snapshot_is_strict_json(settled_cluster):
    text = json.dumps(settled_cluster.telemetry())
    assert "Infinity" not in text  # math.inf would serialize as Infinity


def test_span_stages_recorded(settled_cluster):
    snapshot = settled_cluster.telemetry()
    aggregate = snapshot["aggregate"]
    for stage in ("drain", "batch", "sweep", "fanout", "wheel"):
        assert aggregate["histograms"][f"span.{stage}_ms"]["count"] > 0, stage
    ring = [span for view in snapshot["shards"] for span in view["spans"]]
    assert ring
    assert {span["stage"] for span in ring} <= set(STAGES)
    assert all(span["ms"] >= 0.0 for span in ring)


def test_aggregate_is_fold_of_shard_views(settled_cluster):
    snapshot = settled_cluster.telemetry()
    for key in ("shard.ticks", "columnar.writes", "wheel.wakes"):
        assert snapshot["aggregate"]["counters"][key] == sum(
            view["counters"][key] for view in snapshot["shards"]
        )
    assert snapshot["aggregate"]["histograms"]["ingest.batch_ms"]["count"] \
        == sum(view["histograms"]["ingest.batch_ms"]["count"]
               for view in snapshot["shards"])


def test_prometheus_round_trips(settled_cluster):
    samples = parse_prometheus(settled_cluster.prometheus())
    snapshot = settled_cluster.telemetry()
    for view in snapshot["shards"]:
        labels = (("shard", str(view["shard"])),)
        assert samples[("repro_shard_ticks_total", labels)] == \
            view["counters"]["shard.ticks"]
        assert samples[("repro_ingest_batch_ms_count", labels)] == \
            view["histograms"]["ingest.batch_ms"]["count"]
    assert samples[("repro_bus_published_total", ())] == \
        snapshot["bus"]["counters"]["bus.published"]


def test_console_table_renders(settled_cluster):
    table = render_telemetry(settled_cluster.telemetry())
    lines = table.splitlines()
    assert "p95 ms" in lines[0]
    assert sum(1 for line in lines if line.lstrip().startswith(
        ("0 ", "1 ", "2 "))) == 3
    assert any(line.startswith("bus: ") for line in lines)
    assert any(line.startswith("rates: ") for line in lines)


def test_disabled_cluster_reports_empty_shards_but_live_bus():
    simulator = Simulator()
    cluster = ClusterServer(simulator, shard_count=2, telemetry=False)
    try:
        cluster.ingest("home-x/sense:svc:temperature", 21.0)
        cluster.flush()
        snapshot = cluster.telemetry()
        assert not snapshot["enabled"]
        assert snapshot["shards"] == []
        assert snapshot["aggregate"]["counters"] == {}
        assert snapshot["bus"]["counters"]["bus.published"] == 1
        render_telemetry(snapshot)  # table degrades gracefully
    finally:
        cluster.shutdown()


def test_engine_set_telemetry_rebinds_midstream():
    """The observability plane can be attached to (and detached from) a
    running engine — spans land only while a live plane is bound."""
    simulator = Simulator()
    cluster = ClusterServer(simulator, shard_count=1, telemetry=False)
    try:
        plane = Telemetry()
        engine = cluster.shards[0].engine
        engine.set_telemetry(plane)
        cluster.ingest("home-a/sense:svc:temperature", 20.0)
        cluster.ingest("home-a/sense:svc:humidity", 50.0)
        cluster.flush()
        batches = plane.registry.snapshot()["histograms"]["span.batch_ms"]
        recorded = batches["count"]
        assert recorded > 0
        engine.set_telemetry(None)
        cluster.ingest("home-a/sense:svc:temperature", 25.0)
        cluster.ingest("home-a/sense:svc:humidity", 60.0)
        cluster.flush()
        batches = plane.registry.snapshot()["histograms"]["span.batch_ms"]
        assert batches["count"] == recorded  # detached: nothing new
    finally:
        cluster.shutdown()


# -- BusStats view ------------------------------------------------------------


def test_busstats_attribute_api_reads_registry():
    simulator = Simulator()
    cluster = ClusterServer(simulator, shard_count=2)
    try:
        cluster.ingest("home-a/sense:svc:temperature", 20.0)
        cluster.ingest("home-a/sense:svc:temperature", 21.0)
        cluster.flush()
        stats = cluster.stats()
        assert stats.published == 2
        assert stats.applied >= 1
        assert stats.registry.counter("bus.published").value == 2
        described = stats.describe()
        assert "published=2" in described
    finally:
        cluster.shutdown()


def test_busstats_direct_mutation_is_deprecated_but_works():
    stats = BusStats()
    with pytest.warns(DeprecationWarning):
        stats.published = 5
    assert stats.published == 5
    with pytest.raises(TypeError):
        BusStats(nonsense=1)
    seeded = BusStats(published=3, coalesced=1)
    assert seeded.published == 3
    assert seeded.coalesced == 1


def test_bus_counters_survive_bus_recreation_over_reregistered_shards():
    """Re-creating the bus over re-registered shards used to reset the
    stats silently; passing the old registry keeps them monotonic."""
    simulator = Simulator()
    cluster = ClusterServer(simulator, shard_count=2)
    try:
        cluster.ingest("home-a/sense:svc:temperature", 20.0)
        cluster.flush()
        before = cluster.stats().published
        assert before == 1
        rebuilt = IngestBus(
            simulator, cluster.shards, cluster.router,
            registry=cluster.bus.registry,
        )
        assert rebuilt.stats.published == before  # survived re-creation
        rebuilt.publish("home-a/sense:svc:temperature", 21.0)
        rebuilt.flush()
        assert rebuilt.stats.published == before + 1
        rebuilt.shutdown()
    finally:
        cluster.shutdown()


# -- core/obs import hygiene --------------------------------------------------


def test_obs_import_lint_passes():
    root = Path(__file__).resolve().parents[2]
    result = subprocess.run(
        [sys.executable, str(root / "tools" / "check_obs_imports.py")],
        capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_core_modules_never_import_live_obs():
    """Belt and braces next to the AST lint: the already-imported core
    modules must not have pulled the live obs machinery in."""
    import repro.core.engine  # noqa: F401  (representative import)

    core_modules = [name for name in sys.modules if
                    name.startswith("repro.core")]
    assert core_modules
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name in core_modules:
            module = sys.modules[name]
            source_file = getattr(module, "__file__", None)
            if source_file is None:
                continue
            source = Path(source_file).read_text()
            assert "from repro.obs.metrics" not in source, name
            assert "from repro.obs.trace" not in source, name
