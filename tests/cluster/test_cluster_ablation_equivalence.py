"""Property test: a cluster with the shared evaluation network and the
time-window wheel is observably identical to one with either (or both)
ablated.

Two :class:`~repro.cluster.ClusterServer`\\ s — one fully enabled, one
with ``shared``/``wheel`` flags ablated — serve the same multi-home
stream (sensor bursts, place changes, EPG feeds, events, time advances
across window boundaries, mid-stream rule churn) with coalescing off,
so traces must match entry for entry per home; truth, states and
holders are asserted after every settled step.

Together with the single-home twins in
``tests/core/test_shared_wheel_equivalence.py`` this pins both ablation
pairs end-to-end: the flags ride through ``ClusterServer`` →
``EngineShard`` → ``build_rule_stack`` → ``RuleEngine``, and the shard
clock tasks drive the wheel through the same ``clock_tick`` the
single-home server uses.
"""

import random

import pytest

from repro.cluster import ClusterServer
from repro.core.condition import AndCondition, TimeWindowAtom
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.sim.clock import hhmm
from repro.sim.events import Simulator

from tests.cluster.test_cluster_equivalence import (
    EVENTS,
    HOMES,
    KEYWORDS,
    PEOPLE,
    ROOMS,
    VALUE_GRID,
    act,
    build_home_rules,
    dark_var,
    door_var,
    epg_var,
    humid,
    late_rule,
    lux,
    place,
    place_var,
    temp,
)


def build_rules_with_windows(home):
    """The standard per-home set plus wheel-exercising extras: an
    off-tick-grid window and a midnight wrapper."""
    extra = [
        Rule(name=f"{home}-offgrid", owner="Tom",
             condition=AndCondition([
                 TimeWindowAtom(hhmm(9, 10, 30), hhmm(10, 40, 15)),
                 place(home, "Tom", "living room"),
             ]),
             action=act(f"{home}/offgrid-dev")),
        Rule(name=f"{home}-night", owner="Alan",
             condition=TimeWindowAtom(hhmm(21), hhmm(6)),
             action=act(f"{home}/night-dev"),
             stop_action=act(f"{home}/night-dev", "Off")),
    ]
    return build_home_rules(home) + extra


class ClusterAblationTwin:
    """The same fleet through two differently-flagged clusters."""

    def __init__(self, ablation: dict) -> None:
        self.sides = []
        self.rule_names = {home: [] for home in HOMES}
        for kwargs in ({}, ablation):
            simulator = Simulator()
            cluster = ClusterServer(
                simulator, shard_count=3, coalesce=False, **kwargs,
            )
            self.sides.append((simulator, cluster))
        self.devices = {}
        for home in HOMES:
            for _simulator, cluster in self.sides:
                for rule in build_rules_with_windows(home):
                    cluster.register_rule(rule)
                cluster.add_priority_order(
                    PriorityOrder(f"{home}/tv", ("Emily", "Tom")))
            self.rule_names[home] = [
                rule.name for rule in build_rules_with_windows(home)
            ]
            self.devices[home] = sorted({
                udn for rule in build_rules_with_windows(home)
                for udn in rule.devices()
            })
        self.now = 0.0

    def ingest(self, variable, value):
        for _simulator, cluster in self.sides:
            cluster.ingest(variable, value)

    def post_event(self, home, event_type, subject):
        for _simulator, cluster in self.sides:
            cluster.post_event(event_type, subject, home=home)

    def advance(self, seconds):
        self.now += seconds
        for simulator, _cluster in self.sides:
            simulator.run_until(self.now)

    def add_late_rule(self, home):
        for _simulator, cluster in self.sides:
            cluster.register_rule(late_rule(home))
        self.rule_names[home].append(late_rule(home).name)

    def remove_rule(self, home, name):
        for _simulator, cluster in self.sides:
            cluster.remove_rule(name)
        self.rule_names[home].remove(name)

    def set_enabled(self, name, enabled):
        for _simulator, cluster in self.sides:
            shard = cluster.shards[cluster.shard_of_rule(name)]
            shard.database.get(name).enabled = enabled

    def settle_and_check(self, step):
        for _simulator, cluster in self.sides:
            cluster.flush()
        _, full = self.sides[0]
        _, ablated = self.sides[1]
        for home in HOMES:
            for name in self.rule_names[home]:
                assert full.rule_truth(name) == ablated.rule_truth(name), \
                    f"step {step}: truth of {name!r} diverged"
                assert full.rule_state(name) == ablated.rule_state(name), \
                    f"step {step}: state of {name!r} diverged"
            for udn in self.devices[home]:
                holder_full = full.holder_of(udn)
                holder_ablated = ablated.holder_of(udn)
                assert (holder_full is None) == (holder_ablated is None), \
                    f"step {step}: holder presence of {udn!r} diverged"
                if holder_full is not None:
                    assert holder_full[0] == holder_ablated[0], \
                        f"step {step}: holder of {udn!r} diverged"

    def check_traces(self):
        _, full = self.sides[0]
        _, ablated = self.sides[1]
        for home in HOMES:
            trace_full = [(e.time, e.kind, e.rule, e.device)
                          for e in full.trace(home=home)]
            trace_ablated = [(e.time, e.kind, e.rule, e.device)
                             for e in ablated.trace(home=home)]
            assert trace_full == trace_ablated, f"trace of {home} diverged"

    def shutdown(self):
        for _simulator, cluster in self.sides:
            cluster.shutdown()


@pytest.mark.parametrize("seed", (7, 20260730))
@pytest.mark.parametrize("ablation", (
    {"shared": False},
    {"wheel": False},
    {"shared": False, "wheel": False},
), ids=("no-shared", "no-wheel", "neither"))
def test_cluster_ablation_equivalence(seed, ablation):
    rng = random.Random(seed)
    twin = ClusterAblationTwin(ablation)
    fired_any = False
    try:
        for step in range(130):
            home = HOMES[rng.randrange(len(HOMES))]
            op = rng.random()
            if op < 0.35:
                variable = rng.choice((temp(home), humid(home), lux(home)))
                for value in rng.sample(VALUE_GRID,
                                        rng.choice((1, 1, 3))):
                    twin.ingest(variable, value)
            elif op < 0.50:
                person = rng.choice(PEOPLE)
                twin.ingest(place_var(home, person), rng.choice(ROOMS))
            elif op < 0.58:
                members = frozenset(
                    keyword for keyword in KEYWORDS if rng.random() < 0.4
                )
                twin.ingest(epg_var(home), members)
            elif op < 0.64:
                twin.ingest(door_var(home), rng.choice(("true", "false")))
            elif op < 0.68:
                twin.ingest(dark_var(home), rng.random() < 0.5)
            elif op < 0.76:
                twin.post_event(home, rng.choice(EVENTS),
                                rng.choice(PEOPLE))
            else:
                twin.advance(rng.choice(
                    (60.0, 300.0, 1_800.0, 3_600.0, 14_400.0)))
            if step == 40:
                twin.set_enabled("home-0002-night", False)
            if step == 55:
                twin.remove_rule("home-0001", "home-0001-offgrid")
            if step == 75:
                twin.set_enabled("home-0002-night", True)
            if step == 90:
                twin.add_late_rule("home-0003")
            twin.settle_and_check(step)
            fired_any = fired_any or len(twin.sides[0][1].trace()) > 0
        assert fired_any, "stream never fired a rule"
        twin.check_traces()
    finally:
        twin.shutdown()
