"""Unit tests for the ClusterServer facade: placement, routing,
introspection, priority orders and lifecycle."""

import pytest

from repro.cluster import ClusterServer
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    EventAtom,
    NumericAtom,
    TimeWindowAtom,
)
from repro.core.engine import RuleState
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.errors import DuplicateRuleError, RuleError, UnknownRuleError
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation


def num(variable, relation, bound):
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


def act(device, name="Set", level=1):
    return ActionSpec(
        device_udn=device, device_name=device, service_id="svc",
        action_name=name, settings=(Setting("level", level),),
    )


def cool_rule(home, name=None, owner="Tom", bound=26.0, level=1):
    return Rule(
        name=name or f"{home}-cool", owner=owner,
        condition=num(f"{home}/thermo:svc:temperature", Relation.GT, bound),
        action=act(f"{home}/aircon", level=level),
    )


@pytest.fixture
def cluster():
    server = ClusterServer(Simulator(), shard_count=3)
    yield server
    server.shutdown()


class TestPlacement:
    def test_rule_lands_on_its_homes_shard(self, cluster):
        rule = cool_rule("home-0001")
        cluster.register_rule(rule)
        expected = cluster.router.shard_of_key("home-0001")
        assert cluster.shard_of_rule(rule.name) == expected
        assert rule.name in cluster.shards[expected].database

    def test_home_of_uses_condition_and_devices(self, cluster):
        rule = Rule(
            name="evening-lamp", owner="Tom",
            condition=TimeWindowAtom(hhmm(17), hhmm(21)),
            action=act("home-0005/lamp"),
        )
        assert cluster.home_of(rule) == "home-0005"

    def test_cross_home_rule_homed_on_device_shard(self, cluster):
        """A rule reading one home's sensor but driving another home's
        device registers (PR 5): homed with its device, the foreign
        sensor mirrored in — unless the two homes happen to share a
        shard, in which case no mirror plumbing is needed (the shard
        already owns the authoritative copy)."""
        variable = "home-0001/thermo:svc:temperature"
        straddler = Rule(
            name="straddler", owner="Tom",
            condition=num(variable, Relation.GT, 20.0),
            action=act("home-0002/aircon"),
        )
        cluster.register_rule(straddler)
        home_shard = cluster.router.shard_of_key("home-0002")
        assert cluster.shard_of_rule("straddler") == home_shard
        assert cluster.mirrors_of_rule("straddler") == frozenset({variable})
        shard = cluster.shards[home_shard]
        if cluster.router.shard_of(variable) == home_shard:
            # Co-located homes: the variable is owned, not mirrored.
            assert shard.mirror_variables() == frozenset()
            assert not shard.engine.world.is_mirrored(variable)
            assert cluster.bus.mirror_routes_of(variable) == ()
        else:
            assert shard.mirror_variables() == frozenset({variable})
            assert shard.engine.world.is_mirrored(variable)
            assert cluster.bus.mirror_routes_of(variable) == (home_shard,)
        # Either way the rule serves: the foreign sensor fires it.
        cluster.ingest(variable, 25.0)
        cluster.flush()
        assert cluster.rule_truth("straddler") is True

    def test_colocated_and_remote_mirrors_both_serve(self):
        """Pin one of each shape explicitly: home-0001/home-0002 share a
        shard under the 3-shard ring, lobby lives elsewhere."""
        cluster = ClusterServer(Simulator(), shard_count=3)
        try:
            colocated = cluster.router.shard_of_key("home-0001") == \
                cluster.router.shard_of_key("home-0002")
            assert colocated, "ring changed; pick co-located homes anew"
            cluster.register_rule(Rule(
                name="neighbour", owner="Tom",
                condition=num("home-0001/thermo:svc:temperature",
                              Relation.GT, 20.0),
                action=act("home-0002/fan"),
            ))
            cluster.register_rule(building_rule())  # lobby: remote mirrors
            assert cluster.shards[
                cluster.shard_of_rule("neighbour")
            ].mirror_variables() == frozenset()
            lobby_shard = cluster.shard_of_rule("lobby-unlock")
            assert cluster.shards[lobby_shard].mirror_variables()
            cluster.ingest("home-0001/thermo:svc:temperature", 25.0)
            cluster.ingest("home-0001/smoke:svc:level", 80.0)
            cluster.flush()
            assert cluster.rule_truth("neighbour") is True
            assert cluster.rule_truth("lobby-unlock") is True
        finally:
            cluster.shutdown()

    def test_anchor_spanning_homes_still_rejected(self, cluster):
        two_faced = Rule(
            name="two-faced", owner="Tom",
            condition=num("home-0001/thermo:svc:temperature",
                          Relation.GT, 20.0),
            action=act("home-0001/aircon"),
            fallback=act("home-0002/aircon"),
        )
        with pytest.raises(RuleError, match="anchors to multiple homes"):
            cluster.register_rule(two_faced)
        assert two_faced.name not in cluster._shard_of_rule

    def test_duplicate_name_rejected_cluster_wide(self, cluster):
        cluster.register_rule(cool_rule("home-0001", name="dup"))
        with pytest.raises(DuplicateRuleError):
            cluster.register_rule(cool_rule("home-0002", name="dup"))


class TestLifecycle:
    def test_remove_rule_round_trip(self, cluster):
        rule = cool_rule("home-0001")
        cluster.register_rule(rule)
        removed = cluster.remove_rule(rule.name)
        assert removed is rule
        with pytest.raises(UnknownRuleError):
            cluster.shard_of_rule(rule.name)
        with pytest.raises(UnknownRuleError):
            cluster.remove_rule(rule.name)

    def test_rule_count_and_describe(self, cluster):
        for index in range(4):
            cluster.register_rule(cool_rule(f"home-{index:04d}"))
        assert cluster.rule_count() == 4
        lines = cluster.describe_shards()
        assert len(lines) == 3
        assert sum(int(line.split()[2]) for line in lines) == 4

    def test_shutdown_cancels_clock_and_drains(self):
        simulator = Simulator()
        cluster = ClusterServer(simulator, shard_count=2)
        cluster.register_rule(cool_rule("home-0001"))
        cluster.ingest("home-0001/thermo:svc:temperature", 30.0)
        cluster.shutdown()
        simulator.run()  # nothing left: clock ticks and drains cancelled
        assert cluster.rule_truth("home-0001-cool") is False


class TestServing:
    def test_ingest_fires_rules_after_flush(self, cluster):
        rule = cool_rule("home-0001")
        cluster.register_rule(rule)
        cluster.ingest("home-0001/thermo:svc:temperature", 30.0)
        cluster.flush()
        assert cluster.rule_truth(rule.name) is True
        assert cluster.rule_state(rule.name) is RuleState.ACTIVE
        holder = cluster.holder_of("home-0001/aircon")
        assert holder is not None and holder[0] == rule.name

    def test_conflicting_rules_same_home_arbitrate_with_order(self, cluster):
        tom = cool_rule("home-0001", name="tom-cool", owner="Tom", level=1)
        alan = cool_rule("home-0001", name="alan-cool", owner="Alan",
                         bound=24.0, level=9)
        reports = []
        reports += cluster.register_rule(tom)
        reports += cluster.register_rule(alan)
        assert reports, "same-device rules must report a conflict"
        cluster.add_priority_order(
            PriorityOrder("home-0001/aircon", ("Alan", "Tom"))
        )
        cluster.ingest("home-0001/thermo:svc:temperature", 30.0)
        cluster.flush()
        holder = cluster.holder_of("home-0001/aircon")
        assert holder is not None and holder[0] == "alan-cool"
        assert cluster.rule_state("tom-cool") is RuleState.DENIED

    def test_post_event_routed_to_home(self, cluster):
        rule = Rule(
            name="hall-light", owner="Tom",
            condition=EventAtom("returns home"),
            action=act("home-0001/hall-light"),
        )
        cluster.register_rule(rule)
        cluster.post_event("returns home", "Tom", home="home-0001")
        cluster.flush()
        trace = cluster.trace(home="home-0001")
        assert any(entry.kind == "fire" and entry.rule == "hall-light"
                   for entry in trace)

    def test_trace_merges_across_shards_in_time_order(self, cluster):
        for index in range(3):
            cluster.register_rule(cool_rule(f"home-{index:04d}"))
            cluster.ingest(f"home-{index:04d}/thermo:svc:temperature", 30.0)
        cluster.flush()
        entries = cluster.trace()
        assert len(entries) == 3
        assert [e.time for e in entries] == sorted(e.time for e in entries)
        only = cluster.trace(home="home-0001")
        assert {e.rule for e in only} == {"home-0001-cool"}

    def test_registration_is_an_ingest_barrier(self, cluster):
        """A rule registered while writes sit coalesced in the queue must
        not retroactively observe (or miss) merged values: pending
        batches settle before the rule exists, matching the synchronous
        order publish → publish → register."""
        cluster.register_rule(cool_rule("home-0001"))  # makes TEMP live
        variable = "home-0001/thermo:svc:temperature"
        cluster.ingest(variable, 30.0)
        cluster.ingest(variable, 10.0)  # coalesces with the write above
        shard = cluster.router.shard_of_key("home-0001")
        assert cluster.bus.pending(shard) == 1
        until_rule = Rule(
            name="windowed", owner="Alan",
            condition=num(variable, Relation.GT, 20.0),
            action=act("home-0001/vent"),
            until=num(variable, Relation.LT, 20.0),
        )
        cluster.register_rule(until_rule)
        assert cluster.bus.pending(shard) == 0  # batch settled first
        assert cluster.rule_truth("windowed") is False

    def test_set_unit_coercion_matches_home_server(self, cluster):
        from repro.core.condition import MembershipAtom
        rule = Rule(
            name="ballgame", owner="Alan",
            condition=MembershipAtom("home-0001/epg:svc:keywords",
                                     "baseball"),
            action=act("home-0001/tv"),
        )
        cluster.register_rule(rule)
        cluster.set_variable_unit("home-0001/epg:svc:keywords", "set")
        cluster.ingest("home-0001/epg:svc:keywords", "baseball, news")
        cluster.flush()
        assert cluster.rule_truth("ballgame") is True

    def test_trace_attribution_survives_name_reuse_across_homes(self,
                                                                cluster):
        first = cool_rule("home-0001", name="night-lamp")
        cluster.register_rule(first)
        cluster.ingest("home-0001/thermo:svc:temperature", 30.0)
        cluster.flush()
        assert len(cluster.trace(home="home-0001")) == 1
        cluster.remove_rule("night-lamp")
        cluster.simulator.run_until(cluster.simulator.now + 60.0)
        second = cool_rule("home-0002", name="night-lamp")
        cluster.register_rule(second)
        cluster.ingest("home-0002/thermo:svc:temperature", 30.0)
        cluster.flush()
        old_home = cluster.trace(home="home-0001")
        new_home = cluster.trace(home="home-0002")
        assert [e.device for e in old_home] == ["home-0001/aircon"]
        assert [e.device for e in new_home] == ["home-0002/aircon"]

    def test_event_for_unknown_home_is_a_quiet_no_op(self, cluster):
        cluster.post_event("returns home", "Tom", home="no-such-home")
        cluster.flush()
        assert cluster.trace() == []
        assert "no-such-home" not in cluster._rules_of_home

    def test_discrete_and_set_values_route_and_apply(self, cluster):
        rule = Rule(
            name="present", owner="Tom",
            condition=DiscreteAtom("home-0001/presence:svc:room",
                                   "living room"),
            action=act("home-0001/lamp"),
        )
        cluster.register_rule(rule)
        cluster.ingest("home-0001/presence:svc:room", "living room")
        cluster.flush()
        assert cluster.rule_truth("present") is True


def building_rule(name="lobby-unlock", owner="manager", *, bound=50.0,
                  level=1, **kwargs):
    """A cross-home rule: apartment smoke sensors drive a lobby device."""
    from repro.core.condition import OrCondition
    return Rule(
        name=name, owner=owner,
        condition=OrCondition([
            num("home-0001/smoke:svc:level", Relation.GT, bound),
            num("home-0002/smoke:svc:level", Relation.GT, bound),
        ]),
        action=act("lobby/door", level=level),
        **kwargs,
    )


class TestCrossHomeServing:
    """Acceptance for the PR-5 tentpole: previously rejected cross-home
    rules register, fire on mirrored ingest, arbitrate, and prune their
    mirror plumbing on removal."""

    def test_fires_on_mirrored_ingest(self, cluster):
        cluster.register_rule(building_rule())
        home_shard = cluster.shard_of_rule("lobby-unlock")
        cluster.ingest("home-0001/smoke:svc:level", 80.0)
        cluster.flush()
        assert cluster.rule_truth("lobby-unlock") is True
        assert cluster.rule_state("lobby-unlock") is RuleState.ACTIVE
        holder = cluster.holder_of("lobby/door")
        assert holder is not None and holder[0] == "lobby-unlock"
        # The decision is attributed to the anchor home's trace slice.
        assert any(e.rule == "lobby-unlock" and e.kind == "fire"
                   for e in cluster.trace(home="lobby"))
        # Falling smoke stops it again, through the same mirror.
        cluster.ingest("home-0001/smoke:svc:level", 10.0)
        cluster.flush()
        assert cluster.rule_truth("lobby-unlock") is False
        assert cluster.holder_of("lobby/door") is None
        owner_shard = cluster.router.shard_of(
            "home-0001/smoke:svc:level")
        if owner_shard != home_shard:
            assert cluster.stats().mirrored > 0

    def test_mirror_seeded_from_owner_at_registration(self, cluster):
        """A cross-home rule registered after the foreign sensor already
        reported must see the current value immediately — the mirror is
        seeded from the owner shard's world."""
        cluster.ingest("home-0001/smoke:svc:level", 90.0)
        cluster.flush()
        cluster.register_rule(building_rule())
        assert cluster.rule_truth("lobby-unlock") is True

    def test_cross_home_rules_arbitrate_with_priority_order(self, cluster):
        manager = building_rule("mgr-door", owner="manager", level=1)
        chief = building_rule("chief-door", owner="fire-chief",
                              bound=40.0, level=9)
        reports = []
        reports += cluster.register_rule(manager)
        reports += cluster.register_rule(chief)
        assert reports, "same-device building rules must report a conflict"
        cluster.add_priority_order(
            PriorityOrder("lobby/door", ("fire-chief", "manager"))
        )
        cluster.ingest("home-0002/smoke:svc:level", 70.0)
        cluster.flush()
        holder = cluster.holder_of("lobby/door")
        assert holder is not None and holder[0] == "chief-door"
        assert cluster.rule_state("mgr-door") is RuleState.DENIED

    def test_until_reads_anchor_home(self, cluster):
        cluster.register_rule(building_rule(
            until=num("lobby/reset:svc:pressed", Relation.GT, 0.5),
        ))
        cluster.ingest("home-0001/smoke:svc:level", 80.0)
        cluster.flush()
        assert cluster.rule_state("lobby-unlock") is RuleState.ACTIVE
        cluster.ingest("lobby/reset:svc:pressed", 1.0)
        cluster.flush()
        assert cluster.holder_of("lobby/door") is None

    def test_home_scoped_event_wakes_remote_watchers(self, cluster):
        """An event scoped to an apartment must wake the building rule
        mirroring that apartment, homed on another shard."""
        watcher = Rule(
            name="evac", owner="manager",
            condition=AndCondition([
                EventAtom("alarm"),
                num("home-0001/smoke:svc:level", Relation.GT, 10.0),
            ]),
            action=act("lobby/siren"),
        )
        cluster.register_rule(watcher)
        cluster.ingest("home-0001/smoke:svc:level", 50.0)
        cluster.flush()
        cluster.post_event("alarm", home="home-0001")
        cluster.flush()
        assert any(e.rule == "evac" and e.kind == "fire"
                   for e in cluster.trace())

    def test_removal_prunes_mirrors_mid_stream(self, cluster):
        """Satellite regression: removing a cross-home rule mid-stream
        prunes its mirror subscriptions and bus routes — later writes to
        the foreign variable no longer reach the old home shard."""
        cluster.register_rule(building_rule())
        variable = "home-0001/smoke:svc:level"
        home_shard = cluster.shard_of_rule("lobby-unlock")
        owner_shard = cluster.router.shard_of(variable)
        assert cluster.bus.mirror_routes_of(variable) == (home_shard,) \
            or owner_shard == home_shard
        cluster.ingest(variable, 30.0)
        cluster.ingest(variable, 35.0)  # mirrored vars never coalesce
        if owner_shard != home_shard:
            assert cluster.bus.pending(home_shard) == 2
        cluster.remove_rule("lobby-unlock")
        shard = cluster.shards[home_shard]
        assert shard.mirror_variables() == frozenset()
        assert cluster.bus.mirror_routes_of(variable) == ()
        assert not shard.engine.world.is_mirrored(variable)
        # A write after removal stays on the owner shard only.
        cluster.ingest(variable, 99.0)
        cluster.flush()
        if owner_shard != home_shard:
            assert shard.engine.world.value_of(variable) == 35.0
        assert cluster.shards[owner_shard].engine.world \
            .value_of(variable) == 99.0
        # Re-registration re-seeds the mirror from the owner's world.
        cluster.register_rule(building_rule("lobby-unlock-2"))
        assert cluster.rule_truth("lobby-unlock-2") is True

    def test_shared_mirror_survives_sibling_removal(self, cluster):
        """Refcounting: two building rules reading the same foreign
        sensor share one subscription; removing one keeps it alive."""
        cluster.register_rule(building_rule("first"))
        cluster.register_rule(building_rule("second", bound=60.0))
        variable = "home-0001/smoke:svc:level"
        home_shard = cluster.shard_of_rule("first")
        cluster.remove_rule("first")
        assert variable in cluster.shards[home_shard].mirror_variables()
        cluster.ingest(variable, 80.0)
        cluster.flush()
        assert cluster.rule_truth("second") is True

    def test_home_scoped_event_with_custom_key_extractor(self):
        """Regression: watcher bookkeeping must use the router's
        configurable ``key_of``, not the default parser — a custom
        naming scheme must still route home-scoped events to the
        cross-home rules watching that home."""
        from repro.cluster import ShardRouter
        router = ShardRouter(3, key_of=lambda ident: ident.split("|")[0])
        cluster = ClusterServer(Simulator(), router=router)
        try:
            watcher = Rule(
                name="zone-evac", owner="manager",
                condition=AndCondition([
                    EventAtom("alarm"),
                    num("zoneB|smoke", Relation.GT, 10.0),
                ]),
                action=act("zoneA|siren"),
            )
            cluster.register_rule(watcher)
            assert cluster.mirrors_of_rule("zone-evac") == \
                frozenset({"zoneB|smoke"})
            cluster.ingest("zoneB|smoke", 50.0)
            cluster.flush()
            cluster.post_event("alarm", home="zoneB")
            cluster.flush()
            assert any(e.rule == "zone-evac" and e.kind == "fire"
                       for e in cluster.trace())
        finally:
            cluster.shutdown()

    def test_failed_registration_rolls_back_mirrors(self, cluster):
        """A rule rejected by the validation pipeline must not leave
        mirror routes behind."""
        from repro.errors import InconsistentRuleError
        variable = "home-0001/smoke:svc:level"
        impossible = Rule(
            name="impossible", owner="manager",
            condition=AndCondition([
                num(variable, Relation.GT, 80.0),
                num(variable, Relation.LT, 20.0),
            ]),
            action=act("lobby/door"),
        )
        with pytest.raises(InconsistentRuleError):
            cluster.register_rule(impossible)
        assert cluster.bus.mirror_routes_of(variable) == ()
        for shard in cluster.shards:
            assert shard.mirror_variables() == frozenset()
