"""Unit tests for the ClusterServer facade: placement, routing,
introspection, priority orders and lifecycle."""

import pytest

from repro.cluster import ClusterServer
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    DiscreteAtom,
    EventAtom,
    NumericAtom,
    TimeWindowAtom,
)
from repro.core.engine import RuleState
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.errors import DuplicateRuleError, RuleError, UnknownRuleError
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation


def num(variable, relation, bound):
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


def act(device, name="Set", level=1):
    return ActionSpec(
        device_udn=device, device_name=device, service_id="svc",
        action_name=name, settings=(Setting("level", level),),
    )


def cool_rule(home, name=None, owner="Tom", bound=26.0, level=1):
    return Rule(
        name=name or f"{home}-cool", owner=owner,
        condition=num(f"{home}/thermo:svc:temperature", Relation.GT, bound),
        action=act(f"{home}/aircon", level=level),
    )


@pytest.fixture
def cluster():
    server = ClusterServer(Simulator(), shard_count=3)
    yield server
    server.shutdown()


class TestPlacement:
    def test_rule_lands_on_its_homes_shard(self, cluster):
        rule = cool_rule("home-0001")
        cluster.register_rule(rule)
        expected = cluster.router.shard_of_key("home-0001")
        assert cluster.shard_of_rule(rule.name) == expected
        assert rule.name in cluster.shards[expected].database

    def test_home_of_uses_condition_and_devices(self, cluster):
        rule = Rule(
            name="evening-lamp", owner="Tom",
            condition=TimeWindowAtom(hhmm(17), hhmm(21)),
            action=act("home-0005/lamp"),
        )
        assert cluster.home_of(rule) == "home-0005"

    def test_spanning_rule_rejected(self, cluster):
        straddler = Rule(
            name="straddler", owner="Tom",
            condition=num("home-0001/thermo:svc:temperature",
                          Relation.GT, 20.0),
            action=act("home-0002/aircon"),
        )
        with pytest.raises(RuleError, match="spans multiple homes"):
            cluster.register_rule(straddler)
        assert straddler.name not in cluster._shard_of_rule

    def test_duplicate_name_rejected_cluster_wide(self, cluster):
        cluster.register_rule(cool_rule("home-0001", name="dup"))
        with pytest.raises(DuplicateRuleError):
            cluster.register_rule(cool_rule("home-0002", name="dup"))


class TestLifecycle:
    def test_remove_rule_round_trip(self, cluster):
        rule = cool_rule("home-0001")
        cluster.register_rule(rule)
        removed = cluster.remove_rule(rule.name)
        assert removed is rule
        with pytest.raises(UnknownRuleError):
            cluster.shard_of_rule(rule.name)
        with pytest.raises(UnknownRuleError):
            cluster.remove_rule(rule.name)

    def test_rule_count_and_describe(self, cluster):
        for index in range(4):
            cluster.register_rule(cool_rule(f"home-{index:04d}"))
        assert cluster.rule_count() == 4
        lines = cluster.describe_shards()
        assert len(lines) == 3
        assert sum(int(line.split()[2]) for line in lines) == 4

    def test_shutdown_cancels_clock_and_drains(self):
        simulator = Simulator()
        cluster = ClusterServer(simulator, shard_count=2)
        cluster.register_rule(cool_rule("home-0001"))
        cluster.ingest("home-0001/thermo:svc:temperature", 30.0)
        cluster.shutdown()
        simulator.run()  # nothing left: clock ticks and drains cancelled
        assert cluster.rule_truth("home-0001-cool") is False


class TestServing:
    def test_ingest_fires_rules_after_flush(self, cluster):
        rule = cool_rule("home-0001")
        cluster.register_rule(rule)
        cluster.ingest("home-0001/thermo:svc:temperature", 30.0)
        cluster.flush()
        assert cluster.rule_truth(rule.name) is True
        assert cluster.rule_state(rule.name) is RuleState.ACTIVE
        holder = cluster.holder_of("home-0001/aircon")
        assert holder is not None and holder[0] == rule.name

    def test_conflicting_rules_same_home_arbitrate_with_order(self, cluster):
        tom = cool_rule("home-0001", name="tom-cool", owner="Tom", level=1)
        alan = cool_rule("home-0001", name="alan-cool", owner="Alan",
                         bound=24.0, level=9)
        reports = []
        reports += cluster.register_rule(tom)
        reports += cluster.register_rule(alan)
        assert reports, "same-device rules must report a conflict"
        cluster.add_priority_order(
            PriorityOrder("home-0001/aircon", ("Alan", "Tom"))
        )
        cluster.ingest("home-0001/thermo:svc:temperature", 30.0)
        cluster.flush()
        holder = cluster.holder_of("home-0001/aircon")
        assert holder is not None and holder[0] == "alan-cool"
        assert cluster.rule_state("tom-cool") is RuleState.DENIED

    def test_post_event_routed_to_home(self, cluster):
        rule = Rule(
            name="hall-light", owner="Tom",
            condition=EventAtom("returns home"),
            action=act("home-0001/hall-light"),
        )
        cluster.register_rule(rule)
        cluster.post_event("returns home", "Tom", home="home-0001")
        cluster.flush()
        trace = cluster.trace(home="home-0001")
        assert any(entry.kind == "fire" and entry.rule == "hall-light"
                   for entry in trace)

    def test_trace_merges_across_shards_in_time_order(self, cluster):
        for index in range(3):
            cluster.register_rule(cool_rule(f"home-{index:04d}"))
            cluster.ingest(f"home-{index:04d}/thermo:svc:temperature", 30.0)
        cluster.flush()
        entries = cluster.trace()
        assert len(entries) == 3
        assert [e.time for e in entries] == sorted(e.time for e in entries)
        only = cluster.trace(home="home-0001")
        assert {e.rule for e in only} == {"home-0001-cool"}

    def test_registration_is_an_ingest_barrier(self, cluster):
        """A rule registered while writes sit coalesced in the queue must
        not retroactively observe (or miss) merged values: pending
        batches settle before the rule exists, matching the synchronous
        order publish → publish → register."""
        cluster.register_rule(cool_rule("home-0001"))  # makes TEMP live
        variable = "home-0001/thermo:svc:temperature"
        cluster.ingest(variable, 30.0)
        cluster.ingest(variable, 10.0)  # coalesces with the write above
        shard = cluster.router.shard_of_key("home-0001")
        assert cluster.bus.pending(shard) == 1
        until_rule = Rule(
            name="windowed", owner="Alan",
            condition=num(variable, Relation.GT, 20.0),
            action=act("home-0001/vent"),
            until=num(variable, Relation.LT, 20.0),
        )
        cluster.register_rule(until_rule)
        assert cluster.bus.pending(shard) == 0  # batch settled first
        assert cluster.rule_truth("windowed") is False

    def test_set_unit_coercion_matches_home_server(self, cluster):
        from repro.core.condition import MembershipAtom
        rule = Rule(
            name="ballgame", owner="Alan",
            condition=MembershipAtom("home-0001/epg:svc:keywords",
                                     "baseball"),
            action=act("home-0001/tv"),
        )
        cluster.register_rule(rule)
        cluster.set_variable_unit("home-0001/epg:svc:keywords", "set")
        cluster.ingest("home-0001/epg:svc:keywords", "baseball, news")
        cluster.flush()
        assert cluster.rule_truth("ballgame") is True

    def test_trace_attribution_survives_name_reuse_across_homes(self,
                                                                cluster):
        first = cool_rule("home-0001", name="night-lamp")
        cluster.register_rule(first)
        cluster.ingest("home-0001/thermo:svc:temperature", 30.0)
        cluster.flush()
        assert len(cluster.trace(home="home-0001")) == 1
        cluster.remove_rule("night-lamp")
        cluster.simulator.run_until(cluster.simulator.now + 60.0)
        second = cool_rule("home-0002", name="night-lamp")
        cluster.register_rule(second)
        cluster.ingest("home-0002/thermo:svc:temperature", 30.0)
        cluster.flush()
        old_home = cluster.trace(home="home-0001")
        new_home = cluster.trace(home="home-0002")
        assert [e.device for e in old_home] == ["home-0001/aircon"]
        assert [e.device for e in new_home] == ["home-0002/aircon"]

    def test_event_for_unknown_home_is_a_quiet_no_op(self, cluster):
        cluster.post_event("returns home", "Tom", home="no-such-home")
        cluster.flush()
        assert cluster.trace() == []
        assert "no-such-home" not in cluster._rules_of_home

    def test_discrete_and_set_values_route_and_apply(self, cluster):
        rule = Rule(
            name="present", owner="Tom",
            condition=DiscreteAtom("home-0001/presence:svc:room",
                                   "living room"),
            action=act("home-0001/lamp"),
        )
        cluster.register_rule(rule)
        cluster.ingest("home-0001/presence:svc:room", "living room")
        cluster.flush()
        assert cluster.rule_truth("present") is True
