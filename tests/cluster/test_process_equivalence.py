"""Randomized backend equivalence: process workers vs in-thread shards.

The acceptance property of the process plane: a cluster whose shards
live in worker processes behind the wire protocol is observably
identical — rule truth, rule states, device holders, and (with
coalescing off) full per-home traces — to the in-thread cluster
serving the same scripted life.  The wire's one-way pipelining, the
per-frame clock catch-up, and the counter barrier must together
reproduce exactly the ordering an in-process drain produces.

Scripts come from :mod:`tests.cluster.recovery_stack` — the same
seeded multi-home lives the durability suites replay, with fractional
timestamps so no ingest ever ties with a whole-second timer.  Runs
cover the columnar and both ablation backends (flags ride the HELLO
config into the worker), plus cross-home mirror rules whose fan-out
crosses the socket, and a durability round-trip where WAL/snapshot
files written by worker processes restore onto either backend.
"""

import pytest

from repro.cluster import DurabilityPlane
from repro.core.condition import OrCondition
from repro.core.rule import Rule
from repro.sim.events import Simulator
from repro.solver.linear import Relation
from tests.cluster.recovery_stack import (
    HOME,
    HOMES,
    act,
    assert_equivalent,
    drive_durable,
    drive_uninterrupted,
    end_time_of,
    new_cluster,
    num,
    observe,
    restore,
    script,
    temp,
)

pytestmark = pytest.mark.hard_timeout(300)

BACKENDS = ("thread", "process")


def run_twins(seed, *, homes=(HOME,), shard_count=2, coalesce=False,
              **engine_kwargs):
    """The same scripted life through both backends; returns
    ``{backend: observation}``."""
    ops = script(seed, homes=homes)
    end_time = end_time_of(ops)
    results = {}
    for backend in BACKENDS:
        server = new_cluster(
            Simulator(), homes, shard_count=shard_count,
            coalesce=coalesce, backend=backend, **engine_kwargs,
        )
        try:
            drive_uninterrupted(server, ops, end_time)
            results[backend] = observe(server, homes)
        finally:
            server.shutdown()
    return results


@pytest.mark.parametrize("seed", range(6))
def test_multihome_exact_traces(seed):
    """Coalescing off: every intermediate edge must survive into the
    trace identically on both sides of the socket."""
    results = run_twins(seed, homes=HOMES, shard_count=2)
    assert_equivalent(results["process"], results["thread"],
                      f"seed {seed}, columnar")


@pytest.mark.parametrize("seed", (1, 4))
def test_with_coalescing(seed):
    """Coalescing on: settled observables (truth, states, holders) must
    agree; traces are exempt — merged writes legitimately drop
    intermediate edges."""
    results = run_twins(seed, homes=HOMES, shard_count=2, coalesce=True)
    for side in results.values():
        side["traces"] = {}
    assert_equivalent(results["process"], results["thread"],
                      f"seed {seed}, coalesced")


@pytest.mark.parametrize("seed", (2, 5))
def test_ablation_backend_per_rule(seed):
    """columnar=False: the per-rule engine path behind the wire."""
    results = run_twins(seed, homes=HOMES[:2], shard_count=2,
                        columnar=False)
    assert_equivalent(results["process"], results["thread"],
                      f"seed {seed}, columnar off")


def test_ablation_backend_non_incremental():
    """incremental=False: full re-evaluation per ingest, behind the
    wire."""
    results = run_twins(3, homes=HOMES[:2], shard_count=2,
                        incremental=False)
    assert_equivalent(results["process"], results["thread"],
                      "seed 3, incremental off")


def test_cross_home_mirror_rule_over_the_wire():
    """A rule reading two homes' sensors: its foreign variable mirrors
    through BATCH frames to the hosting worker, and its truth tracks
    the remote sensor exactly as the in-thread twin's does."""
    sides = {}
    foreign = None
    for backend in BACKENDS:
        simulator = Simulator()
        server = new_cluster(simulator, HOMES, shard_count=3,
                             backend=backend)
        if foreign is None:
            # Pick a foreign home that genuinely lives on another shard,
            # so the rule's remote reads must mirror across the socket.
            anchor_shard = server.router.shard_of(temp(HOMES[0]))
            foreign = next(
                home for home in HOMES[1:]
                if server.router.shard_of(temp(home)) != anchor_shard)
        try:
            server.register_rule(Rule(
                name=f"{HOMES[0]}-any-hot", owner="manager",
                condition=OrCondition([
                    num(temp(HOMES[0]), Relation.GT, 26.0),
                    num(temp(foreign), Relation.GT, 26.0)]),
                action=act(f"{HOMES[0]}/vent"),
                stop_action=act(f"{HOMES[0]}/vent", "Off")))
            log = []
            for step, (home, value) in enumerate([
                    (HOMES[0], 20.0), (foreign, 30.0), (foreign, 20.0),
                    (HOMES[0], 31.0), (HOMES[0], 19.0), (foreign, 27.5)]):
                simulator.run_until(step + 0.5)
                server.ingest(temp(home), value)
                server.flush()
                log.append((server.rule_truth(f"{HOMES[0]}-any-hot"),
                            server.holder_of(f"{HOMES[0]}/vent")
                            is not None))
            mirrors = frozenset().union(
                *(shard.mirror_variables() for shard in server.shards))
            sides[backend] = (log, mirrors)
        finally:
            server.shutdown()
    assert sides["process"] == sides["thread"]
    # The foreign sensor really was mirrored (not co-located by luck).
    assert temp(foreign) in sides["process"][1]
    # The truth actually toggled with the remote sensor.
    assert {entry[0] for entry in sides["process"][0]} == {True, False}


@pytest.mark.parametrize("restore_backend", BACKENDS)
def test_durable_process_cluster_restores_onto_either_backend(
        tmp_path, restore_backend):
    """Worker processes own the WAL/snapshot files (I/O runs in-worker);
    a restore from that directory — onto thread shards or fresh worker
    processes — matches the crash-free in-thread twin."""
    seed = 7
    ops = script(seed, homes=HOMES[:2])
    end_time = end_time_of(ops)

    twin = new_cluster(Simulator(), HOMES[:2], shard_count=2)
    drive_uninterrupted(twin, ops, end_time)
    expected = observe(twin, HOMES[:2])
    twin.shutdown()

    durable = new_cluster(Simulator(), HOMES[:2], shard_count=2,
                          backend="process")
    try:
        durable.attach_durability(DurabilityPlane(str(tmp_path)))
        assert drive_durable(durable, ops) is None  # no faults, no crash
        durable.simulator.run_until(end_time)
        durable.flush()
        assert_equivalent(observe(durable, HOMES[:2]), expected,
                          "durable process run")
    finally:
        durable.shutdown()

    restored, report = restore(tmp_path, HOMES[:2],
                               backend=restore_backend)
    try:
        assert not report.rules_missing
        assert restored.backend == restore_backend
        restored.simulator.run_until(end_time)
        restored.flush()
        assert_equivalent(observe(restored, HOMES[:2]), expected,
                          f"restored onto {restore_backend}")
    finally:
        restored.shutdown()
