"""Unit-level durability tests: checkpoint/restore round trips, WAL
damage tolerance (torn tails, checksum corruption, epoch mismatches),
crash-interrupted checkpoints, churn-driven re-checkpoints, typed
recovery errors and the recovery metrics surface.

The randomized crash-point sweep lives in test_restart_equivalence.py;
this file pins each mechanism down in isolation."""

import json

import pytest

from repro.cluster import ClusterServer, DurabilityPlane, restore_cluster
from repro.cluster.durability import (
    CRASH_MANIFEST_COMMIT,
    CRASH_SNAPSHOT_WRITE,
    MANIFEST_NAME,
)
from repro.errors import RecoveryError
from repro.sim.events import Simulator
from repro.sim.faults import FaultInjector, SimulatedCrash
from repro.support.wal import WalWriter, encode_record, read_wal
from tests.cluster.recovery_stack import (
    HOME,
    assert_equivalent,
    drive_durable,
    drive_uninterrupted,
    end_time_of,
    fresh_rules,
    new_cluster,
    observe,
    place_var,
    restore,
    resume_index,
    script,
    temp,
)


def expected_outcome(ops, **kwargs):
    """Observe the crash-free twin after the full script."""
    twin = new_cluster(Simulator(), **kwargs)
    drive_uninterrupted(twin, ops, end_time_of(ops))
    outcome = observe(twin)
    twin.shutdown()
    return outcome


def durable_cluster(tmp_path, **kwargs):
    server = new_cluster(Simulator(), **kwargs)
    server.attach_durability(DurabilityPlane(str(tmp_path)))
    return server


def manifest_of(tmp_path):
    return json.loads((tmp_path / MANIFEST_NAME).read_text())


def wal_path_of(tmp_path, shard=0):
    return tmp_path / manifest_of(tmp_path)["shards"][shard]["wal"]


def finish(server, ops, start):
    """Re-feed the undurable suffix and settle to the script's end."""
    assert drive_durable(server, ops, start) is None
    server.simulator.run_until(end_time_of(ops))
    server.flush()


# -- round trip ------------------------------------------------------------------


def test_round_trip_restores_runtime_exactly(tmp_path):
    ops = script(1)
    expected = expected_outcome(ops)
    server = durable_cluster(tmp_path)
    assert drive_durable(server, ops) is None
    # Abrupt kill: no shutdown, no close — the WAL tail past the last
    # checkpoint is all recovery gets.
    restored, report = restore(tmp_path)
    assert report.ok()
    assert report.rules_restored == len(fresh_rules((HOME,)))
    assert not report.rules_missing
    assert report.shards[0].records_replayed == report.shards[0].wal_records
    assert restored.bus.applied_counts[0] == \
        sum(1 for op in ops if op[1] != "ckpt")
    restored.simulator.run_until(end_time_of(ops))
    restored.flush()
    assert_equivalent(observe(restored), expected, "round trip")
    restored.shutdown()


def test_restore_surfaces_recovery_metrics(tmp_path):
    ops = script(2)
    server = durable_cluster(tmp_path)
    assert drive_durable(server, ops) is None
    restored, report = restore(tmp_path)
    counters = restored.telemetry()["bus"]["counters"]
    assert counters["recovery.replayed_records"] == \
        sum(shard.records_replayed for shard in report.shards)
    assert counters["recovery.replayed_entries"] >= 1
    assert counters["recovery.truncated_wals"] == 0
    assert counters["recovery.checkpoints"] >= 1  # the attach checkpoint
    assert "recovery.restore_ms" in restored.telemetry()["bus"]["histograms"]
    text = restored.prometheus()
    assert "repro_recovery_replayed_records_total" in text
    assert "repro_recovery_checkpoints_total" in text
    assert "repro_recovery_wal_records_total" in text
    restored.shutdown()


# -- WAL damage ------------------------------------------------------------------


def test_torn_tail_resumes_from_surviving_prefix(tmp_path):
    ops = script(3)
    expected = expected_outcome(ops)
    server = durable_cluster(tmp_path)
    last_ckpt = max(i for i, op in enumerate(ops) if op[1] == "ckpt")
    cut = min(last_ckpt + 4, len(ops))
    assert drive_durable(server, ops[:cut]) is None
    # The crash tore the final record mid-frame.
    path = wal_path_of(tmp_path)
    path.write_bytes(path.read_bytes()[:-3])
    restored, report = restore(tmp_path)
    assert report.shards[0].truncated
    assert report.shards[0].reason == "torn record payload"
    assert not report.ok()
    finish(restored, ops, resume_index(ops, restored.bus.applied_counts[0]))
    assert_equivalent(observe(restored), expected, "torn tail")
    restored.shutdown()


def test_checksum_corruption_drops_damaged_suffix(tmp_path):
    ops = script(4)
    expected = expected_outcome(ops)
    server = durable_cluster(tmp_path)
    assert drive_durable(server, ops) is None
    path = wal_path_of(tmp_path)
    records, read_report = read_wal(str(path))
    assert not read_report.truncated and len(records) >= 2
    # Flip one byte inside the middle record: it and everything after it
    # must be dropped, then re-fed from the op script.
    middle = len(records) // 2
    offset = sum(len(encode_record(record)) for record in records[:middle])
    blob = bytearray(path.read_bytes())
    blob[offset + 10] ^= 0xFF
    path.write_bytes(bytes(blob))
    restored, report = restore(tmp_path)
    assert report.shards[0].truncated
    assert report.shards[0].reason == "checksum mismatch"
    assert report.shards[0].records_replayed == middle
    finish(restored, ops, resume_index(ops, restored.bus.applied_counts[0]))
    assert_equivalent(observe(restored), expected, "checksum corruption")
    restored.shutdown()


def test_epoch_mismatch_stops_replay(tmp_path):
    ops = script(5)
    expected = expected_outcome(ops)
    server = durable_cluster(tmp_path)
    assert drive_durable(server, ops) is None
    # Forge a tail record carrying a future rule-churn epoch — as if a
    # crashed churn checkpoint left the WAL ahead of the snapshot.
    epoch = server.shards[0].epoch
    forged = WalWriter(str(wal_path_of(tmp_path)))
    forged.append({
        "seq": 10_000, "t": ops[-1][0] + 1.25, "epoch": epoch + 1,
        "n": [["w", temp(HOME), 40.0]],
    })
    forged.close()
    restored, report = restore(tmp_path)
    assert report.shards[0].truncated
    assert "epoch mismatch" in report.shards[0].reason
    assert report.shards[0].records_replayed == \
        report.shards[0].wal_records - 1
    # Everything before the forged record was replayed, so the forged
    # write must NOT be visible and the outcome matches the clean twin.
    finish(restored, ops, resume_index(ops, restored.bus.applied_counts[0]))
    assert_equivalent(observe(restored), expected, "epoch mismatch")
    restored.shutdown()


# -- crash-interrupted checkpoints -----------------------------------------------


@pytest.mark.parametrize("site", (CRASH_SNAPSHOT_WRITE,
                                  CRASH_MANIFEST_COMMIT))
def test_checkpoint_crash_recovers_previous_generation(tmp_path, site):
    ops = script(6)
    expected = expected_outcome(ops)
    server = durable_cluster(tmp_path)
    last_ckpt = max(i for i, op in enumerate(ops) if op[1] == "ckpt")
    assert drive_durable(server, ops[:last_ckpt]) is None
    committed = manifest_of(tmp_path)["snapshot_id"]
    server.durability.arm_faults(FaultInjector({site: 1}))
    with pytest.raises(SimulatedCrash):
        server.checkpoint()
    # The manifest replace never happened: the previous generation is
    # still the committed one, and its WAL covers every op since.
    assert manifest_of(tmp_path)["snapshot_id"] == committed
    restored, report = restore(tmp_path)
    assert report.ok()
    finish(restored, ops, resume_index(ops, restored.bus.applied_counts[0]))
    assert_equivalent(observe(restored), expected, site)
    restored.shutdown()


# -- rule churn ------------------------------------------------------------------


def test_rule_churn_checkpoints_eagerly(tmp_path):
    server = durable_cluster(tmp_path)
    first = manifest_of(tmp_path)["snapshot_id"]
    extra = fresh_rules(("home-9999",))[0]
    server.register_rule(extra)
    assert manifest_of(tmp_path)["snapshot_id"] == first + 1
    server.remove_rule(extra.name)
    assert manifest_of(tmp_path)["snapshot_id"] == first + 2
    server.shutdown()


def test_stale_epoch_batch_triggers_lazy_checkpoint(tmp_path):
    """Churn the eager checkpoint missed (plane detached at the time)
    must force a re-checkpoint before the batch is logged, keeping every
    WAL record epoch-consistent with its snapshot."""
    server = durable_cluster(tmp_path)
    first = manifest_of(tmp_path)["snapshot_id"]
    plane, server.durability = server.durability, None
    server.register_rule(fresh_rules(("home-9999",))[0])
    server.durability = plane
    server.simulator.run_until(1.25)
    server.ingest(temp(HOME), 30.0)
    server.flush()
    assert manifest_of(tmp_path)["snapshot_id"] == first + 1
    restored, report = restore(tmp_path, homes=(HOME, "home-9999"))
    assert report.ok()
    assert restored.rule_truth(f"{HOME}-cool")
    restored.shutdown()


# -- timers across the gap -------------------------------------------------------


def test_window_boundary_after_snapshot_still_fires(tmp_path):
    """A wheel boundary armed before the snapshot but due after it must
    fire exactly once after restore — neither skipped (the re-subscribe
    hazard) nor doubled."""
    ops = [(10.25, "w", place_var(HOME, "Tom"), "living room", None),
           (3000.5, "ckpt", None, None, None)]
    twin = new_cluster(Simulator())
    drive_uninterrupted(twin, ops, 4000.0)
    expected = observe(twin)
    twin.shutdown()
    assert not expected["truth"][f"{HOME}-early-lamp"]  # window closed

    server = durable_cluster(tmp_path)
    assert drive_durable(server, ops) is None
    restored, report = restore(tmp_path)
    assert report.ok()
    restored.simulator.run_until(4000.0)
    restored.flush()
    assert_equivalent(observe(restored), expected, "window boundary")
    restored.shutdown()


# -- error paths -----------------------------------------------------------------


def test_restore_without_manifest_raises(tmp_path):
    with pytest.raises(RecoveryError, match="no recovery manifest"):
        restore(tmp_path)


def test_restore_rejects_undecodable_manifest(tmp_path):
    (tmp_path / MANIFEST_NAME).write_bytes(b'{"format": "repro-clu')
    with pytest.raises(RecoveryError, match="undecodable"):
        restore(tmp_path)


def test_restore_rejects_unknown_format(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text(
        json.dumps({"format": "somebody-else/9"}))
    with pytest.raises(RecoveryError, match="unsupported snapshot format"):
        restore(tmp_path)


def test_restore_needs_a_fresh_simulator(tmp_path):
    server = durable_cluster(tmp_path)
    server.simulator.run_until(100.25)
    server.checkpoint()
    stale = Simulator()
    stale.run_until(5_000.0)
    with pytest.raises(RecoveryError, match="past the snapshot time"):
        restore_cluster(str(tmp_path), stale, fresh_rules((HOME,)))
    server.shutdown()


def test_missing_rule_definitions_are_reported(tmp_path):
    server = durable_cluster(tmp_path)
    server.simulator.run_until(1.25)
    server.ingest(temp(HOME), 30.0)
    server.flush()
    rules = [rule for rule in fresh_rules((HOME,))
             if rule.name != f"{HOME}-cool"]
    restored, report = restore_cluster(
        str(tmp_path), Simulator(), rules)
    assert report.rules_missing == [f"{HOME}-cool"]
    assert not report.ok()
    assert report.rules_restored == len(rules)
    # The surviving population still serves.
    assert restored.rule_state(f"{HOME}-heat") is not None
    restored.shutdown()


def test_durability_requires_batched_bus(tmp_path):
    server = ClusterServer(Simulator(), shard_count=1, batch=False)
    with pytest.raises(ValueError, match="batch"):
        server.attach_durability(DurabilityPlane(str(tmp_path)))
    server.shutdown()
