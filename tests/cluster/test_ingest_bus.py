"""Unit tests for the batched async ingest bus: FIFO order, batch
scheduling, coalescing safety, event barriers and the per-event mode."""

import pytest

from repro.cluster.bus import IngestBus
from repro.cluster.router import ShardRouter
from repro.cluster.shard import EngineShard
from repro.core.action import ActionSpec, Setting
from repro.core.condition import AndCondition, DiscreteAtom, DurationAtom, NumericAtom
from repro.core.rule import Rule
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

HOME = "home-0000"
TEMP = f"{HOME}/thermo:svc:temperature"
DOOR = f"{HOME}/door:svc:locked"


def num(variable, relation, bound):
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


def act(device, name="Set"):
    return ActionSpec(
        device_udn=device, device_name=device, service_id="svc",
        action_name=name, settings=(Setting("level", 1),),
    )


def hot_rule(name="hot", device=f"{HOME}/aircon", **kwargs):
    return Rule(name=name, owner="Tom",
                condition=num(TEMP, Relation.GT, 26.0),
                action=act(device), **kwargs)


@pytest.fixture
def rig():
    simulator = Simulator()
    router = ShardRouter(1)
    shard = EngineShard(0, simulator)
    bus = IngestBus(simulator, [shard], router)
    return simulator, shard, bus


class TestBatching:
    def test_publish_defers_until_drain(self, rig):
        simulator, shard, bus = rig
        shard.register_rule(hot_rule())
        bus.publish(TEMP, 30.0)
        assert bus.pending(0) == 1
        assert shard.engine.rule_truth("hot") is False  # not applied yet
        simulator.run_until(simulator.now)  # the scheduled drain fires
        assert bus.pending(0) == 0
        assert shard.engine.rule_truth("hot") is True

    def test_flush_applies_immediately(self, rig):
        _, shard, bus = rig
        shard.register_rule(hot_rule())
        bus.publish(TEMP, 30.0)
        bus.flush()
        assert shard.engine.rule_truth("hot") is True
        assert bus.stats.batches == 1

    def test_one_drain_per_burst(self, rig):
        simulator, shard, bus = rig
        shard.register_rule(hot_rule())
        for value in (27.0, 28.0, 29.0):
            bus.publish(f"{HOME}/other:svc:x", value)
        assert simulator.pending_events() >= 1
        before = bus.stats.batches
        simulator.run_until(simulator.now)
        assert bus.stats.batches == before + 1

    def test_fifo_order_within_a_batch(self, rig):
        """Writes apply in publish order, and only *consecutive* writes
        to one variable merge — an interleaved write must not be pulled
        ahead of another variable's write (that would manufacture world
        states the synchronous path never visited)."""
        _, shard, bus = rig
        seen = []
        shard.engine.ingest = lambda var, val: seen.append((var, val))
        a, b = f"{HOME}/a:svc:x", f"{HOME}/b:svc:y"
        bus.publish(a, 1.0)
        bus.publish(b, 2.0)
        bus.publish(a, 3.0)  # not adjacent to the first a-write: kept
        bus.flush()
        assert seen == [(a, 1.0), (b, 2.0), (a, 3.0)]


class TestCoalescing:
    def test_safe_variable_coalesces_to_latest_value(self, rig):
        _, shard, bus = rig
        shard.register_rule(hot_rule())
        for value in (27.0, 19.0, 31.0):
            bus.publish(TEMP, value)
        assert bus.pending(0) == 1
        bus.flush()
        assert bus.stats.coalesced == 2
        assert bus.stats.applied == 1
        assert shard.engine.rule_truth("hot") is True

    def test_until_rule_disables_coalescing(self, rig):
        _, shard, bus = rig
        shard.register_rule(hot_rule(until=num(TEMP, Relation.GT, 35.0)))
        for value in (27.0, 36.0, 27.0):
            bus.publish(TEMP, value)
        assert bus.pending(0) == 3
        bus.flush()
        assert bus.stats.coalesced == 0
        # The intermediate 36.0 triggered the until: rule stopped even
        # though the settled value satisfies the condition again.
        assert shard.engine.rule_truth("hot") is True
        assert shard.engine.holder_of(f"{HOME}/aircon") is None

    def test_duration_rule_disables_coalescing(self, rig):
        _, shard, bus = rig
        alarm = Rule(
            name="alarm", owner="Emily",
            condition=DurationAtom(DiscreteAtom(DOOR, "false"), 600.0),
            action=act(f"{HOME}/alarm"),
        )
        shard.register_rule(alarm)
        bus.publish(DOOR, "false")
        bus.publish(DOOR, "true")
        assert bus.pending(0) == 2

    def test_contested_device_disables_coalescing(self, rig):
        _, shard, bus = rig
        shard.register_rule(hot_rule("tom-cool"))
        shard.register_rule(
            Rule(name="alan-cool", owner="Alan",
                 condition=num(TEMP, Relation.GT, 30.0),
                 action=act(f"{HOME}/aircon")))
        bus.publish(TEMP, 27.0)
        bus.publish(TEMP, 31.0)
        assert bus.pending(0) == 2

    def test_rule_churn_invalidates_safety_cache(self, rig):
        _, shard, bus = rig
        shard.register_rule(hot_rule())
        bus.publish(TEMP, 27.0)
        bus.publish(TEMP, 28.0)   # caches TEMP as safe, merges
        bus.flush()
        shard.register_rule(hot_rule("hot2", until=num(TEMP, Relation.GT, 35.0)))
        bus.publish(TEMP, 29.0)
        bus.publish(TEMP, 30.0)   # epoch bumped: TEMP now unsafe
        assert bus.pending(0) == 2

    def test_event_is_a_coalescing_barrier(self, rig):
        _, shard, bus = rig
        shard.register_rule(hot_rule())
        bus.publish(TEMP, 27.0)
        bus.publish_event("returns home", "Tom", shard=0)
        bus.publish(TEMP, 31.0)  # must not merge across the barrier
        assert bus.pending(0) == 3

    def test_interleaved_writes_never_create_phantom_states(self):
        """Regression: with condition ``a > 2 and b > 5``, settled state
        (a=0, b=10) and batch [a=1, b=2, a=3], batch-wide coalescing
        would apply a=3 while b is still 10 and fire the rule on a
        state the synchronous path never produced.  Consecutive-only
        coalescing must dispatch nothing."""
        simulator = Simulator()
        dispatched = []
        shard = EngineShard(0, simulator, dispatch=dispatched.append)
        bus = IngestBus(simulator, [shard], ShardRouter(1))
        a, b = f"{HOME}/sa:svc:x", f"{HOME}/sb:svc:y"
        shard.register_rule(Rule(
            name="both-high", owner="Tom",
            condition=AndCondition([num(a, Relation.GT, 2.0),
                                    num(b, Relation.GT, 5.0)]),
            action=act(f"{HOME}/siren"),
        ))
        bus.publish(a, 0.0)
        bus.publish(b, 10.0)
        bus.flush()
        assert dispatched == []
        bus.publish(a, 1.0)
        bus.publish(b, 2.0)
        bus.publish(a, 3.0)
        bus.flush()
        assert dispatched == []
        assert shard.engine.rule_truth("both-high") is False

    def test_coalesce_off_keeps_every_write(self):
        simulator = Simulator()
        shard = EngineShard(0, simulator)
        bus = IngestBus(simulator, [shard], ShardRouter(1), coalesce=False)
        shard.register_rule(hot_rule())
        bus.publish(TEMP, 27.0)
        bus.publish(TEMP, 28.0)
        assert bus.pending(0) == 2


class TestPerEventMode:
    def test_each_publish_gets_its_own_callback(self):
        simulator = Simulator()
        shard = EngineShard(0, simulator)
        bus = IngestBus(simulator, [shard], ShardRouter(1), batch=False)
        shard.register_rule(hot_rule())
        pending_before = simulator.pending_events()
        bus.publish(TEMP, 27.0)
        bus.publish(TEMP, 31.0)
        assert simulator.pending_events() == pending_before + 2
        simulator.run_until(simulator.now)
        assert bus.stats.applied == 2
        assert shard.engine.rule_truth("hot") is True


class TestMirrorRoutes:
    """Cross-shard variable mirroring at the bus level: fan-out order,
    coalescing exclusion, and route pruning."""

    def two_shard_rig(self, **kwargs):
        simulator = Simulator()
        shards = [EngineShard(i, simulator) for i in range(2)]
        router = ShardRouter(2)
        bus = IngestBus(simulator, shards, router, **kwargs)
        owner = router.shard_of(TEMP)
        return simulator, shards, bus, owner

    def test_write_fans_out_to_subscriber_after_owner(self):
        _, shards, bus, owner = self.two_shard_rig()
        other = 1 - owner
        bus.add_mirror_route(TEMP, other)
        seen = []
        for shard in shards:
            shard.engine.ingest = (
                lambda var, val, _id=shard.shard_id:
                seen.append((_id, var, val))
            )
        bus.publish(TEMP, 30.0)
        bus.flush()
        assert seen == [(owner, TEMP, 30.0), (other, TEMP, 30.0)]
        assert bus.stats.mirrored == 1

    def test_mirrored_variable_never_coalesces(self):
        _, shards, bus, owner = self.two_shard_rig()
        shards[owner].register_rule(hot_rule())
        bus.publish(TEMP, 27.0)
        bus.publish(TEMP, 28.0)
        assert bus.stats.coalesced == 1  # safe while unmirrored
        bus.flush()
        bus.add_mirror_route(TEMP, 1 - owner)
        bus.publish(TEMP, 29.0)
        bus.publish(TEMP, 30.0)
        assert bus.stats.coalesced == 1  # no further merges
        assert bus.pending(owner) == 2
        assert bus.pending(1 - owner) == 2

    def test_subscriber_fifo_preserves_global_publish_order(self):
        """A mirrored write enqueued between the subscriber's own writes
        must be observed in publish order — fan-out happens at publish
        time, not drain time."""
        _, shards, bus, owner = self.two_shard_rig()
        other = 1 - owner
        bus.add_mirror_route(TEMP, other)
        local = None
        # find a variable the *other* shard owns
        for index in range(200):
            candidate = f"home-{index:04d}/x:svc:y"
            if bus.router.shard_of(candidate) == other:
                local = candidate
                break
        assert local is not None
        seen = []
        shards[other].engine.ingest = \
            lambda var, val: seen.append((var, val))
        bus.publish(local, 1.0)
        bus.publish(TEMP, 2.0)
        bus.publish(local, 3.0)
        bus.flush()
        assert seen == [(local, 1.0), (TEMP, 2.0), (local, 3.0)]

    def test_removed_route_stops_fanning_out(self):
        _, shards, bus, owner = self.two_shard_rig()
        other = 1 - owner
        bus.add_mirror_route(TEMP, other)
        bus.publish(TEMP, 30.0)
        bus.flush()
        bus.remove_mirror_route(TEMP, other)
        assert bus.mirror_routes_of(TEMP) == ()
        assert bus.mirror_route_count() == 0
        bus.publish(TEMP, 40.0)
        bus.flush()
        assert shards[other].engine.world.value_of(TEMP) == 30.0
        assert shards[owner].engine.world.value_of(TEMP) == 40.0

    def test_per_event_mode_fans_out_at_apply_time(self):
        simulator, shards, bus, owner = self.two_shard_rig(batch=False)
        other = 1 - owner
        bus.add_mirror_route(TEMP, other)
        bus.publish(TEMP, 30.0)
        simulator.run_until(simulator.now)
        assert shards[other].engine.world.value_of(TEMP) == 30.0
        assert bus.stats.mirrored == 1


class TestEventsAndShutdown:
    def test_broadcast_event_reaches_every_shard(self):
        simulator = Simulator()
        shards = [EngineShard(i, simulator) for i in range(3)]
        bus = IngestBus(simulator, shards, ShardRouter(3))
        fired = []
        for shard in shards:
            shard.engine.post_event = (
                lambda et, subj, _id=shard.shard_id, **kwargs:
                fired.append(_id)
            )
        bus.publish_event("alarm", None)
        bus.flush()
        assert sorted(fired) == [0, 1, 2]
        assert bus.stats.events == 3

    def test_shutdown_drops_queued_entries(self, rig):
        simulator, shard, bus = rig
        shard.register_rule(hot_rule())
        bus.publish(TEMP, 30.0)
        bus.shutdown()
        simulator.run_until(simulator.now)
        assert bus.stats.applied == 0
        assert shard.engine.rule_truth("hot") is False

    def test_shutdown_drops_per_event_dispatches_too(self):
        """batch=False applies live on the simulator, not in the queues;
        shutdown must intercept those as well."""
        simulator = Simulator()
        shard = EngineShard(0, simulator)
        bus = IngestBus(simulator, [shard], ShardRouter(1), batch=False)
        shard.register_rule(hot_rule())
        bus.publish(TEMP, 30.0)
        bus.shutdown()
        simulator.run_until(simulator.now)
        assert bus.stats.applied == 0
        assert shard.engine.rule_truth("hot") is False
