"""Shared scenario for the durability suites.

One compact rule population per home covering every engine feature class
(stop actions, untils, arbitration with fallback, negation, EPG
membership, a near-origin time window, events, duration atoms), a seeded
fractional-timestamp op-script generator, and drive/observe helpers used
by both the unit-level recovery tests and the randomized
restart-equivalence suite.

Scripts deliberately use *fractional* timestamps (x.25/x.5/x.75) so no
ingest batch ever ties with a whole-second timer — see the known
limitation in :mod:`repro.cluster.durability`.
"""

from repro.cluster import ClusterServer, restore_cluster
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.sim.faults import SimulatedCrash
from repro.sim.rng import seeded_rng
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

HOME = "home-0000"
HOMES = tuple(f"home-{index:04d}" for index in range(4))
PEOPLE = ("Tom", "Alan", "Emily")
ROOMS = ("living room", "kitchen", "bedroom", "hall")
KEYWORDS = ("baseball", "news", "movie", "jazz")
EVENTS = ("returns home", "leaves home")
VALUE_GRID = [15.0 + 0.5 * i for i in range(60)]


def temp(home):
    return f"{home}/thermo:svc:temperature"


def humid(home):
    return f"{home}/hygro:svc:humidity"


def lux(home):
    return f"{home}/lux:svc:illuminance"


def place_var(home, person):
    return f"{home}/locator:svc:place-{person}"


def epg_var(home):
    return f"{home}/epg:svc:keywords"


def door_var(home):
    return f"{home}/door:svc:locked"


def num(variable, relation, bound):
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


def place(home, person, room, negated=False):
    return DiscreteAtom(place_var(home, person), room, negated=negated)


def act(device, name="Set", level=1):
    return ActionSpec(
        device_udn=device, device_name=device, service_id="svc",
        action_name=name, settings=(Setting("level", level),),
    )


def build_rules(home):
    """Fresh rule objects for one home, touching every recovery-relevant
    engine path.  The time window sits at [00:00, 01:00) so short
    scripts cross its closing boundary — the wheel-restore hazard."""
    dev = lambda suffix: f"{home}/{suffix}"
    early = TimeWindowAtom(hhmm(0), hhmm(1), label="early")
    return [
        Rule(name=f"{home}-cool", owner="Tom",
             condition=num(temp(home), Relation.GT, 26.0),
             action=act(dev("aircon")),
             stop_action=act(dev("aircon"), "Off")),
        Rule(name=f"{home}-heat", owner="Alan",
             condition=num(temp(home), Relation.LT, 20.0),
             action=act(dev("heater")),
             until=num(temp(home), Relation.GT, 24.0),
             stop_action=act(dev("heater"), "Off")),
        Rule(name=f"{home}-tom-tv", owner="Tom",
             condition=OrCondition([place(home, "Tom", "living room"),
                                    place(home, "Alan", "living room")]),
             action=act(dev("tv"), "ShowJazz")),
        Rule(name=f"{home}-emily-tv", owner="Emily",
             condition=place(home, "Emily", "living room"),
             action=act(dev("tv"), "ShowMovie"),
             fallback=act(dev("recorder"), "Record")),
        Rule(name=f"{home}-lamp", owner="Tom",
             condition=AndCondition([
                 place(home, "Tom", "kitchen", negated=True),
                 num(lux(home), Relation.LT, 30.0)]),
             action=act(dev("lamp"))),
        Rule(name=f"{home}-ballgame", owner="Alan",
             condition=MembershipAtom(epg_var(home), "baseball"),
             action=act(dev("tv2"), "ShowBaseball")),
        Rule(name=f"{home}-early-lamp", owner="Tom",
             condition=AndCondition([early,
                                     place(home, "Tom", "living room")]),
             action=act(dev("lamp2"))),
        Rule(name=f"{home}-hall-light", owner="Tom",
             condition=EventAtom("returns home"),
             action=act(dev("hall-light"))),
        Rule(name=f"{home}-door-alarm", owner="Emily",
             condition=DurationAtom(
                 DiscreteAtom(door_var(home), "false"), 600.0),
             action=act(dev("alarm")), stop_action=act(dev("alarm"), "Off")),
        Rule(name=f"{home}-muggy", owner="Alan",
             condition=NumericAtom(LinearConstraint.make(
                 LinearExpr.var(temp(home)) - LinearExpr.var(humid(home)),
                 Relation.GT, 5.0)),
             action=act(dev("dehumid"))),
    ]


def fresh_rules(homes):
    return [rule for home in homes for rule in build_rules(home)]


def tv_orders(homes):
    return [PriorityOrder(f"{home}/tv", ("Emily", "Tom")) for home in homes]


def devices_of(home):
    return sorted({
        udn for rule in build_rules(home) for udn in rule.devices()
    })


# -- op scripts ------------------------------------------------------------------


def script(seed, homes=(HOME,), steps=48, ckpt_every=9):
    """A deterministic op script: ``(t, kind, a, b, c)`` tuples with
    strictly increasing fractional times, checkpoint markers every
    ``ckpt_every`` steps, and occasional big jumps so duration atoms
    (600 s) and the window boundary (3600 s) fire mid-script."""
    rng = seeded_rng(f"durability-script-{seed}")
    ops = []
    t = 0.0
    for step in range(steps):
        if rng.random() < 0.10:
            t += rng.choice((301.5, 660.25, 1501.75))
        else:
            t += rng.choice((0.75, 1.25, 2.5, 6.25, 13.75))
        home = homes[rng.randrange(len(homes))]
        roll = rng.random()
        if roll < 0.40:
            variable = rng.choice((temp(home), humid(home), lux(home)))
            ops.append((t, "w", variable, rng.choice(VALUE_GRID), None))
        elif roll < 0.60:
            person = rng.choice(PEOPLE)
            ops.append(
                (t, "w", place_var(home, person), rng.choice(ROOMS), None))
        elif roll < 0.70:
            members = frozenset(
                keyword for keyword in KEYWORDS if rng.random() < 0.4)
            ops.append((t, "w", epg_var(home), members, None))
        elif roll < 0.80:
            ops.append(
                (t, "w", door_var(home), rng.choice(("true", "false")), None))
        else:
            ops.append(
                (t, "e", rng.choice(EVENTS), rng.choice(PEOPLE), home))
        if (step + 1) % ckpt_every == 0:
            t += 0.5
            ops.append((t, "ckpt", None, None, None))
    return ops


def end_time_of(ops):
    """Late enough past the last op for every pending duration timer and
    window boundary to have fired on both sides."""
    return ops[-1][0] + 1300.0


def apply_op(server, op):
    _t, kind, a, b, c = op
    if kind == "w":
        server.ingest(a, b)
    else:
        server.post_event(a, b, home=c)


# -- drivers ---------------------------------------------------------------------


def new_cluster(simulator, homes=(HOME,), **kwargs):
    """A cluster with the scenario's rules and tv priority registered.
    Coalescing defaults off so every intermediate edge survives into the
    trace (the strictest equivalence surface)."""
    kwargs.setdefault("shard_count", 1)
    kwargs.setdefault("coalesce", False)
    kwargs.setdefault("batch", True)
    server = ClusterServer(simulator, **kwargs)
    for home in homes:
        for rule in build_rules(home):
            server.register_rule(rule)
    for order in tv_orders(homes):
        server.add_priority_order(order)
    return server


def drive_uninterrupted(server, ops, end_time):
    """The crash-free twin: same ops, checkpoint markers skipped."""
    simulator = server.simulator
    for op in ops:
        if op[1] == "ckpt":
            continue
        simulator.run_until(op[0])
        apply_op(server, op)
        server.flush()
    simulator.run_until(end_time)
    server.flush()


def drive_durable(server, ops, start=0):
    """Drive the durable side from ``ops[start:]``, settling after every
    op.  Returns the index of the op whose handling crashed, or ``None``
    when the script completed."""
    simulator = server.simulator
    for index in range(start, len(ops)):
        op = ops[index]
        try:
            if op[0] > simulator.now:
                simulator.run_until(op[0])
            if op[1] == "ckpt":
                server.checkpoint()
            else:
                apply_op(server, op)
                server.flush()
        except SimulatedCrash:
            return index
    return None


def resume_index(ops, applied):
    """Index of the first op not yet durably applied, given a restored
    cluster's applied-entry count (single shard, one entry per op).
    Checkpoint markers between the durable prefix and that op are
    skipped — re-checkpointing is harmless but pointless, since a
    restore's attach already checkpointed."""
    seen = 0
    for index, op in enumerate(ops):
        if op[1] == "ckpt":
            continue
        if seen == applied:
            return index
        seen += 1
    return len(ops)


def restore(directory, homes=(HOME,), **kwargs):
    """Restore the scenario's cluster from a durability directory onto a
    fresh simulator."""
    return restore_cluster(
        str(directory), Simulator(), fresh_rules(homes),
        priority_orders=tv_orders(homes), **kwargs,
    )


# -- observation -----------------------------------------------------------------


def observe(server, homes=(HOME,)):
    """Everything the equivalence contract covers: rule truth, rule
    states, device holders (rule + action), and per-home traces as full
    five-tuples."""
    snapshot = {"truth": {}, "state": {}, "holders": {}, "traces": {}}
    for home in homes:
        for rule in build_rules(home):
            snapshot["truth"][rule.name] = server.rule_truth(rule.name)
            snapshot["state"][rule.name] = server.rule_state(rule.name).value
        for udn in devices_of(home):
            holder = server.holder_of(udn)
            snapshot["holders"][udn] = (
                None if holder is None else (holder[0], holder[1].action_name)
            )
        snapshot["traces"][home] = [
            (entry.time, entry.kind, entry.rule, entry.device, entry.detail)
            for entry in server.trace(home=home)
        ]
    return snapshot


def assert_equivalent(actual, expected, context=""):
    note = f" [{context}]" if context else ""
    for name, truth in expected["truth"].items():
        assert actual["truth"][name] == truth, \
            f"truth of {name!r} diverged{note}"
    for name, state in expected["state"].items():
        assert actual["state"][name] == state, \
            f"state of {name!r} diverged{note}"
    for udn, holder in expected["holders"].items():
        assert actual["holders"][udn] == holder, \
            f"holder of {udn!r} diverged{note}"
    for home, trace in expected["traces"].items():
        assert actual["traces"][home] == trace, \
            f"trace of {home} diverged{note}"
