"""Process-backend lifecycle: ShardClient surface, typed worker
failures, and child-process hygiene.

The equivalence of engine *semantics* across backends is covered by
``test_process_equivalence.py``; this module exercises the machinery
around it — handshake, proxy surface parity, action forwarding, typed
crash errors, idempotent shutdown, and the no-leaked-children
guarantee after both clean shutdown and a SIGKILL'd worker.

Everything here carries ``hard_timeout``: a wedged IPC loop should
fail the test, not hang the suite.
"""

import multiprocessing

import pytest

from repro.cluster.server import ClusterServer
from repro.cluster.worker import ShardClient
from repro.errors import (
    RecoveryError,
    UnknownRuleError,
    WorkerCrashed,
    WorkerError,
)
from repro.sim.events import Simulator
from tests.cluster.recovery_stack import (
    HOME,
    HOMES,
    build_rules,
    temp,
    tv_orders,
)

pytestmark = pytest.mark.hard_timeout(120)

CONFIG = {"telemetry": False}


def no_stray_children():
    """True when no repro shard worker survives (ignores any pool
    helpers another plugin might own)."""
    return not [
        child for child in multiprocessing.active_children()
        if child.name.startswith("repro-shard-")
    ]


@pytest.fixture
def client():
    simulator = Simulator()
    shard = ShardClient(0, simulator, config=dict(CONFIG))
    yield shard
    shard.shutdown()
    assert no_stray_children()


# -- direct proxy surface ---------------------------------------------------------


def test_handshake_reports_worker_pid(client):
    assert client.worker_pid == client.process.pid
    assert client.process.is_alive()
    assert client.backend == "process"


def test_rule_lifecycle_over_the_wire(client):
    simulator = client.simulator
    rules = build_rules(HOME)
    for rule in rules:
        client.register_rule(rule)
    assert client.epoch == len(rules)
    assert client.rule_count() == len(rules)

    client.ingest(temp(HOME), 30.0)
    simulator.run_until(1.0)
    # One-way BATCH frames pipeline ahead of the CALL: FIFO ordering
    # means the truth read observes the ingest without any ack.
    assert client.rule_truth(f"{HOME}-cool") is True
    assert client.rule_state(f"{HOME}-cool").value == "active"
    holder = client.holder_of(f"{HOME}/aircon")
    assert holder is not None and holder[0] == f"{HOME}-cool"

    removed, epoch = client.remove_rule(f"{HOME}-cool"), client.epoch
    assert removed.name == f"{HOME}-cool"
    assert epoch == len(rules) + 1
    assert client.rule_count() == len(rules) - 1


def test_ingest_batch_deltas_fold_through_barrier(client):
    rules = build_rules(HOME)
    for rule in rules:
        client.register_rule(rule)
    # ingest_batch is one-way and returns a placeholder; the real
    # (flips, touched) counters accumulate worker-side until barrier().
    assert client.ingest_batch([(temp(HOME), 30.0),
                                (f"{HOME}/hygro:svc:humidity", 50.0)]) == (0, 0)
    flips, touched = client.barrier()
    assert touched > 0
    assert flips >= 1  # temp > 26 flips home-cool
    # barrier() resets the accumulators.
    assert client.barrier() == (0, 0)


def test_priority_and_mirrors_round_trip(client):
    for rule in build_rules(HOME):
        client.register_rule(rule)
    for order in tv_orders((HOME,)):
        client.add_priority_order(order)
    client.adopt_mirrors("remote-rule", ["a:x", "a:y"])
    assert client.mirrors_of_rule("remote-rule") == frozenset({"a:x", "a:y"})
    assert client.mirror_variables() == frozenset({"a:x", "a:y"})
    assert client.release_mirrors("remote-rule") == ["a:x", "a:y"]
    assert client.mirror_variables() == frozenset()


def test_variable_value_and_coalesce_safe(client):
    client.ingest(temp(HOME), 21.5)
    assert client.variable_value(temp(HOME)) == 21.5
    assert client.coalesce_safe(temp(HOME)) is True


def test_worker_exception_surfaces_typed_with_traceback(client):
    with pytest.raises(UnknownRuleError) as excinfo:
        client.remove_rule("never-registered")
    # The worker ships its traceback text alongside the pickled
    # exception so parent-side failures are debuggable.
    assert "remove_rule" in getattr(excinfo.value, "worker_traceback", "")


def test_action_dispatch_forwards_to_parent():
    simulator = Simulator()
    fired = []
    shard = ShardClient(0, simulator, config=dict(CONFIG),
                        dispatch=fired.append)
    try:
        for rule in build_rules(HOME):
            shard.register_rule(rule)
        shard.ingest(temp(HOME), 30.0)
        simulator.run_until(1.0)
        # ACTION frames are drained while awaiting the next reply.
        shard.barrier()
        assert any(spec.action_name == "Set" and "aircon" in spec.device_udn
                   for spec in fired)
    finally:
        shard.shutdown()
    assert no_stray_children()


def test_wal_fault_injection_rejected_on_process_backend(client):
    with pytest.raises(RecoveryError):
        client.wal_open("/tmp/never-created.wal", faults=object())
    with pytest.raises(RecoveryError):
        client.wal_arm_faults(object())


def test_unpicklable_config_is_a_typed_worker_error():
    simulator = Simulator()
    with pytest.raises(WorkerError):
        ShardClient(0, simulator,
                    config={"telemetry": False, "bad": lambda: None})
    assert no_stray_children()


# -- crash handling ---------------------------------------------------------------


def test_killed_worker_raises_worker_crashed(client):
    client.kill()
    with pytest.raises(WorkerCrashed) as excinfo:
        client.rule_count()
    assert excinfo.value.shard_id == 0
    # SIGKILL'd children report a negative exitcode.
    assert excinfo.value.exitcode is not None
    # Every later call fails fast without touching the dead socket.
    with pytest.raises(WorkerError):
        client.rule_count()
    # shutdown() after a crash must still reap the child (fixture
    # asserts no strays).


def test_shutdown_is_idempotent(client):
    client.shutdown()
    assert not client.process.is_alive()
    assert client.process.exitcode == 0
    client.shutdown()  # second call is a no-op, not an error
    with pytest.raises(WorkerError):
        client.rule_count()


# -- through the ClusterServer facade ---------------------------------------------


def test_cluster_server_rejects_unknown_backend():
    with pytest.raises(ValueError):
        ClusterServer(Simulator(), backend="fibers")


def test_cluster_server_process_backend_no_leaked_children():
    simulator = Simulator()
    server = ClusterServer(simulator, shard_count=2, backend="process",
                           coalesce=False)
    try:
        for home in HOMES[:2]:
            for rule in build_rules(home):
                server.register_rule(rule)
        server.ingest(temp(HOMES[0]), 30.0)
        server.ingest(temp(HOMES[1]), 18.0)
        server.flush()
        simulator.run_until(1.0)
        server.flush()
        assert server.rule_truth(f"{HOMES[0]}-cool") is True
        assert server.rule_truth(f"{HOMES[1]}-heat") is True
        described = server.describe_shards()
        assert len(described) == 2
        total_rules = 2 * len(build_rules(HOME))
        assert sum(int(line.split()[2]) for line in described) == total_rules
        assert {shard.backend for shard in server.shards} == {"process"}
    finally:
        server.shutdown()
    assert no_stray_children()
    server.shutdown()  # idempotent through the facade too


def test_cluster_server_telemetry_merges_worker_snapshots():
    simulator = Simulator()
    server = ClusterServer(simulator, shard_count=2, backend="process",
                           telemetry=True)
    try:
        for rule in build_rules(HOME):
            server.register_rule(rule)
        server.ingest(temp(HOME), 30.0)
        server.flush()
        simulator.run_until(1.0)
        server.flush()
        merged = server.telemetry()
        assert merged["enabled"] is True
        # Both worker processes answered the telemetry pull with their
        # private registry snapshots, tagged with their shard ids.
        assert sorted(snap["shard"] for snap in merged["shards"]) == [0, 1]
        total_writes = sum(
            snap["counters"].get("columnar.writes", 0)
            for snap in merged["shards"])
        assert total_writes >= 1
        assert merged["aggregate"]["counters"]["shard.epochs"] > 0
        rendered = server.prometheus()
        assert 'shard="0"' in rendered and 'shard="1"' in rendered
    finally:
        server.shutdown()
    assert no_stray_children()


def test_cluster_server_survives_worker_crash_on_shutdown():
    simulator = Simulator()
    server = ClusterServer(simulator, shard_count=2, backend="process")
    try:
        for rule in build_rules(HOME):
            server.register_rule(rule)
        server.shards[1].kill()
        with pytest.raises(WorkerCrashed):
            server.shards[1].rule_count()
    finally:
        # Shutdown must reap the healthy worker and the corpse alike.
        server.shutdown()
    assert no_stray_children()


def test_flush_folds_worker_counters_into_bus_registry():
    simulator = Simulator()
    server = ClusterServer(simulator, shard_count=1, backend="process",
                           telemetry=True, coalesce=False)
    try:
        for rule in build_rules(HOME):
            server.register_rule(rule)
        before = server.bus.stats.atoms_flipped
        server.ingest(temp(HOME), 30.0)
        server.ingest(f"{HOME}/hygro:svc:humidity", 55.0)
        server.flush()
        assert server.bus.stats.atoms_flipped > before
        assert server.bus.stats.clauses_touched > 0
    finally:
        server.shutdown()
    assert no_stray_children()
