"""Randomized crash/restart equivalence.

The acceptance property of the durability plane: for an arbitrary
fault-injected crash point — before/during/after a WAL append, mid
apply-loop, mid snapshot write, at the manifest commit — snapshot +
tail-replay recovery followed by re-feeding the undurable op suffix is
observably identical (truth, states, holders, full traces) to an
uninterrupted twin that ran the same script, across both the columnar
and the ablation (per-rule) backends.

Single-shard runs draw crash points from the full site menu and resume
from the restored cluster's durable applied-entry count (one entry per
op, coalescing off).  Multi-shard runs crash at checkpoint sites —
there every shard's durable prefix is the whole history, so the resume
point is exact without per-shard op accounting.
"""

import pytest

from repro.cluster import ALL_CRASH_SITES, DurabilityPlane
from repro.cluster.durability import (
    CRASH_MANIFEST_COMMIT,
    CRASH_SNAPSHOT_WRITE,
)
from repro.sim.events import Simulator
from repro.sim.faults import FaultInjector
from tests.cluster.recovery_stack import (
    HOME,
    HOMES,
    assert_equivalent,
    drive_durable,
    drive_uninterrupted,
    end_time_of,
    new_cluster,
    observe,
    restore,
    resume_index,
    script,
)

CHECKPOINT_SITES = (CRASH_SNAPSHOT_WRITE, CRASH_MANIFEST_COMMIT)


def run_crash_twin(tmp_path, seed, *, homes=(HOME,), shard_count=1,
                   columnar=True, sites=ALL_CRASH_SITES, max_restarts=4):
    """Drive the script through a durable cluster with a seeded crash
    plan, restoring and resuming after every simulated power cut, and
    assert the outcome matches the crash-free twin.  Returns the number
    of restarts taken."""
    ops = script(seed, homes=homes)
    end_time = end_time_of(ops)

    twin = new_cluster(Simulator(), homes,
                       shard_count=shard_count, columnar=columnar)
    drive_uninterrupted(twin, ops, end_time)
    expected = observe(twin, homes)
    twin.shutdown()

    server = new_cluster(Simulator(), homes,
                         shard_count=shard_count, columnar=columnar)
    server.attach_durability(DurabilityPlane(str(tmp_path)))
    # Armed only after the attach checkpoint committed: a real fleet
    # enables durability healthy and crashes later.
    faults = FaultInjector.random(seed, sites)
    server.durability.arm_faults(faults)
    start, restarts = 0, 0
    while True:
        crashed = drive_durable(server, ops, start)
        if crashed is None:
            break
        restarts += 1
        assert restarts <= max_restarts, "crash/restore loop did not converge"
        server, report = restore(tmp_path, homes)
        assert not report.rules_missing
        # Keep the (now spent) injector installed: the restored plane
        # walks the same crash points, proving they pass clean.
        server.durability.arm_faults(faults)
        if shard_count == 1:
            start = resume_index(ops, server.bus.applied_counts[0])
        else:
            # Checkpoint-site crash: the op itself was a checkpoint and
            # every prior op had already settled into the WAL.
            assert ops[crashed][1] == "ckpt"
            start = crashed + 1
    assert faults.spent, f"crash plan never fired: {faults.describe()}"
    server.simulator.run_until(end_time)
    server.flush()
    actual = observe(server, homes)
    server.shutdown()
    assert_equivalent(actual, expected, f"seed {seed}, {faults.describe()}")
    return restarts


@pytest.mark.parametrize("seed", range(8))
def test_single_shard_any_crash_point(tmp_path, seed):
    restarts = run_crash_twin(tmp_path, seed)
    assert restarts >= 1


@pytest.mark.parametrize("seed", (2, 5))
def test_single_shard_ablation_backend(tmp_path, seed):
    """Same property with the columnar backend off (per-rule engine
    path): recovery must not depend on backend internals."""
    restarts = run_crash_twin(tmp_path, seed, columnar=False)
    assert restarts >= 1


@pytest.mark.parametrize("seed", (1, 3, 7))
def test_multi_shard_checkpoint_crashes(tmp_path, seed):
    restarts = run_crash_twin(
        tmp_path, seed, homes=HOMES, shard_count=4,
        sites=CHECKPOINT_SITES,
    )
    assert restarts >= 1


def test_two_crashes_in_one_life(tmp_path):
    """A second power cut after the first recovery (fresh injector armed
    on the restored plane) still converges to the twin."""
    seed = 11
    ops = script(seed)
    end_time = end_time_of(ops)
    twin = new_cluster(Simulator())
    drive_uninterrupted(twin, ops, end_time)
    expected = observe(twin)
    twin.shutdown()

    server = new_cluster(Simulator())
    server.attach_durability(DurabilityPlane(str(tmp_path)))
    plans = [FaultInjector.random(seed, ALL_CRASH_SITES),
             FaultInjector.random(seed + 1, ALL_CRASH_SITES)]
    server.durability.arm_faults(plans[0])
    start, crashes = 0, 0
    while True:
        crashed = drive_durable(server, ops, start)
        if crashed is None:
            break
        crashes += 1
        assert crashes <= 6
        server, report = restore(tmp_path)
        assert not report.rules_missing
        if plans:
            plans.pop(0)
        if plans:
            server.durability.arm_faults(plans[0])
        start = resume_index(ops, server.bus.applied_counts[0])
    assert crashes >= 2
    server.simulator.run_until(end_time)
    server.flush()
    actual = observe(server)
    server.shutdown()
    assert_equivalent(actual, expected, "two crashes")
