"""Unit tests for the event queue and simulator run loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(5.0, lambda: fired.append("late"))
        queue.push(1.0, lambda: fired.append("early"))
        assert queue.peek_time() == 1.0
        queue.pop().callback()
        assert fired == ["early"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        first = queue.push(2.0, lambda: None)
        second = queue.push(2.0, lambda: None)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        keeper = queue.push(2.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 2.0
        assert queue.pop() is keeper

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestSimulator:
    def test_call_after_advances_clock(self):
        sim = Simulator()
        fired_at = []
        sim.call_after(3.0, lambda: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [3.0]

    def test_call_at_absolute(self):
        sim = Simulator()
        fired_at = []
        sim.call_at(7.5, lambda: fired_at.append(sim.now))
        sim.run_until(10.0)
        assert fired_at == [7.5]
        assert sim.now == 10.0

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.call_after(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_after(-1.0, lambda: None)

    def test_run_until_fires_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.call_at(5.0, lambda: fired.append("exact"))
        sim.run_until(5.0)
        assert fired == ["exact"]

    def test_run_until_does_not_fire_later_events(self):
        sim = Simulator()
        fired = []
        sim.call_at(5.1, lambda: fired.append("later"))
        sim.run_until(5.0)
        assert fired == []
        assert sim.pending_events() == 1

    def test_cascading_events(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.call_after(1.0, lambda: order.append("second"))

        sim.call_after(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        fired = []
        handle = sim.call_after(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_next_event_time(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        sim.call_after(2.0, lambda: None)
        assert sim.next_event_time() == 2.0

    def test_deterministic_ordering_same_time(self):
        sim = Simulator()
        order = []
        for label in ("a", "b", "c"):
            sim.call_at(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]


class TestPeriodicTask:
    def test_fires_every_period(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now))
        sim.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_after_override(self):
        sim = Simulator()
        times = []
        sim.every(10.0, lambda: times.append(sim.now), start_after=0.0)
        sim.run_until(25.0)
        assert times == [0.0, 10.0, 20.0]

    def test_cancel_stops_future_firings(self):
        sim = Simulator()
        times = []
        task = sim.every(10.0, lambda: times.append(sim.now))
        sim.run_until(15.0)
        task.cancel()
        sim.run_until(50.0)
        assert times == [10.0]

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        times = []

        def tick():
            times.append(sim.now)
            if len(times) == 2:
                task.cancel()

        task = sim.every(5.0, tick)
        sim.run_until(100.0)
        assert times == [5.0, 10.0]

    def test_nonpositive_period_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)
