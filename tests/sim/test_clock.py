"""Unit tests for the virtual clock and time-of-day helpers."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import (
    SECONDS_PER_DAY,
    VirtualClock,
    format_time_of_day,
    hhmm,
    parse_time_of_day,
    weekday_index,
)


class TestHhmm:
    def test_midnight_is_zero(self):
        assert hhmm(0) == 0.0

    def test_five_thirty_pm(self):
        assert hhmm(17, 30) == 17 * 3600 + 30 * 60

    def test_seconds_component(self):
        assert hhmm(1, 2, 3.5) == 3600 + 120 + 3.5

    @pytest.mark.parametrize("hours,minutes", [(24, 0), (-1, 0), (0, 60), (0, -5)])
    def test_out_of_range_rejected(self, hours, minutes):
        with pytest.raises(SimulationError):
            hhmm(hours, minutes)


class TestParseTimeOfDay:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("17:30", hhmm(17, 30)),
            ("5pm", hhmm(17)),
            ("5:30pm", hhmm(17, 30)),
            ("12am", hhmm(0)),
            ("12pm", hhmm(12)),
            ("noon", hhmm(12)),
            ("midnight", hhmm(0)),
            ("evening", hhmm(17)),
            ("night", hhmm(21)),
            ("morning", hhmm(6)),
            ("8AM", hhmm(8)),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_time_of_day(text) == expected

    def test_whitespace_tolerated(self):
        assert parse_time_of_day("  9:15 pm ") == hhmm(21, 15)

    def test_garbage_rejected(self):
        with pytest.raises(SimulationError):
            parse_time_of_day("half past never")


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.day == 0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance_to(125.0)
        assert clock.now == 125.0

    def test_advance_backward_rejected(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(5.0)

    def test_time_of_day_wraps_at_midnight(self):
        clock = VirtualClock()
        clock.advance_to(SECONDS_PER_DAY + hhmm(3, 0))
        assert clock.time_of_day == hhmm(3, 0)
        assert clock.day == 1

    def test_weekday_advances_with_days(self):
        clock = VirtualClock(start_weekday=5)  # Saturday
        assert clock.weekday_name == "saturday"
        clock.advance_to(2 * SECONDS_PER_DAY)
        assert clock.weekday_name == "monday"

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(start=-1.0)

    def test_bad_weekday_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(start_weekday=7)

    def test_timestamp_format(self):
        clock = VirtualClock()
        clock.advance_to(SECONDS_PER_DAY + hhmm(17, 30, 9))
        assert clock.timestamp() == "day 1 17:30:09"


class TestFormatting:
    def test_format_time_of_day(self):
        assert format_time_of_day(hhmm(9, 5, 7)) == "09:05:07"

    def test_format_wraps(self):
        assert format_time_of_day(SECONDS_PER_DAY + 60) == "00:01:00"

    def test_weekday_index(self):
        assert weekday_index("Monday") == 0
        assert weekday_index("sunday") == 6

    def test_weekday_index_unknown(self):
        with pytest.raises(SimulationError):
            weekday_index("someday")
