"""Deterministic crash-point injection (repro.sim.faults)."""

import pytest

from repro.errors import ReproError
from repro.sim.faults import FaultInjector, SimulatedCrash


def test_countdown_crashes_on_nth_pass():
    faults = FaultInjector({"site-a": 3})
    faults.check("site-a")
    faults.check("site-a")
    with pytest.raises(SimulatedCrash) as excinfo:
        faults.check("site-a")
    assert excinfo.value.site == "site-a"
    assert faults.crashed_at == "site-a"


def test_unplanned_sites_pass_and_are_counted():
    faults = FaultInjector({"site-a": 1})
    faults.check("site-b")
    faults.check("site-b")
    assert faults.hits == {"site-b": 2}
    assert faults.crashed_at is None


def test_spent_injector_is_harmless():
    """After the crash the restarted system re-runs the same sites."""
    faults = FaultInjector({"site-a": 1})
    with pytest.raises(SimulatedCrash):
        faults.check("site-a")
    assert faults.spent
    faults.check("site-a")  # no raise
    faults.check("site-a")
    assert faults.hits["site-a"] == 3


def test_nonpositive_countdown_rejected():
    with pytest.raises(ValueError):
        FaultInjector({"site-a": 0})


def test_random_plan_is_seed_deterministic():
    sites = ("alpha", "beta", "gamma")
    first = FaultInjector.random(42, sites)
    second = FaultInjector.random(42, sites)
    assert first.describe() == second.describe()
    varied = {FaultInjector.random(seed, sites).describe()
              for seed in range(30)}
    assert len(varied) > 1  # different seeds hit different plans


def test_random_plan_needs_sites():
    with pytest.raises(ValueError):
        FaultInjector.random(1, ())


def test_simulated_crash_is_not_a_repro_error():
    """The engine's dispatch guard absorbs ReproError; a simulated
    power cut must unwind the whole stack instead."""
    assert not issubclass(SimulatedCrash, ReproError)
