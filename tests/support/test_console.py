"""Tests for the text front-end (the GUI stand-in)."""

import pytest

from repro.cadel.binding import HomeDirectory
from repro.core.server import HomeServer
from repro.home import build_demo_home
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.support.authoring import AuthoringSession
from repro.support.console import (
    ConsoleFrontend,
    render_device_list,
    render_guidance,
    render_priority_dialog,
)
from repro.support.guidance import GuidanceService
from repro.support.lookup import LookupQuery, LookupService


@pytest.fixture
def frontend():
    simulator = Simulator()
    bus = NetworkBus(simulator)
    server = HomeServer(simulator, bus)
    home = build_demo_home(simulator, bus, event_sink=server.post_event)
    server.discover()
    directory = HomeDirectory(
        users=list(home.locator.residents),
        locator_udn=home.locator.udn,
        epg_udn=home.epg.udn,
    )
    session = AuthoringSession(server, "Tom", directory)
    output = []
    return ConsoleFrontend(session, emit=output.append), output, home


class TestConsoleFrontend:
    def test_rule_submission(self, frontend):
        console, output, _ = frontend
        console.submit_line(
            "If temperature is higher than 28 degrees, turn on the "
            "electric fan"
        )
        assert any("registered:" in line for line in output)

    def test_word_definition(self, frontend):
        console, output, _ = frontend
        console.submit_line(
            "Let's call the condition that temperature is higher than 28 "
            "degrees hot and stuffy"
        )
        assert any("condition word" in line and "hot and stuffy" in line
                   for line in output)

    def test_conflict_reported(self, frontend):
        console, output, _ = frontend
        console.submit_line(
            "If temperature is higher than 25 degrees, turn on the air "
            "conditioner with 24 degrees of temperature setting"
        )
        console.submit_line(
            "If temperature is higher than 26 degrees, turn on the air "
            "conditioner with 25 degrees of temperature setting"
        )
        assert any("conflict:" in line for line in output)

    def test_syntax_error_surfaced_not_raised(self, frontend):
        console, output, _ = frontend
        console.submit_line("flibber the jabberwock")
        assert any("error:" in line for line in output)

    def test_lookup_query(self, frontend):
        console, output, _ = frontend
        console.submit_line("? keyword=light location=hall")
        text = "\n".join(output)
        assert "hall light" in text

    def test_lookup_bare_keyword(self, frontend):
        console, output, _ = frontend
        console.submit_line("? temperature")
        assert "thermometer" in "\n".join(output)

    def test_guidance_query(self, frontend):
        console, output, _ = frontend
        console.submit_line("! air conditioner")
        text = "\n".join(output)
        assert "TurnOn" in text and "temperature" in text

    def test_blank_line_ignored(self, frontend):
        console, output, _ = frontend
        console.submit_line("   ")
        assert output == []


class TestRenderers:
    def test_render_device_list_empty(self, frontend):
        console, _, _ = frontend
        lookup = LookupService(
            console.session.server.control_point.registry,
            words=console.session.words,
        )
        text = render_device_list(lookup, LookupQuery(name="missing"))
        assert "no devices" in text

    def test_render_guidance_unknown_device(self, frontend):
        console, _, _ = frontend
        lookup = LookupService(
            console.session.server.control_point.registry,
            words=console.session.words,
        )
        guidance = GuidanceService(console.session.server.engine)
        assert "no device" in render_guidance(guidance, lookup, "teleporter")

    def test_render_priority_dialog(self, frontend):
        console, _, home = frontend
        session = console.session
        server = session.server
        session.submit(
            "If temperature is higher than 25 degrees, turn on the air "
            "conditioner with 24 degrees of temperature setting",
            rule_name="first",
        )
        outcome = session.submit(
            "If temperature is higher than 26 degrees, turn on the air "
            "conditioner with 25 degrees of temperature setting",
            rule_name="second",
        )
        text = render_priority_dialog(
            server, outcome.rule, outcome.conflicts
        )
        assert "Priority setup" in text
        assert "first" in text or "Tom" in text
