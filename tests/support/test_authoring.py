"""Unit tests for authoring sessions and the layered word dictionary."""

import pytest

from repro.errors import CadelBindingError


class TestSubmitRouting:
    def test_conddef_routes_to_dictionary(self, stack):
        session = stack.session("Tom")
        result = session.submit(
            "Let's call the condition that temperature is higher than 28 "
            "degrees toasty"
        )
        assert result.kind == "condition-word"
        assert session.words.has_condition("toasty")

    def test_confdef_routes_to_dictionary(self, stack):
        session = stack.session("Tom")
        result = session.submit(
            'Let\'s call the configuration that 30 percent of level setting '
            '"mood lighting"'
        )
        assert result.kind == "configuration-word"
        assert session.words.has_configuration("mood lighting")

    def test_rule_gets_auto_name_with_owner_prefix(self, stack):
        result = stack.session("Emily").submit("turn on the alarm")
        assert result.rule.name.startswith("emily-rule-")
        assert result.rule.owner == "Emily"


class TestWordLayering:
    def test_personal_words_shadow_shared(self, stack):
        tom = stack.session("Tom")
        alan = stack.session("Alan")
        # A shared definition everyone sees...
        tom.shared_words.define_condition(
            "cozy", tom.parser.parse_condition(
                "temperature is higher than 20 degrees")
        )
        assert alan.words.has_condition("cozy")
        # ...until Alan defines his own stricter version.
        alan.submit(
            "Let's call the condition that temperature is higher than 23 "
            "degrees cozy"
        )
        personal = alan.personal_words.condition("cozy")
        resolved = alan.words.condition("cozy")
        assert resolved is personal

    def test_personal_words_are_private(self, stack):
        stack.session("Tom").submit(
            "Let's call the condition that temperature is higher than 26 "
            "degrees just mine"
        )
        assert not stack.session("Alan").words.has_condition("just mine")

    def test_shared_word_usable_in_rules_by_everyone(self, stack):
        tom = stack.session("Tom")
        tom.shared_words.define_condition(
            "sweltering", tom.parser.parse_condition(
                "temperature is higher than 30 degrees")
        )
        outcome = stack.session("Emily").submit(
            'If the living room is "sweltering", turn on the electric fan',
            rule_name="emily-fan",
        )
        assert outcome.rule is not None

    def test_longest_match_across_layers(self, stack):
        tom = stack.session("Tom")
        tom.shared_words.define_condition(
            "hot", tom.parser.parse_condition(
                "temperature is higher than 28 degrees")
        )
        tom.submit(
            "Let's call the condition that temperature is higher than 26 "
            "degrees and humidity is over 65 percent hot and stuffy"
        )
        # "hot and stuffy ..." must resolve to the longer personal word,
        # not shared "hot" followed by a dangling "and stuffy".
        expr = tom.parser.parse_condition("hot and stuffy")
        from repro.cadel.ast import UserCondRef

        assert isinstance(expr, UserCondRef)
        assert expr.word == "hot and stuffy"


class TestContextsAndPriorities:
    def test_compile_context(self, stack):
        condition = stack.session("Alan").compile_context(
            "alan got home from work"
        )
        from repro.core.condition import DiscreteAtom

        assert isinstance(condition, DiscreteAtom)
        assert condition.value == "work"

    def test_set_priority_registers_order(self, stack):
        order = stack.session("Alan").set_priority(
            "TV", ["Alan", "Tom"], context="alan got home from work"
        )
        tv = stack.server.control_point.registry.by_name("TV")[0]
        assert stack.server.priorities.orders_for_device(tv.udn) == [order]
        assert order.label == "alan got home from work"

    def test_set_priority_unknown_device_raises(self, stack):
        from repro.errors import UPnPError

        with pytest.raises(UPnPError):
            stack.session("Alan").set_priority("jacuzzi", ["Alan"])

    def test_i_binds_per_session(self, stack):
        tom_rule = stack.session("Tom").submit(
            "If I am in the living room, turn on the electric fan",
            rule_name="tom-i",
        ).rule
        alan_rule = stack.session("Alan").submit(
            "If I am in the living room, turn on the electric fan",
            rule_name="alan-i",
        ).rule
        tom_vars = tom_rule.condition.referenced_variables()
        alan_vars = alan_rule.condition.referenced_variables()
        assert any("Tom_place" in v for v in tom_vars)
        assert any("Alan_place" in v for v in alan_vars)

    def test_known_words_listing(self, stack):
        session = stack.session("Tom")
        session.submit(
            "Let's call the condition that temperature is higher than 28 "
            "degrees toasty"
        )
        words = session.known_words()
        assert "toasty" in words["conditions"]
