"""Tests for household persistence across a simulated server restart."""

import json

import pytest

from repro.errors import ArchiveError, RuleError
from repro.support.persistence import (
    restore_household,
    save_household,
)
from tests.stack import Stack


def populated_stack():
    stack = Stack()
    tom = stack.session("Tom")
    tom.submit(
        "Let's call the condition that temperature is higher than 26 "
        "degrees and humidity is over 65 percent hot and stuffy"
    )
    tom.submit(
        'If I am in the living room and the living room is "hot and '
        'stuffy", turn on the air conditioner with 25 degrees of '
        "temperature setting",
        rule_name="tom-climate",
    )
    alan = stack.session("Alan")
    alan.submit(
        "If I am in the living room, play the stereo with opera of genre "
        "setting",
        rule_name="alan-opera",
    )
    alan.set_priority("stereo", ["Alan", "Tom"],
                      context="alan got home from work")
    tom.shared_words.define_condition(
        "sweltering",
        tom.parser.parse_condition("temperature is higher than 30 degrees"),
    )
    return stack


class TestSaveRestore:
    def test_round_trip_restores_everything(self):
        old = populated_stack()
        sessions = {name: old.session(name) for name in ("Tom", "Alan")}
        archive = save_household(old.server, sessions)

        fresh = Stack()  # the "rebooted" server: new UDNs everywhere
        fresh_sessions = {name: fresh.session(name)
                          for name in ("Tom", "Alan")}
        report = restore_household(fresh_sessions, archive)

        assert report.ok()
        assert report.rules_restored == 2
        assert report.priorities_restored == 1
        assert "tom-climate" in fresh.server.database
        assert "alan-opera" in fresh.server.database
        # Personal word survived and is usable.
        assert fresh.session("Tom").words.has_condition("hot and stuffy")
        # Shared word survived.
        assert fresh.session("Alan").words.has_condition("sweltering")
        # Priority order re-bound to the *new* stereo UDN.
        stereo_udn = fresh.home.stereo.udn
        orders = fresh.server.priorities.orders_for_device(stereo_udn)
        assert len(orders) == 1
        assert orders[0].ranking == ("Alan", "Tom")

    def test_restored_rules_execute(self):
        old = populated_stack()
        archive = save_household(
            old.server, {name: old.session(name) for name in ("Tom", "Alan")}
        )
        fresh = Stack()
        restore_household(
            {name: fresh.session(name) for name in ("Tom", "Alan")}, archive
        )
        living = fresh.home.environment.room("living room")
        living.temperature, living.humidity = 31.0, 80.0
        fresh.home.household.arrive_home("Tom", "school", "living room")
        fresh.run_for(180.0)
        assert fresh.home.aircon.is_on
        assert fresh.home.aircon.target_temperature == 25.0

    def test_missing_user_reported_not_fatal(self):
        old = populated_stack()
        archive = save_household(
            old.server, {name: old.session(name) for name in ("Tom", "Alan")}
        )
        fresh = Stack()
        report = restore_household({"Tom": fresh.session("Tom")}, archive)
        assert not report.ok()
        assert ("alan-opera", "no session for user 'Alan'") in [
            (name, reason) for name, reason in report.rules_failed
        ]
        assert report.rules_restored == 1

    def test_bad_format_rejected(self):
        fresh = Stack()
        with pytest.raises(RuleError, match="format"):
            restore_household({"Tom": fresh.session("Tom")},
                              '{"format": "bogus"}')

    @pytest.mark.parametrize("incremental", (True, False))
    def test_restored_rules_wake_on_ingest(self, incremental):
        """A restored rule must be fully indexed by the (incremental)
        engine: a direct sensor ingest through the public server API
        wakes it with no device traffic involved."""
        old = populated_stack()
        archive = save_household(
            old.server, {name: old.session(name) for name in ("Tom", "Alan")}
        )
        fresh = Stack(incremental=incremental)
        report = restore_household(
            {name: fresh.session(name) for name in ("Tom", "Alan")}, archive
        )
        assert report.ok()
        rule = fresh.server.database.get("tom-climate")
        assert fresh.server.engine.rule_truth("tom-climate") is False
        # Satisfy every referenced variable directly: numerics high
        # (the rule wants temperature > 26 and humidity > 65), Tom's
        # place set to the bound room.
        for variable in sorted(rule.condition.referenced_variables()):
            if variable in rule.condition.numeric_variables():
                fresh.server.ingest(variable, 99.0)
            else:
                fresh.server.ingest(variable, "living room")
        assert fresh.server.engine.rule_truth("tom-climate") is True
        holder = fresh.server.engine.holder_of(fresh.home.aircon.udn)
        assert holder is not None and holder[0] == "tom-climate"

    def test_rule_removal_mid_stream_prunes_every_bucket(self):
        """Removing a restored rule while sensor events keep flowing must
        prune every index bucket (atom entries, threshold bands, engine
        plans/bits/watches) and leave the surviving rules live."""
        old = populated_stack()
        archive = save_household(
            old.server, {name: old.session(name) for name in ("Tom", "Alan")}
        )
        fresh = Stack()
        assert restore_household(
            {name: fresh.session(name) for name in ("Tom", "Alan")}, archive
        ).ok()
        server = fresh.server
        doomed = server.database.get("tom-climate")
        variables = sorted(doomed.condition.referenced_variables())
        numeric = doomed.condition.numeric_variables()

        def pump(value):
            for variable in variables:
                server.ingest(
                    variable, value if variable in numeric else "living room"
                )

        pump(99.0)
        assert server.engine.rule_truth("tom-climate") is True
        server.remove_rule("tom-climate")
        pump(98.0)  # events keep flowing after removal
        pump(1.0)

        database = server.database
        engine = server.engine
        assert "tom-climate" not in database
        for entry in database._atom_entries.values():
            assert "tom-climate" not in entry.subscribers
        for band in database._numeric_bands.values():
            for bucket_entry in (band.below_e + band.above_e + band.recheck):
                assert "tom-climate" not in bucket_entry.subscribers
        for watchers in database._var_watch.values():
            assert "tom-climate" not in watchers
        assert "tom-climate" not in engine._plans
        assert "tom-climate" not in engine._bits
        assert "tom-climate" not in engine._watch_vars
        for rules in engine._held_atom_rules.values():
            assert "tom-climate" not in rules
        # The survivor still arbitrates normally on the live stream.
        fresh.home.household.arrive_home("Alan", "work", "living room")
        fresh.run_for(120.0)
        assert server.engine.rule_truth("alan-opera") is True

    def test_unbindable_rule_reported(self):
        """A rule naming a device the new home lacks fails cleanly."""
        fresh = Stack()
        archive = json.dumps({
            "format": "cadel-household/1",
            "users": {
                "Tom": {
                    "rules": [
                        {"name": "ghost", "text": "turn on the jacuzzi"}
                    ],
                    "condition_words": {},
                    "configuration_words": {},
                }
            },
            "shared_condition_words": {},
            "shared_configuration_words": {},
            "priorities": [],
        })
        report = restore_household({"Tom": fresh.session("Tom")}, archive)
        assert not report.ok()
        assert report.rules_failed[0][0] == "ghost"
        assert "no device" in report.rules_failed[0][1]


class TestDamagedArchives:
    """A power cut can hand the restore path anything: truncated JSON,
    the wrong document shape, items that no longer parse or bind.  The
    typed boundary is ArchiveError for undecodable documents; everything
    inside a well-formed archive degrades per item."""

    def test_truncated_archive_raises_archive_error(self):
        old = populated_stack()
        sessions = {name: old.session(name) for name in ("Tom", "Alan")}
        archive = save_household(old.server, sessions)
        fresh = Stack()
        with pytest.raises(ArchiveError, match="not valid JSON"):
            restore_household(
                {"Tom": fresh.session("Tom")}, archive[:len(archive) // 2])

    def test_archive_error_is_a_rule_error(self):
        # Callers predating the typed error catch RuleError; the new
        # class must keep slotting into those handlers.
        assert issubclass(ArchiveError, RuleError)

    def test_non_object_archive_rejected(self):
        fresh = Stack()
        with pytest.raises(ArchiveError, match="JSON object"):
            restore_household({"Tom": fresh.session("Tom")}, "[1, 2, 3]")

    def test_restore_needs_at_least_one_session(self):
        old = populated_stack()
        archive = save_household(
            old.server, {name: old.session(name) for name in ("Tom", "Alan")}
        )
        with pytest.raises(ArchiveError, match="no authoring sessions"):
            restore_household({}, archive)

    def test_unparseable_word_reported_not_fatal(self):
        old = populated_stack()
        archive = json.loads(save_household(
            old.server, {name: old.session(name) for name in ("Tom", "Alan")}
        ))
        archive["shared_condition_words"]["mangled"] = "zxqv blorp &&&"
        fresh = Stack()
        report = restore_household(
            {name: fresh.session(name) for name in ("Tom", "Alan")},
            json.dumps(archive),
        )
        assert not report.ok()
        assert [word for word, _reason in report.words_failed] == ["mangled"]
        # Everything else still restored around the damage.
        assert report.rules_restored == 2
        assert fresh.session("Alan").words.has_condition("sweltering")

    def test_priority_for_vanished_device_reported(self):
        old = populated_stack()
        archive = json.loads(save_household(
            old.server, {name: old.session(name) for name in ("Tom", "Alan")}
        ))
        archive["priorities"].append({
            "device": "jacuzzi", "ranking": ["Tom", "Alan"], "context": None,
        })
        fresh = Stack()
        report = restore_household(
            {name: fresh.session(name) for name in ("Tom", "Alan")},
            json.dumps(archive),
        )
        assert not report.ok()
        assert [device for device, _ in report.priorities_failed] \
            == ["jacuzzi"]
        assert report.priorities_restored == 1  # the stereo order survived

    def test_save_to_path_commits_atomically(self, tmp_path):
        old = populated_stack()
        sessions = {name: old.session(name) for name in ("Tom", "Alan")}
        path = tmp_path / "household.json"
        path.write_text("previous archive")
        document = save_household(old.server, sessions, path=str(path))
        assert path.read_text() == document
        assert list(tmp_path.iterdir()) == [path]  # no temp litter
        fresh = Stack()
        report = restore_household(
            {name: fresh.session(name) for name in ("Tom", "Alan")},
            path.read_text(),
        )
        assert report.ok()
