"""WAL framing/recovery (repro.support.wal) and the atomic-write
helper (repro.support.fsio)."""

import json
import struct

import pytest

from repro.sim.faults import FaultInjector, SimulatedCrash
from repro.support.fsio import atomic_write_bytes, atomic_write_text
from repro.support.wal import (
    CRASH_AFTER_APPEND,
    CRASH_BEFORE_APPEND,
    CRASH_TORN_APPEND,
    WalWriter,
    encode_record,
    read_wal,
)


def _write(path, payloads, **kwargs):
    writer = WalWriter(str(path), **kwargs)
    for payload in payloads:
        writer.append(payload)
    writer.close()


# -- fsio ------------------------------------------------------------------------


def test_atomic_write_replaces_content(tmp_path):
    path = tmp_path / "doc.json"
    atomic_write_text(str(path), "first")
    atomic_write_text(str(path), "second")
    assert path.read_text() == "second"
    assert list(tmp_path.iterdir()) == [path]  # no tmp litter


def test_atomic_write_failure_keeps_previous_content(tmp_path):
    path = tmp_path / "doc.bin"
    atomic_write_bytes(str(path), b"intact")
    # Simulate a mid-write failure by passing something the file write
    # rejects; the destination must keep its previous content.
    with pytest.raises(TypeError):
        atomic_write_bytes(str(path), "not-bytes")  # type: ignore[arg-type]
    assert path.read_bytes() == b"intact"
    assert list(tmp_path.iterdir()) == [path]


# -- WAL round trip --------------------------------------------------------------


def test_wal_round_trip(tmp_path):
    path = tmp_path / "shard0.log"
    payloads = [{"seq": i, "n": [["w", "var", float(i)]]} for i in range(40)]
    _write(path, payloads, fsync_interval=7)
    records, report = read_wal(str(path))
    assert records == payloads
    assert report.ok()
    assert report.records == 40
    assert report.valid_bytes == report.total_bytes


def test_missing_wal_reads_empty(tmp_path):
    records, report = read_wal(str(tmp_path / "absent.log"))
    assert records == []
    assert report.ok()


def test_torn_tail_truncates_to_last_valid_record(tmp_path):
    path = tmp_path / "shard0.log"
    payloads = [{"seq": i} for i in range(5)]
    _write(path, payloads)
    blob = path.read_bytes()
    # Tear mid-way through the final record's payload.
    path.write_bytes(blob[:-3])
    records, report = read_wal(str(path))
    assert records == payloads[:4]
    assert report.truncated
    assert report.reason == "torn record payload"


def test_torn_prefix_truncates(tmp_path):
    path = tmp_path / "shard0.log"
    _write(path, [{"seq": 1}])
    with open(path, "ab") as handle:
        handle.write(struct.pack("<I", 99)[:3])  # 3 of 8 prefix bytes
    records, report = read_wal(str(path))
    assert len(records) == 1
    assert report.truncated
    assert report.reason == "torn record prefix"


def test_checksum_corruption_truncates(tmp_path):
    path = tmp_path / "shard0.log"
    payloads = [{"seq": i, "v": "x" * 20} for i in range(3)]
    _write(path, payloads)
    blob = bytearray(path.read_bytes())
    # Flip a byte inside the second record's payload.
    first_len = len(encode_record(payloads[0]))
    blob[first_len + 12] ^= 0xFF
    path.write_bytes(bytes(blob))
    records, report = read_wal(str(path))
    assert records == payloads[:1]
    assert report.truncated
    assert report.reason == "checksum mismatch"


def test_valid_bytes_count_garbage_after_corruption(tmp_path):
    path = tmp_path / "shard0.log"
    _write(path, [{"seq": 1}, {"seq": 2}])
    good = len(encode_record({"seq": 1}))
    blob = bytearray(path.read_bytes())
    blob[good + 9] ^= 0x01
    path.write_bytes(bytes(blob))
    _, report = read_wal(str(path))
    assert report.valid_bytes == good
    assert report.total_bytes == len(blob)


# -- fault-injected appends ------------------------------------------------------


def test_crash_before_append_loses_the_record(tmp_path):
    path = tmp_path / "shard0.log"
    writer = WalWriter(str(path), faults=FaultInjector(
        {CRASH_BEFORE_APPEND: 2}))
    writer.append({"seq": 1})
    with pytest.raises(SimulatedCrash):
        writer.append({"seq": 2})
    records, report = read_wal(str(path))
    assert records == [{"seq": 1}]
    assert report.ok()


def test_crash_torn_append_leaves_recoverable_prefix(tmp_path):
    path = tmp_path / "shard0.log"
    writer = WalWriter(str(path), faults=FaultInjector(
        {CRASH_TORN_APPEND: 2}))
    writer.append({"seq": 1})
    with pytest.raises(SimulatedCrash):
        writer.append({"seq": 2})
    records, report = read_wal(str(path))
    assert records == [{"seq": 1}]
    assert report.truncated  # half a frame really is on disk


def test_crash_after_append_keeps_the_record(tmp_path):
    path = tmp_path / "shard0.log"
    writer = WalWriter(str(path), faults=FaultInjector(
        {CRASH_AFTER_APPEND: 2}))
    writer.append({"seq": 1})
    with pytest.raises(SimulatedCrash):
        writer.append({"seq": 2})
    records, report = read_wal(str(path))
    assert records == [{"seq": 1}, {"seq": 2}]
    assert report.ok()


def test_fsync_interval_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        WalWriter(str(tmp_path / "w.log"), fsync_interval=0)


def test_payloads_are_compact_json(tmp_path):
    path = tmp_path / "shard0.log"
    _write(path, [{"seq": 1, "n": [["w", "a/b:c", 1.5]]}])
    blob = path.read_bytes()
    body = blob[8:]
    assert json.loads(body.decode()) == {"seq": 1, "n": [["w", "a/b:c", 1.5]]}
    assert b" " not in body  # compact separators
