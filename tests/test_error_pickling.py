"""The exception taxonomy must pickle round-trip exactly.

The process-distribution layer (:mod:`repro.cluster.worker`) forwards
worker-side failures to the parent as pickled payloads; an exception
that loses its type, message or attributes in transit surfaces as an
opaque ``TypeError`` in the wrong process.  This suite walks *every*
public exception class in :mod:`repro.errors` (plus
:class:`~repro.sim.faults.SimulatedCrash`, which deliberately lives
outside the taxonomy) so a newly added class cannot regress silently.
"""

import inspect
import pickle

import pytest

import repro.errors as errors_module
from repro.errors import (
    ActionError,
    CadelSyntaxError,
    InconsistentRuleError,
    ReproError,
    UnresolvedConflictError,
    WorkerCrashed,
)
from repro.sim.faults import SimulatedCrash

# Classes whose __init__ signature differs from a single message string;
# everything else is constructed as cls("message").
SAMPLE_ARGS = {
    ActionError: ("uuid:tv-1", "PowerOn", "no such action"),
    CadelSyntaxError: ("unexpected token", "turn on the", 12),
    InconsistentRuleError: ("rule-7", "temp > 30 and temp < 10"),
    UnresolvedConflictError: (["rule-a", "rule-b"], "uuid:aircon-1"),
    WorkerCrashed: (3, -9, "killed during drain"),
    SimulatedCrash: ("wal-torn-append",),
}


def public_exception_classes():
    """Every exception class defined by repro.errors, plus the
    simulated-crash escape hatch."""
    classes = [
        obj
        for _, obj in sorted(vars(errors_module).items())
        if inspect.isclass(obj)
        and issubclass(obj, BaseException)
        and obj.__module__ == errors_module.__name__
    ]
    classes.append(SimulatedCrash)
    return classes


def build(cls):
    args = SAMPLE_ARGS.get(cls, ("something went wrong",))
    return cls(*args)


@pytest.mark.parametrize(
    "cls", public_exception_classes(), ids=lambda cls: cls.__name__
)
def test_round_trips_through_pickle(cls):
    original = build(cls)
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is cls
    assert str(clone) == str(original)
    # Every instance attribute the constructor recorded must survive.
    assert vars(clone) == vars(original)


@pytest.mark.parametrize(
    "cls", public_exception_classes(), ids=lambda cls: cls.__name__
)
def test_round_trips_at_every_protocol(cls):
    original = build(cls)
    for protocol in range(2, pickle.HIGHEST_PROTOCOL + 1):
        clone = pickle.loads(pickle.dumps(original, protocol))
        assert type(clone) is cls
        assert str(clone) == str(original)


def test_taxonomy_membership_is_as_documented():
    """SimulatedCrash must stay outside ReproError (a simulated power
    cut must never be swallowed by the engine's dispatch guard), and
    every repro.errors class must stay inside it."""
    assert not issubclass(SimulatedCrash, ReproError)
    for cls in public_exception_classes():
        if cls is not SimulatedCrash:
            assert issubclass(cls, ReproError), cls.__name__


def test_attributes_survive_decorated_messages():
    """The classes that decorate their stored message must rebuild from
    raw parts, not re-decorate on unpickle."""
    syntax = pickle.loads(pickle.dumps(
        CadelSyntaxError("unexpected token", "turn on the", 12)))
    assert syntax.text == "turn on the"
    assert syntax.position == 12
    assert str(syntax).count("^") == 1  # pointer not duplicated

    conflict = pickle.loads(pickle.dumps(
        UnresolvedConflictError(["a", "b"], "uuid:dev")))
    assert conflict.rule_names == ["a", "b"]
    assert conflict.device == "uuid:dev"

    crash = pickle.loads(pickle.dumps(SimulatedCrash("drain-apply")))
    assert crash.site == "drain-apply"
