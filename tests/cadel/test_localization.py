"""CADEL in another natural language.

The paper: "Although we only describe English-based version of CADEL in
this paper, different versions of CADEL based on any other languages can
be defined.  Users can use their mother language based CADEL to describe
rules."  The vocabulary object is the language binding; this test builds
a miniature Japanese-romaji CADEL and parses rules with it.
"""

import pytest

from repro.cadel.ast import CondAnd, RuleDef
from repro.cadel.parser import CadelParser
from repro.cadel.vocabulary import StateKind, Vocabulary
from repro.sim.clock import hhmm


def romaji_vocabulary() -> Vocabulary:
    """A small Japanese-romaji binding of CADEL.

    "shitsudo ga 60 percent ijou da" — humidity is over 60 percent;
    "eakon wo tsukete" — turn on the air conditioner.
    """
    return Vocabulary(
        verbs={
            ("tsukete",): "turn on",
            ("keshite",): "turn off",
            ("rokuga", "shite"): "record",
        },
        articles=frozenset({"wo", "ga", "no"}),  # particles fill the role
        be_words=frozenset({"da", "desu"}),
        state_phrases={
            ("ga", "ijou", "da"): StateKind.NUMERIC_GE,
            ("ga", "ika", "da"): StateKind.NUMERIC_LE,
            ("ga", "takai"): StateKind.NUMERIC_GT,
            ("ni", "iru"): StateKind.AT_PLACE,
            ("ga", "tsuite", "iru"): StateKind.TURNED_ON,
        },
        value_units={
            ("do",): ("celsius", 1.0),
            ("percent",): ("percent", 1.0),
        },
        period_units={"byou": 1.0, "fun": 60.0, "jikan": 3600.0},
        named_times={"yoru": hhmm(21), "asa": hhmm(6)},
        weekdays={"getsuyoubi": 0, "nichiyoubi": 6},
        time_prepositions=frozenset({"at", "after", "until", "before"}),
        parameters=frozenset({"ondo", "temperature"}),
        sensor_kinds={("kion",): "temperature", ("shitsudo",): "humidity"},
        person_words=frozenset({"watashi", "dareka"}),
        conddef_prefix=("jouken", "wo", "teigi", "suru"),
        confdef_prefix=("settei", "wo", "teigi", "suru"),
    )


class TestRomajiCadel:
    @pytest.fixture
    def parser(self):
        return CadelParser(vocabulary=romaji_vocabulary())

    def test_numeric_condition(self, parser):
        # "if humidity is over 60 percent, turn on the air conditioner"
        rule = parser.parse(
            "if shitsudo ga ijou da 60 percent, tsukete eakon"
        )
        assert isinstance(rule, RuleDef)
        atom = rule.precondition
        assert atom.subject_words == ("shitsudo",)
        assert atom.state is StateKind.NUMERIC_GE
        assert atom.value == 60.0
        assert rule.action.verb == "turn on"
        assert rule.action.target.name_words == ("eakon",)

    def test_conjunction(self, parser):
        rule = parser.parse(
            "if kion ga takai 28 do and shitsudo ga takai 60 percent, "
            "tsukete eakon"
        )
        assert isinstance(rule.precondition, CondAnd)
        assert len(rule.precondition.children) == 2

    def test_verbs_map_to_canonical_actions(self, parser):
        rule = parser.parse("keshite terebi")
        # The canonical verb survives localization, so the binder's
        # verb → UPnP-action table is language-independent.
        assert rule.action.verb == "turn off"

    def test_conddef_in_romaji(self, parser):
        command = parser.parse(
            "jouken wo teigi suru kion ga takai 28 do mushiatsui"
        )
        assert command.word == "mushiatsui"
