"""Parser conformance suite for the Table 1 grammar (experiment T1).

Covers every production: RuleDef with pre/postconditions, TimeSpecs,
PeriodSpecs, configurations, CondDef/ConfDef, user-word references,
and/or/parentheses, and the paper's three example rules verbatim.
"""

import pytest

from repro.cadel.ast import (
    CondAnd,
    CondAtom,
    CondDef,
    CondOr,
    ConfDef,
    RuleDef,
    TimeCond,
    UserCondRef,
)
from repro.cadel.parser import CadelParser, parse_command
from repro.cadel.vocabulary import StateKind
from repro.cadel.words import WordDictionary
from repro.errors import CadelSyntaxError
from repro.sim.clock import hhmm


class TestPaperExamples:
    """The three rules of Sect. 4.2 plus the CondDef example, verbatim."""

    def test_rule_1_air_conditioner(self):
        rule = parse_command(
            "If humidity is higher than 80 percent and temperature is higher "
            "than 28 degrees, turn on the air conditioner with 25 degrees of "
            "temperature setting."
        )
        assert isinstance(rule, RuleDef)
        assert isinstance(rule.precondition, CondAnd)
        humid, temp = rule.precondition.children
        assert humid.subject_words == ("humidity",)
        assert humid.state is StateKind.NUMERIC_GT
        assert humid.value == 80.0 and humid.unit == "percent"
        assert temp.value == 28.0 and temp.unit == "celsius"
        assert rule.action.verb == "turn on"
        assert rule.action.target.name_words == ("air", "conditioner")
        assert len(rule.action.config.settings) == 1
        setting = rule.action.config.settings[0]
        assert setting.parameter == "temperature" and setting.value == 25.0

    def test_rule_2_hall_light(self):
        rule = parse_command(
            "After evening, if someone returns home and the hall is dark, "
            "turn on the light at the hall."
        )
        assert isinstance(rule, RuleDef)
        assert rule.pre_time is not None
        assert rule.pre_time.preposition == "after"
        assert rule.pre_time.named == "evening"
        returns, dark = rule.precondition.children
        assert returns.state is StateKind.RETURNS_HOME
        assert returns.subject_words == ("someone",)
        assert dark.state is StateKind.DARK
        assert dark.subject_words == ("hall",)
        assert rule.action.target.name_words == ("light",)
        assert rule.action.target.place_words == ("hall",)

    def test_rule_3_alarm(self):
        rule = parse_command(
            "At night, if entrance door is unlocked for 1 hour, "
            "turn on the alarm."
        )
        assert isinstance(rule, RuleDef)
        assert rule.pre_time.named == "night"
        atom = rule.precondition
        assert isinstance(atom, CondAtom)
        assert atom.state is StateKind.UNLOCKED
        assert atom.subject_words == ("entrance", "door")
        assert atom.period is not None
        assert atom.period.seconds == 3600.0

    def test_conddef_hot_and_stuffy(self):
        command = parse_command(
            "Let's call the condition that humidity is higher than 60 % and "
            "temperature is higher than 28 degrees hot and stuffy"
        )
        assert isinstance(command, CondDef)
        assert command.word == "hot and stuffy"
        assert isinstance(command.expr, CondAnd)
        assert len(command.expr.children) == 2

    def test_confdef_half_lighting(self):
        command = parse_command(
            "Let's call the configuration that 50 percent of level setting "
            '"half-lighting"'
        )
        assert isinstance(command, ConfDef)
        assert command.word == "half-lighting"
        assert command.settings[0].parameter == "level"
        assert command.settings[0].value == 50.0


class TestCondExpr:
    def parse_cond(self, text, words=None):
        return CadelParser(words=words).parse_condition(text)

    def test_or_expression(self):
        expr = self.parse_cond("tom is at the kitchen or tom is at the hall")
        assert isinstance(expr, CondOr)
        assert len(expr.children) == 2

    def test_and_binds_tighter_than_or(self):
        expr = self.parse_cond(
            "temperature is higher than 28 degrees and humidity is over 60 "
            "percent or tom is at the hall"
        )
        assert isinstance(expr, CondOr)
        assert isinstance(expr.children[0], CondAnd)

    def test_parentheses_group(self):
        expr = self.parse_cond(
            "temperature is higher than 28 degrees and (tom is at the hall "
            "or tom is at the kitchen)"
        )
        assert isinstance(expr, CondAnd)
        assert isinstance(expr.children[1], CondOr)

    def test_location_modifier_in_subject(self):
        expr = self.parse_cond(
            "temperature at the bedroom is higher than 28 degrees"
        )
        assert expr.subject_words == ("temperature",)
        assert expr.place_words == ("bedroom",)

    def test_at_place_strips_article(self):
        expr = self.parse_cond("alan is at the living room")
        assert expr.state is StateKind.AT_PLACE
        assert expr.value_words == ("living", "room")

    def test_i_am_in(self):
        expr = self.parse_cond("i am in the living room")
        assert expr.subject_words == ("i",)
        assert expr.value_words == ("living", "room")

    def test_nobody(self):
        expr = self.parse_cond("nobody is at the living room")
        assert expr.subject_words == ("nobody",)

    def test_on_air(self):
        expr = self.parse_cond("a baseball game is on air")
        assert expr.state is StateKind.ON_AIR
        assert expr.subject_words == ("baseball", "game")

    def test_got_home_from(self):
        expr = self.parse_cond("alan got home from work")
        assert expr.state is StateKind.ARRIVED_FROM
        assert expr.value_words == ("work",)

    def test_fahrenheit_converted(self):
        expr = self.parse_cond("temperature is higher than 82.4 degrees fahrenheit")
        assert expr.unit == "celsius"
        assert abs(expr.value - 28.0) < 1e-9

    def test_trailing_timespec_becomes_conjunct(self):
        expr = self.parse_cond("entrance door is unlocked after 22:00")
        assert isinstance(expr, CondAnd)
        atom, time_cond = expr.children
        assert isinstance(time_cond, TimeCond)
        assert time_cond.spec.time_of_day == hhmm(22)

    def test_period_minutes(self):
        expr = self.parse_cond("entrance door is open for 30 minutes")
        assert expr.period.seconds == 1800.0

    def test_is_over_percent(self):
        expr = self.parse_cond("humidity is over 60 percent")
        assert expr.state is StateKind.NUMERIC_GT

    def test_turned_on_off(self):
        on = self.parse_cond("the stereo is turned on")
        off = self.parse_cond("the tv is turned off")
        assert on.state is StateKind.TURNED_ON
        assert off.state is StateKind.TURNED_OFF

    def test_missing_state_raises(self):
        with pytest.raises(CadelSyntaxError, match="state phrase"):
            self.parse_cond("the thermometer wobbles")

    def test_missing_number_raises(self):
        with pytest.raises(CadelSyntaxError, match="number"):
            self.parse_cond("temperature is higher than lots")


class TestUserWords:
    def make_words(self):
        parser = CadelParser()
        words = WordDictionary()
        defn = parser.parse(
            "Let's call the condition that temperature is higher than 28 "
            "degrees and humidity is over 60 percent hot and stuffy"
        )
        words.define_condition(defn.word, defn.expr)
        return words

    def test_bare_word_reference(self):
        words = self.make_words()
        expr = CadelParser(words=words).parse_condition("hot and stuffy")
        assert isinstance(expr, UserCondRef)
        assert expr.word == "hot and stuffy"

    def test_subject_is_word(self):
        words = self.make_words()
        expr = CadelParser(words=words).parse_condition(
            "the living room is hot and stuffy"
        )
        assert isinstance(expr, UserCondRef)
        assert expr.subject_words == ("living", "room")

    def test_quoted_word_without_dictionary(self):
        expr = CadelParser().parse_condition('the room is "hot and stuffy"')
        assert isinstance(expr, UserCondRef)
        assert expr.word == "hot and stuffy"

    def test_word_in_rule_condition(self):
        words = self.make_words()
        rule = CadelParser(words=words).parse(
            "If hot and stuffy, turn on the air conditioner"
        )
        assert isinstance(rule.precondition, UserCondRef)

    def test_word_combined_with_and(self):
        words = self.make_words()
        expr = CadelParser(words=words).parse_condition(
            "hot and stuffy and tom is at the living room"
        )
        assert isinstance(expr, CondAnd)
        assert isinstance(expr.children[0], UserCondRef)


class TestTimeSpecs:
    @pytest.mark.parametrize(
        "text,preposition,tod",
        [
            ("after evening, turn on the lamp", "after", hhmm(17)),
            ("at noon, turn on the lamp", "at", hhmm(12)),
            ("until midnight, turn on the lamp", "until", hhmm(0)),
            ("at 17:30, turn on the lamp", "at", hhmm(17, 30)),
            ("after 9 pm, turn on the lamp", "after", hhmm(21)),
            ("at 7 am, turn on the lamp", "at", hhmm(7)),
        ],
    )
    def test_pre_time_forms(self, text, preposition, tod):
        rule = parse_command(text)
        assert rule.pre_time is not None
        assert rule.pre_time.preposition == preposition
        assert rule.pre_time.time_of_day == tod

    def test_every_weekday(self):
        rule = parse_command("at every sunday noon, turn on the lamp")
        assert rule.pre_time.weekday == 6
        assert rule.pre_time.time_of_day == hhmm(12)

    def test_weekday_without_time(self):
        rule = parse_command("at every monday, turn on the lamp")
        assert rule.pre_time.weekday == 0
        assert rule.pre_time.time_of_day is None

    def test_post_time(self):
        rule = parse_command("turn on the lamp until 23:00")
        assert rule.post_time is not None
        assert rule.post_time.time_of_day == hhmm(23)

    def test_postcondition_when(self):
        rule = parse_command(
            "turn on the lamp when nobody is at the living room"
        )
        assert rule.postcondition is not None


class TestActionClauses:
    def test_multiple_settings(self):
        rule = parse_command(
            "turn on the air conditioner with 25 degrees of temperature "
            "setting and 60 percent of humidity setting"
        )
        parameters = [s.parameter for s in rule.action.config.settings]
        assert parameters == ["temperature", "humidity"]

    def test_word_value_setting(self):
        rule = parse_command("play the stereo with jazz of genre setting")
        setting = rule.action.config.settings[0]
        assert setting.value == "jazz"

    def test_multiword_value_setting(self):
        rule = parse_command("play the stereo with tv sound of source setting")
        setting = rule.action.config.settings[0]
        assert setting.value == "tv sound"

    def test_configuration_word_reference(self):
        rule = parse_command('turn on the floor lamp with "half-lighting"')
        assert rule.action.config.word_refs == ("half-lighting",)

    def test_otherwise_fallback_clause(self):
        rule = parse_command(
            "if a baseball game is on air, turn on the TV with 4 of channel "
            "setting, otherwise record the video recorder with 4 of channel "
            "setting"
        )
        assert rule.otherwise is not None
        assert rule.otherwise.verb == "record"
        assert rule.otherwise.target.name_words == ("video", "recorder")

    def test_device_place_modifier(self):
        rule = parse_command("turn on the light at the hall")
        assert rule.action.target.place_words == ("hall",)

    def test_missing_verb_raises(self):
        with pytest.raises(CadelSyntaxError, match="verb"):
            parse_command("the tv with 4 of channel setting")

    def test_trailing_garbage_raises(self):
        with pytest.raises(CadelSyntaxError, match="trailing"):
            parse_command("turn on the tv 42 37")


class TestRoundTrip:
    """to_text() output must re-parse to an equivalent command."""

    @pytest.mark.parametrize(
        "text",
        [
            "If humidity is higher than 80 percent and temperature is higher "
            "than 28 degrees, turn on the air conditioner with 25 degrees of "
            "temperature setting.",
            "After evening, if someone returns home and the hall is dark, "
            "turn on the light at the hall.",
            "At night, if entrance door is unlocked for 1 hour, turn on the "
            "alarm.",
            "turn on the lamp until 23:00",
            "play the stereo with jazz of genre setting and speakers of "
            "output setting",
        ],
    )
    def test_round_trip(self, text):
        first = parse_command(text)
        second = parse_command(first.to_text())
        assert second.to_text() == first.to_text()
