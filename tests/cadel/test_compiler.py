"""Tests for name binding and AST → rule-object compilation."""

import pytest

from repro.cadel.binding import Binder, HomeDirectory
from repro.cadel.compiler import RuleCompiler
from repro.cadel.parser import CadelParser
from repro.cadel.words import WordDictionary
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    MembershipAtom,
    NumericAtom,
    TimeWindowAtom,
)
from repro.errors import CadelBindingError, CadelTypeError
from repro.home.appliances import AirConditioner, Alarm, DoorLock, Lamp, Stereo, Television, VideoRecorder
from repro.home.sensors import (
    EPGFeed,
    Hygrometer,
    LightSensor,
    PersonLocator,
    PresenceSensor,
    Thermometer,
)
from repro.home.environment import Room
from repro.upnp.registry import DeviceRecord, DeviceRegistry


@pytest.fixture
def registry():
    """A registry populated from real device descriptions (no network)."""
    living = Room("living room")
    hall = Room("hall")
    devices = [
        Television("TV", location="living room"),
        Stereo("stereo", location="living room"),
        VideoRecorder("video recorder", location="living room"),
        AirConditioner("air conditioner", location="living room"),
        Lamp("floor lamp", location="living room"),
        Lamp("hall light", location="hall"),
        DoorLock("entrance door", location="entrance"),
        Alarm("alarm", location="entrance"),
        Thermometer("thermometer", living),
        Hygrometer("hygrometer", living),
        LightSensor("hall light sensor", hall),
        PresenceSensor("living room presence", "living room"),
        PersonLocator(["Tom", "Alan", "Emily"]),
        EPGFeed(),
    ]
    registry = DeviceRegistry()
    for device in devices:
        registry.add(DeviceRecord.from_description(device.describe()))
    return registry


@pytest.fixture
def directory(registry):
    locator = registry.by_device_type("urn:repro:device:PersonLocator:1")[0]
    epg = registry.by_device_type("urn:repro:device:EPG:1")[0]
    return HomeDirectory(
        users=["Tom", "Alan", "Emily"],
        current_user="Tom",
        locator_udn=locator.udn,
        epg_udn=epg.udn,
    )


@pytest.fixture
def binder(registry, directory):
    return Binder(registry, directory)


@pytest.fixture
def compiler(binder):
    return RuleCompiler(binder)


@pytest.fixture
def parser():
    return CadelParser()


def compile_cond(compiler, parser, text):
    return compiler.compile_condexpr(parser.parse_condition(text))


class TestConditionCompilation:
    def test_numeric_sensor_kind(self, compiler, parser, registry):
        cond = compile_cond(compiler, parser,
                            "temperature is higher than 28 degrees")
        assert isinstance(cond, NumericAtom)
        thermo = registry.by_name("thermometer")[0]
        assert cond.constraint.variables() == {
            f"{thermo.udn}:temperature:temperature"
        }

    def test_named_sensor_device(self, compiler, parser, registry):
        cond = compile_cond(compiler, parser,
                            "the thermometer is higher than 28 degrees")
        thermo = registry.by_name("thermometer")[0]
        assert cond.constraint.variables() == {
            f"{thermo.udn}:temperature:temperature"
        }

    def test_person_at_place(self, compiler, parser, directory):
        cond = compile_cond(compiler, parser, "alan is at the living room")
        assert isinstance(cond, DiscreteAtom)
        assert cond.variable == f"{directory.locator_udn}:locator:Alan_place"
        assert cond.value == "living room"

    def test_i_resolves_to_current_user(self, compiler, parser, directory):
        cond = compile_cond(compiler, parser, "i am in the living room")
        assert cond.variable == f"{directory.locator_udn}:locator:Tom_place"

    def test_nobody_uses_occupancy(self, compiler, parser):
        cond = compile_cond(compiler, parser, "nobody is at the living room")
        assert isinstance(cond, DiscreteAtom)
        assert cond.value == "false"
        assert "presence" in cond.variable

    def test_someone_at_place(self, compiler, parser):
        cond = compile_cond(compiler, parser, "someone is at the living room")
        assert cond.value == "true"

    def test_returns_home_event(self, compiler, parser):
        cond = compile_cond(compiler, parser, "someone returns home")
        assert isinstance(cond, EventAtom)
        assert cond.subject is None
        named = compile_cond(compiler, parser, "emily returns home")
        assert named.subject == "Emily"

    def test_arrival_context(self, compiler, parser, directory):
        cond = compile_cond(compiler, parser, "alan got home from work")
        assert isinstance(cond, DiscreteAtom)
        assert cond.variable == \
            f"{directory.locator_udn}:locator:Alan_last_arrival"
        assert cond.value == "work"

    def test_on_air_membership(self, compiler, parser, directory):
        cond = compile_cond(compiler, parser, "a baseball game is on air")
        assert isinstance(cond, MembershipAtom)
        assert cond.variable == f"{directory.epg_udn}:guide:keywords"
        assert cond.member == "baseball game"

    def test_dark_place(self, compiler, parser, registry):
        cond = compile_cond(compiler, parser, "the hall is dark")
        assert isinstance(cond, NumericAtom)
        sensor = registry.by_name("hall light sensor")[0]
        assert cond.constraint.variables() == {f"{sensor.udn}:light:illuminance"}

    def test_device_turned_on(self, compiler, parser, registry):
        cond = compile_cond(compiler, parser, "the stereo is turned on")
        stereo = registry.by_name("stereo")[0]
        assert cond.variable == f"{stereo.udn}:player:on"
        assert cond.value == "true"

    def test_door_unlocked(self, compiler, parser):
        cond = compile_cond(compiler, parser, "entrance door is unlocked")
        assert cond.value == "false"
        assert cond.variable.endswith(":lock:locked")

    def test_duration_wraps_atom(self, compiler, parser):
        cond = compile_cond(compiler, parser,
                            "entrance door is unlocked for 1 hour")
        assert isinstance(cond, DurationAtom)
        assert cond.seconds == 3600.0

    def test_unknown_device_raises(self, compiler, parser):
        with pytest.raises(CadelBindingError, match="no device"):
            compile_cond(compiler, parser, "the jacuzzi is turned on")

    def test_unknown_person_raises(self, compiler, parser):
        with pytest.raises(CadelBindingError):
            compile_cond(compiler, parser, "zorro is at the living room")

    def test_user_word_expansion(self, binder, parser):
        words = WordDictionary()
        defn = parser.parse(
            "Let's call the condition that temperature is higher than 26 "
            "degrees and humidity is over 65 percent hot and stuffy"
        )
        words.define_condition(defn.word, defn.expr)
        compiler = RuleCompiler(binder, words=words)
        word_parser = CadelParser(words=words)
        cond = compiler.compile_condexpr(
            word_parser.parse_condition("hot and stuffy")
        )
        assert isinstance(cond, AndCondition)
        assert len(cond.children) == 2

    def test_undefined_word_raises(self, compiler, parser):
        with pytest.raises(CadelBindingError, match="unknown condition word"):
            compile_cond(compiler, parser, '"cosy vibes"')


class TestTimeSpecCompilation:
    def test_after_evening(self, compiler, parser):
        cond = compile_cond(compiler, parser,
                            "i am in the living room after 17:00")
        window = [c for c in cond.children if isinstance(c, TimeWindowAtom)][0]
        assert window.start == 17 * 3600.0

    def test_at_night_wraps(self, compiler, parser):
        rule_parser = CadelParser()
        ruledef = rule_parser.parse("At night, turn on the alarm")
        window = compiler.compile_timespec(ruledef.pre_time)
        assert window.wraps

    def test_until_as_postcondition(self, compiler):
        ruledef = CadelParser().parse("turn on the floor lamp until 23:00")
        until = compiler.compile_timespec(ruledef.post_time, as_until=True)
        assert until.start == 23 * 3600.0


class TestActionCompilation:
    def test_action_binding(self, compiler, registry):
        ruledef = CadelParser().parse(
            "turn on the air conditioner with 25 degrees of temperature "
            "setting and 60 percent of humidity setting"
        )
        spec = compiler.compile_action(ruledef.action)
        aircon = registry.by_name("air conditioner")[0]
        assert spec.device_udn == aircon.udn
        assert spec.service_id == "climate"
        assert spec.action_name == "TurnOn"
        assert spec.arguments() == {"temperature": 25.0, "humidity": 60.0}

    def test_play_maps_to_playmusic(self, compiler):
        ruledef = CadelParser().parse(
            "play the stereo with jazz of genre setting"
        )
        spec = compiler.compile_action(ruledef.action)
        assert spec.action_name == "PlayMusic"
        assert spec.arguments() == {"genre": "jazz"}

    def test_place_scoped_device(self, compiler, registry):
        ruledef = CadelParser().parse("turn on the light at the hall")
        spec = compiler.compile_action(ruledef.action)
        hall_light = registry.by_name("hall light")[0]
        assert spec.device_udn == hall_light.udn

    def test_unsupported_setting_rejected(self, compiler):
        ruledef = CadelParser().parse(
            "turn on the alarm with 25 degrees of temperature setting"
        )
        with pytest.raises(CadelTypeError, match="does not accept"):
            compiler.compile_action(ruledef.action)

    def test_unsupported_verb_rejected(self, compiler):
        ruledef = CadelParser().parse("record the alarm")
        with pytest.raises(CadelBindingError, match="does not support"):
            compiler.compile_action(ruledef.action)

    def test_configuration_word_expanded(self, binder):
        words = WordDictionary()
        parser = CadelParser(words=words)
        confdef = parser.parse(
            'Let\'s call the configuration that 50 percent of level setting '
            '"half-lighting"'
        )
        words.define_configuration(confdef.word, confdef.settings)
        compiler = RuleCompiler(binder, words=words)
        ruledef = parser.parse('turn on the floor lamp with "half-lighting"')
        spec = compiler.compile_action(ruledef.action)
        assert spec.arguments() == {"level": 50.0}


class TestFullRuleCompilation:
    def test_rule_with_fallback_and_until(self, compiler):
        ruledef = CadelParser().parse(
            "if a baseball game is on air, turn on the TV with 4 of channel "
            "setting, otherwise record the video recorder with 4 of channel "
            "setting, until 23:00"
        )
        rule = compiler.compile_rule(ruledef, name="r", owner="Alan")
        assert rule.action.device_name == "TV"
        assert rule.fallback is not None
        assert rule.fallback.device_name == "video recorder"
        assert rule.until is not None
        assert rule.stop_action is not None
        assert rule.stop_action.action_name == "TurnOff"

    def test_rule_source_text_preserved(self, compiler):
        text = "turn on the alarm"
        ruledef = CadelParser().parse(text)
        rule = compiler.compile_rule(ruledef, name="r", owner="Tom")
        assert rule.source_text == text

    def test_paper_rule_1_compiles(self, compiler):
        ruledef = CadelParser().parse(
            "If humidity is higher than 80 percent and temperature is higher "
            "than 28 degrees, turn on the air conditioner with 25 degrees of "
            "temperature setting."
        )
        rule = compiler.compile_rule(ruledef, name="r1", owner="Tom")
        assert len(rule.condition.dnf()[0]) == 2
