"""Unit tests for the CADEL tokenizer."""

import pytest

from repro.cadel.lexer import TokenKind, tokenize
from repro.errors import CadelSyntaxError


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_words_lowercased(self):
        assert texts("Turn ON the TV") == ["turn", "on", "the", "tv"]

    def test_numbers(self):
        tokens = tokenize("25 degrees")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == 25.0

    def test_decimal_numbers(self):
        tokens = tokenize("25.5 degrees")
        assert tokens[0].value == 25.5

    def test_sentence_final_period_not_decimal(self):
        tokens = tokenize("turn on the tv at 25.")
        assert tokens[-2].kind is TokenKind.PUNCT
        assert tokens[-3].value == 25.0

    def test_clock_times(self):
        tokens = tokenize("until 17:30")
        assert tokens[1].kind is TokenKind.CLOCK
        assert tokens[1].text == "17:30"

    def test_percent_sign_becomes_word(self):
        assert texts("60 %") == ["60", "percent"]
        assert texts("60%") == ["60", "percent"]

    def test_punctuation(self):
        assert kinds(", ( ) ; .") == [TokenKind.PUNCT] * 5

    def test_eof_token_present(self):
        tokens = tokenize("hello")
        assert tokens[-1].kind is TokenKind.EOF


class TestContractions:
    def test_i_am(self):
        assert texts("I'm home") == ["i", "am", "home"]

    def test_lets(self):
        assert texts("Let's call") == ["let", "us", "call"]

    def test_isnt(self):
        assert texts("isn't") == ["is", "not"]


class TestQuotes:
    def test_quoted_string_single_token(self):
        tokens = tokenize('the room is "hot and stuffy" now')
        quoted = [t for t in tokens if t.kind is TokenKind.QUOTED]
        assert len(quoted) == 1
        assert quoted[0].text == "hot and stuffy"

    def test_unterminated_quote_raises(self):
        with pytest.raises(CadelSyntaxError, match="unterminated"):
            tokenize('say "hello')

    def test_curly_quotes(self):
        tokens = tokenize("the “hot and stuffy” room")
        quoted = [t for t in tokens if t.kind is TokenKind.QUOTED]
        assert quoted[0].text == "hot and stuffy"


class TestErrors:
    def test_stray_character_raises(self):
        with pytest.raises(CadelSyntaxError, match="unexpected character"):
            tokenize("turn on @ the tv")

    def test_error_carries_position(self):
        try:
            tokenize("abc $ def")
        except CadelSyntaxError as exc:
            assert exc.position == 4
        else:
            pytest.fail("expected CadelSyntaxError")

    def test_hyphenated_words_kept_whole(self):
        assert texts("half-lighting") == ["half-lighting"]
