"""Property test: the incremental engine is observably identical to the
seed full-re-evaluation path.

A seeded random event stream (sensor drift, place changes, EPG feeds,
instantaneous events, clock ticks, mid-stream rule churn) is driven
through two engines over identically-built rule populations — one
incremental, one with ``incremental=False`` (the seed path) — asserting
after every step that rule truth, rule states and device holders agree,
and at the end that the full trace sequences match entry for entry.
"""

import random

import pytest

from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine
from repro.core.priority import PriorityManager, PriorityOrder
from repro.core.rule import Rule
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

TEMP = "thermo:t:temperature"
HUMID = "hygro:h:humidity"
LUX = "lux:l:illuminance"
NUMERIC_VARS = (TEMP, HUMID, LUX)
# A discrete grid so equality atoms and exact threshold boundaries are
# actually hit by the stream.
VALUE_GRID = [15.0 + 0.5 * i for i in range(60)]
PEOPLE = ("Tom", "Alan", "Emily")
ROOMS = ("living room", "kitchen", "bedroom", "hall")
KEYWORDS = ("baseball", "news", "movie", "jazz")
EVENTS = ("returns home", "leaves home")


def num(variable: str, relation: Relation, bound: float) -> NumericAtom:
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


def place(person: str, room: str, negated: bool = False) -> DiscreteAtom:
    return DiscreteAtom(f"person:{person}:place", room, negated=negated)


def act(device: str, name: str = "Set") -> ActionSpec:
    return ActionSpec(
        device_udn=device, device_name=device, service_id="svc",
        action_name=name, settings=(Setting("level", 1),),
    )


def build_rules() -> list[Rule]:
    """Fresh condition objects on every call (engines must not share
    memoized state through shared condition instances)."""
    evening = TimeWindowAtom(hhmm(17), hhmm(21), label="evening")
    sunday_noon = TimeWindowAtom(hhmm(11), hhmm(14), weekday=6)
    rules = [
        Rule(name="cool", owner="Tom",
             condition=num(TEMP, Relation.GT, 26.0),
             action=act("aircon-1"), stop_action=act("aircon-1", "Off")),
        Rule(name="fan", owner="Tom",
             condition=AndCondition([num(TEMP, Relation.GT, 28.0),
                                     num(HUMID, Relation.GT, 24.0)]),
             action=act("fan-1")),
        Rule(name="heat", owner="Alan",
             condition=num(TEMP, Relation.LT, 20.0),
             action=act("heater-1"),
             until=num(TEMP, Relation.GT, 24.0),
             stop_action=act("heater-1", "Off")),
        Rule(name="tom-tv", owner="Tom",
             condition=OrCondition([place("Tom", "living room"),
                                    place("Alan", "living room")]),
             action=act("tv-1", "ShowJazz")),
        Rule(name="emily-tv", owner="Emily",
             condition=place("Emily", "living room"),
             action=act("tv-1", "ShowMovie"),
             fallback=act("recorder-1", "Record")),
        Rule(name="lamp", owner="Tom",
             condition=AndCondition([place("Tom", "kitchen", negated=True),
                                     num(LUX, Relation.LT, 30.0)]),
             action=act("lamp-1")),
        Rule(name="ballgame", owner="Alan",
             condition=MembershipAtom("epg:guide:keywords", "baseball"),
             action=act("tv-2", "ShowBaseball")),
        Rule(name="quiet", owner="Emily",
             condition=AndCondition([
                 MembershipAtom("epg:guide:keywords", "news", negated=True),
                 num(TEMP, Relation.GT, 25.0)]),
             action=act("stereo-1")),
        Rule(name="evening-lamp", owner="Tom",
             condition=AndCondition([evening, place("Tom", "living room")]),
             action=act("lamp-2")),
        Rule(name="hall-light", owner="Tom",
             condition=EventAtom("returns home"),
             action=act("hall-light-1")),
        Rule(name="alan-arrives", owner="Alan",
             condition=AndCondition([
                 EventAtom("returns home", subject="Alan"),
                 DiscreteAtom("hall:sensor:dark", "true")]),
             action=act("hall-light-2")),
        Rule(name="door-alarm", owner="Emily",
             condition=DurationAtom(
                 DiscreteAtom("door:lock:locked", "false"), 600.0),
             action=act("alarm-1"), stop_action=act("alarm-1", "Off")),
        Rule(name="muggy", owner="Alan",
             condition=NumericAtom(LinearConstraint.make(
                 LinearExpr.var(TEMP) - LinearExpr.var(HUMID),
                 Relation.GT, 5.0)),
             action=act("dehumid-1")),
        Rule(name="exact-lux", owner="Emily",
             condition=num(LUX, Relation.EQ, 42.0),
             action=act("indicator-1")),
        Rule(name="sunday-brunch", owner="Emily",
             condition=AndCondition([sunday_noon,
                                     place("Emily", "kitchen")]),
             action=act("stereo-2"),
             until=MembershipAtom("epg:guide:keywords", "news")),
    ]
    return rules


def churn_rule() -> Rule:
    """A rule added mid-stream (exercises live registration/pruning)."""
    return Rule(
        name="late-comer", owner="Tom",
        condition=AndCondition([num(TEMP, Relation.GT, 22.0),
                                place("Alan", "bedroom")]),
        action=act("lamp-3"),
    )


class Twin:
    """The same home driven through both evaluation strategies."""

    def __init__(self) -> None:
        self.sides = []
        for incremental in (True, False):
            simulator = Simulator()
            database = RuleDatabase()
            priorities = PriorityManager()
            priorities.add_order(PriorityOrder("tv-1", ("Emily", "Tom")))
            engine = RuleEngine(
                database, priorities, simulator,
                dispatch=lambda spec: None,
                incremental=incremental,
            )
            for rule in build_rules():
                database.add(rule)
                engine.rule_added(rule)
            self.sides.append((simulator, database, engine))
        self.devices = sorted({
            udn
            for rule in build_rules()
            for udn in rule.devices()
        })
        self.now = 0.0

    def ingest(self, variable, value) -> None:
        for _sim, _db, engine in self.sides:
            engine.ingest(variable, value)

    def post_event(self, event_type, subject) -> None:
        for _sim, _db, engine in self.sides:
            engine.post_event(event_type, subject)

    def advance(self, seconds: float) -> None:
        """Advance both clocks and mirror the server's clock tick."""
        self.now += seconds
        for simulator, database, engine in self.sides:
            simulator.run_until(self.now)
            dirty = [
                r.name
                for r in database.rules_reading_variable("clock:time_of_day")
            ]
            if dirty:
                engine.reevaluate(dirty)

    def add_rule(self, make) -> None:
        for _sim, database, engine in self.sides:
            rule = make()
            database.add(rule)
            engine.rule_added(rule)

    def remove_rule(self, name: str) -> None:
        for _sim, database, engine in self.sides:
            database.remove(name)
            engine.rule_removed(name)

    def set_enabled(self, name: str, enabled: bool) -> None:
        for _sim, database, _engine in self.sides:
            database.get(name).enabled = enabled

    def check(self, step) -> None:
        _, db_a, eng_a = self.sides[0]
        _, db_b, eng_b = self.sides[1]
        names = sorted(r.name for r in db_a.all_rules())
        assert names == sorted(r.name for r in db_b.all_rules())
        for name in names:
            assert eng_a.rule_truth(name) == eng_b.rule_truth(name), \
                f"step {step}: truth of {name!r} diverged"
            assert eng_a.rule_state(name) == eng_b.rule_state(name), \
                f"step {step}: state of {name!r} diverged"
        for udn in self.devices:
            holder_a = eng_a.holder_of(udn)
            holder_b = eng_b.holder_of(udn)
            assert (holder_a is None) == (holder_b is None), \
                f"step {step}: holder presence of {udn!r} diverged"
            if holder_a is not None:
                assert holder_a[0] == holder_b[0], \
                    f"step {step}: holder of {udn!r} diverged"

    def check_traces(self) -> None:
        trace_a = [(e.time, e.kind, e.rule, e.device)
                   for e in self.sides[0][2].trace]
        trace_b = [(e.time, e.kind, e.rule, e.device)
                   for e in self.sides[1][2].trace]
        assert trace_a == trace_b


@pytest.mark.parametrize("seed", (20260730, 5, 77))
def test_random_stream_equivalence(seed):
    rng = random.Random(seed)
    twin = Twin()
    twin.check("initial")
    for step in range(260):
        op = rng.random()
        if op < 0.45:
            twin.ingest(rng.choice(NUMERIC_VARS), rng.choice(VALUE_GRID))
        elif op < 0.60:
            person = rng.choice(PEOPLE)
            twin.ingest(f"person:{person}:place", rng.choice(ROOMS))
        elif op < 0.68:
            members = frozenset(
                kw for kw in KEYWORDS if rng.random() < 0.4
            )
            twin.ingest("epg:guide:keywords", members)
        elif op < 0.74:
            twin.ingest("door:lock:locked",
                        rng.choice(("true", "false")))
        elif op < 0.78:
            twin.ingest("hall:sensor:dark", rng.random() < 0.5)
        elif op < 0.86:
            twin.post_event(rng.choice(EVENTS), rng.choice(PEOPLE))
        else:
            twin.advance(rng.choice((30.0, 120.0, 660.0, 3_600.0)))
        if step == 80:
            twin.set_enabled("cool", False)
        if step == 120:
            twin.remove_rule("fan")
        if step == 140:
            twin.set_enabled("cool", True)
        if step == 160:
            twin.add_rule(churn_rule)
        twin.check(step)
    assert len(twin.sides[0][2].trace) > 0, "stream never fired a rule"
    twin.check_traces()


def test_stream_exercises_all_trace_kinds():
    """The equivalence stream is only convincing if it actually walks the
    interesting paths: fires, stops, arbitration conflicts."""
    kinds = set()
    for seed in (20260730, 5, 77):
        rng = random.Random(seed)
        twin = Twin()
        for step in range(260):
            op = rng.random()
            if op < 0.45:
                twin.ingest(rng.choice(NUMERIC_VARS), rng.choice(VALUE_GRID))
            elif op < 0.60:
                person = rng.choice(PEOPLE)
                twin.ingest(f"person:{person}:place", rng.choice(ROOMS))
            elif op < 0.68:
                members = frozenset(
                    kw for kw in KEYWORDS if rng.random() < 0.4
                )
                twin.ingest("epg:guide:keywords", members)
            elif op < 0.74:
                twin.ingest("door:lock:locked",
                            rng.choice(("true", "false")))
            elif op < 0.78:
                twin.ingest("hall:sensor:dark", rng.random() < 0.5)
            elif op < 0.86:
                twin.post_event(rng.choice(EVENTS), rng.choice(PEOPLE))
            else:
                twin.advance(rng.choice((30.0, 120.0, 660.0, 3_600.0)))
        kinds |= {e.kind for e in twin.sides[0][2].trace}
    assert {"fire", "stop"} <= kinds
    assert kinds & {"deny", "preempt", "fallback", "conflict"}
