"""Unit tests for the condition IR: evaluation, DNF, keys."""

import pytest

from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    FalseAtom,
    MembershipAtom,
    OrCondition,
    TimeWindowAtom,
    TrueAtom,
    conjoin,
)
from repro.errors import RuleError
from repro.sim.clock import hhmm
from repro.solver.linear import Relation

from tests.core.conftest import FakeContext, evening, in_room, on_air, temp_above


class TestAtomsEvaluation:
    def test_true_false(self):
        ctx = FakeContext()
        assert TrueAtom().evaluate(ctx) is True
        assert FalseAtom().evaluate(ctx) is False

    def test_numeric_atom(self):
        atom = temp_above(28)
        assert atom.evaluate(FakeContext(numeric={"thermo:t:temperature": 30.0}))
        assert not atom.evaluate(FakeContext(numeric={"thermo:t:temperature": 27.0}))

    def test_numeric_atom_unknown_sensor_is_false(self):
        assert not temp_above(28).evaluate(FakeContext())

    def test_discrete_atom(self):
        atom = in_room("Tom")
        assert atom.evaluate(
            FakeContext(discrete={"person:Tom:place": "living room"})
        )
        assert not atom.evaluate(
            FakeContext(discrete={"person:Tom:place": "kitchen"})
        )

    def test_discrete_atom_negated(self):
        atom = DiscreteAtom("person:Tom:place", "kitchen", negated=True)
        assert atom.evaluate(
            FakeContext(discrete={"person:Tom:place": "living room"})
        )
        assert not atom.evaluate(
            FakeContext(discrete={"person:Tom:place": "kitchen"})
        )

    def test_discrete_unknown_is_false_even_negated(self):
        atom = DiscreteAtom("person:Tom:place", "kitchen", negated=True)
        assert not atom.evaluate(FakeContext())

    def test_membership_atom(self):
        atom = on_air("baseball game")
        ctx = FakeContext(sets={"epg:guide:keywords": {"baseball game", "news"}})
        assert atom.evaluate(ctx)
        assert not atom.evaluate(FakeContext())

    def test_membership_negated(self):
        atom = MembershipAtom("epg:guide:keywords", "news", negated=True)
        assert atom.evaluate(FakeContext(sets={"epg:guide:keywords": {"movie"}}))
        assert not atom.evaluate(FakeContext(sets={"epg:guide:keywords": {"news"}}))

    def test_time_window_plain(self):
        window = evening()  # 17:00-21:00
        assert window.evaluate(FakeContext(tod=hhmm(18)))
        assert not window.evaluate(FakeContext(tod=hhmm(16)))
        assert not window.evaluate(FakeContext(tod=hhmm(21)))  # end exclusive

    def test_time_window_wrapping(self):
        night = TimeWindowAtom(hhmm(21), hhmm(6))
        assert night.evaluate(FakeContext(tod=hhmm(23)))
        assert night.evaluate(FakeContext(tod=hhmm(3)))
        assert not night.evaluate(FakeContext(tod=hhmm(12)))

    def test_time_window_weekday(self):
        sunday_morning = TimeWindowAtom(hhmm(6), hhmm(12), weekday=6)
        assert sunday_morning.evaluate(FakeContext(tod=hhmm(8), weekday=6))
        assert not sunday_morning.evaluate(FakeContext(tod=hhmm(8), weekday=0))

    def test_time_window_validation(self):
        with pytest.raises(RuleError):
            TimeWindowAtom(-5.0, hhmm(6))
        with pytest.raises(RuleError):
            TimeWindowAtom(hhmm(6), hhmm(8), weekday=9)

    def test_event_atom_subject_match(self):
        atom = EventAtom("returns home", subject="Alan")
        assert atom.evaluate(FakeContext(events={("returns home", "Alan")}))
        assert not atom.evaluate(FakeContext(events={("returns home", "Emily")}))

    def test_event_atom_wildcard_subject(self):
        atom = EventAtom("returns home")
        assert atom.evaluate(FakeContext(events={("returns home", "Emily")}))
        assert not atom.evaluate(FakeContext(events=set()))

    def test_duration_atom(self):
        inner = DiscreteAtom("door:lock:locked", "false")
        atom = DurationAtom(inner, 3600.0)
        ctx_held = FakeContext(
            discrete={"door:lock:locked": "false"}, held_keys={atom.key()}
        )
        assert atom.evaluate(ctx_held)
        ctx_not_held = FakeContext(discrete={"door:lock:locked": "false"})
        assert not atom.evaluate(ctx_not_held)

    def test_duration_requires_positive(self):
        with pytest.raises(RuleError):
            DurationAtom(TrueAtom(), 0.0)


class TestCombinators:
    def test_and_evaluation(self):
        cond = AndCondition([in_room("Tom"), temp_above(28)])
        ctx = FakeContext(
            numeric={"thermo:t:temperature": 30.0},
            discrete={"person:Tom:place": "living room"},
        )
        assert cond.evaluate(ctx)
        ctx_cold = FakeContext(
            numeric={"thermo:t:temperature": 20.0},
            discrete={"person:Tom:place": "living room"},
        )
        assert not cond.evaluate(ctx_cold)

    def test_or_evaluation(self):
        cond = OrCondition([in_room("Tom"), in_room("Alan")])
        assert cond.evaluate(FakeContext(discrete={"person:Alan:place": "living room"}))
        assert not cond.evaluate(FakeContext())

    def test_nested_flattening(self):
        inner = AndCondition([in_room("Tom"), temp_above(28)])
        outer = AndCondition([inner, evening()])
        assert len(outer.children) == 3

    def test_empty_combinator_rejected(self):
        with pytest.raises(RuleError):
            AndCondition([])
        with pytest.raises(RuleError):
            OrCondition([])

    def test_key_order_insensitive(self):
        a = AndCondition([in_room("Tom"), temp_above(28)])
        b = AndCondition([temp_above(28), in_room("Tom")])
        assert a.key() == b.key()
        assert a == b
        assert hash(a) == hash(b)

    def test_conjoin_simplifies(self):
        assert isinstance(conjoin([]), TrueAtom)
        single = in_room("Tom")
        assert conjoin([TrueAtom(), single]) is single
        combined = conjoin([in_room("Tom"), evening()])
        assert isinstance(combined, AndCondition)


class TestDnf:
    def test_atom_dnf(self):
        atom = in_room("Tom")
        assert atom.dnf() == [(atom,)]

    def test_and_dnf_single_conjunct(self):
        cond = AndCondition([in_room("Tom"), temp_above(28)])
        dnf = cond.dnf()
        assert len(dnf) == 1
        assert len(dnf[0]) == 2

    def test_or_dnf_two_conjuncts(self):
        cond = OrCondition([in_room("Tom"), in_room("Alan")])
        assert len(cond.dnf()) == 2

    def test_and_over_or_distributes(self):
        cond = AndCondition(
            [OrCondition([in_room("Tom"), in_room("Alan")]), temp_above(28)]
        )
        dnf = cond.dnf()
        assert len(dnf) == 2
        assert all(len(conj) == 2 for conj in dnf)

    def test_duration_dnf_expands_inner(self):
        inner = AndCondition([in_room("Tom"), temp_above(28)])
        atom = DurationAtom(inner, 60.0)
        dnf = atom.dnf()
        assert len(dnf) == 1
        # inner atoms + the duration marker itself
        assert len(dnf[0]) == 3
        assert atom in dnf[0]

    def test_referenced_variables(self):
        cond = AndCondition([
            in_room("Tom"),
            temp_above(28),
            evening(),
            EventAtom("returns home"),
            on_air("movie"),
        ])
        variables = cond.referenced_variables()
        assert "person:Tom:place" in variables
        assert "thermo:t:temperature" in variables
        assert "clock:time_of_day" in variables
        assert "event:returns home" in variables
        assert "epg:guide:keywords" in variables

    def test_numeric_variables_only_numeric(self):
        cond = AndCondition([in_room("Tom"), temp_above(28)])
        assert cond.numeric_variables() == {"thermo:t:temperature"}

    def test_dnf_blowup_guard(self):
        # 13 binary ORs conjoined: 2^13 = 8192 > limit.
        ors = [
            OrCondition([in_room(f"P{i}"), in_room(f"Q{i}")]) for i in range(13)
        ]
        with pytest.raises(RuleError, match="too complex"):
            AndCondition(ors).dnf()


class TestDescriptions:
    def test_atom_text_preferred(self):
        assert temp_above(28).describe() == \
            "temperature is higher than 28 degrees"

    def test_and_describe_joins(self):
        cond = AndCondition([in_room("Tom"), temp_above(28)])
        text = cond.describe()
        assert "Tom is at the living room" in text
        assert " and " in text

    def test_or_inside_and_parenthesized(self):
        cond = AndCondition(
            [OrCondition([in_room("Tom"), in_room("Alan")]), temp_above(28)]
        )
        assert "(" in cond.describe()
