"""Property tests: the columnar backend is observably identical to the
object-graph paths, batch boundaries included.

Three equivalence axes, each driven by seeded random streams over the
same mixed rule population as the incremental suite:

* **columnar vs shared network** — the array-backed backend against the
  ``columnar=False`` ClauseNode ablation, full mixed stream with
  mid-stream rule churn;
* **vector vs scalar sweeps** — ``vector_min=0`` (every window takes the
  numpy path) against ``use_numpy=False`` (every window takes the
  stdlib loop), proving the two ``satisfied_by`` replicas agree
  bit for bit;
* **batch boundaries** — the same writes applied one ``ingest`` at a
  time against one big ``ingest_batch``, proving batching changes no
  observable state (per-event edge-trigger semantics are preserved
  write by write).

Plus churn hygiene: removing every rule must release every interned
slot (freelists full, indexes empty), and re-registration must read a
fresh world.
"""

import random

import pytest

from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine
from repro.core.priority import PriorityManager, PriorityOrder
from repro.sim.events import Simulator

from tests.core.test_incremental_equivalence import (
    EVENTS,
    KEYWORDS,
    NUMERIC_VARS,
    PEOPLE,
    ROOMS,
    VALUE_GRID,
    build_rules,
    churn_rule,
)


class BackendTwin:
    """The same home driven through two engine configurations.

    ``sides`` is a sequence of ``(engine_kwargs, tune)`` pairs; ``tune``
    (may be None) adjusts the freshly built engine before any rule is
    registered — used to force the columnar sweep strategy.
    """

    def __init__(self, sides) -> None:
        self.sides = []
        for engine_kwargs, tune in sides:
            simulator = Simulator()
            database = RuleDatabase()
            priorities = PriorityManager()
            priorities.add_order(PriorityOrder("tv-1", ("Emily", "Tom")))
            engine = RuleEngine(
                database, priorities, simulator,
                dispatch=lambda spec: None, **engine_kwargs,
            )
            if tune is not None:
                tune(engine)
            for rule in build_rules():
                database.add(rule)
                engine.rule_added(rule)
            self.sides.append((simulator, database, engine))
        self.devices = sorted({
            udn
            for rule in build_rules()
            for udn in rule.devices()
        })
        self.now = 0.0

    def ingest(self, variable, value) -> None:
        for _sim, _db, engine in self.sides:
            engine.ingest(variable, value)

    def post_event(self, event_type, subject) -> None:
        for _sim, _db, engine in self.sides:
            engine.post_event(event_type, subject)

    def advance(self, seconds: float) -> None:
        self.now += seconds
        for simulator, database, engine in self.sides:
            simulator.run_until(self.now)
            dirty = [
                r.name
                for r in database.rules_reading_variable("clock:time_of_day")
            ]
            if dirty:
                engine.reevaluate(dirty)

    def add_rule(self, make) -> None:
        for _sim, database, engine in self.sides:
            rule = make()
            database.add(rule)
            engine.rule_added(rule)

    def remove_rule(self, name: str) -> None:
        for _sim, database, engine in self.sides:
            database.remove(name)
            engine.rule_removed(name)

    def set_enabled(self, name: str, enabled: bool) -> None:
        for _sim, database, _engine in self.sides:
            database.get(name).enabled = enabled

    def check(self, step) -> None:
        _, db_a, eng_a = self.sides[0]
        _, db_b, eng_b = self.sides[1]
        names = sorted(r.name for r in db_a.all_rules())
        assert names == sorted(r.name for r in db_b.all_rules())
        for name in names:
            assert eng_a.rule_truth(name) == eng_b.rule_truth(name), \
                f"step {step}: truth of {name!r} diverged"
            assert eng_a.rule_state(name) == eng_b.rule_state(name), \
                f"step {step}: state of {name!r} diverged"
        for udn in self.devices:
            holder_a = eng_a.holder_of(udn)
            holder_b = eng_b.holder_of(udn)
            assert (holder_a is None) == (holder_b is None), \
                f"step {step}: holder presence of {udn!r} diverged"
            if holder_a is not None:
                assert holder_a[0] == holder_b[0], \
                    f"step {step}: holder of {udn!r} diverged"

    def check_traces(self) -> None:
        trace_a = [(e.time, e.kind, e.rule, e.device)
                   for e in self.sides[0][2].trace]
        trace_b = [(e.time, e.kind, e.rule, e.device)
                   for e in self.sides[1][2].trace]
        assert trace_a == trace_b


def drive_stream(twin: BackendTwin, rng: random.Random,
                 steps: int = 260) -> None:
    """The incremental suite's mixed stream, churn points included."""
    twin.check("initial")
    for step in range(steps):
        op = rng.random()
        if op < 0.45:
            twin.ingest(rng.choice(NUMERIC_VARS), rng.choice(VALUE_GRID))
        elif op < 0.60:
            person = rng.choice(PEOPLE)
            twin.ingest(f"person:{person}:place", rng.choice(ROOMS))
        elif op < 0.68:
            members = frozenset(
                kw for kw in KEYWORDS if rng.random() < 0.4
            )
            twin.ingest("epg:guide:keywords", members)
        elif op < 0.74:
            twin.ingest("door:lock:locked", rng.choice(("true", "false")))
        elif op < 0.78:
            twin.ingest("hall:sensor:dark", rng.random() < 0.5)
        elif op < 0.86:
            twin.post_event(rng.choice(EVENTS), rng.choice(PEOPLE))
        else:
            twin.advance(rng.choice((30.0, 120.0, 660.0, 3_600.0)))
        if step == 80:
            twin.set_enabled("cool", False)
        if step == 120:
            twin.remove_rule("fan")
        if step == 140:
            twin.set_enabled("cool", True)
        if step == 160:
            twin.add_rule(churn_rule)
        twin.check(step)
    assert len(twin.sides[0][2].trace) > 0, "stream never fired a rule"
    twin.check_traces()


@pytest.mark.parametrize("seed", (20260807, 13, 99))
def test_columnar_vs_network_stream(seed):
    twin = BackendTwin([
        ({"columnar": True}, None),
        ({"columnar": False}, None),
    ])
    assert twin.sides[0][2]._columnar is not None
    assert twin.sides[1][2]._network is not None
    drive_stream(twin, random.Random(seed))


@pytest.mark.parametrize("seed", (20260807, 42))
def test_vector_vs_scalar_sweeps(seed):
    """Forced numpy windows against forced stdlib loops — the same
    stream must produce identical observable state, and each side must
    actually take its forced path."""
    def force_vector(engine):
        engine._columnar.vector_min = 0

    def force_scalar(engine):
        engine._columnar.use_numpy = False

    twin = BackendTwin([
        ({"columnar": True}, force_vector),
        ({"columnar": True}, force_scalar),
    ])
    drive_stream(twin, random.Random(seed))
    vector_stats = twin.sides[0][2].columnar_stats
    scalar_stats = twin.sides[1][2].columnar_stats
    assert vector_stats.vector_sweeps > 0
    assert vector_stats.scalar_sweeps == 0
    assert scalar_stats.vector_sweeps == 0
    assert scalar_stats.scalar_sweeps > 0


# -- batch boundaries ----------------------------------------------------------


def _columnar_stack():
    simulator = Simulator()
    database = RuleDatabase()
    priorities = PriorityManager()
    priorities.add_order(PriorityOrder("tv-1", ("Emily", "Tom")))
    engine = RuleEngine(
        database, priorities, simulator, dispatch=lambda spec: None,
    )
    for rule in build_rules():
        database.add(rule)
        engine.rule_added(rule)
    return database, engine


@pytest.mark.parametrize("seed", (11, 404))
def test_batch_boundary_equivalence(seed):
    """The same writes, one ``ingest`` at a time vs chunked through
    ``ingest_batch``, must agree after every chunk — and the batch
    return values must account for exactly the stats the backend
    recorded."""
    rng = random.Random(seed)
    db_a, eng_a = _columnar_stack()
    db_b, eng_b = _columnar_stack()
    returned_flips = returned_touched = total_writes = 0
    for chunk_index in range(60):
        chunk = [
            (rng.choice(NUMERIC_VARS), rng.choice(VALUE_GRID))
            for _ in range(rng.randrange(1, 8))
        ]
        for variable, value in chunk:
            eng_a.ingest(variable, value)
        flips, touched = eng_b.ingest_batch(chunk)
        returned_flips += flips
        returned_touched += touched
        total_writes += len(chunk)
        names = sorted(r.name for r in db_a.all_rules())
        assert names == sorted(r.name for r in db_b.all_rules())
        for name in names:
            assert eng_a.rule_truth(name) == eng_b.rule_truth(name), \
                f"chunk {chunk_index}: truth of {name!r} diverged"
            assert eng_a.rule_state(name) == eng_b.rule_state(name), \
                f"chunk {chunk_index}: state of {name!r} diverged"
    trace_a = [(e.time, e.kind, e.rule, e.device) for e in eng_a.trace]
    trace_b = [(e.time, e.kind, e.rule, e.device) for e in eng_b.trace]
    assert trace_a == trace_b
    assert len(trace_a) > 0, "stream never fired a rule"
    stats = eng_b.columnar_stats
    assert stats.batches == 60
    assert stats.batch_writes == total_writes
    # ``writes`` counts sweeps actually run: value-unchanged entries
    # short-circuit in the engine before reaching the backend.
    assert stats.writes <= total_writes
    assert returned_flips == stats.atoms_flipped
    assert returned_touched == stats.clauses_touched


def test_object_path_batch_returns_zero_stats():
    """``ingest_batch`` on a non-columnar engine falls back to the
    ingest loop and reports no columnar counters."""
    simulator = Simulator()
    database = RuleDatabase()
    engine = RuleEngine(
        database, PriorityManager(), simulator,
        dispatch=lambda spec: None, columnar=False,
    )
    for rule in build_rules():
        database.add(rule)
        engine.rule_added(rule)
    assert engine.ingest_batch([(NUMERIC_VARS[0], 30.0)]) == (0, 0)
    assert engine.rule_truth("cool") is True
    assert engine.columnar_stats is None


# -- churn hygiene -------------------------------------------------------------


def test_unsubscribe_releases_every_slot():
    """Removing every rule must drain the interners (freelists full,
    all indexes empty) and re-registration must read a fresh world."""
    database, engine = _columnar_stack()
    state = engine._columnar
    assert state._tables
    atom_capacity = state._atoms.capacity
    clause_capacity = state._clauses.capacity
    assert atom_capacity > 0 and clause_capacity > 0
    engine.ingest(NUMERIC_VARS[0], 30.0)  # "cool" fires and holds
    for rule in list(database.all_rules()):
        database.remove(rule.name)
        engine.rule_removed(rule.name)
    assert not state._tables
    assert not state._rule_atoms
    assert not state._num_index
    assert len(state._atoms) == 0
    assert len(state._clauses) == 0
    assert len(state._atoms.free) == atom_capacity
    assert len(state._clauses.free) == clause_capacity
    # World changes while nothing subscribes, then re-registration must
    # evaluate against the *current* world, not recycled slot state.
    engine.ingest(NUMERIC_VARS[0], 10.0)
    for rule in build_rules():
        database.add(rule)
        engine.rule_added(rule)
    assert engine.rule_truth("cool") is False
    assert engine.rule_truth("heat") is True
