"""Tests for per-user device access control (the Sect. 6 extension)."""

import pytest

from repro.core.access import AccessDeniedError, AccessPolicy

from tests.core.conftest import action, in_room, make_rule


class TestPolicyDecisions:
    def test_open_by_default(self):
        policy = AccessPolicy()
        assert policy.allowed("Tom", "tv-1", "TurnOn")

    def test_grant_restricts_device_for_others(self):
        policy = AccessPolicy()
        policy.grant("Alan", "tv-1")
        assert policy.allowed("Alan", "tv-1", "TurnOn")
        assert not policy.allowed("Tom", "tv-1", "TurnOn")

    def test_unmentioned_devices_stay_open(self):
        policy = AccessPolicy()
        policy.grant("Alan", "tv-1")
        assert policy.allowed("Tom", "stereo-1", "PlayMusic")

    def test_action_level_grant(self):
        policy = AccessPolicy()
        policy.grant("Tom", "tv-1", actions={"TurnOff"})
        assert policy.allowed("Tom", "tv-1", "TurnOff")
        assert not policy.allowed("Tom", "tv-1", "TurnOn")

    def test_restrict_without_grant_denies_everyone(self):
        policy = AccessPolicy()
        policy.restrict("safe-1")
        assert not policy.allowed("Tom", "safe-1", "Open")

    def test_revoke(self):
        policy = AccessPolicy()
        policy.grant("Tom", "tv-1")
        policy.revoke("Tom", "tv-1")
        assert not policy.allowed("Tom", "tv-1", "TurnOn")
        assert policy.is_restricted("tv-1")

    def test_check_raises_with_context(self):
        policy = AccessPolicy()
        policy.restrict("tv-1")
        with pytest.raises(AccessDeniedError, match="Tom.*TurnOn.*TV"):
            policy.check("Tom", "tv-1", "TV", "TurnOn")

    def test_grants_for_lists_user_grants(self):
        policy = AccessPolicy()
        policy.grant("Tom", "tv-1", actions={"TurnOn"})
        policy.grant("Tom", "lamp-1")
        policy.grant("Alan", "tv-1")
        grants = policy.grants_for("Tom")
        assert {g.device_udn for g in grants} == {"tv-1", "lamp-1"}
        tv_grant = next(g for g in grants if g.device_udn == "tv-1")
        assert tv_grant.allows("TurnOn")
        assert not tv_grant.allows("TurnOff")


class TestRuleChecks:
    def test_rule_with_allowed_actions_passes(self):
        policy = AccessPolicy()
        policy.grant("Tom", "tv-1")
        rule = make_rule("r", "Tom", in_room("Tom"), action())
        policy.check_rule(rule)  # no raise

    def test_rule_primary_action_denied(self):
        policy = AccessPolicy()
        policy.grant("Alan", "tv-1")
        rule = make_rule("r", "Tom", in_room("Tom"), action())
        with pytest.raises(AccessDeniedError):
            policy.check_rule(rule)

    def test_rule_fallback_action_checked(self):
        policy = AccessPolicy()
        policy.grant("Tom", "tv-1")
        policy.grant("Alan", "recorder-1")
        rule = make_rule(
            "r", "Tom", in_room("Tom"), action(),
            fallback=action(device="recorder-1", act="Record"),
        )
        with pytest.raises(AccessDeniedError):
            policy.check_rule(rule)

    def test_rule_stop_action_checked(self):
        policy = AccessPolicy()
        policy.grant("Tom", "tv-1", actions={"TurnOn"})
        rule = make_rule(
            "r", "Tom", in_room("Tom"), action(),
            stop_action=action(act="TurnOff"),
        )
        with pytest.raises(AccessDeniedError):
            policy.check_rule(rule)


class TestServerEnforcement:
    """End-to-end over the real server (registration and dispatch)."""

    @pytest.fixture
    def stack(self):
        from tests.integration.conftest import Stack

        return Stack()

    def test_registration_rejected_without_privilege(self, stack):
        tv_udn = stack.home.tv.udn
        stack.server.access.grant("Alan", tv_udn)
        with pytest.raises(AccessDeniedError):
            stack.session("Tom").submit(
                "If I am in the living room, turn on the TV",
                rule_name="tom-tv",
            )
        assert "tom-tv" not in stack.server.database

    def test_privileged_user_registers_and_runs(self, stack):
        tv_udn = stack.home.tv.udn
        stack.server.access.grant("Alan", tv_udn)
        stack.session("Alan").submit(
            "If I am in the living room, turn on the TV",
            rule_name="alan-tv",
        )
        stack.home.household.arrive_home("Alan", "work", "living room")
        stack.run_for(10.0)
        assert stack.home.tv.is_on

    def test_dispatch_guard_blocks_post_registration_restriction(self, stack):
        """A rule registered while open is still blocked at the device
        boundary once the device becomes restricted."""
        stack.session("Tom").submit(
            "If I am in the living room, turn on the TV",
            rule_name="tom-tv",
        )
        stack.server.access.grant("Alan", stack.home.tv.udn)  # now restricted
        stack.home.household.arrive_home("Tom", "school", "living room")
        stack.run_for(10.0)
        assert not stack.home.tv.is_on
        errors = [e for e in stack.server.engine.trace if e.kind == "error"]
        assert any("access denied" in e.detail for e in errors)
