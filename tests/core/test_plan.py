"""Unit tests for condition compilation (CompiledPlan)."""

import random

import pytest

from repro.core.condition import (
    AndCondition,
    DurationAtom,
    EventAtom,
    FalseAtom,
    OrCondition,
    TimeWindowAtom,
    TrueAtom,
)
from repro.core.plan import compile_condition, numeric_threshold
from repro.sim.clock import hhmm
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

from tests.core.conftest import (
    FakeContext,
    in_room,
    numeric_atom,
    on_air,
    temp_above,
)


def bits_for(plan, ctx):
    bits = 0
    for slot, atom in enumerate(plan.atoms):
        if atom.evaluate(ctx):
            bits |= 1 << slot
    return bits


class TestCompilation:
    def test_atoms_deduplicated_by_key(self):
        condition = OrCondition([
            AndCondition([temp_above(28), in_room("Tom")]),
            AndCondition([temp_above(28), in_room("Alan")]),
        ])
        plan = compile_condition(condition)
        assert len(plan.atoms) == 3  # shared temp atom gets one slot
        assert len(plan.clauses) == 2

    def test_subsumed_clause_dropped(self):
        shared = temp_above(28)
        condition = OrCondition([
            shared,
            AndCondition([temp_above(28), in_room("Tom")]),
        ])
        plan = compile_condition(condition)
        # (temp) subsumes (temp AND room): one clause survives.
        assert len(plan.clauses) == 1

    def test_true_atom_contributes_no_slot(self):
        condition = AndCondition([TrueAtom(), temp_above(28)])
        plan = compile_condition(condition)
        assert len(plan.atoms) == 1

    def test_false_conjunction_dropped(self):
        condition = OrCondition([
            AndCondition([FalseAtom(), temp_above(28)]),
            in_room("Tom"),
        ])
        plan = compile_condition(condition)
        assert len(plan.clauses) == 1
        assert not plan.truth(0)

    def test_constant_conditions(self):
        assert compile_condition(TrueAtom()).truth(0) is True
        assert compile_condition(FalseAtom()).truth(0) is False

    def test_volatile_classification(self):
        condition = AndCondition([
            temp_above(28),
            TimeWindowAtom(hhmm(17), hhmm(21)),
            EventAtom("returns home"),
        ])
        plan = compile_condition(condition)
        assert len(plan.static_slots) == 1
        assert len(plan.volatile_slots) == 2
        assert not plan.has_duration

    def test_duration_marks_plan_stateful(self):
        condition = DurationAtom(in_room("Tom"), 60.0)
        plan = compile_condition(condition)
        assert plan.has_duration

    def test_variable_footprint_cached(self):
        condition = AndCondition([temp_above(28), in_room("Tom")])
        plan = compile_condition(condition)
        assert plan.variables == frozenset(
            {"thermo:t:temperature", "person:Tom:place"}
        )
        assert plan.numeric_variables == frozenset({"thermo:t:temperature"})


class TestTruthEquivalence:
    def test_random_conditions_agree_with_tree_evaluation(self):
        rng = random.Random(7)
        pool = [
            temp_above(20), temp_above(25),
            numeric_atom("hygro:h:humidity", Relation.LT, 60),
            in_room("Tom"), in_room("Alan", "kitchen"),
            on_air("baseball"),
        ]

        def random_condition(depth=0):
            roll = rng.random()
            if depth >= 2 or roll < 0.4:
                return rng.choice(pool)
            combiner = AndCondition if roll < 0.7 else OrCondition
            return combiner([
                random_condition(depth + 1)
                for _ in range(rng.randint(2, 3))
            ])

        for _ in range(200):
            condition = random_condition()
            plan = compile_condition(condition)
            ctx = FakeContext(
                numeric={
                    "thermo:t:temperature": rng.uniform(10, 35),
                    "hygro:h:humidity": rng.uniform(30, 90),
                },
                discrete={
                    "person:Tom:place": rng.choice(
                        ("living room", "kitchen")),
                    "person:Alan:place": rng.choice(
                        ("living room", "kitchen")),
                },
                sets={"epg:guide:keywords":
                      rng.choice(((), ("baseball",)))},
            )
            assert plan.truth(bits_for(plan, ctx)) == condition.evaluate(ctx)


class TestNumericThreshold:
    def make(self, expr, relation, bound):
        from repro.core.condition import NumericAtom
        return NumericAtom(LinearConstraint.make(expr, relation, bound))

    def test_less_than_is_below(self):
        atom = self.make(LinearExpr.var("t"), Relation.LT, 28.0)
        variable, kind, threshold, guard = numeric_threshold(atom)
        assert (variable, kind) == ("t", "below")
        assert threshold == pytest.approx(28.0)
        assert guard > 0

    def test_greater_than_is_above(self):
        atom = self.make(LinearExpr.var("t"), Relation.GT, 28.0)
        _, kind, threshold, _ = numeric_threshold(atom)
        assert kind == "above"
        assert threshold == pytest.approx(28.0)

    def test_negative_coefficient_flips_kind(self):
        atom = self.make(LinearExpr.var("t") * -2.0, Relation.LT, -50.0)
        _, kind, threshold, _ = numeric_threshold(atom)
        # -2t < -50  ==  t > 25: true above.
        assert kind == "above"
        assert threshold == pytest.approx(25.0)

    def test_equality_needs_recheck(self):
        atom = self.make(LinearExpr.var("t"), Relation.EQ, 28.0)
        assert numeric_threshold(atom) is None

    def test_multivariable_needs_recheck(self):
        atom = self.make(
            LinearExpr.var("t") - LinearExpr.var("h"), Relation.GT, 5.0
        )
        assert numeric_threshold(atom) is None

    def test_threshold_truth_matches_evaluation(self):
        """The kind/threshold descriptor must agree with satisfied_by on
        either side of the boundary."""
        rng = random.Random(3)
        for _ in range(100):
            coefficient = rng.choice((-3.0, -1.0, 0.5, 1.0, 2.0))
            relation = rng.choice(
                (Relation.LT, Relation.LE, Relation.GT, Relation.GE))
            bound = rng.uniform(-50, 50)
            atom = self.make(
                LinearExpr.var("x") * coefficient, relation, bound)
            _, kind, threshold, _ = numeric_threshold(atom)
            below = FakeContext(numeric={"x": threshold - 1.0})
            above = FakeContext(numeric={"x": threshold + 1.0})
            if kind == "below":
                assert atom.evaluate(below) and not atom.evaluate(above)
            else:
                assert atom.evaluate(above) and not atom.evaluate(below)
