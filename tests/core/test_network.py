"""Tests for the shared evaluation network: clause-node dedup across
rules, O(distinct clauses) atom-flip fan-out, refcounted subscriptions
and removal pruning (including the remove-mid-stream / re-registration
staleness regression)."""

import pytest

from repro.core.condition import AndCondition, OrCondition, TimeWindowAtom
from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine, RuleState
from repro.core.priority import PriorityManager
from repro.sim.clock import hhmm
from repro.sim.events import Simulator

from tests.core.conftest import (
    action,
    humid_above,
    in_room,
    make_rule,
    temp_above,
)

TEMP = "thermo:t:temperature"
HUMID = "hygro:h:humidity"


class Harness:
    def __init__(self, **engine_kwargs):
        # These tests pin the object-graph SharedNetwork layer, which is
        # the columnar backend's ablation baseline — so the columnar
        # default is switched off here (the columnar equivalence suite
        # covers the array path).
        engine_kwargs.setdefault("columnar", False)
        self.simulator = Simulator()
        self.database = RuleDatabase()
        self.dispatched = []
        self.engine = RuleEngine(
            self.database, PriorityManager(), self.simulator,
            dispatch=self.dispatched.append, **engine_kwargs,
        )

    def add_rule(self, rule):
        self.database.add(rule)
        self.engine.rule_added(rule)
        return rule

    def remove_rule(self, name):
        self.database.remove(name)
        self.engine.rule_removed(name)

    @property
    def network(self):
        return self.engine._network


def hot_and_occupied(threshold=28.0, person="Tom"):
    """The templated two-atom conjunction the network dedupes."""
    return AndCondition([temp_above(threshold), in_room(person)])


class TestClauseSharing:
    def test_identical_clauses_share_one_node(self):
        harness = Harness()
        for index in range(5):
            harness.add_rule(make_rule(
                f"r{index}", "Tom", hot_and_occupied(),
                action(device=f"d{index}")))
        assert len(harness.network) == 1
        (node,) = harness.network._nodes.values()
        assert set(node.subscribers) == {f"r{index}" for index in range(5)}

    def test_distinct_clauses_get_distinct_nodes(self):
        harness = Harness()
        harness.add_rule(make_rule("a", "Tom", hot_and_occupied(28.0),
                                   action(device="d0")))
        harness.add_rule(make_rule("b", "Tom", hot_and_occupied(29.0),
                                   action(device="d1")))
        assert len(harness.network) == 2

    def test_atom_flip_without_clause_flip_wakes_no_rule(self):
        """The A7 scaling property: a temperature flip inside a clause
        whose occupancy conjunct is false must not touch any rule."""
        harness = Harness()
        for index in range(10):
            harness.add_rule(make_rule(
                f"r{index}", "Tom", hot_and_occupied(),
                action(device=f"d{index}")))
        calls = []
        original = harness.engine._evaluate_rules

        def spy(names, full):
            names = list(names)
            calls.append(names)
            return original(names, full)

        harness.engine._evaluate_rules = spy
        harness.engine.ingest(TEMP, 30.0)  # occupancy unknown: clause false
        harness.engine.ingest(TEMP, 20.0)
        assert calls == []  # atom flipped twice, no rule was woken
        # Sanity: the node's bit really toggled.
        (node,) = harness.network._nodes.values()
        assert not node.truth

    def test_clause_flip_wakes_every_subscriber_once(self):
        harness = Harness()
        for index in range(4):
            harness.add_rule(make_rule(
                f"r{index}", "Tom", hot_and_occupied(),
                action(device=f"d{index}")))
        harness.engine.ingest(TEMP, 30.0)
        harness.engine.ingest("person:Tom:place", "living room")
        for index in range(4):
            assert harness.engine.rule_truth(f"r{index}") is True
            assert harness.engine.rule_state(f"r{index}") is RuleState.ACTIVE
        assert len(harness.dispatched) == 4

    def test_shared_static_part_across_or_clauses_is_refcounted(self):
        """(A∧B∧evening) ∨ (A∧B∧night) references the node (A,B) twice
        from one rule; removal must drop both references and the node."""
        harness = Harness()
        condition = OrCondition([
            AndCondition([temp_above(28.0), in_room("Tom"),
                          TimeWindowAtom(hhmm(17), hhmm(21))]),
            AndCondition([temp_above(28.0), in_room("Tom"),
                          TimeWindowAtom(hhmm(21), hhmm(6))]),
        ])
        harness.add_rule(make_rule("r", "Tom", condition, action()))
        assert len(harness.network) == 1
        (node,) = harness.network._nodes.values()
        assert node.subscribers == {"r": 2}
        harness.remove_rule("r")
        assert len(harness.network) == 0
        assert not harness.network._atom_nodes
        assert not harness.network._tables

    def test_constant_true_and_false_conditions(self):
        from repro.core.condition import FalseAtom, TrueAtom
        harness = Harness()
        harness.add_rule(make_rule("always", "Tom", TrueAtom(),
                                   action(device="d0")))
        harness.add_rule(make_rule("never", "Tom", FalseAtom(),
                                   action(device="d1")))
        assert harness.engine.rule_truth("always") is True
        assert harness.engine.rule_truth("never") is False


class TestRemovalPruning:
    def test_removal_prunes_network_and_atom_truth(self):
        harness = Harness()
        harness.add_rule(make_rule("a", "Tom", hot_and_occupied(),
                                   action(device="d0")))
        harness.add_rule(make_rule("b", "Tom", hot_and_occupied(),
                                   action(device="d1")))
        harness.engine.ingest(TEMP, 30.0)
        harness.remove_rule("a")
        assert len(harness.network) == 1  # b still subscribes
        assert harness.engine._atom_truth
        harness.remove_rule("b")
        assert len(harness.network) == 0
        assert not harness.network._atom_nodes
        assert not harness.network._tables
        assert not harness.engine._atom_truth

    def test_remove_mid_stream_then_reregister_reads_fresh_world(self):
        """Regression: a removed rule's cached atom truth (and clause
        node) must not survive to poison a later re-registration.  The
        world changes while no rule subscribes the atom — the database
        generates no candidates then, so a stale cache entry would be
        trusted forever."""
        harness = Harness()
        harness.add_rule(make_rule("r", "Tom", temp_above(25.0), action()))
        harness.engine.ingest(TEMP, 30.0)       # atom true, rule fires
        assert harness.engine.rule_truth("r") is True
        harness.remove_rule("r")
        assert not harness.engine._atom_truth   # pruned with the last sub
        harness.engine.ingest(TEMP, 20.0)       # unobserved: no subscribers
        harness.add_rule(make_rule("r", "Tom", temp_above(25.0), action()))
        assert harness.engine.rule_truth("r") is False  # fresh evaluation
        assert not harness.dispatched[1:]       # re-registration cannot fire

    def test_remove_mid_stream_per_rule_ablation_matches(self):
        """The same regression through the shared=False bitset path."""
        harness = Harness(shared=False)
        harness.add_rule(make_rule("r", "Tom", temp_above(25.0), action()))
        harness.engine.ingest(TEMP, 30.0)
        harness.remove_rule("r")
        assert not harness.engine._atom_truth
        harness.engine.ingest(TEMP, 20.0)
        harness.add_rule(make_rule("r", "Tom", temp_above(25.0), action()))
        assert harness.engine.rule_truth("r") is False

    def test_network_absent_without_incremental_or_shared(self):
        assert Harness(incremental=False).network is None
        assert Harness(shared=False).network is None
        assert Harness(incremental=False, shared=True).network is None


class TestSharedAblationSpotChecks:
    """Cheap behavioural parity checks between shared and per-rule paths
    (the randomized stream suites do the heavy lifting)."""

    @pytest.mark.parametrize("shared", (True, False))
    def test_denied_retry_and_fallback(self, shared):
        from repro.core.priority import PriorityOrder
        harness = Harness(shared=shared)
        harness.engine.priorities.add_order(
            PriorityOrder("tv-1", ("Alan", "Tom")))
        harness.add_rule(make_rule("tom", "Tom", in_room("Tom"), action()))
        harness.add_rule(make_rule(
            "alan", "Alan", in_room("Alan"), action(act="ShowBaseball")))
        harness.engine.ingest("person:Alan:place", "living room")
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.rule_state("tom") is RuleState.DENIED
        harness.engine.ingest("person:Alan:place", "kitchen")
        assert harness.engine.rule_state("tom") is RuleState.ACTIVE

    @pytest.mark.parametrize("shared", (True, False))
    def test_multi_clause_or_condition(self, shared):
        harness = Harness(shared=shared)
        condition = OrCondition([
            AndCondition([temp_above(28.0), in_room("Tom")]),
            humid_above(60.0),
        ])
        harness.add_rule(make_rule("r", "Tom", condition, action()))
        harness.engine.ingest(HUMID, 70.0)
        assert harness.engine.rule_truth("r") is True
        harness.engine.ingest(HUMID, 50.0)
        assert harness.engine.rule_truth("r") is False
        harness.engine.ingest(TEMP, 30.0)
        assert harness.engine.rule_truth("r") is False
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.rule_truth("r") is True
