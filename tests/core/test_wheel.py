"""Tests for the time-window wheel: boundary arithmetic (mid-day,
midnight wrap, weekday restrictions, degenerate windows), tick-driven
advancement, atom dedup across rules, and removal while scheduled."""

from repro.core.condition import AndCondition, TimeWindowAtom
from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine
from repro.core.priority import PriorityManager
from repro.core.wheel import TimeWheel, next_boundary
from repro.sim.clock import SECONDS_PER_DAY, hhmm
from repro.sim.events import Simulator

from tests.core.conftest import action, in_room, make_rule


def window(start, end, weekday=None):
    return TimeWindowAtom(start, end, weekday=weekday)


class TestNextBoundary:
    def test_before_start_arms_start(self):
        atom = window(hhmm(17), hhmm(21))
        assert next_boundary(atom, hhmm(9)) == hhmm(17)

    def test_inside_window_arms_end(self):
        atom = window(hhmm(17), hhmm(21))
        assert next_boundary(atom, hhmm(18)) == hhmm(21)

    def test_after_end_arms_next_day_start(self):
        atom = window(hhmm(17), hhmm(21))
        assert next_boundary(atom, hhmm(22)) == SECONDS_PER_DAY + hhmm(17)

    def test_exactly_on_boundary_is_strictly_after(self):
        atom = window(hhmm(17), hhmm(21))
        assert next_boundary(atom, hhmm(17)) == hhmm(21)
        assert next_boundary(atom, hhmm(21)) == SECONDS_PER_DAY + hhmm(17)

    def test_midnight_wrapping_window(self):
        atom = window(hhmm(21), hhmm(6))  # "at night"
        assert next_boundary(atom, hhmm(22)) == SECONDS_PER_DAY + hhmm(6)
        assert next_boundary(atom, hhmm(3)) == hhmm(6)
        assert next_boundary(atom, hhmm(7)) == hhmm(21)

    def test_multi_day_absolute_times(self):
        atom = window(hhmm(17), hhmm(21))
        day3 = 3 * SECONDS_PER_DAY
        assert next_boundary(atom, day3 + hhmm(20)) == day3 + hhmm(21)

    def test_weekday_window_includes_midnight_candidate(self):
        atom = window(hhmm(11), hhmm(14), weekday=6)
        # From Saturday 23:00 the nearest candidate is Sunday midnight
        # (the weekday roll-over), before the 11:00 start.
        assert next_boundary(atom, hhmm(23)) == SECONDS_PER_DAY
        assert next_boundary(atom, SECONDS_PER_DAY) == SECONDS_PER_DAY + hhmm(11)

    def test_end_stored_as_full_day_maps_to_midnight(self):
        atom = window(hhmm(22), SECONDS_PER_DAY)
        assert next_boundary(atom, hhmm(23)) == SECONDS_PER_DAY

    def test_degenerate_full_day_window_still_arms(self):
        atom = window(hhmm(8), hhmm(8))  # wraps: the whole day
        assert next_boundary(atom, hhmm(8)) == SECONDS_PER_DAY + hhmm(8)


class TestTimeWheel:
    def test_advance_wakes_only_crossed_atoms(self):
        wheel = TimeWheel()
        wheel.subscribe("early", [window(hhmm(6), hhmm(9))], now=0.0)
        wheel.subscribe("late", [window(hhmm(17), hhmm(21))], now=0.0)
        assert wheel.advance(hhmm(5)) == set()
        assert wheel.advance(hhmm(6)) == {"early"}
        assert wheel.advance(hhmm(7)) == set()   # re-armed for 9:00
        assert wheel.advance(hhmm(18)) == {"early", "late"}  # 9:00 + 17:00

    def test_shared_atom_scheduled_once_wakes_all_subscribers(self):
        wheel = TimeWheel()
        shared = window(hhmm(6), hhmm(9))
        wheel.subscribe("a", [shared], now=0.0)
        wheel.subscribe("b", [window(hhmm(6), hhmm(9))], now=0.0)
        assert len(wheel) == 1
        assert wheel.advance(hhmm(6)) == {"a", "b"}

    def test_unsubscribe_while_scheduled(self):
        wheel = TimeWheel()
        keys = wheel.subscribe("r", [window(hhmm(6), hhmm(9))], now=0.0)
        wheel.unsubscribe("r", keys)
        assert len(wheel) == 0
        assert wheel.advance(hhmm(10)) == set()  # stale heap entry skipped
        assert wheel.peek() is None

    def test_partial_unsubscribe_keeps_other_subscriber(self):
        wheel = TimeWheel()
        keys = wheel.subscribe("a", [window(hhmm(6), hhmm(9))], now=0.0)
        wheel.subscribe("b", [window(hhmm(6), hhmm(9))], now=0.0)
        wheel.unsubscribe("a", keys)
        assert wheel.advance(hhmm(6)) == {"b"}

    def test_resubscribe_after_removal_rearms(self):
        wheel = TimeWheel()
        keys = wheel.subscribe("r", [window(hhmm(6), hhmm(9))], now=0.0)
        wheel.unsubscribe("r", keys)
        wheel.subscribe("r2", [window(hhmm(6), hhmm(9))], now=hhmm(7))
        # Re-registered mid-window: next boundary is the end.
        assert wheel.peek() == hhmm(9)
        assert wheel.advance(hhmm(9)) == {"r2"}

    def test_jump_over_several_crossings_wakes_once(self):
        wheel = TimeWheel()
        wheel.subscribe("r", [window(hhmm(6), hhmm(9))], now=0.0)
        # One coarse tick past both start and end: a single wake, then
        # re-armed for the next day's start.
        assert wheel.advance(hhmm(12)) == {"r"}
        assert wheel.peek() == SECONDS_PER_DAY + hhmm(6)


class TestEngineClockTick:
    def _harness(self, **kwargs):
        simulator = Simulator()
        database = RuleDatabase()
        dispatched = []
        engine = RuleEngine(database, PriorityManager(), simulator,
                            dispatch=dispatched.append, **kwargs)
        return simulator, database, engine, dispatched

    def _tick_to(self, simulator, engine, time):
        simulator.run_until(time)
        engine.clock_tick()

    def test_window_rule_fires_and_stops_at_boundaries(self):
        simulator, database, engine, dispatched = self._harness()
        rule = make_rule("evening", "Tom",
                         TimeWindowAtom(hhmm(17), hhmm(21)), action(),
                         stop_action=action(act="TurnOff"))
        database.add(rule)
        engine.rule_added(rule)
        for hour in (9, 16):
            self._tick_to(simulator, engine, hhmm(hour))
            assert engine.rule_truth("evening") is False
        self._tick_to(simulator, engine, hhmm(17))
        assert engine.rule_truth("evening") is True
        assert len(dispatched) == 1
        self._tick_to(simulator, engine, hhmm(21))
        assert engine.rule_truth("evening") is False
        assert len(dispatched) == 2  # stop action

    def test_mid_tick_boundary_observed_at_next_tick(self):
        """A 17:00:30 start with minute ticks flips at 17:01 — exactly
        when the per-tick path would have seen it."""
        for wheel in (True, False):
            simulator, database, engine, _ = self._harness(wheel=wheel)
            rule = make_rule(
                "r", "Tom",
                TimeWindowAtom(hhmm(17, 0, 30), hhmm(21)), action())
            database.add(rule)
            engine.rule_added(rule)
            self._tick_to(simulator, engine, hhmm(17, 0))
            assert engine.rule_truth("r") is False, wheel
            self._tick_to(simulator, engine, hhmm(17, 1))
            assert engine.rule_truth("r") is True, wheel

    def test_removed_rule_never_woken_by_stale_schedule(self):
        simulator, database, engine, dispatched = self._harness()
        rule = make_rule("r", "Tom", TimeWindowAtom(hhmm(17), hhmm(21)),
                         action())
        database.add(rule)
        engine.rule_added(rule)
        database.remove("r")
        engine.rule_removed("r")
        assert len(engine._time_wheel) == 0
        self._tick_to(simulator, engine, hhmm(18))
        assert dispatched == []

    def test_wheel_skips_unaffected_rules(self):
        """The tick-cost property: a tick with no crossing evaluates no
        window rule at all."""
        simulator, database, engine, _ = self._harness()
        for index in range(8):
            start = hhmm(6 + index)
            rule = make_rule(
                f"r{index}", "Tom",
                AndCondition([TimeWindowAtom(start, start + 1800.0),
                              in_room("Tom")]),
                action(device=f"d{index}"))
            database.add(rule)
            engine.rule_added(rule)
        calls = []
        original = engine._evaluate_rules

        def spy(names, full):
            names = list(names)
            calls.append(names)
            return original(names, full)

        engine._evaluate_rules = spy
        self._tick_to(simulator, engine, hhmm(5))
        assert calls == []      # no crossing yet
        self._tick_to(simulator, engine, hhmm(6))
        assert calls == [["r0"]]  # only the crossed window's subscriber
