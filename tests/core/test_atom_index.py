"""Tests for the database's atom-level subscription index and the
engine's incremental bookkeeping (trace ring buffer, watch-set and
bucket pruning)."""

import pytest

from repro.core.condition import AndCondition, DiscreteAtom, DurationAtom
from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine, RuleState
from repro.core.priority import PriorityManager, PriorityOrder
from repro.sim.events import Simulator

from tests.core.conftest import (
    action,
    in_room,
    make_rule,
    numeric_atom,
    on_air,
    temp_above,
)
from repro.solver.linear import Relation

TEMP = "thermo:t:temperature"


def add(db, name, condition, device="tv-1", **kwargs):
    rule = make_rule(name, "Tom", condition,
                     action(device=device), **kwargs)
    db.add(rule)
    return rule


class TestThresholdIndex:
    def test_candidates_narrow_to_crossed_thresholds(self):
        db = RuleDatabase()
        for i, bound in enumerate((10.0, 20.0, 30.0, 40.0)):
            add(db, f"r{i}", temp_above(bound), device=f"d{i}")
        from repro.core.plan import numeric_threshold
        crossed = db.numeric_candidates(TEMP, 15.0, 35.0)
        thresholds = sorted(numeric_threshold(e.atom)[2] for e in crossed)
        assert thresholds == [20.0, 30.0]

    def test_first_ingest_considers_everything(self):
        db = RuleDatabase()
        add(db, "r0", temp_above(10.0), device="d0")
        add(db, "r1", numeric_atom(TEMP, Relation.LT, 50.0), device="d1")
        assert len(db.numeric_candidates(TEMP, None, 25.0)) == 2

    def test_exact_boundary_is_candidate(self):
        db = RuleDatabase()
        add(db, "r0", temp_above(28.0))
        assert db.numeric_candidates(TEMP, 28.0, 28.5)
        assert db.numeric_candidates(TEMP, 27.5, 28.0)

    def test_equality_and_multivar_always_rechecked(self):
        from repro.solver.linear import LinearConstraint, LinearExpr
        from repro.core.condition import NumericAtom
        db = RuleDatabase()
        eq_atom = NumericAtom(LinearConstraint.make(
            LinearExpr.var(TEMP), Relation.EQ, 42.0))
        add(db, "eq", eq_atom, device="d0")
        # A change far away from 42 must still recheck the equality atom.
        assert len(db.numeric_candidates(TEMP, 1.0, 2.0)) == 1

    def test_shared_atom_single_entry_two_subscribers(self):
        db = RuleDatabase()
        add(db, "a", temp_above(28.0), device="d0")
        add(db, "b", AndCondition([temp_above(28.0), in_room("Tom")]),
            device="d1")
        entries = db.numeric_candidates(TEMP, 27.0, 29.0)
        assert len(entries) == 1
        assert set(entries[0].subscribers) == {"a", "b"}


class TestDiscreteAndSetIndex:
    def test_discrete_candidates_keyed_by_value(self):
        db = RuleDatabase()
        add(db, "lr", in_room("Tom", "living room"), device="d0")
        add(db, "kt", in_room("Tom", "kitchen"), device="d1")
        add(db, "bed", in_room("Tom", "bedroom"), device="d2")
        candidates = db.discrete_candidates(
            "person:Tom:place", "living room", "kitchen")
        values = {e.atom.value for e in candidates}
        assert values == {"living room", "kitchen"}

    def test_negated_discrete_waking(self):
        db = RuleDatabase()
        add(db, "r", DiscreteAtom("person:Tom:place", "kitchen",
                                  negated=True))
        assert db.discrete_candidates("person:Tom:place",
                                      "kitchen", "hall")
        assert not db.discrete_candidates("person:Tom:place",
                                          "hall", "bedroom")

    def test_membership_candidates_from_symmetric_difference(self):
        db = RuleDatabase()
        add(db, "ball", on_air("baseball"), device="d0")
        add(db, "news", on_air("news"), device="d1")
        candidates = db.set_candidates(
            "epg:guide:keywords",
            frozenset({"baseball"}), frozenset({"baseball", "news"}))
        assert {e.atom.member for e in candidates} == {"news"}


class TestPlanSharingAndPruning:
    def test_equal_conditions_share_one_plan(self):
        db = RuleDatabase()
        add(db, "a", temp_above(28.0), device="d0")
        add(db, "b", temp_above(28.0), device="d1")
        assert db.plan_of("a") is db.plan_of("b")

    def test_removal_prunes_every_index(self):
        db = RuleDatabase()
        add(db, "a", AndCondition([temp_above(28.0), in_room("Tom"),
                                   on_air("baseball")]), device="d0")
        add(db, "b", numeric_atom(TEMP, Relation.LT, 10.0), device="d1")
        db.remove("a")
        db.remove("b")
        assert not db._atom_entries
        assert not db._numeric_bands
        assert not db._discrete_bands
        assert not db._set_bands
        assert not db._plans
        assert not db._plan_refs
        assert not db._var_watch
        assert len(db._by_variable) == 0
        assert len(db._by_device) == 0
        assert len(db._by_owner) == 0

    def test_shared_atom_survives_partial_removal(self):
        db = RuleDatabase()
        add(db, "a", temp_above(28.0), device="d0")
        add(db, "b", temp_above(28.0), device="d1")
        db.remove("a")
        entries = db.numeric_candidates(TEMP, 27.0, 29.0)
        assert len(entries) == 1
        assert set(entries[0].subscribers) == {"b"}

    def test_var_watch_registers_stateful_and_volatile_rules(self):
        db = RuleDatabase()
        add(db, "held", DurationAtom(in_room("Tom"), 60.0), device="d0")
        assert "held" in db.variable_watchers("person:Tom:place")
        add(db, "plain", in_room("Alan"), device="d1")
        assert "plain" not in db.variable_watchers("person:Alan:place")

    def test_presorted_bucket_tracks_mutation(self):
        db = RuleDatabase()
        r0 = add(db, "a", temp_above(28.0), device="d0")
        r1 = add(db, "b", temp_above(20.0), device="d1")
        assert db.rules_reading_variable(TEMP) == [r0, r1]
        db.remove("a")
        assert db.rules_reading_variable(TEMP) == [r1]
        r2 = add(db, "c", temp_above(25.0), device="d2")
        assert db.rules_reading_variable(TEMP) == [r1, r2]


class Harness:
    def __init__(self, **engine_kwargs):
        self.simulator = Simulator()
        self.database = RuleDatabase()
        self.priorities = PriorityManager()
        self.dispatched = []
        self.engine = RuleEngine(
            self.database, self.priorities, self.simulator,
            dispatch=self.dispatched.append, **engine_kwargs,
        )

    def add_rule(self, rule):
        self.database.add(rule)
        self.engine.rule_added(rule)
        return rule


class TestEngineBookkeeping:
    def test_trace_is_a_capped_ring_buffer(self):
        harness = Harness(max_trace=5)
        harness.add_rule(make_rule("r", "Tom", temp_above(28.0), action()))
        for i in range(10):
            harness.engine.ingest(TEMP, 30.0 + i)  # no-op edges
            harness.engine.ingest(TEMP, 20.0)      # falling
            harness.engine.ingest(TEMP, 30.0)      # rising
        assert len(harness.engine.trace) == 5
        # Newest entries survive.
        assert harness.engine.trace[-1].kind in ("fire", "stop")

    def test_max_trace_must_be_positive(self):
        from repro.errors import RuleError
        with pytest.raises(RuleError):
            Harness(max_trace=0)

    def test_held_buckets_pruned_on_removal(self):
        harness = Harness()
        rule = make_rule(
            "alarm", "Tom",
            DurationAtom(DiscreteAtom("door:lock:locked", "false"), 60.0),
            action(device="alarm-1"),
        )
        harness.add_rule(rule)
        assert harness.engine._held_atom_rules
        harness.database.remove("alarm")
        harness.engine.rule_removed("alarm")
        assert not harness.engine._held_atom_rules

    def test_engine_state_pruned_on_removal(self):
        harness = Harness()
        harness.add_rule(make_rule("r", "Tom", temp_above(28.0), action()))
        harness.engine.ingest(TEMP, 30.0)
        harness.database.remove("r")
        harness.engine.rule_removed("r")
        assert not harness.engine._plans
        assert not harness.engine._bits
        assert not harness.engine._atom_truth
        assert not harness.engine._watch_vars
        assert not harness.engine._denied_watch
        assert not harness.engine._until_watch

    def test_denied_watch_follows_state(self):
        harness = Harness()
        harness.priorities.add_order(PriorityOrder("tv-1", ("Alan", "Tom")))
        harness.add_rule(make_rule("tom", "Tom", in_room("Tom"), action()))
        harness.add_rule(
            make_rule("alan", "Alan", in_room("Alan"),
                      action(act="ShowBaseball")))
        harness.engine.ingest("person:Alan:place", "living room")
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.rule_state("tom") is RuleState.DENIED
        assert any("tom" in bucket
                   for bucket in harness.engine._denied_watch.values())
        harness.engine.ingest("person:Tom:place", "kitchen")
        assert not any("tom" in bucket
                       for bucket in harness.engine._denied_watch.values())

    def test_until_watch_follows_holding_state(self):
        harness = Harness()
        harness.add_rule(
            make_rule("r", "Tom", in_room("Tom"), action(),
                      until=temp_above(30.0),
                      stop_action=action(act="TurnOff")))
        harness.engine.ingest("person:Tom:place", "living room")
        assert any("r" in bucket
                   for bucket in harness.engine._until_watch.values())
        harness.engine.ingest(TEMP, 31.0)  # until fires, rule stops
        assert harness.engine.rule_state("r") is RuleState.IDLE
        assert not any("r" in bucket
                       for bucket in harness.engine._until_watch.values())

    def test_nan_ingest_flips_threshold_atoms(self):
        """NaN defeats the bisect window ordering; it must fall back to
        rechecking every atom so active rules stop like the seed path."""
        for incremental in (True, False):
            harness = Harness(incremental=incremental)
            harness.add_rule(
                make_rule("r", "Tom", temp_above(28.0), action()))
            harness.engine.ingest(TEMP, 35.0)
            assert harness.engine.rule_truth("r") is True
            harness.engine.ingest(TEMP, float("nan"))
            assert harness.engine.rule_truth("r") is False, incremental
            assert harness.engine.holder_of("tv-1") is None
            harness.engine.ingest(TEMP, 35.0)
            assert harness.engine.rule_truth("r") is True, incremental

    def test_reenabled_rule_fires_like_seed_path(self):
        """A rule whose atoms flipped while it was disabled must fire on
        the next relevant change after re-enabling, as the seed does."""
        results = {}
        for incremental in (True, False):
            harness = Harness(incremental=incremental)
            rule = make_rule("r", "Tom", temp_above(26.0), action())
            harness.add_rule(rule)
            harness.engine.ingest(TEMP, 20.0)
            rule.enabled = False
            harness.engine.ingest(TEMP, 30.0)  # flips while disabled
            assert harness.engine.rule_truth("r") is False
            rule.enabled = True
            harness.engine.ingest(TEMP, 31.0)  # no flip, but relevant
            results[incremental] = (
                harness.engine.rule_truth("r"),
                harness.engine.rule_state("r"),
                len(harness.dispatched),
            )
        assert results[True] == results[False]
        assert results[True] == (True, RuleState.ACTIVE, 1)

    def test_rule_registered_disabled_then_enabled(self):
        """Registered-disabled rules start with empty bitsets; enabling
        them must still see the current world on the next wake."""
        results = {}
        for incremental in (True, False):
            harness = Harness(incremental=incremental)
            harness.engine.ingest(TEMP, 30.0)  # already hot
            rule = make_rule("r", "Tom", temp_above(26.0), action())
            rule.enabled = False
            harness.add_rule(rule)
            rule.enabled = True
            harness.engine.ingest(TEMP, 30.5)  # relevant, no flip
            results[incremental] = (
                harness.engine.rule_truth("r"),
                len(harness.dispatched),
            )
        assert results[True] == results[False] == (True, 1)

    def test_direct_constraint_with_constant_indexes_correctly(self):
        """Constraints built without LinearConstraint.make may carry an
        expr constant; the threshold must account for it."""
        from repro.core.condition import NumericAtom
        from repro.core.plan import numeric_threshold
        from repro.solver.linear import LinearConstraint, LinearExpr, Relation
        atom = NumericAtom(LinearConstraint(
            expr=LinearExpr(coefficients=((TEMP, 2.0),), constant=3.0),
            relation=Relation.LE, bound=10.0,
        ))  # 2t + 3 <= 10  <=>  t <= 3.5
        _, kind, threshold, _ = numeric_threshold(atom)
        assert (kind, threshold) == ("below", pytest.approx(3.5))
        harness = Harness()
        harness.add_rule(make_rule("r", "Tom", atom, action()))
        harness.engine.ingest(TEMP, 3.0)
        assert harness.engine.rule_truth("r") is True
        harness.engine.ingest(TEMP, 4.0)  # crosses 3.5, not bound/coef=5.0
        assert harness.engine.rule_truth("r") is False

    def test_nearby_thresholds_never_share_identity(self):
        """Atom keys must be exact: %g display formatting collides at 6
        significant digits and would evaluate one rule with another
        rule's constraint."""
        low, high = 28.1234559, 28.1234561
        atom_low, atom_high = temp_above(low), temp_above(high)
        assert atom_low.key() != atom_high.key()
        results = {}
        for incremental in (True, False):
            harness = Harness(incremental=incremental)
            harness.add_rule(make_rule("low", "Tom", temp_above(low),
                                       action(device="d0")))
            harness.add_rule(make_rule("high", "Tom", temp_above(high),
                                       action(device="d1")))
            harness.engine.ingest(TEMP, 28.1234560)
            results[incremental] = (harness.engine.rule_truth("low"),
                                    harness.engine.rule_truth("high"))
        assert results[True] == results[False] == (True, False)

    def test_engine_attached_to_prepopulated_database(self):
        """The seed pattern of constructing an engine over an existing
        database must work incrementally too — no silent dead engine."""
        results = {}
        for incremental in (True, False):
            database = RuleDatabase()
            for i, bound in enumerate((10.0, 20.0, 30.0)):
                database.add(make_rule(f"r{i}", "Tom", temp_above(bound),
                                       action(device=f"d{i}")))
            engine = RuleEngine(database, PriorityManager(), Simulator(),
                                dispatch=lambda spec: None,
                                incremental=incremental)
            engine.ingest(TEMP, 25.0)
            results[incremental] = [engine.rule_truth(f"r{i}")
                                    for i in range(3)]
        assert results[True] == results[False] == [True, True, False]

    def test_incremental_flag_off_restores_seed_path(self):
        harness = Harness(incremental=False)
        harness.add_rule(make_rule("r", "Tom", temp_above(28.0), action()))
        harness.engine.ingest(TEMP, 30.0)
        assert harness.engine.rule_truth("r") is True
        assert not harness.engine._plans  # no incremental state kept
