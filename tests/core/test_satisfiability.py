"""Tests for conjunction/condition satisfiability and the checkers."""

import pytest

from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    FalseAtom,
    MembershipAtom,
    OrCondition,
    TimeWindowAtom,
    TrueAtom,
)
from repro.core.consistency import ConsistencyChecker
from repro.core.satisfiability import (
    condition_satisfiable,
    conditions_jointly_satisfiable,
    conjunction_satisfiable,
)
from repro.errors import InconsistentRuleError
from repro.sim.clock import hhmm
from repro.solver.linear import Relation

from tests.core.conftest import (
    action,
    humid_above,
    in_room,
    make_rule,
    numeric_atom,
    on_air,
    temp_above,
)


class TestConjunctionSatisfiability:
    def test_empty_conjunction(self):
        assert conjunction_satisfiable(())

    def test_false_atom_kills(self):
        assert not conjunction_satisfiable((FalseAtom(), TrueAtom()))

    def test_numeric_band(self):
        sat = (temp_above(20), numeric_atom("thermo:t:temperature", Relation.LT, 30))
        unsat = (temp_above(30), numeric_atom("thermo:t:temperature", Relation.LT, 20))
        assert conjunction_satisfiable(sat)
        assert not conjunction_satisfiable(unsat)

    def test_discrete_same_value_ok(self):
        assert conjunction_satisfiable((in_room("Tom"), in_room("Tom")))

    def test_discrete_two_places_conflict(self):
        atoms = (
            DiscreteAtom("person:Tom:place", "living room"),
            DiscreteAtom("person:Tom:place", "kitchen"),
        )
        assert not conjunction_satisfiable(atoms)

    def test_discrete_positive_vs_negative(self):
        atoms = (
            DiscreteAtom("person:Tom:place", "living room"),
            DiscreteAtom("person:Tom:place", "living room", negated=True),
        )
        assert not conjunction_satisfiable(atoms)

    def test_discrete_negative_only_ok(self):
        atoms = (
            DiscreteAtom("person:Tom:place", "kitchen", negated=True),
            DiscreteAtom("person:Tom:place", "hall", negated=True),
        )
        assert conjunction_satisfiable(atoms)

    def test_two_persons_two_places_ok(self):
        atoms = (in_room("Tom"), DiscreteAtom("person:Alan:place", "kitchen"))
        assert conjunction_satisfiable(atoms)

    def test_membership_two_keywords_ok(self):
        assert conjunction_satisfiable((on_air("movie"), on_air("baseball game")))

    def test_membership_contradiction(self):
        atoms = (
            on_air("movie"),
            MembershipAtom("epg:guide:keywords", "movie", negated=True),
        )
        assert not conjunction_satisfiable(atoms)

    def test_time_windows_overlap(self):
        atoms = (
            TimeWindowAtom(hhmm(17), hhmm(21)),
            TimeWindowAtom(hhmm(20), hhmm(23)),
        )
        assert conjunction_satisfiable(atoms)

    def test_time_windows_disjoint(self):
        atoms = (
            TimeWindowAtom(hhmm(6), hhmm(9)),
            TimeWindowAtom(hhmm(17), hhmm(21)),
        )
        assert not conjunction_satisfiable(atoms)

    def test_wrapping_window_overlaps_morning(self):
        night = TimeWindowAtom(hhmm(21), hhmm(6))
        morning = TimeWindowAtom(hhmm(5), hhmm(9))
        assert conjunction_satisfiable((night, morning))

    def test_weekday_disagreement(self):
        atoms = (
            TimeWindowAtom(0, hhmm(23, 59), weekday=0),
            TimeWindowAtom(0, hhmm(23, 59), weekday=3),
        )
        assert not conjunction_satisfiable(atoms)

    def test_weekday_agreement(self):
        atoms = (
            TimeWindowAtom(hhmm(6), hhmm(12), weekday=0),
            TimeWindowAtom(hhmm(8), hhmm(10), weekday=0),
        )
        assert conjunction_satisfiable(atoms)

    def test_events_and_durations_neutral(self):
        atoms = (
            EventAtom("returns home"),
            DurationAtom(in_room("Tom"), 60.0),
            in_room("Tom"),
        )
        assert conjunction_satisfiable(atoms)

    def test_mixed_kind_independence(self):
        atoms = (temp_above(28), in_room("Tom"), on_air("movie"),
                 TimeWindowAtom(hhmm(17), hhmm(21)))
        assert conjunction_satisfiable(atoms)


class TestConditionSatisfiability:
    def test_or_rescues_unsat_branch(self):
        bad = AndCondition(
            [temp_above(30), numeric_atom("thermo:t:temperature", Relation.LT, 20)]
        )
        cond = OrCondition([bad, in_room("Tom")])
        assert condition_satisfiable(cond)

    def test_all_branches_unsat(self):
        bad1 = AndCondition(
            [temp_above(30), numeric_atom("thermo:t:temperature", Relation.LT, 20)]
        )
        bad2 = AndCondition([
            DiscreteAtom("person:Tom:place", "a"),
            DiscreteAtom("person:Tom:place", "b"),
        ])
        assert not condition_satisfiable(OrCondition([bad1, bad2]))

    def test_duration_inner_contradiction_propagates(self):
        bad_inner = AndCondition(
            [temp_above(30), numeric_atom("thermo:t:temperature", Relation.LT, 20)]
        )
        assert not condition_satisfiable(DurationAtom(bad_inner, 60.0))


class TestJointSatisfiability:
    def test_paper_hot_and_stuffy_overlap(self):
        # Tom: T>26 & H>65; Alan: T>25 & H>60 — both can hold (conflict).
        tom = AndCondition([temp_above(26), humid_above(65)])
        alan = AndCondition([temp_above(25), humid_above(60)])
        assert conditions_jointly_satisfiable(tom, alan)

    def test_disjoint_bands_not_joint(self):
        low = AndCondition(
            [temp_above(10), numeric_atom("thermo:t:temperature", Relation.LT, 15)]
        )
        high = AndCondition(
            [temp_above(20), numeric_atom("thermo:t:temperature", Relation.LT, 25)]
        )
        assert not conditions_jointly_satisfiable(low, high)

    def test_different_rooms_not_joint(self):
        tom_here = in_room("Tom", "living room")
        tom_there = DiscreteAtom("person:Tom:place", "bedroom")
        assert not conditions_jointly_satisfiable(tom_here, tom_there)

    def test_or_branches_explored(self):
        first = OrCondition([
            DiscreteAtom("person:Tom:place", "a"),
            DiscreteAtom("person:Tom:place", "b"),
        ])
        second = DiscreteAtom("person:Tom:place", "b")
        assert conditions_jointly_satisfiable(first, second)


class TestConsistencyChecker:
    def _rule_with(self, condition, until=None):
        return make_rule("r", "Tom", condition, action(), until=until)

    def test_consistent_rule_passes(self):
        checker = ConsistencyChecker()
        rule = self._rule_with(AndCondition([temp_above(28), in_room("Tom")]))
        assert checker.is_consistent(rule)
        checker.require_consistent(rule)  # no raise

    def test_inconsistent_rule_raises(self):
        checker = ConsistencyChecker()
        impossible = AndCondition(
            [temp_above(30), numeric_atom("thermo:t:temperature", Relation.LT, 20)]
        )
        rule = self._rule_with(impossible)
        assert not checker.is_consistent(rule)
        with pytest.raises(InconsistentRuleError, match="trigger condition"):
            checker.require_consistent(rule)

    def test_inconsistent_until_raises(self):
        checker = ConsistencyChecker()
        impossible = AndCondition([
            DiscreteAtom("x", "a"), DiscreteAtom("x", "b"),
        ])
        rule = self._rule_with(in_room("Tom"), until=impossible)
        with pytest.raises(InconsistentRuleError, match="until"):
            checker.require_consistent(rule)

    def test_simplex_only_mode(self):
        checker = ConsistencyChecker(prefer_intervals=False)
        rule = self._rule_with(AndCondition([temp_above(28), humid_above(60)]))
        assert checker.is_consistent(rule)
