"""Tests for the rule-execution engine: edges, arbitration, preemption,
fallbacks, durations, until-conditions and re-granting."""

import pytest

from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    TimeWindowAtom,
)
from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine, RuleState
from repro.core.priority import PriorityManager, PriorityOrder
from repro.errors import RuleError
from repro.sim.clock import hhmm
from repro.sim.events import Simulator

from tests.core.conftest import action, in_room, make_rule, temp_above


class Harness:
    """Engine + fake dispatcher capturing issued commands."""

    def __init__(self, prompt_policy=None):
        self.simulator = Simulator()
        self.database = RuleDatabase()
        self.priorities = PriorityManager()
        self.dispatched = []
        self.engine = RuleEngine(
            self.database,
            self.priorities,
            self.simulator,
            dispatch=self.dispatched.append,
            prompt_policy=prompt_policy,
        )

    def add_rule(self, rule):
        self.database.add(rule)
        self.engine.rule_added(rule)
        return rule

    def commands(self):
        return [(spec.device_udn, spec.action_name) for spec in self.dispatched]


@pytest.fixture
def harness():
    return Harness()


class TestEdgeTriggering:
    def test_rising_edge_fires_action(self, harness):
        harness.add_rule(make_rule("r", "Tom", in_room("Tom"), action()))
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.commands() == [("tv-1", "TurnOn")]
        assert harness.engine.rule_state("r") is RuleState.ACTIVE

    def test_level_does_not_refire(self, harness):
        harness.add_rule(make_rule("r", "Tom", temp_above(28), action()))
        harness.engine.ingest("thermo:t:temperature", 30.0)
        harness.engine.ingest("thermo:t:temperature", 31.0)  # still true
        assert len(harness.dispatched) == 1

    def test_refires_after_falling_edge(self, harness):
        harness.add_rule(make_rule("r", "Tom", temp_above(28), action()))
        harness.engine.ingest("thermo:t:temperature", 30.0)
        harness.engine.ingest("thermo:t:temperature", 20.0)
        harness.engine.ingest("thermo:t:temperature", 29.0)
        assert len(harness.dispatched) == 2

    def test_rule_true_at_registration_fires_immediately(self, harness):
        harness.engine.ingest("person:Tom:place", "living room")
        harness.add_rule(make_rule("r", "Tom", in_room("Tom"), action()))
        assert harness.commands() == [("tv-1", "TurnOn")]

    def test_disabled_rule_never_fires(self, harness):
        rule = make_rule("r", "Tom", in_room("Tom"), action())
        rule.enabled = False
        harness.add_rule(rule)
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.dispatched == []

    def test_falling_edge_releases_device(self, harness):
        harness.add_rule(make_rule("r", "Tom", in_room("Tom"), action()))
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.holder_of("tv-1") is not None
        harness.engine.ingest("person:Tom:place", "kitchen")
        assert harness.engine.holder_of("tv-1") is None
        assert harness.engine.rule_state("r") is RuleState.IDLE

    def test_stop_action_on_falling_edge(self, harness):
        harness.add_rule(
            make_rule("r", "Tom", in_room("Tom"), action(),
                      stop_action=action(act="TurnOff"))
        )
        harness.engine.ingest("person:Tom:place", "living room")
        harness.engine.ingest("person:Tom:place", "kitchen")
        assert harness.commands() == [("tv-1", "TurnOn"), ("tv-1", "TurnOff")]


class TestEvents:
    def test_event_rule_fires_once(self, harness):
        harness.add_rule(
            make_rule("r", "any", EventAtom("returns home"), action())
        )
        harness.engine.post_event("returns home", "Alan")
        assert len(harness.dispatched) == 1
        # Event atoms are transient: truth falls back after the step.
        assert harness.engine.rule_truth("r") is False

    def test_event_subject_filter(self, harness):
        harness.add_rule(
            make_rule("r", "Alan", EventAtom("returns home", subject="Alan"),
                      action())
        )
        harness.engine.post_event("returns home", "Emily")
        assert harness.dispatched == []
        harness.engine.post_event("returns home", "Alan")
        assert len(harness.dispatched) == 1

    def test_event_combined_with_state(self, harness):
        condition = AndCondition([
            EventAtom("returns home"),
            DiscreteAtom("hall:light:dark", "true", text="the hall is dark"),
        ])
        harness.add_rule(make_rule("r", "any", condition, action(device="hall-light",
                                                                 act="TurnOn")))
        harness.engine.post_event("returns home", "Tom")
        assert harness.dispatched == []  # hall not dark (unknown)
        harness.engine.ingest("hall:light:dark", "true")
        harness.engine.post_event("returns home", "Tom")
        assert harness.commands() == [("hall-light", "TurnOn")]


class TestArbitration:
    def _setup_tv_contest(self, harness):
        tom = make_rule("tom-tv", "Tom", in_room("Tom"),
                        action(device="tv-1", act="ShowJazzChannel"))
        alan = make_rule("alan-tv", "Alan", in_room("Alan"),
                         action(device="tv-1", act="ShowBaseball"))
        harness.add_rule(tom)
        harness.add_rule(alan)
        return tom, alan

    def test_simultaneous_requests_resolved_by_priority(self, harness):
        harness.priorities.add_order(PriorityOrder("tv-1", ("Alan", "Tom")))
        self._setup_tv_contest(harness)
        # Both conditions become true in one ingest batch (same variable
        # would be unusual; use two ingests but check final holder).
        harness.engine.ingest("person:Tom:place", "living room")
        harness.engine.ingest("person:Alan:place", "living room")
        holder = harness.engine.holder_of("tv-1")
        assert holder is not None and holder[0] == "alan-tv"

    def test_preemption_by_higher_priority(self, harness):
        harness.priorities.add_order(PriorityOrder("tv-1", ("Alan", "Tom")))
        self._setup_tv_contest(harness)
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.holder_of("tv-1")[0] == "tom-tv"
        harness.engine.ingest("person:Alan:place", "living room")
        assert harness.engine.holder_of("tv-1")[0] == "alan-tv"
        assert harness.engine.rule_state("tom-tv") is RuleState.DENIED
        kinds = [entry.kind for entry in harness.engine.trace]
        assert "preempt" in kinds

    def test_lower_priority_cannot_steal(self, harness):
        harness.priorities.add_order(PriorityOrder("tv-1", ("Alan", "Tom")))
        self._setup_tv_contest(harness)
        harness.engine.ingest("person:Alan:place", "living room")
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.holder_of("tv-1")[0] == "alan-tv"
        assert harness.engine.rule_state("tom-tv") is RuleState.DENIED

    def test_no_order_keeps_status_quo(self, harness):
        self._setup_tv_contest(harness)
        harness.engine.ingest("person:Tom:place", "living room")
        harness.engine.ingest("person:Alan:place", "living room")
        # Default prompt policy keeps the current holder (Tom).
        assert harness.engine.holder_of("tv-1")[0] == "tom-tv"
        kinds = [entry.kind for entry in harness.engine.trace]
        assert "conflict" in kinds

    def test_prompt_policy_decides(self):
        def choose_alan(device_udn, competing):
            return next(r for r in competing if r.owner == "Alan")

        harness = Harness(prompt_policy=choose_alan)
        tom = make_rule("tom-tv", "Tom", in_room("Tom"),
                        action(device="tv-1", act="ShowJazzChannel"))
        alan = make_rule("alan-tv", "Alan", in_room("Alan"),
                         action(device="tv-1", act="ShowBaseball"))
        harness.add_rule(tom)
        harness.add_rule(alan)
        harness.engine.ingest("person:Tom:place", "living room")
        harness.engine.ingest("person:Alan:place", "living room")
        assert harness.engine.holder_of("tv-1")[0] == "alan-tv"

    def test_context_scoped_priority(self, harness):
        harness.priorities.add_order(
            PriorityOrder(
                "tv-1", ("Alan", "Tom"),
                context=DiscreteAtom("person:Alan:last_arrival", "work"),
            )
        )
        self._setup_tv_contest(harness)
        harness.engine.ingest("person:Tom:place", "living room")
        harness.engine.ingest("person:Alan:place", "living room")
        # Context not set: order not applicable, Tom keeps the TV.
        assert harness.engine.holder_of("tv-1")[0] == "tom-tv"
        # Context becomes true and Alan's rule retries (DENIED retry path).
        harness.engine.ingest("person:Alan:last_arrival", "work")
        harness.engine.reevaluate(["alan-tv"])
        assert harness.engine.holder_of("tv-1")[0] == "alan-tv"


class TestFallbacks:
    def _alan_with_recorder(self, harness):
        return harness.add_rule(
            make_rule(
                "alan-tv", "Alan", in_room("Alan"),
                action(device="tv-1", act="ShowBaseball"),
                fallback=action(device="recorder-1", name="video recorder",
                                act="Record"),
            )
        )

    def test_loser_runs_fallback(self, harness):
        harness.priorities.add_order(PriorityOrder("tv-1", ("Emily", "Alan")))
        emily = make_rule("emily-tv", "Emily", in_room("Emily"),
                          action(device="tv-1", act="ShowMovie"))
        harness.add_rule(emily)
        self._alan_with_recorder(harness)
        harness.engine.ingest("person:Emily:place", "living room")
        harness.engine.ingest("person:Alan:place", "living room")
        assert harness.engine.holder_of("tv-1")[0] == "emily-tv"
        assert harness.engine.holder_of("recorder-1")[0] == "alan-tv"
        assert harness.engine.rule_state("alan-tv") is RuleState.FALLBACK
        assert ("recorder-1", "Record") in harness.commands()

    def test_preempted_holder_runs_fallback(self, harness):
        harness.priorities.add_order(PriorityOrder("tv-1", ("Emily", "Alan")))
        self._alan_with_recorder(harness)
        emily = make_rule("emily-tv", "Emily", in_room("Emily"),
                          action(device="tv-1", act="ShowMovie"))
        harness.add_rule(emily)
        harness.engine.ingest("person:Alan:place", "living room")
        assert harness.engine.holder_of("tv-1")[0] == "alan-tv"
        harness.engine.ingest("person:Emily:place", "living room")
        assert harness.engine.holder_of("tv-1")[0] == "emily-tv"
        assert harness.engine.holder_of("recorder-1")[0] == "alan-tv"

    def test_regrant_upgrades_fallback_to_primary(self, harness):
        harness.priorities.add_order(PriorityOrder("tv-1", ("Emily", "Alan")))
        self._alan_with_recorder(harness)
        emily = make_rule("emily-tv", "Emily", in_room("Emily"),
                          action(device="tv-1", act="ShowMovie"))
        harness.add_rule(emily)
        harness.engine.ingest("person:Alan:place", "living room")
        harness.engine.ingest("person:Emily:place", "living room")
        # Emily leaves: the TV frees up; Alan upgrades from recorder to TV.
        harness.engine.ingest("person:Emily:place", "hall")
        assert harness.engine.holder_of("tv-1")[0] == "alan-tv"
        assert harness.engine.holder_of("recorder-1") is None
        assert harness.engine.rule_state("alan-tv") is RuleState.ACTIVE

    def test_denied_without_fallback(self, harness):
        harness.priorities.add_order(PriorityOrder("tv-1", ("Emily", "Tom")))
        tom = make_rule("tom-tv", "Tom", in_room("Tom"),
                        action(device="tv-1", act="ShowJazzChannel"))
        emily = make_rule("emily-tv", "Emily", in_room("Emily"),
                          action(device="tv-1", act="ShowMovie"))
        harness.add_rule(emily)
        harness.add_rule(tom)
        harness.engine.ingest("person:Emily:place", "living room")
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.rule_state("tom-tv") is RuleState.DENIED
        deny_entries = [e for e in harness.engine.trace if e.kind == "deny"]
        assert deny_entries


class TestDurationsAndTime:
    def test_duration_atom_fires_after_hold(self, harness):
        unlocked = DiscreteAtom("door:lock:locked", "false")
        rule = make_rule(
            "alarm", "any",
            DurationAtom(unlocked, 3600.0),
            action(device="alarm-1", act="TurnOn"),
        )
        harness.add_rule(rule)
        harness.engine.ingest("door:lock:locked", "false")
        assert harness.dispatched == []  # not held long enough yet
        harness.simulator.run_until(3700.0)
        assert harness.commands() == [("alarm-1", "TurnOn")]

    def test_duration_reset_by_interruption(self, harness):
        unlocked = DiscreteAtom("door:lock:locked", "false")
        rule = make_rule(
            "alarm", "any",
            DurationAtom(unlocked, 3600.0),
            action(device="alarm-1", act="TurnOn"),
        )
        harness.add_rule(rule)
        harness.engine.ingest("door:lock:locked", "false")
        harness.simulator.run_until(1800.0)
        harness.engine.ingest("door:lock:locked", "true")   # re-locked
        harness.simulator.run_until(4000.0)
        assert harness.dispatched == []

    def test_until_condition_stops_rule(self, harness):
        rule = make_rule(
            "r", "Tom", in_room("Tom"), action(),
            until=temp_above(30), stop_action=action(act="TurnOff"),
        )
        harness.add_rule(rule)
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.rule_state("r") is RuleState.ACTIVE
        harness.engine.ingest("thermo:t:temperature", 31.0)
        assert harness.engine.rule_state("r") is RuleState.IDLE
        assert harness.commands() == [("tv-1", "TurnOn"), ("tv-1", "TurnOff")]

    def test_time_window_with_clock(self, harness):
        window = TimeWindowAtom(hhmm(17), hhmm(21))
        rule = make_rule(
            "evening-lamp", "Tom",
            AndCondition([in_room("Tom"), window]),
            action(device="lamp-1", act="TurnOn"),
        )
        harness.add_rule(rule)
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.dispatched == []  # it is 00:00
        harness.simulator.run_until(hhmm(18))
        harness.engine.reevaluate(["evening-lamp"])  # clock tick stand-in
        assert harness.commands() == [("lamp-1", "TurnOn")]


class TestRemovalAndIntrospection:
    def test_remove_active_rule_releases_device(self, harness):
        harness.add_rule(make_rule("r", "Tom", in_room("Tom"), action()))
        harness.engine.ingest("person:Tom:place", "living room")
        assert harness.engine.holder_of("tv-1") is not None
        harness.database.remove("r")
        harness.engine.rule_removed("r")
        assert harness.engine.holder_of("tv-1") is None

    def test_ingest_unknown_type_rejected(self, harness):
        with pytest.raises(RuleError):
            harness.engine.ingest("x", object())

    def test_trace_entries_describe(self, harness):
        harness.add_rule(make_rule("r", "Tom", in_room("Tom"), action()))
        harness.engine.ingest("person:Tom:place", "living room")
        text = harness.engine.trace[0].describe()
        assert "fire" in text and "r" in text
