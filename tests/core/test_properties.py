"""Property-based tests (hypothesis) on core condition invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.priority import PriorityManager, PriorityOrder
from repro.core.satisfiability import conjunction_satisfiable
from repro.core.rule import Rule
from repro.core.action import ActionSpec
from repro.sim.clock import SECONDS_PER_DAY
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

from tests.core.conftest import FakeContext

# -- strategies ---------------------------------------------------------------

_numeric_vars = st.sampled_from(["t", "h"])
_disc_vars = st.sampled_from(["p1", "p2"])
_disc_values = st.sampled_from(["a", "b", "c"])


@st.composite
def numeric_atoms(draw):
    variable = draw(_numeric_vars)
    relation = draw(st.sampled_from(
        [Relation.LE, Relation.LT, Relation.GE, Relation.GT]
    ))
    bound = draw(st.integers(min_value=-20, max_value=20))
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound)
    )


@st.composite
def discrete_atoms(draw):
    return DiscreteAtom(
        draw(_disc_vars), draw(_disc_values),
        negated=draw(st.booleans()),
    )


@st.composite
def membership_atoms(draw):
    return MembershipAtom(
        "epg", draw(st.sampled_from(["x", "y"])),
        negated=draw(st.booleans()),
    )


@st.composite
def window_atoms(draw):
    start = draw(st.integers(min_value=0, max_value=23)) * 3600.0
    end = draw(st.integers(min_value=0, max_value=24)) * 3600.0
    return TimeWindowAtom(start, end)


_atoms = st.one_of(numeric_atoms(), discrete_atoms(), membership_atoms(),
                   window_atoms())


@st.composite
def condition_trees(draw, depth=2):
    if depth == 0:
        return draw(_atoms)
    branch = draw(st.integers(min_value=0, max_value=2))
    if branch == 0:
        return draw(_atoms)
    children = draw(st.lists(condition_trees(depth=depth - 1), min_size=1,
                             max_size=3))
    if branch == 1:
        return AndCondition(children)
    return OrCondition(children)


@st.composite
def contexts(draw):
    return FakeContext(
        numeric={
            "t": float(draw(st.integers(min_value=-25, max_value=25))),
            "h": float(draw(st.integers(min_value=-25, max_value=25))),
        },
        discrete={
            "p1": draw(_disc_values),
            "p2": draw(_disc_values),
        },
        sets={"epg": draw(st.sets(st.sampled_from(["x", "y"])))},
        tod=float(draw(st.integers(min_value=0, max_value=86399))),
    )


# -- properties -----------------------------------------------------------------


@given(condition_trees(), contexts())
@settings(max_examples=300, deadline=None)
def test_dnf_preserves_semantics(condition, ctx):
    """evaluate(cond) must equal the DNF's disjunction-of-conjunctions."""
    direct = condition.evaluate(ctx)
    via_dnf = any(
        all(atom.evaluate(ctx) for atom in conjunct)
        for conjunct in condition.dnf()
    )
    assert direct == via_dnf


@given(condition_trees(), contexts())
@settings(max_examples=300, deadline=None)
def test_witness_implies_satisfiable(condition, ctx):
    """If some world state makes a conjunct true, the satisfiability
    checker must not call it unsatisfiable (soundness of the
    consistency check: no false 'inconsistent rule' warnings)."""
    for conjunct in condition.dnf():
        if all(atom.evaluate(ctx) for atom in conjunct):
            assert conjunction_satisfiable(conjunct)


@given(condition_trees())
@settings(max_examples=200, deadline=None)
def test_key_stability(condition):
    """Keys are deterministic and equality-consistent."""
    assert condition.key() == condition.key()
    assert condition == condition
    assert hash(condition) == hash(condition)


@given(condition_trees(), condition_trees(), contexts())
@settings(max_examples=200, deadline=None)
def test_and_or_lattice(a, b, ctx):
    """And is conjunction, Or is disjunction, under any context."""
    both = AndCondition([a, b]).evaluate(ctx)
    either = OrCondition([a, b]).evaluate(ctx)
    assert both == (a.evaluate(ctx) and b.evaluate(ctx))
    assert either == (a.evaluate(ctx) or b.evaluate(ctx))
    assert not both or either  # and implies or


@given(window_atoms(), st.integers(min_value=0, max_value=86399))
@settings(max_examples=300, deadline=None)
def test_window_arcs_match_evaluation(window, second):
    """A window's arc decomposition covers exactly its true instants."""
    ctx = FakeContext(tod=float(second))
    in_arcs = any(lo <= second < hi for lo, hi in window.arcs())
    assert window.evaluate(ctx) == in_arcs


@given(window_atoms())
@settings(max_examples=200, deadline=None)
def test_window_arcs_within_day(window):
    for lo, hi in window.arcs():
        assert 0.0 <= lo < hi <= SECONDS_PER_DAY


# -- arbitration properties ----------------------------------------------------------

_owners = ["Tom", "Alan", "Emily", "Dana"]


def _rule_for(owner, index):
    return Rule(
        name=f"{owner}-{index}",
        owner=owner,
        condition=TimeWindowAtom(0.0, SECONDS_PER_DAY),
        action=ActionSpec(
            device_udn="dev", device_name="dev", service_id="s",
            action_name=f"Act{index}",
        ),
    )


@given(
    st.lists(st.sampled_from(_owners), min_size=1, max_size=4,
             unique=True),
    st.permutations(_owners),
)
@settings(max_examples=200, deadline=None)
def test_arbitration_winner_is_top_ranked_competitor(competing_owners,
                                                     ranking):
    manager = PriorityManager()
    manager.add_order(PriorityOrder("dev", tuple(ranking)))
    rules = [_rule_for(owner, i) for i, owner in enumerate(competing_owners)]
    winner, order = manager.arbitrate("dev", rules, FakeContext())
    assert winner in rules
    expected_owner = min(
        competing_owners, key=lambda owner: ranking.index(owner)
    )
    assert winner.owner == expected_owner
    assert (order is not None) == (len(rules) > 1)
