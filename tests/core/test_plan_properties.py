"""Property tests for condition compilation.

``compile_condition`` rewrites a condition tree three ways — DNF
expansion, key-based slot dedup and clause subsumption reduction — and
PR 6 adds ``sys.intern`` on every atom key and variable name.  These
tests prove the rewrites preserve semantics: for random condition trees
over a deliberately small atom pool (so dedup and subsumption actually
trigger), compiled truth from the slot bitset must equal the tree
evaluator on random worlds, and interning must hand structurally equal
plans pointer-identical key objects.
"""

import random
import sys

import pytest

from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    EventAtom,
    FalseAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
    TrueAtom,
)
from repro.core.plan import compile_condition
from repro.sim.clock import SECONDS_PER_DAY
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

VARS = ("s:temperature", "s:humidity", "s:illuminance")
VALUE_GRID = [10.0 + 2.5 * i for i in range(30)]
ROOMS = ("living room", "kitchen", "bedroom")
PEOPLE = ("Tom", "Alan")
KEYWORDS = ("baseball", "news", "movie")
EVENTS = ("returns home", "leaves home")


class RandomWorld:
    """A random but fixed world snapshot implementing EvaluationContext."""

    def __init__(self, rng: random.Random) -> None:
        self.numerics = {
            variable: rng.choice(VALUE_GRID) if rng.random() < 0.9 else None
            for variable in VARS
        }
        self.discretes = {
            f"person:{person}:place": rng.choice(ROOMS)
            for person in PEOPLE
            if rng.random() < 0.8
        }
        self.members = frozenset(
            keyword for keyword in KEYWORDS if rng.random() < 0.4
        )
        self.tod = rng.uniform(0.0, SECONDS_PER_DAY)
        self.day = rng.randrange(7)
        self.events = {
            (event, person)
            for event in EVENTS
            for person in PEOPLE
            if rng.random() < 0.2
        }

    def numeric(self, variable):
        return self.numerics.get(variable)

    def discrete(self, variable):
        return self.discretes.get(variable)

    def set_members(self, variable):
        return self.members

    def time_of_day(self):
        return self.tod

    def weekday(self):
        return self.day

    def event_fired(self, event_type, subject):
        return any(
            fired_type == event_type
            and (subject is None or fired_subject == subject)
            for fired_type, fired_subject in self.events
        )

    def held(self, key, currently_true, duration):
        raise AssertionError("generator must not produce duration atoms")


def make_atom_factory(rng: random.Random):
    """A zero-arg factory producing *fresh but equal* atoms on each call
    (dedup must work through keys, not shared object identity)."""
    kind = rng.randrange(8)
    if kind < 3:
        variable = rng.choice(VARS)
        relation = rng.choice((Relation.GT, Relation.LT, Relation.EQ))
        bound = rng.choice(VALUE_GRID)
        return lambda: NumericAtom(
            LinearConstraint.make(LinearExpr.var(variable), relation, bound)
        )
    if kind == 3:
        left, right = rng.sample(VARS, 2)
        bound = rng.choice(VALUE_GRID)
        return lambda: NumericAtom(LinearConstraint.make(
            LinearExpr.var(left) - LinearExpr.var(right),
            Relation.GT, bound,
        ))
    if kind == 4:
        person = rng.choice(PEOPLE)
        room = rng.choice(ROOMS)
        negated = rng.random() < 0.3
        return lambda: DiscreteAtom(
            f"person:{person}:place", room, negated=negated
        )
    if kind == 5:
        keyword = rng.choice(KEYWORDS)
        negated = rng.random() < 0.3
        return lambda: MembershipAtom(
            "epg:guide:keywords", keyword, negated=negated
        )
    if kind == 6:
        start = rng.uniform(0.0, SECONDS_PER_DAY)
        end = rng.uniform(0.0, SECONDS_PER_DAY)
        weekday = rng.randrange(7) if rng.random() < 0.3 else None
        return lambda: TimeWindowAtom(start, end, weekday=weekday)
    event = rng.choice(EVENTS)
    subject = rng.choice(PEOPLE) if rng.random() < 0.5 else None
    return lambda: EventAtom(event, subject=subject)


def random_condition(rng: random.Random, factories, depth: int = 0):
    roll = rng.random()
    if depth >= 2 or roll < 0.35:
        if roll < 0.03:
            return TrueAtom()
        if roll < 0.06:
            return FalseAtom()
        return rng.choice(factories)()
    children = [
        random_condition(rng, factories, depth + 1)
        for _ in range(rng.randrange(2, 4))
    ]
    combine = AndCondition if rng.random() < 0.5 else OrCondition
    return combine(children)


def compiled_truth(plan, world) -> bool:
    bits = 0
    for bit, _key, atom in plan.static_slots:
        if atom.evaluate(world):
            bits |= bit
    bits |= plan.volatile_bits(world)
    return plan.truth(bits)


@pytest.mark.parametrize("seed", (1, 2026, 777))
def test_compiled_truth_matches_tree_on_random_worlds(seed):
    rng = random.Random(seed)
    factories = [make_atom_factory(rng) for _ in range(10)]
    for _ in range(40):
        condition = random_condition(rng, factories)
        plan = compile_condition(condition)
        assert not plan.has_duration
        # The subsumption reduction must leave no redundant clause.
        for i, mask in enumerate(plan.clauses):
            for j, other in enumerate(plan.clauses):
                if i != j:
                    assert (mask & other) != other, \
                        f"clause {other:b} subsumes surviving {mask:b}"
        for _ in range(25):
            world = RandomWorld(rng)
            assert compiled_truth(plan, world) == condition.evaluate(world), \
                f"compiled truth diverged for {condition.describe()!r}"


@pytest.mark.parametrize("seed", (5, 909))
def test_structurally_equal_plans_share_interned_keys(seed):
    """Two compilations of fresh-but-equal trees must yield
    pointer-identical atom keys and variable names — the property the
    columnar interner's dict probes rely on."""
    rng_a = random.Random(seed)
    rng_b = random.Random(seed)
    factories_a = [make_atom_factory(rng_a) for _ in range(10)]
    factories_b = [make_atom_factory(rng_b) for _ in range(10)]
    for _ in range(20):
        cond_a = random_condition(rng_a, factories_a)
        cond_b = random_condition(rng_b, factories_b)
        assert cond_a.key() == cond_b.key()
        plan_a = compile_condition(cond_a)
        plan_b = compile_condition(cond_b)
        for (_, key_a, _), (_, key_b, _) in zip(
            plan_a.static_slots, plan_b.static_slots
        ):
            assert key_a is key_b
        for variable in plan_a.variables | plan_a.numeric_variables:
            assert variable is sys.intern(variable)
