"""Tests for the rule database, conflict checker and priority manager."""

import pytest

from repro.core.condition import AndCondition, DiscreteAtom, TrueAtom
from repro.core.conflict import ConflictChecker
from repro.core.database import RuleDatabase
from repro.core.priority import PriorityManager, PriorityOrder
from repro.errors import DuplicateRuleError, RuleError, UnknownRuleError
from repro.solver.linear import Relation

from tests.core.conftest import (
    FakeContext,
    action,
    humid_above,
    in_room,
    make_rule,
    numeric_atom,
    on_air,
    temp_above,
)


class TestRuleDatabase:
    def test_add_get_remove(self):
        db = RuleDatabase()
        rule = make_rule("r1", "Tom", in_room("Tom"), action())
        db.add(rule)
        assert len(db) == 1
        assert db.get("r1") is rule
        removed = db.remove("r1")
        assert removed is rule
        assert len(db) == 0

    def test_duplicate_name_rejected(self):
        db = RuleDatabase()
        db.add(make_rule("r1", "Tom", in_room("Tom"), action()))
        with pytest.raises(DuplicateRuleError):
            db.add(make_rule("r1", "Alan", in_room("Alan"), action()))

    def test_unknown_name_raises(self):
        db = RuleDatabase()
        with pytest.raises(UnknownRuleError):
            db.get("ghost")
        with pytest.raises(UnknownRuleError):
            db.remove("ghost")

    def test_device_index(self):
        db = RuleDatabase()
        db.add(make_rule("tv-rule", "Tom", in_room("Tom"), action(device="tv-1")))
        db.add(make_rule("ac-rule", "Tom", temp_above(28), action(device="ac-1")))
        assert [r.name for r in db.rules_for_device("tv-1")] == ["tv-rule"]
        assert db.rules_for_device("stereo-1") == []

    def test_device_index_includes_fallback(self):
        db = RuleDatabase()
        rule = make_rule(
            "r", "Alan", in_room("Alan"), action(device="tv-1"),
            fallback=action(device="recorder-1", act="Record"),
        )
        db.add(rule)
        assert [r.name for r in db.rules_for_device("recorder-1")] == ["r"]

    def test_scan_matches_index(self):
        db = RuleDatabase()
        for i in range(30):
            db.add(make_rule(f"r{i}", "Tom", in_room("Tom"),
                             action(device=f"dev-{i % 3}")))
        assert {r.name for r in db.rules_for_device("dev-1")} == {
            r.name for r in db.rules_for_device_scan("dev-1")
        }

    def test_owner_index(self):
        db = RuleDatabase()
        db.add(make_rule("r1", "Tom", in_room("Tom"), action()))
        db.add(make_rule("r2", "Alan", in_room("Alan"), action()))
        assert [r.name for r in db.rules_of_owner("Alan")] == ["r2"]

    def test_variable_index(self):
        db = RuleDatabase()
        db.add(make_rule("r1", "Tom", temp_above(28), action()))
        db.add(make_rule("r2", "Tom", in_room("Tom"), action()))
        readers = db.rules_reading_variable("thermo:t:temperature")
        assert [r.name for r in readers] == ["r1"]

    def test_variable_index_cleaned_on_remove(self):
        db = RuleDatabase()
        db.add(make_rule("r1", "Tom", temp_above(28), action()))
        db.remove("r1")
        assert db.rules_reading_variable("thermo:t:temperature") == []

    def test_until_variables_indexed(self):
        db = RuleDatabase()
        db.add(make_rule("r1", "Tom", in_room("Tom"), action(),
                         until=temp_above(30)))
        readers = db.rules_reading_variable("thermo:t:temperature")
        assert [r.name for r in readers] == ["r1"]

    def test_iteration_snapshot(self):
        db = RuleDatabase()
        db.add(make_rule("r1", "Tom", in_room("Tom"), action()))
        names = [rule.name for rule in db]
        assert names == ["r1"]


class TestConflictChecker:
    def _db_with_tv_rules(self):
        db = RuleDatabase()
        alan = make_rule(
            "alan-tv", "Alan",
            AndCondition([in_room("Alan"), on_air("baseball game")]),
            action(device="tv-1", act="ShowProgram", keyword="baseball game"),
        )
        db.add(alan)
        return db, alan

    def test_same_device_overlapping_conditions_conflict(self):
        db, alan = self._db_with_tv_rules()
        checker = ConflictChecker(db)
        emily = make_rule(
            "emily-tv", "Emily",
            AndCondition([in_room("Emily"), on_air("movie")]),
            action(device="tv-1", act="ShowProgram", keyword="movie"),
        )
        reports = checker.find_conflicts(emily)
        assert len(reports) == 1
        assert reports[0].existing_rule == "alan-tv"
        assert reports[0].device_udn == "tv-1"

    def test_different_devices_no_conflict(self):
        db, _ = self._db_with_tv_rules()
        checker = ConflictChecker(db)
        rule = make_rule("stereo-rule", "Tom", in_room("Tom"),
                         action(device="stereo-1", act="PlayMusic"))
        assert checker.find_conflicts(rule) == []

    def test_identical_effect_no_conflict(self):
        db, _ = self._db_with_tv_rules()
        checker = ConflictChecker(db)
        same = make_rule(
            "alan-tv-2", "Emily",
            in_room("Emily"),
            action(device="tv-1", act="ShowProgram", keyword="baseball game"),
        )
        assert checker.find_conflicts(same) == []

    def test_mutually_exclusive_conditions_no_conflict(self):
        db = RuleDatabase()
        cold = make_rule(
            "cold", "Tom",
            AndCondition([
                numeric_atom("t", Relation.GT, 0),
                numeric_atom("t", Relation.LT, 10),
            ]),
            action(device="ac-1", act="Heat"),
        )
        db.add(cold)
        checker = ConflictChecker(db)
        hot = make_rule(
            "hot", "Tom",
            AndCondition([
                numeric_atom("t", Relation.GT, 28),
                numeric_atom("t", Relation.LT, 40),
            ]),
            action(device="ac-1", act="Cool"),
        )
        assert checker.find_conflicts(hot) == []

    def test_fallback_device_counts(self):
        db, _ = self._db_with_tv_rules()
        checker = ConflictChecker(db)
        rule = make_rule(
            "emily-movie", "Emily", in_room("Emily"),
            action(device="projector-1", act="Show"),
            fallback=action(device="tv-1", act="ShowProgram", keyword="movie"),
        )
        reports = checker.find_conflicts(rule)
        assert len(reports) == 1

    def test_extraction_excludes_self(self):
        db, alan = self._db_with_tv_rules()
        checker = ConflictChecker(db)
        assert checker.extract_same_device_rules(alan) == []

    def test_disabled_rules_skipped(self):
        db, alan = self._db_with_tv_rules()
        alan.enabled = False
        checker = ConflictChecker(db)
        emily = make_rule(
            "emily-tv", "Emily", in_room("Emily"),
            action(device="tv-1", act="ShowProgram", keyword="movie"),
        )
        assert checker.find_conflicts(emily) == []

    def test_unindexed_mode_matches_indexed(self):
        db, _ = self._db_with_tv_rules()
        emily = make_rule(
            "emily-tv", "Emily", in_room("Emily"),
            action(device="tv-1", act="ShowProgram", keyword="movie"),
        )
        indexed = ConflictChecker(db, use_device_index=True)
        scanned = ConflictChecker(db, use_device_index=False)
        assert (
            [r.existing_rule for r in indexed.find_conflicts(emily)]
            == [r.existing_rule for r in scanned.find_conflicts(emily)]
        )

    def test_paper_e2_shape_two_inequalities_each(self):
        """E2: each condition is a conjunction of 2 inequalities; the
        pairwise check therefore evaluates a product of 4 inequalities."""
        db = RuleDatabase()
        existing = make_rule(
            "existing", "Alan",
            AndCondition([temp_above(25), humid_above(60)]),
            action(device="ac-1", act="Cool", temperature=24),
        )
        db.add(existing)
        checker = ConflictChecker(db)
        new = make_rule(
            "new", "Tom",
            AndCondition([temp_above(26), humid_above(65)]),
            action(device="ac-1", act="Cool", temperature=25),
        )
        reports = checker.find_conflicts(new)
        assert len(reports) == 1


class TestPriorityManager:
    def _ctx(self, discrete=None):
        return FakeContext(discrete=discrete or {})

    def test_order_validation(self):
        with pytest.raises(RuleError):
            PriorityOrder("tv-1", ())
        with pytest.raises(RuleError):
            PriorityOrder("tv-1", ("Alan", "Alan"))

    def test_rank_of(self):
        order = PriorityOrder("tv-1", ("Emily", "Alan", "Tom"))
        assert order.rank_of("Emily") == 0
        assert order.rank_of("Tom") == 2
        assert order.rank_of("Stranger") is None

    def test_arbitrate_single_rule_wins_without_order(self):
        manager = PriorityManager()
        rule = make_rule("r", "Tom", in_room("Tom"), action())
        winner, order = manager.arbitrate("tv-1", [rule], self._ctx())
        assert winner is rule
        assert order is None

    def test_arbitrate_uses_ranking(self):
        manager = PriorityManager()
        manager.add_order(PriorityOrder("tv-1", ("Alan", "Tom")))
        tom = make_rule("tom", "Tom", in_room("Tom"), action(device="tv-1"))
        alan = make_rule("alan", "Alan", in_room("Alan"), action(device="tv-1"))
        winner, order = manager.arbitrate("tv-1", [tom, alan], self._ctx())
        assert winner is alan
        assert order is not None

    def test_context_scoped_order(self):
        manager = PriorityManager()
        manager.add_order(
            PriorityOrder(
                "tv-1", ("Alan", "Tom"),
                context=DiscreteAtom("person:Alan:last_arrival", "work"),
                label="Alan got home from work",
            )
        )
        tom = make_rule("tom", "Tom", in_room("Tom"), action(device="tv-1"))
        alan = make_rule("alan", "Alan", in_room("Alan"), action(device="tv-1"))
        # Context off: no applicable order.
        winner, order = manager.arbitrate("tv-1", [tom, alan], self._ctx())
        assert winner is None and order is None
        # Context on: Alan wins.
        ctx = self._ctx({"person:Alan:last_arrival": "work"})
        winner, _ = manager.arbitrate("tv-1", [tom, alan], ctx)
        assert winner is alan

    def test_later_order_checked_first(self):
        manager = PriorityManager()
        manager.add_order(PriorityOrder("tv-1", ("Alan", "Tom")))
        manager.add_order(PriorityOrder("tv-1", ("Tom", "Alan")))  # newest
        tom = make_rule("tom", "Tom", in_room("Tom"), action(device="tv-1"))
        alan = make_rule("alan", "Alan", in_room("Alan"), action(device="tv-1"))
        winner, _ = manager.arbitrate("tv-1", [tom, alan], self._ctx())
        assert winner is tom

    def test_unranked_owner_skipped(self):
        manager = PriorityManager()
        manager.add_order(PriorityOrder("tv-1", ("Emily",)))
        tom = make_rule("tom", "Tom", in_room("Tom"), action(device="tv-1"))
        emily = make_rule("emily", "Emily", in_room("Emily"), action(device="tv-1"))
        winner, _ = manager.arbitrate("tv-1", [tom, emily], self._ctx())
        assert winner is emily

    def test_has_order_covering(self):
        manager = PriorityManager()
        manager.add_order(PriorityOrder("tv-1", ("Emily", "Alan", "Tom")))
        assert manager.has_order_covering("tv-1", {"Alan", "Tom"})
        assert not manager.has_order_covering("tv-1", {"Alan", "Stranger"})
        assert not manager.has_order_covering("stereo-1", {"Alan"})

    def test_remove_order(self):
        manager = PriorityManager()
        order = manager.add_order(PriorityOrder("tv-1", ("Alan",)))
        manager.remove_order(order.order_id)
        assert manager.orders_for_device("tv-1") == []
        with pytest.raises(RuleError):
            manager.remove_order(order.order_id)

    def test_arbitrate_empty_raises(self):
        with pytest.raises(RuleError):
            PriorityManager().arbitrate("tv-1", [], self._ctx())
