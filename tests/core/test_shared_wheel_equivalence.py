"""Property tests: the shared-clause network and the time-window wheel
are observably identical to their per-rule / per-tick ablations.

Two twin harnesses mirror ``test_incremental_equivalence``:

* the **shared pair** drives the mixed-atom household stream through
  ``shared=True`` vs ``shared=False`` engines (both incremental);
* the **wheel pair** drives a window-heavy population — boundaries that
  fall mid-tick, windows wrapping midnight, weekday restrictions,
  durations and untils over windows — through ``wheel=True`` vs
  ``wheel=False`` engines, with time advanced tick by tick through
  :meth:`RuleEngine.clock_tick` exactly as the server facades do.

Both suites churn rules mid-stream (add, disable/enable, remove-while-
scheduled) and assert truth/state/holders after every step and traces
entry for entry at the end.
"""

import random

import pytest

from repro.core.condition import (
    AndCondition,
    DiscreteAtom,
    DurationAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine
from repro.core.priority import PriorityManager, PriorityOrder
from repro.core.rule import Rule
from repro.sim.clock import SECONDS_PER_DAY, hhmm
from repro.sim.events import Simulator

from tests.core.test_incremental_equivalence import (
    EVENTS,
    KEYWORDS,
    NUMERIC_VARS,
    PEOPLE,
    ROOMS,
    TEMP,
    VALUE_GRID,
    act,
    build_rules,
    churn_rule,
    num,
    place,
)
from repro.solver.linear import Relation

TICK_PERIOD = 60.0


class AblationTwin:
    """One home driven through two engine configurations in lock-step,
    with clock ticks delivered through the real ``clock_tick`` path."""

    def __init__(self, kwargs_a: dict, kwargs_b: dict, rules) -> None:
        self.sides = []
        self.build_rules = rules
        for kwargs in (kwargs_a, kwargs_b):
            simulator = Simulator()
            database = RuleDatabase()
            priorities = PriorityManager()
            priorities.add_order(PriorityOrder("tv-1", ("Emily", "Tom")))
            engine = RuleEngine(
                database, priorities, simulator,
                dispatch=lambda spec: None, **kwargs,
            )
            for rule in rules():
                database.add(rule)
                engine.rule_added(rule)
            self.sides.append((simulator, database, engine))
        self.devices = sorted({
            udn for rule in rules() for udn in rule.devices()
        })
        self.now = 0.0
        self.next_tick = TICK_PERIOD

    def ingest(self, variable, value) -> None:
        for _sim, _db, engine in self.sides:
            engine.ingest(variable, value)

    def post_event(self, event_type, subject) -> None:
        for _sim, _db, engine in self.sides:
            engine.post_event(event_type, subject)

    def advance(self, seconds: float) -> None:
        """Advance both homes, firing the periodic tick on both engines
        at every TICK_PERIOD multiple crossed (the server cadence)."""
        target = self.now + seconds
        while self.next_tick <= target:
            for simulator, _db, engine in self.sides:
                simulator.run_until(self.next_tick)
                engine.clock_tick()
            self.next_tick += TICK_PERIOD
        for simulator, _db, _engine in self.sides:
            simulator.run_until(target)
        self.now = target

    def add_rule(self, make) -> None:
        for _sim, database, engine in self.sides:
            rule = make()
            database.add(rule)
            engine.rule_added(rule)

    def remove_rule(self, name: str) -> None:
        for _sim, database, engine in self.sides:
            if name in database:
                database.remove(name)
                engine.rule_removed(name)

    def set_enabled(self, name: str, enabled: bool) -> None:
        for _sim, database, _engine in self.sides:
            if name in database:
                database.get(name).enabled = enabled

    def check(self, step) -> None:
        _, db_a, eng_a = self.sides[0]
        _, db_b, eng_b = self.sides[1]
        names = sorted(r.name for r in db_a.all_rules())
        assert names == sorted(r.name for r in db_b.all_rules())
        for name in names:
            assert eng_a.rule_truth(name) == eng_b.rule_truth(name), \
                f"step {step}: truth of {name!r} diverged"
            assert eng_a.rule_state(name) == eng_b.rule_state(name), \
                f"step {step}: state of {name!r} diverged"
        for udn in self.devices:
            holder_a = eng_a.holder_of(udn)
            holder_b = eng_b.holder_of(udn)
            assert (holder_a is None) == (holder_b is None), \
                f"step {step}: holder presence of {udn!r} diverged"
            if holder_a is not None:
                assert holder_a[0] == holder_b[0], \
                    f"step {step}: holder of {udn!r} diverged"

    def check_traces(self) -> None:
        trace_a = [(e.time, e.kind, e.rule, e.device)
                   for e in self.sides[0][2].trace]
        trace_b = [(e.time, e.kind, e.rule, e.device)
                   for e in self.sides[1][2].trace]
        assert trace_a == trace_b


# -- shared-network pair -------------------------------------------------------


@pytest.mark.parametrize("seed", (20260730, 11, 42))
def test_shared_network_stream_equivalence(seed):
    rng = random.Random(seed)
    twin = AblationTwin({"shared": True}, {"shared": False}, build_rules)
    twin.check("initial")
    for step in range(240):
        op = rng.random()
        if op < 0.45:
            twin.ingest(rng.choice(NUMERIC_VARS), rng.choice(VALUE_GRID))
        elif op < 0.60:
            person = rng.choice(PEOPLE)
            twin.ingest(f"person:{person}:place", rng.choice(ROOMS))
        elif op < 0.68:
            members = frozenset(
                kw for kw in KEYWORDS if rng.random() < 0.4
            )
            twin.ingest("epg:guide:keywords", members)
        elif op < 0.74:
            twin.ingest("door:lock:locked", rng.choice(("true", "false")))
        elif op < 0.78:
            twin.ingest("hall:sensor:dark", rng.random() < 0.5)
        elif op < 0.86:
            twin.post_event(rng.choice(EVENTS), rng.choice(PEOPLE))
        else:
            twin.advance(rng.choice((30.0, 120.0, 660.0, 3_600.0)))
        if step == 70:
            twin.set_enabled("cool", False)
        if step == 110:
            twin.remove_rule("fan")
        if step == 130:
            twin.set_enabled("cool", True)
        if step == 150:
            twin.add_rule(churn_rule)
        twin.check(step)
    assert len(twin.sides[0][2].trace) > 0, "stream never fired a rule"
    twin.check_traces()


# -- wheel pair ----------------------------------------------------------------


def build_window_rules() -> list:
    """A window-heavy household: boundaries off the tick grid, midnight
    wraps, weekday restrictions, shared windows, durations and untils
    over windows."""
    def window_rule(name, start, end, weekday=None, person="Tom",
                    device=None):
        return Rule(
            name=name, owner=person,
            condition=AndCondition([
                TimeWindowAtom(start, end, weekday=weekday),
                place(person, "living room"),
            ]),
            action=act(device or f"{name}-dev"),
        )

    rules = [
        # Boundaries that fall mid-tick (ticks land on whole minutes).
        window_rule("offgrid", hhmm(17, 0, 30), hhmm(18, 30, 15)),
        # Midnight-wrapping "at night" window.
        window_rule("night", hhmm(21), hhmm(6), person="Alan"),
        # Weekday-restricted window (weekday flips at midnight).
        window_rule("sunday", hhmm(11), hhmm(14), weekday=6,
                    person="Emily"),
        # Two rules sharing one window atom (wheel dedup path).
        window_rule("shared-a", hhmm(7), hhmm(8)),
        window_rule("shared-b", hhmm(7), hhmm(8), person="Alan"),
        # Bare window, no static conjunct: fires on the boundary alone.
        Rule(name="lone-window", owner="Tom",
             condition=TimeWindowAtom(hhmm(12, 15), hhmm(12, 45)),
             action=act("lone-dev"),
             stop_action=act("lone-dev", "Off")),
        # Window inside a duration atom (stateful plan woken via wheel).
        Rule(name="held-evening", owner="Emily",
             condition=DurationAtom(
                 AndCondition([TimeWindowAtom(hhmm(19), hhmm(23)),
                               place("Emily", "kitchen")]),
                 900.0),
             action=act("held-dev")),
        # Clock-reading until: stop checked every tick while holding.
        Rule(name="until-window", owner="Tom",
             condition=num(TEMP, Relation.GT, 26.0),
             action=act("until-dev"),
             until=TimeWindowAtom(hhmm(22), hhmm(23)),
             stop_action=act("until-dev", "Off")),
        # Disjunction of two windows sharing static structure.
        Rule(name="either-window", owner="Alan",
             condition=OrCondition([
                 AndCondition([TimeWindowAtom(hhmm(6), hhmm(9)),
                               place("Alan", "kitchen")]),
                 AndCondition([TimeWindowAtom(hhmm(17), hhmm(21)),
                               place("Alan", "kitchen")]),
             ]),
             action=act("either-dev")),
        # Contested device so arbitration paths run under the wheel.
        Rule(name="tv-evening", owner="Tom",
             condition=TimeWindowAtom(hhmm(18), hhmm(22)),
             action=act("tv-1", "ShowJazz")),
        Rule(name="tv-emily", owner="Emily",
             condition=place("Emily", "living room"),
             action=act("tv-1", "ShowMovie"),
             fallback=act("recorder-1", "Record")),
    ]
    return rules


def churn_window_rule() -> Rule:
    return Rule(
        name="late-window", owner="Tom",
        condition=AndCondition([TimeWindowAtom(hhmm(10, 30), hhmm(11, 45)),
                                DiscreteAtom("hall:sensor:dark", "false")]),
        action=act("late-dev"),
    )


@pytest.mark.parametrize("seed", (20260730, 13, 99))
@pytest.mark.parametrize("ablation", (
    {"wheel": False},
    {"wheel": False, "shared": False},
))
def test_wheel_stream_equivalence(seed, ablation):
    rng = random.Random(seed)
    twin = AblationTwin({}, ablation, build_window_rules)
    twin.check("initial")
    for step in range(220):
        op = rng.random()
        if op < 0.50:
            # Mostly advance time: ticks are the behaviour under test.
            twin.advance(rng.choice(
                (60.0, 60.0, 300.0, 1_800.0, 7_200.0, 25_200.0)))
        elif op < 0.70:
            person = rng.choice(PEOPLE)
            twin.ingest(f"person:{person}:place", rng.choice(ROOMS))
        elif op < 0.85:
            twin.ingest(TEMP, rng.choice(VALUE_GRID))
        else:
            twin.ingest("hall:sensor:dark",
                        rng.choice(("true", "false")))
        if step == 60:
            twin.remove_rule("night")       # removed while scheduled
        if step == 90:
            twin.set_enabled("offgrid", False)
        if step == 120:
            twin.add_rule(churn_window_rule)
        if step == 140:
            twin.set_enabled("offgrid", True)
        if step == 170:
            twin.remove_rule("late-window")
        twin.check(step)
    # The stream must cross enough days to exercise weekday roll-overs.
    assert twin.now > 2 * SECONDS_PER_DAY
    assert len(twin.sides[0][2].trace) > 0, "stream never fired a rule"
    twin.check_traces()
