"""Shared builders for core-layer tests (no UPnP involved)."""

import pytest

from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    DiscreteAtom,
    MembershipAtom,
    NumericAtom,
    TimeWindowAtom,
)
from repro.core.rule import Rule
from repro.sim.clock import hhmm
from repro.solver.linear import LinearConstraint, LinearExpr, Relation


def numeric_atom(variable: str, relation: Relation, bound: float,
                 text: str = "") -> NumericAtom:
    return NumericAtom(
        LinearConstraint.make(LinearExpr.var(variable), relation, bound),
        text=text,
    )


def temp_above(threshold: float, variable: str = "thermo:t:temperature"):
    return numeric_atom(variable, Relation.GT, threshold,
                        text=f"temperature is higher than {threshold:g} degrees")


def humid_above(threshold: float, variable: str = "hygro:h:humidity"):
    return numeric_atom(variable, Relation.GT, threshold,
                        text=f"humidity is over {threshold:g} percent")


def in_room(person: str, room: str = "living room") -> DiscreteAtom:
    return DiscreteAtom(f"person:{person}:place", room,
                        text=f"{person} is at the {room}")


def on_air(keyword: str) -> MembershipAtom:
    return MembershipAtom("epg:guide:keywords", keyword,
                          text=f"a {keyword} is on air")


def evening() -> TimeWindowAtom:
    return TimeWindowAtom(hhmm(17), hhmm(21), label="in evening")


def action(device: str = "tv-1", name: str = "TV", service: str = "power",
           act: str = "TurnOn", **settings) -> ActionSpec:
    return ActionSpec(
        device_udn=device,
        device_name=name,
        service_id=service,
        action_name=act,
        settings=tuple(Setting(k, v) for k, v in sorted(settings.items())),
        verb_text="turn on",
    )


def make_rule(name: str, owner: str, condition, act: ActionSpec,
              fallback: ActionSpec | None = None, until=None,
              stop_action: ActionSpec | None = None) -> Rule:
    return Rule(
        name=name,
        owner=owner,
        condition=condition,
        action=act,
        fallback=fallback,
        until=until,
        stop_action=stop_action,
    )


class FakeContext:
    """A hand-rolled EvaluationContext for condition unit tests."""

    def __init__(self, numeric=None, discrete=None, sets=None, tod=0.0,
                 weekday=0, events=(), held_keys=()):
        self._numeric = dict(numeric or {})
        self._discrete = dict(discrete or {})
        self._sets = {k: frozenset(v) for k, v in (sets or {}).items()}
        self._tod = tod
        self._weekday = weekday
        self._events = set(events)
        self._held_keys = set(held_keys)

    def numeric(self, variable):
        return self._numeric.get(variable)

    def discrete(self, variable):
        return self._discrete.get(variable)

    def set_members(self, variable):
        return self._sets.get(variable, frozenset())

    def time_of_day(self):
        return self._tod

    def weekday(self):
        return self._weekday

    def event_fired(self, event_type, subject):
        for fired_type, fired_subject in self._events:
            if fired_type == event_type and (subject is None
                                             or subject == fired_subject):
                return True
        return False

    def held(self, key, currently_true, duration):
        return currently_true and key in self._held_keys
