"""Failure injection: devices that reject commands, lossy networks,
and engine robustness around them."""

import pytest

from repro.core.database import RuleDatabase
from repro.core.engine import RuleEngine, RuleState
from repro.core.priority import PriorityManager
from repro.errors import ActionError, UPnPError
from repro.sim.events import Simulator

from tests.core.conftest import action, in_room, make_rule, temp_above


class FlakyDispatchHarness:
    """Engine whose dispatcher fails on command for chosen devices."""

    def __init__(self):
        self.simulator = Simulator()
        self.database = RuleDatabase()
        self.priorities = PriorityManager()
        self.dispatched = []
        self.failing_devices: set[str] = set()
        self.engine = RuleEngine(
            self.database, self.priorities, self.simulator,
            dispatch=self._dispatch,
        )

    def _dispatch(self, spec):
        if spec.device_udn in self.failing_devices:
            raise ActionError(spec.device_name, spec.action_name,
                              "device offline")
        self.dispatched.append(spec)

    def add_rule(self, rule):
        self.database.add(rule)
        self.engine.rule_added(rule)
        return rule


class TestDispatchFailures:
    def test_failed_dispatch_does_not_crash_engine(self):
        harness = FlakyDispatchHarness()
        harness.failing_devices.add("tv-1")
        harness.add_rule(make_rule("r", "Tom", in_room("Tom"), action()))
        harness.engine.ingest("person:Tom:place", "living room")  # no raise
        errors = [e for e in harness.engine.trace if e.kind == "error"]
        assert len(errors) == 1
        assert "device offline" in errors[0].detail

    def test_other_rules_still_run_after_failure(self):
        harness = FlakyDispatchHarness()
        harness.failing_devices.add("tv-1")
        harness.add_rule(make_rule("bad", "Tom", in_room("Tom"), action()))
        harness.add_rule(
            make_rule("good", "Tom", in_room("Tom"),
                      action(device="lamp-1", act="TurnOn"))
        )
        harness.engine.ingest("person:Tom:place", "living room")
        assert [s.device_udn for s in harness.dispatched] == ["lamp-1"]

    def test_failed_stop_action_does_not_crash(self):
        harness = FlakyDispatchHarness()
        harness.add_rule(
            make_rule("r", "Tom", in_room("Tom"), action(),
                      stop_action=action(act="TurnOff"))
        )
        harness.engine.ingest("person:Tom:place", "living room")
        harness.failing_devices.add("tv-1")
        harness.engine.ingest("person:Tom:place", "kitchen")  # no raise
        assert harness.engine.rule_state("r") is RuleState.IDLE


class TestLossyNetworkDiscovery:
    def test_search_retries_recover_from_drops(self):
        """With a lossy bus, repeated searches eventually populate the
        registry — the control point treats search as idempotent."""
        from repro.net.bus import NetworkBus
        from repro.sim.events import Simulator
        from repro.upnp import ssdp
        from repro.upnp.control_point import ControlPoint
        from tests.upnp.conftest import make_lamp

        simulator = Simulator()
        bus = NetworkBus(simulator, drop_rate=0.4, seed=3)
        lamps = []
        for i in range(10):
            lamp = make_lamp(f"lamp-{i}")
            lamp.attach(bus, simulator)
            lamps.append(lamp)
        control_point = ControlPoint(bus, simulator, name="lossy-cp")
        for _ in range(12):
            try:
                control_point.search(ssdp.ST_ALL)
            except UPnPError:
                continue  # a description fetch timed out; retry
            if len(control_point.registry) == 10:
                break
        assert len(control_point.registry) == 10

    def test_invoke_on_offline_device_raises_cleanly(self):
        from repro.net.bus import NetworkBus
        from repro.sim.events import Simulator
        from repro.upnp import ssdp
        from repro.upnp.control_point import ControlPoint
        from tests.upnp.conftest import make_lamp

        simulator = Simulator()
        bus = NetworkBus(simulator)
        lamp = make_lamp("lamp")
        lamp.attach(bus, simulator)
        control_point = ControlPoint(bus, simulator, name="cp")
        control_point.search(ssdp.ST_ALL)
        lamp.detach()
        simulator.run_until(simulator.now + 1.0)
        # The registry evicted it via byebye; a stale record would also
        # time out — either way the caller sees a clean UPnPError.
        with pytest.raises(UPnPError):
            control_point.invoke(lamp.udn, "power", "TurnOn")
