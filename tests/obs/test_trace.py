"""Span recorder semantics: stage histograms, ring, clock, no-op twin."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.noop import NOOP_TELEMETRY
from repro.obs.trace import STAGES, SpanRecorder, Telemetry


def test_span_end_observes_stage_histogram_and_ring():
    registry = MetricsRegistry()
    recorder = SpanRecorder(registry)
    token = recorder.span_begin("batch", home="home-0001", size=None)
    elapsed = recorder.span_end(token, size=16)
    assert elapsed >= 0.0
    snapshot = registry.snapshot()
    assert snapshot["histograms"]["span.batch_ms"]["count"] == 1
    (record,) = recorder.recent()
    assert record.stage == "batch"
    assert record.home == "home-0001"
    assert record.size == 16       # end-time size overrides begin-time
    assert record.ms == elapsed
    assert "batch" in record.describe()


def test_ring_is_capped_and_oldest_first():
    recorder = SpanRecorder(MetricsRegistry(), max_spans=3)
    for index in range(5):
        recorder.span_end(recorder.span_begin("drain", size=index))
    records = recorder.recent()
    assert len(records) == 3
    assert [record.size for record in records] == [2, 3, 4]


def test_sim_clock_stamps_span_start():
    times = iter((120.0, 999.0))
    recorder = SpanRecorder(MetricsRegistry(), clock=lambda: next(times))
    recorder.span_end(recorder.span_begin("wheel"))
    assert recorder.recent()[0].at == 120.0  # stamped at begin, not end


def test_stage_taxonomy_is_the_documented_pipeline():
    assert STAGES == ("drain", "batch", "sweep", "fanout", "wheel", "action")


def test_telemetry_defaults():
    telemetry = Telemetry(shard=3)
    assert telemetry.enabled
    assert telemetry.shard == 3
    assert telemetry.spans.registry is telemetry.registry


def test_noop_telemetry_is_inert_and_disabled():
    assert not NOOP_TELEMETRY.enabled
    token = NOOP_TELEMETRY.spans.span_begin("batch", home="h", size=4)
    assert NOOP_TELEMETRY.spans.span_end(token, size=9) == 0.0
    assert NOOP_TELEMETRY.spans.recent() == []
    registry = NOOP_TELEMETRY.registry
    registry.counter("x").inc(5)
    registry.gauge("y").set(2.0)
    registry.histogram("z").observe(1.0)
    assert registry.counter("x").value == 0
    assert registry.histogram("z").percentile(0.5) is None
    assert registry.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {},
    }


def test_noop_module_imports_nothing():
    import repro.obs.noop as noop

    source = open(noop.__file__).read()
    body = [line for line in source.splitlines()
            if line.startswith(("import ", "from "))]
    assert body == ["from __future__ import annotations"]
