"""Registry instrument semantics, histogram edge cases, snapshot merge."""

import json
import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)


def test_counter_and_gauge_basics():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    gauge = Gauge()
    gauge.set(3.0)
    gauge.inc()
    gauge.dec(0.5)
    assert gauge.value == 3.5


def test_empty_histogram_percentiles_are_none():
    histogram = Histogram()
    assert histogram.percentile(0.5) is None
    assert histogram.percentile(0.99) is None
    assert histogram.mean is None
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 0
    assert snapshot["p50"] is None
    assert snapshot["p95"] is None
    assert snapshot["p99"] is None


def test_percentile_quantile_domain():
    histogram = Histogram()
    histogram.observe(1.0)
    with pytest.raises(ValueError):
        histogram.percentile(0.0)
    with pytest.raises(ValueError):
        histogram.percentile(1.5)
    assert histogram.percentile(1.0) is not None


def test_values_beyond_last_bound_land_in_overflow():
    histogram = Histogram(bounds=(1.0, 10.0))
    histogram.observe(5.0)
    histogram.observe(1e9)   # far past the last bound
    histogram.observe(math.inf)
    assert histogram.count == 3
    assert histogram.percentile(1 / 3) == 10.0   # the in-range sample
    assert histogram.percentile(0.5) == math.inf  # median is overflowed
    assert histogram.percentile(0.99) == math.inf
    snapshot = histogram.snapshot()
    # Cumulative buckets end with the +Inf bucket carrying the total.
    assert snapshot["buckets"][-1] == ["+Inf", 3]
    assert snapshot["p99"] == "+Inf"
    json.dumps(snapshot)  # strict JSON: no math.inf leaks


def test_percentile_is_bucket_upper_bound():
    histogram = Histogram(bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 1.7, 3.0):
        histogram.observe(value)
    assert histogram.percentile(0.25) == 1.0
    assert histogram.percentile(0.5) == 2.0
    assert histogram.percentile(1.0) == 4.0
    assert histogram.mean == pytest.approx((0.5 + 1.5 + 1.7 + 3.0) / 4)


def test_bounds_must_increase_strictly():
    with pytest.raises(ValueError):
        Histogram(bounds=(1.0, 1.0, 2.0))


def test_snapshot_after_reset_is_empty_and_instruments_stay_bound():
    registry = MetricsRegistry()
    counter = registry.counter("x.count")
    histogram = registry.histogram("x.ms")
    counter.inc(3)
    histogram.observe(1.0)
    registry.reset()
    snapshot = registry.snapshot()
    assert snapshot["counters"]["x.count"] == 0
    assert snapshot["histograms"]["x.ms"]["count"] == 0
    assert snapshot["histograms"]["x.ms"]["p50"] is None
    # The previously bound instruments must keep recording after reset.
    counter.inc()
    histogram.observe(2.0)
    assert registry.snapshot()["counters"]["x.count"] == 1
    assert registry.snapshot()["histograms"]["x.ms"]["count"] == 1


def test_registry_memoizes_by_name_and_labels():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.counter("a") is not registry.counter("b")
    assert registry.gauge("g", shard="0") is registry.gauge("g", shard="0")
    assert registry.gauge("g", shard="0") is not registry.gauge("g", shard="1")
    registry.gauge("g", shard="0").set(2.0)
    assert registry.snapshot()["gauges"]['g{shard="0"}'] == 2.0


def test_merge_snapshots_sums_and_rederives_percentiles():
    registries = [MetricsRegistry() for _ in range(3)]
    for index, registry in enumerate(registries):
        registry.counter("n").inc(index + 1)
        registry.gauge("depth").set(float(index))
        histogram = registry.histogram("ms", (1.0, 10.0, 100.0))
        for value in [0.5] * (index + 1) + [50.0]:
            histogram.observe(value)
    merged = merge_snapshots(r.snapshot() for r in registries)
    assert merged["counters"]["n"] == 6
    assert merged["gauges"]["depth"] == 3.0
    hist = merged["histograms"]["ms"]
    assert hist["count"] == 9          # (1+1) + (2+1) + (3+1)
    # 6 of 9 samples sit in the first bucket -> p50 is its bound.
    assert hist["p50"] == 1.0
    assert hist["p99"] == 100.0
    assert hist["buckets"][-1] == ["+Inf", 9]
    assert hist["sum"] == pytest.approx(6 * 0.5 + 3 * 50.0)


def test_merge_rejects_mismatched_bounds():
    first = MetricsRegistry()
    second = MetricsRegistry()
    first.histogram("ms", (1.0, 2.0)).observe(1.0)
    second.histogram("ms", (1.0, 3.0)).observe(1.0)
    with pytest.raises(ValueError):
        merge_snapshots([first.snapshot(), second.snapshot()])


def test_merge_of_empty_histograms_keeps_none_percentiles():
    first = MetricsRegistry()
    second = MetricsRegistry()
    first.histogram("ms")
    second.histogram("ms")
    merged = merge_snapshots([first.snapshot(), second.snapshot()])
    assert merged["histograms"]["ms"]["count"] == 0
    assert merged["histograms"]["ms"]["p95"] is None


def test_default_latency_bounds_cover_micro_to_ten_seconds():
    assert DEFAULT_LATENCY_BOUNDS_MS[0] == pytest.approx(0.001)
    assert DEFAULT_LATENCY_BOUNDS_MS[-1] == pytest.approx(10_000.0)
    assert all(
        later > earlier for earlier, later in
        zip(DEFAULT_LATENCY_BOUNDS_MS, DEFAULT_LATENCY_BOUNDS_MS[1:])
    )
