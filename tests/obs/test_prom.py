"""Prometheus text exposition: format shape and exact round-trips."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import metric_name, parse_prometheus, render_prometheus


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("bus.published").inc(42)
    registry.counter("bus.coalesced").inc(7)
    registry.gauge("bus.queue_depth", shard="2").set(3.0)
    histogram = registry.histogram("ingest.write_ms", (0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    return registry


def test_metric_name_sanitizes_and_extracts_labels():
    name, labels = metric_name('bus.queue_depth{shard="2"}')
    assert name == "repro_bus_queue_depth"
    assert labels == {"shard": "2"}
    assert metric_name("span.batch_ms") == ("repro_span_batch_ms", {})


def test_render_shape():
    text = render_prometheus(_populated_registry().snapshot())
    assert "# TYPE repro_bus_published_total counter" in text
    assert "repro_bus_published_total 42" in text
    assert 'repro_bus_queue_depth{shard="2"} 3' in text
    assert "# TYPE repro_ingest_write_ms histogram" in text
    assert 'repro_ingest_write_ms_bucket{le="+Inf"} 5' in text
    assert "repro_ingest_write_ms_count 5" in text


def test_round_trip_recovers_every_value():
    snapshot = _populated_registry().snapshot()
    samples = parse_prometheus(render_prometheus(snapshot))
    assert samples[("repro_bus_published_total", ())] == 42
    assert samples[("repro_bus_coalesced_total", ())] == 7
    assert samples[("repro_bus_queue_depth", (("shard", "2"),))] == 3.0
    # Histogram: cumulative buckets, sum, count all survive the text form.
    assert samples[("repro_ingest_write_ms_bucket", (("le", "0.1"),))] == 1
    assert samples[("repro_ingest_write_ms_bucket", (("le", "1"),))] == 3
    assert samples[("repro_ingest_write_ms_bucket", (("le", "10"),))] == 4
    assert samples[("repro_ingest_write_ms_bucket", (("le", "+Inf"),))] == 5
    assert samples[("repro_ingest_write_ms_count", ())] == 5
    assert samples[("repro_ingest_write_ms_sum", ())] == \
        pytest.approx(0.05 + 0.5 + 0.5 + 5.0 + 50.0)


def test_extra_labels_fold_into_every_sample():
    text = render_prometheus(
        _populated_registry().snapshot(), extra_labels={"shard": "0"}
    )
    samples = parse_prometheus(text)
    assert samples[("repro_bus_published_total", (("shard", "0"),))] == 42
    assert all("shard" in dict(labels) for _, labels in samples)


def test_parse_rejects_garbage_and_duplicates():
    with pytest.raises(ValueError):
        parse_prometheus("!!! not a sample\n")
    with pytest.raises(ValueError):
        parse_prometheus("repro_x_total 1\nrepro_x_total 2\n")


def test_parse_skips_comments_and_blanks():
    assert parse_prometheus("# HELP x\n# TYPE x counter\n\n") == {}
