"""Integration tests: the registration pipeline and live execution over
real UPnP devices (no mocks anywhere)."""

import pytest

from repro.core.priority import PriorityOrder
from repro.errors import InconsistentRuleError
from repro.sim.clock import hhmm


class TestRegistrationPipeline:
    def test_simple_rule_registers_and_fires(self, stack):
        stack.session("Tom").submit(
            "If temperature is higher than 28 degrees, turn on the electric "
            "fan",
            rule_name="fan-rule",
        )
        living = stack.home.environment.room("living room")
        living.temperature = 30.0
        stack.run_for(120.0)  # a physics tick publishes the reading
        assert stack.home.fan.is_on

    def test_inconsistent_rule_rejected(self, stack):
        with pytest.raises(InconsistentRuleError):
            stack.session("Tom").submit(
                "If temperature is higher than 28 degrees and temperature is "
                "lower than 20 degrees, turn on the electric fan"
            )

    def test_conflicting_registration_reports(self, stack):
        stack.session("Alan").submit(
            "If temperature is higher than 25 degrees, turn on the air "
            "conditioner with 24 degrees of temperature setting",
            rule_name="alan-ac",
        )
        outcome = stack.session("Tom").submit(
            "If temperature is higher than 26 degrees, turn on the air "
            "conditioner with 25 degrees of temperature setting",
            rule_name="tom-ac",
        )
        assert len(outcome.conflicts) == 1
        assert outcome.conflicts[0].existing_rule == "alan-ac"
        assert stack.server.conflict_log

    def test_identical_actions_do_not_conflict(self, stack):
        stack.session("Alan").submit(
            "If temperature is higher than 25 degrees, turn on the electric "
            "fan",
            rule_name="alan-fan",
        )
        outcome = stack.session("Tom").submit(
            "If temperature is higher than 26 degrees, turn on the electric "
            "fan",
            rule_name="tom-fan",
        )
        assert outcome.conflicts == []

    def test_conflict_policy_invoked_once_per_uncovered_device(self):
        from tests.integration.conftest import Stack

        asked = []

        stack = Stack()
        stack.server.conflict_policy = lambda rule, reports: asked.append(
            (rule.name, [r.device_name for r in reports])
        ) or None
        stack.session("Alan").submit(
            "If temperature is higher than 25 degrees, turn on the air "
            "conditioner with 24 degrees of temperature setting",
            rule_name="alan-ac",
        )
        stack.session("Tom").submit(
            "If temperature is higher than 26 degrees, turn on the air "
            "conditioner with 25 degrees of temperature setting",
            rule_name="tom-ac",
        )
        assert asked == [("tom-ac", ["air conditioner"])]

    def test_rule_removal_stops_execution(self, stack):
        stack.session("Tom").submit(
            "If temperature is higher than 28 degrees, turn on the electric "
            "fan",
            rule_name="fan-rule",
        )
        stack.server.remove_rule("fan-rule")
        living = stack.home.environment.room("living room")
        living.temperature = 30.0
        stack.run_for(120.0)
        assert not stack.home.fan.is_on


class TestLiveExecution:
    def test_hall_light_on_return_when_dark(self, stack):
        stack.session("Tom").submit(
            "After evening, if someone returns home and the hall is dark, "
            "turn on the light at the hall",
            rule_name="hall-rule",
        )
        stack.simulator.run_until(hhmm(19))  # dark hall, evening
        stack.home.household.arrive_home("Tom", "work", "hall")
        assert stack.home.hall_light.is_on

    def test_hall_light_not_on_in_morning(self, stack):
        stack.session("Tom").submit(
            "After evening, if someone returns home and the hall is dark, "
            "turn on the light at the hall",
            rule_name="hall-rule",
        )
        stack.simulator.run_until(hhmm(9))
        stack.home.household.arrive_home("Tom", "errand", "hall")
        assert not stack.home.hall_light.is_on

    def test_alarm_after_door_unlocked_one_hour(self, stack):
        stack.session("Alan").submit(
            "At night, if entrance door is unlocked for 1 hour, turn on the "
            "alarm",
            rule_name="alarm-rule",
        )
        stack.simulator.run_until(hhmm(22))
        stack.home.door.service("lock").invoke("Unlock")
        stack.run_for(3700.0)
        assert stack.home.alarm.is_on

    def test_alarm_not_triggered_if_relocked(self, stack):
        stack.session("Alan").submit(
            "At night, if entrance door is unlocked for 1 hour, turn on the "
            "alarm",
            rule_name="alarm-rule",
        )
        stack.simulator.run_until(hhmm(22))
        stack.home.door.service("lock").invoke("Unlock")
        stack.run_for(1800.0)
        stack.home.door.service("lock").invoke("Lock")
        stack.run_for(3700.0)
        assert not stack.home.alarm.is_on

    def test_until_postcondition_stops_device(self, stack):
        stack.session("Tom").submit(
            "If someone is at the living room, turn on the floor lamp "
            "until 23:00",
            rule_name="lamp-curfew",
        )
        stack.simulator.run_until(hhmm(22))
        stack.home.household.arrive_home("Tom", "work", "living room")
        stack.run_for(120.0)
        assert stack.home.floor_lamp.is_on
        stack.simulator.run_until(hhmm(23, 2))
        assert not stack.home.floor_lamp.is_on

    def test_aircon_feedback_loop_cools_room(self, stack):
        stack.session("Tom").submit(
            "If temperature is higher than 28 degrees, turn on the air "
            "conditioner with 24 degrees of temperature setting",
            rule_name="cooling",
        )
        living = stack.home.environment.room("living room")
        living.temperature = 32.0
        stack.run_for(4 * 3600.0)
        assert stack.home.aircon.is_on
        assert living.temperature < 30.0  # feedback loop engaged

    def test_epg_keyword_triggers_tv(self, stack):
        from repro.home.sensors.epg import Program

        stack.home.epg.schedule(Program(
            title="cup final", channel=5,
            start=stack.simulator.now + 600.0,
            end=stack.simulator.now + 4200.0,
            keywords=("soccer",),
        ))
        stack.session("Alan").submit(
            "If I am in the living room and a soccer is on air, turn on the "
            "TV with 5 of channel setting",
            rule_name="soccer-rule",
        )
        stack.home.household.arrive_home("Alan", "work", "living room")
        assert not stack.home.tv.is_on
        stack.run_for(700.0)
        assert stack.home.tv.is_on
        assert stack.home.tv.channel == 5.0

    def test_tv_released_when_program_ends(self, stack):
        from repro.home.sensors.epg import Program

        stack.home.epg.schedule(Program(
            title="cup final", channel=5,
            start=stack.simulator.now + 60.0,
            end=stack.simulator.now + 600.0,
            keywords=("soccer",),
        ))
        stack.session("Alan").submit(
            "If I am in the living room and a soccer is on air, turn on the "
            "TV with 5 of channel setting",
            rule_name="soccer-rule",
        )
        stack.home.household.arrive_home("Alan", "work", "living room")
        stack.run_for(120.0)
        assert stack.server.engine.holder_of(stack.home.tv.udn) is not None
        stack.run_for(600.0)
        assert stack.server.engine.holder_of(stack.home.tv.udn) is None


class TestRuntimeArbitration:
    def test_priority_preemption_over_upnp(self, stack):
        stack.session("Tom").submit(
            "If I am in the living room, play the stereo with jazz of genre "
            "setting",
            rule_name="tom-jazz",
        )
        stack.session("Emily").submit(
            "If I am in the living room, play the stereo with classical of "
            "genre setting",
            rule_name="emily-classical",
        )
        stack.session("Emily").set_priority("stereo", ["Emily", "Tom"])
        stack.home.household.arrive_home("Tom", "school", "living room")
        stack.run_for(30.0)
        assert stack.home.stereo.get_state("player", "genre") == "jazz"
        stack.home.household.arrive_home("Emily", "shopping", "living room")
        stack.run_for(30.0)
        assert stack.home.stereo.get_state("player", "genre") == "classical"

    def test_context_scoped_priority_over_upnp(self, stack):
        stack.session("Tom").submit(
            "If I am in the living room, play the stereo with jazz of genre "
            "setting",
            rule_name="tom-jazz",
        )
        stack.session("Alan").submit(
            "If I am in the living room, play the stereo with opera of genre "
            "setting",
            rule_name="alan-opera",
        )
        stack.session("Alan").set_priority(
            "stereo", ["Alan", "Tom"], context="alan got home from work"
        )
        stack.home.household.arrive_home("Tom", "school", "living room")
        stack.run_for(30.0)
        # Alan arrives from SHOPPING: his work-context priority won't apply,
        # and with no applicable order the incumbent keeps the device.
        stack.home.household.arrive_home("Alan", "shopping", "living room")
        stack.run_for(30.0)
        assert stack.home.stereo.get_state("player", "genre") == "jazz"
