"""Integration-test fixtures (the Stack itself lives in tests/stack.py
so support- and core-level tests can reuse it through the repository
conftest)."""

from tests.stack import Stack

__all__ = ["Stack"]
