"""Integration tests for lookup, guidance and rule import/export."""

import pytest

from repro.errors import LookupServiceError
from repro.support.exchange import RuleExporter, RuleImporter, RulePackage
from repro.support.guidance import GuidanceService
from repro.support.lookup import LookupQuery, LookupService


class TestLookupService:
    @pytest.fixture
    def lookup(self, stack):
        session = stack.session("Tom")
        session.submit(
            "Let's call the condition that temperature is higher than 28 "
            "degrees and humidity is over 60 percent hot and stuffy"
        )
        return LookupService(stack.server.control_point.registry,
                             words=session.words)

    def test_lookup_by_name(self, stack, lookup):
        records = lookup.search(LookupQuery(name="thermometer"))
        assert [r.friendly_name for r in records] == ["thermometer"]

    def test_lookup_by_location(self, stack, lookup):
        records = lookup.search(LookupQuery(location="living room"))
        assert len(records) >= 8  # appliances + sensors of the living room

    def test_lookup_by_keyword(self, stack, lookup):
        records = lookup.search(LookupQuery(keyword="light"))
        names = {r.friendly_name for r in records}
        assert "floor lamp" in names
        assert "fluorescent light" in names

    def test_lookup_by_sensor_type_includes_appliances(self, stack, lookup):
        # Paper: "the air-conditioner, the temperature meter and so on can
        # be retrieved by specifying temperature as the sensor type".
        records = lookup.search(LookupQuery(sensor_type="temperature"))
        names = {r.friendly_name for r in records}
        assert "thermometer" in names
        assert "air conditioner" in names

    def test_lookup_by_action(self, stack, lookup):
        records = lookup.search(LookupQuery(action="Record"))
        assert [r.friendly_name for r in records] == ["video recorder"]

    def test_conjunctive_query(self, stack, lookup):
        records = lookup.search(
            LookupQuery(keyword="light", location="hall",
                        category="appliance")
        )
        assert [r.friendly_name for r in records] == ["hall light"]

    def test_lookup_by_user_word(self, stack, lookup):
        # Paper: "sensors which can measure temperature and humidity can be
        # retrieved by the word 'hot and stuffy'".
        records = lookup.by_word("hot and stuffy")
        names = {r.friendly_name for r in records}
        assert "thermometer" in names
        assert "hygrometer" in names

    def test_unknown_word_raises(self, stack, lookup):
        with pytest.raises(LookupServiceError):
            lookup.by_word("unknown word")

    def test_reverse_lookup_words_for_device(self, stack, lookup):
        thermometer = stack.server.control_point.registry.by_name(
            "thermometer")[0]
        assert "hot and stuffy" in lookup.words_for_device(thermometer)

    def test_empty_query_returns_all(self, stack, lookup):
        assert len(lookup.search(LookupQuery())) == len(
            stack.server.control_point.registry.all()
        )


class TestGuidanceService:
    def test_allowed_actions(self, stack):
        guidance = GuidanceService(stack.server.engine)
        record = stack.server.control_point.registry.by_name(
            "air conditioner")[0]
        actions = {a.name for a in guidance.allowed_actions(record)}
        assert actions == {"TurnOn", "TurnOff"}

    def test_configuration_parameters(self, stack):
        guidance = GuidanceService(stack.server.engine)
        record = stack.server.control_point.registry.by_name(
            "air conditioner")[0]
        params = guidance.configuration_parameters(record)
        assert set(params["TurnOn"]) == {"temperature", "humidity", "mode"}

    def test_current_readings_reflect_world(self, stack):
        guidance = GuidanceService(stack.server.engine)
        stack.run_for(120.0)  # let a physics tick publish
        record = stack.server.control_point.registry.by_name("thermometer")[0]
        readings = guidance.current_readings(record)
        temp = next(r for r in readings if r.variable == "temperature")
        assert isinstance(temp.value, float)
        assert temp.unit == "celsius"


class TestRuleExchange:
    def test_export_import_round_trip(self, stack):
        tom = stack.session("Tom")
        tom.submit(
            "Let's call the condition that temperature is higher than 26 "
            "degrees and humidity is over 65 percent hot and stuffy"
        )
        tom.submit(
            'If the living room is "hot and stuffy", turn on the electric fan',
            rule_name="tom-fan",
        )
        package = RuleExporter(tom).export_owner()
        text = package.to_json()

        # Emily imports Tom's package into her own session.
        emily = stack.session("Emily")
        results = RuleImporter(emily).import_package(
            RulePackage.from_json(text)
        )
        assert len(results) == 1
        imported = results[0].rule
        assert imported.owner == "Emily"
        assert imported.name != "tom-fan"  # fresh name, Emily's rule
        assert emily.words.has_condition("hot and stuffy")

    def test_import_words_only(self, stack):
        tom = stack.session("Tom")
        tom.submit(
            'Let\'s call the configuration that 50 percent of level setting '
            '"half-lighting"'
        )
        package = RuleExporter(tom).export_rules([])
        alan = stack.session("Alan")
        RuleImporter(alan).import_package(package, register_rules=False)
        assert alan.words.has_configuration("half-lighting")

    def test_bad_format_rejected(self):
        import json

        import pytest as _pytest

        from repro.errors import RuleError

        with _pytest.raises(RuleError, match="format"):
            RulePackage.from_json(json.dumps({"format": "bogus/9"}))

    def test_customization_before_registration(self, stack):
        """The paper's workflow: import, tweak, register."""
        tom = stack.session("Tom")
        tom.submit(
            "If temperature is higher than 28 degrees, turn on the electric "
            "fan",
            rule_name="tom-fan",
        )
        package = RuleExporter(tom).export_owner()
        customized = package.rules[0].replace("28", "30")
        alan = stack.session("Alan")
        outcome = alan.submit(customized, rule_name="alan-fan")
        assert outcome.rule.owner == "Alan"
        assert "30" in outcome.rule.source_text
