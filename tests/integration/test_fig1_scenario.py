"""The paper's Fig. 1 control scenario, asserted snapshot by snapshot.

The expected ownership sequence is read straight off the published
time-chart: stereo s1 → s'1 → s3, TV t2 → t3, recorder r2 from *3,
room light l1 then l3, air-conditioner a1 → a2 → a3.
"""

import pytest

from repro.scenarios import run_fig1_scenario


@pytest.fixture(scope="module")
def result():
    return run_fig1_scenario()


class TestRegistrationPhase:
    def test_all_rules_registered(self, result):
        names = {rule.name for rule in result.server.database.all_rules()}
        assert {
            "tom-s1-jazz-speakers", "tom-s1p-jazz-headphones",
            "tom-l1-half-lighting", "tom-a1-aircon",
            "alan-t2-baseball", "alan-a2-aircon",
            "emily-t3-movie", "emily-s3-movie-sound", "emily-l3-bright",
            "emily-a3-aircon",
        } <= names

    def test_conflicts_detected_at_registration(self, result):
        text = "\n".join(result.registration_conflicts)
        # The TV is contested between Emily and Alan...
        assert "emily-t3-movie" in text and "alan-t2-baseball" in text
        # ...the stereo between Emily and Tom...
        assert "emily-s3-movie-sound" in text
        # ...and the air-conditioner among all three.
        assert "alan-a2-aircon" in text and "emily-a3-aircon" in text


class TestTimeChart:
    def test_tom_alone_s1_l1_a1(self, result):
        snap = result.snapshots["17:10 Tom home"]
        assert snap.stereo_holder == "tom-s1-jazz-speakers"
        assert snap.stereo_output == "speakers"
        assert snap.tv_holder is None
        assert snap.floor_lamp_level == 50.0       # half-lighting (l1)
        assert snap.aircon_holder == "tom-a1-aircon"
        assert snap.aircon_target == 25.0

    def test_game_on_air_before_alan_nothing_changes(self, result):
        snap = result.snapshots["17:35 game on air"]
        assert snap.tv_holder is None              # Alan isn't home yet
        assert snap.stereo_holder == "tom-s1-jazz-speakers"

    def test_alan_home_t2_s1p_a2(self, result):
        snap = result.snapshots["17:45 Alan home"]
        assert snap.tv_holder == "alan-t2-baseball"       # t2
        assert snap.tv_on and snap.tv_channel == 4.0
        assert snap.stereo_holder == "tom-s1p-jazz-headphones"  # s'1
        assert snap.stereo_output == "headphones"
        assert snap.aircon_holder == "alan-a2-aircon"     # a2
        assert snap.aircon_target == 24.0
        assert snap.recorder_holder is None

    def test_emily_home_t3_s3_r2_l3_a3(self, result):
        snap = result.snapshots["18:32 Emily home"]
        assert snap.tv_holder == "emily-t3-movie"         # t3 preempts t2
        assert snap.tv_channel == 7.0
        assert snap.stereo_holder == "emily-s3-movie-sound"  # s3
        assert snap.stereo_source == "tv sound"
        assert snap.recorder_holder == "alan-t2-baseball"  # r2 fallback
        assert snap.recording
        assert snap.fluorescent_on                         # l3
        assert snap.aircon_holder == "emily-a3-aircon"     # a3
        assert snap.aircon_target == 27.0

    def test_evening_end_recorder_released_after_game(self, result):
        snap = result.snapshots["20:00 evening ends"]
        assert snap.tv_holder == "emily-t3-movie"   # movie runs to 20:30
        assert snap.recorder_holder is None         # game ended 19:30

    def test_aircon_ownership_sequence_a1_a2_a3(self, result):
        fires = [
            entry.rule for entry in result.trace
            if entry.kind == "fire" and entry.rule.endswith("-aircon")
        ]
        # First-appearance order must be a1, a2, a3 (the chart's row).
        first_seen = list(dict.fromkeys(fires))
        assert first_seen[:3] == [
            "tom-a1-aircon", "alan-a2-aircon", "emily-a3-aircon"
        ]

    def test_preemptions_recorded_in_trace(self, result):
        preempts = [e for e in result.trace if e.kind == "preempt"]
        preempted = {e.rule for e in preempts}
        assert "alan-t2-baseball" in preempted   # Emily takes the TV
        assert "tom-s1-jazz-speakers" in preempted or \
            "tom-s1p-jazz-headphones" in preempted

    def test_fallback_recorded_in_trace(self, result):
        fallbacks = [e for e in result.trace if e.kind == "fallback"]
        assert any(e.rule == "alan-t2-baseball" for e in fallbacks)

    def test_timeline_rows_render(self, result):
        rows = result.timeline_rows()
        assert len(rows) == 6
        assert all("TV=" in row for row in rows)
