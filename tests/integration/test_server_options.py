"""The engine tuning knobs exposed through the public HomeServer API:
``max_trace`` (ring-buffer cap) and ``incremental`` (evaluation
strategy), plus the public ``ingest`` feed they plumb into."""

import pytest

from repro.core.action import ActionSpec, Setting
from repro.core.condition import NumericAtom
from repro.core.engine import RuleState
from repro.core.rule import Rule
from repro.core.server import HomeServer
from repro.errors import RuleError
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

TEMP = "thermo:svc:temperature"


def hot_rule():
    return Rule(
        name="hot", owner="Tom",
        condition=NumericAtom(
            LinearConstraint.make(LinearExpr.var(TEMP), Relation.GT, 26.0)
        ),
        action=ActionSpec(
            device_udn="aircon-1", device_name="aircon", service_id="svc",
            action_name="On", settings=(Setting("level", 1),),
        ),
    )


def build_server(**kwargs):
    simulator = Simulator()
    server = HomeServer(simulator, NetworkBus(simulator), **kwargs)
    server.engine.dispatch = lambda spec: None  # no physical devices here
    return server


class TestMaxTrace:
    def test_cap_reaches_the_engine_ring(self):
        server = build_server(max_trace=5)
        assert server.engine.trace.maxlen == 5

    def test_trace_is_capped_through_public_api(self):
        server = build_server(max_trace=4)
        server.register_rule(hot_rule())
        for step in range(20):
            server.ingest(TEMP, 30.0 if step % 2 == 0 else 20.0)
        assert len(server.trace()) == 4

    def test_unbounded_trace_opt_in(self):
        server = build_server(max_trace=None)
        assert server.engine.trace.maxlen is None

    def test_invalid_cap_rejected(self):
        with pytest.raises(RuleError, match="max_trace"):
            build_server(max_trace=0)


class TestIncrementalFlag:
    @pytest.mark.parametrize("incremental", (True, False))
    def test_both_strategies_serve_the_same_api(self, incremental):
        server = build_server(incremental=incremental)
        assert server.engine.incremental is incremental
        server.register_rule(hot_rule())
        server.ingest(TEMP, 30.0)
        assert server.engine.rule_truth("hot") is True
        assert server.engine.rule_state("hot") is RuleState.ACTIVE
        server.ingest(TEMP, 20.0)
        assert server.engine.rule_truth("hot") is False
        server.shutdown()
