"""Rules whose only trigger is the passage of time: the server's clock
tick must fire window edges without any sensor traffic, across days and
weekday restrictions."""

import pytest

from repro.sim.clock import SECONDS_PER_DAY, hhmm


class TestClockDrivenWindows:
    def test_window_opens_with_no_sensor_events(self, stack):
        """Nobody moves, nothing changes — only the clock."""
        stack.home.household.arrive_home("Tom", "work", "living room")
        stack.session("Tom").submit(
            "After 18:00, if I am in the living room, turn on the floor "
            "lamp",
            rule_name="evening-lamp",
        )
        stack.simulator.run_until(hhmm(17, 59))
        assert not stack.home.floor_lamp.is_on
        stack.simulator.run_until(hhmm(18, 2))
        assert stack.home.floor_lamp.is_on

    def test_window_closes_and_reopens_next_day(self, stack):
        stack.home.household.arrive_home("Tom", "work", "living room")
        stack.session("Tom").submit(
            "After 18:00, if I am in the living room, turn on the floor "
            "lamp",
            rule_name="evening-lamp",
        )
        stack.simulator.run_until(hhmm(19))
        assert stack.home.floor_lamp.is_on
        # Past midnight the "after 18:00" window closes; the rule's
        # condition falls and the claim is released (the lamp itself
        # keeps its last state — there is no stop action).
        stack.simulator.run_until(SECONDS_PER_DAY + hhmm(1))
        assert stack.server.engine.holder_of(stack.home.floor_lamp.udn) is None
        # It fires again the next evening (a fresh rising edge).
        before = len([e for e in stack.server.engine.trace
                      if e.kind == "fire"])
        stack.simulator.run_until(SECONDS_PER_DAY + hhmm(18, 2))
        after = len([e for e in stack.server.engine.trace
                     if e.kind == "fire"])
        assert after == before + 1

    def test_weekday_restricted_rule(self, stack):
        """'at every sunday' fires on Sunday (day 6), not Monday (day 0)."""
        stack.home.household.arrive_home("Tom", "work", "living room")
        stack.session("Tom").submit(
            "At every sunday, if I am in the living room, turn on the "
            "electric fan",
            rule_name="sunday-fan",
        )
        # Day 0 is a Monday; nothing all week until Sunday.
        stack.simulator.run_until(5 * SECONDS_PER_DAY + hhmm(12))
        assert not stack.home.fan.is_on  # Saturday noon
        stack.simulator.run_until(6 * SECONDS_PER_DAY + hhmm(0, 2))
        assert stack.home.fan.is_on      # Sunday just after midnight

    def test_night_window_wraps_midnight(self, stack):
        # Arrive mid-morning: the wrapped night window [21:00, 06:00) is
        # inactive (at t=0 it would already be "night").
        stack.simulator.run_until(hhmm(9))
        stack.home.household.arrive_home("Tom", "work", "living room")
        stack.session("Tom").submit(
            "At night, if I am in the living room, turn on the floor lamp",
            rule_name="night-lamp",
        )
        stack.simulator.run_until(hhmm(20))
        assert not stack.home.floor_lamp.is_on   # 20:00 is before night
        stack.simulator.run_until(hhmm(21, 2))
        assert stack.home.floor_lamp.is_on       # 21:00 night begins
        # Still within the wrapped window at 03:00 the next day.
        stack.simulator.run_until(SECONDS_PER_DAY + hhmm(3))
        assert stack.server.engine.rule_truth("night-lamp")

    def test_wrapped_window_active_at_simulation_start(self, stack):
        """Midnight lies inside [21:00, 06:00): a night rule registered
        at t=0 with its other conjuncts true fires immediately."""
        stack.home.household.arrive_home("Tom", "work", "living room")
        stack.session("Tom").submit(
            "At night, if I am in the living room, turn on the floor lamp",
            rule_name="night-lamp",
        )
        stack.run_for(1.0)
        assert stack.home.floor_lamp.is_on
        # The claim is released when night ends at 06:00.
        stack.simulator.run_until(hhmm(6, 2))
        assert stack.server.engine.holder_of(stack.home.floor_lamp.udn) is None
