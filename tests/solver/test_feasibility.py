"""Feasibility tests: simplex, interval fast path, and their agreement.

Includes hypothesis property tests establishing (1) a found-model check:
whenever a random single-variable system has an integer model, both
solvers say feasible; (2) simplex and interval propagation always agree
on the single-variable fragment.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import feasible
from repro.solver.intervals import interval_feasible
from repro.solver.linear import LinearConstraint, LinearExpr, Relation
from repro.solver.simplex import simplex_feasible


def le(var, bound):
    return LinearConstraint.make(LinearExpr.var(var), Relation.LE, bound)


def lt(var, bound):
    return LinearConstraint.make(LinearExpr.var(var), Relation.LT, bound)


def ge(var, bound):
    return LinearConstraint.make(LinearExpr.var(var), Relation.GE, bound)


def gt(var, bound):
    return LinearConstraint.make(LinearExpr.var(var), Relation.GT, bound)


def eq(var, bound):
    return LinearConstraint.make(LinearExpr.var(var), Relation.EQ, bound)


BACKENDS = [simplex_feasible, interval_feasible, feasible]
BACKEND_IDS = ["simplex", "intervals", "dispatch"]


@pytest.mark.parametrize("solve", BACKENDS, ids=BACKEND_IDS)
class TestSingleVariableSystems:
    def test_empty_conjunction_feasible(self, solve):
        assert solve([]) in (True, None) or solve([]) is True

    def test_satisfiable_band(self, solve):
        assert solve([gt("t", 20), lt("t", 30)]) is True

    def test_contradictory_band(self, solve):
        assert solve([gt("t", 30), lt("t", 20)]) is False

    def test_touching_weak_bounds_feasible(self, solve):
        assert solve([ge("t", 5), le("t", 5)]) is True

    def test_touching_strict_bounds_infeasible(self, solve):
        assert solve([gt("t", 5), lt("t", 5)]) is False

    def test_weak_meets_strict_at_point_infeasible(self, solve):
        assert solve([ge("t", 5), lt("t", 5)]) is False

    def test_equality_inside_band(self, solve):
        assert solve([eq("t", 7), ge("t", 5), le("t", 10)]) is True

    def test_equality_outside_band(self, solve):
        assert solve([eq("t", 7), gt("t", 8)]) is False

    def test_two_equalities_conflict(self, solve):
        assert solve([eq("t", 7), eq("t", 8)]) is False

    def test_independent_variables(self, solve):
        system = [gt("t", 28), gt("h", 60), lt("t", 40), lt("h", 100)]
        assert solve(system) is True

    def test_paper_example_hot_and_stuffy_overlap(self, solve):
        # Tom: T>26 & H>65 ; Alan: T>25 & H>60 — overlapping, so conflict.
        system = [gt("temp", 26), gt("humid", 65), gt("temp", 25), gt("humid", 60)]
        assert solve(system) is True

    def test_disjoint_thresholds_still_overlap_upward(self, solve):
        # Upward-open thresholds always intersect: (t>29) & (t>25) is sat.
        assert solve([gt("t", 29), gt("t", 25)]) is True

    def test_band_vs_band_disjoint(self, solve):
        system = [ge("t", 10), le("t", 15), ge("t", 20), le("t", 25)]
        assert solve(system) is False

    def test_ground_false_constraint(self, solve):
        bad = LinearConstraint.make(LinearExpr.const(3), Relation.LE, 2)
        assert solve([bad, le("t", 5)]) is False

    def test_ground_true_constraint_ignored(self, solve):
        ok = LinearConstraint.make(LinearExpr.const(1), Relation.LE, 2)
        assert solve([ok, le("t", 5)]) is True


class TestMultiVariableSimplex:
    """Systems the interval fast path must refuse and simplex must solve."""

    def test_interval_declines_coupled_constraints(self):
        coupled = LinearConstraint.make(
            LinearExpr.var("a") + LinearExpr.var("b"), Relation.LE, 1
        )
        assert interval_feasible([coupled]) is None

    def test_coupled_feasible(self):
        system = [
            LinearConstraint.make(
                LinearExpr.var("a") + LinearExpr.var("b"), Relation.LE, 10
            ),
            ge("a", 2),
            ge("b", 3),
        ]
        assert simplex_feasible(system) is True
        assert feasible(system) is True

    def test_coupled_infeasible(self):
        system = [
            LinearConstraint.make(
                LinearExpr.var("a") + LinearExpr.var("b"), Relation.LE, 4
            ),
            ge("a", 2),
            ge("b", 3),
        ]
        assert simplex_feasible(system) is False
        assert feasible(system) is False

    def test_coupled_strict_boundary(self):
        # a + b < 5, a >= 2, b >= 3 touches only at (2,3): infeasible.
        system = [
            LinearConstraint.make(
                LinearExpr.var("a") + LinearExpr.var("b"), Relation.LT, 5
            ),
            ge("a", 2),
            ge("b", 3),
        ]
        assert simplex_feasible(system) is False

    def test_equality_chain(self):
        # a == b, b == c, a >= 1, c <= 0 is infeasible.
        system = [
            LinearConstraint.make(
                LinearExpr.var("a") - LinearExpr.var("b"), Relation.EQ, 0
            ),
            LinearConstraint.make(
                LinearExpr.var("b") - LinearExpr.var("c"), Relation.EQ, 0
            ),
            ge("a", 1),
            le("c", 0),
        ]
        assert simplex_feasible(system) is False

    def test_equality_chain_feasible(self):
        system = [
            LinearConstraint.make(
                LinearExpr.var("a") - LinearExpr.var("b"), Relation.EQ, 0
            ),
            ge("a", 1),
            le("b", 5),
        ]
        assert simplex_feasible(system) is True

    def test_negative_coefficients(self):
        # -2a <= -6 means a >= 3; with a < 3 infeasible.
        system = [
            LinearConstraint.make(LinearExpr.var("a", -2.0), Relation.LE, -6),
            lt("a", 3),
        ]
        assert simplex_feasible(system) is False

    def test_redundant_rows_tolerated(self):
        system = [le("a", 5)] * 6 + [ge("a", 1)] * 6
        assert simplex_feasible(system) is True

    def test_degenerate_equalities(self):
        # a == 1 stated twice plus a redundant equality combination.
        system = [
            eq("a", 1),
            eq("a", 1),
            LinearConstraint.make(
                LinearExpr.var("a", 2.0), Relation.EQ, 2
            ),
        ]
        assert simplex_feasible(system) is True


# -- property-based agreement tests ------------------------------------------------

_vars = st.sampled_from(["t", "h", "x"])
_relations = st.sampled_from(
    [Relation.LE, Relation.LT, Relation.GE, Relation.GT, Relation.EQ]
)
_bounds = st.integers(min_value=-50, max_value=50)


@st.composite
def single_var_constraint(draw):
    return LinearConstraint.make(
        LinearExpr.var(draw(_vars)), draw(_relations), draw(_bounds)
    )


@st.composite
def single_var_system(draw):
    return draw(st.lists(single_var_constraint(), min_size=1, max_size=8))


@given(single_var_system())
@settings(max_examples=200, deadline=None)
def test_simplex_agrees_with_intervals(system):
    """On the single-variable fragment the two backends must agree."""
    via_intervals = interval_feasible(system)
    assert via_intervals is not None
    assert simplex_feasible(system) == via_intervals


@given(single_var_system(), st.integers(min_value=-60, max_value=60),
       st.integers(min_value=-60, max_value=60),
       st.integers(min_value=-60, max_value=60))
@settings(max_examples=200, deadline=None)
def test_witness_implies_feasible(system, vt, vh, vx):
    """If a sampled assignment satisfies the system, solvers say feasible."""
    assignment = {"t": float(vt), "h": float(vh), "x": float(vx)}
    if all(c.satisfied_by(assignment) for c in system):
        assert simplex_feasible(system) is True
        assert interval_feasible(system) is True


@given(st.lists(single_var_constraint(), min_size=0, max_size=5))
@settings(max_examples=100, deadline=None)
def test_adding_constraints_never_creates_feasibility(system):
    """Monotonicity: a superset of constraints cannot become feasible."""
    if not simplex_feasible(system):
        extra = LinearConstraint.make(LinearExpr.var("t"), Relation.LE, 100)
        assert simplex_feasible(system + [extra]) is False
