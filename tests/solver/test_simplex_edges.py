"""Edge cases and stress tests for the Simplex feasibility solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.solver.linear import LinearConstraint, LinearExpr, Relation
from repro.solver.simplex import simplex_feasible


def c(expr, relation, bound):
    return LinearConstraint.make(expr, relation, bound)


def v(name, coefficient=1.0):
    return LinearExpr.var(name, coefficient)


class TestReservedAndDegenerate:
    def test_reserved_gap_variable_rejected(self):
        with pytest.raises(SolverError, match="reserved"):
            simplex_feasible([c(v("__gap__"), Relation.LE, 1)])

    def test_empty_system_feasible(self):
        assert simplex_feasible([]) is True

    def test_single_equality(self):
        assert simplex_feasible([c(v("x"), Relation.EQ, 5)]) is True

    def test_zero_coefficient_equality(self):
        # x - x == 1 is ground-false after normalization.
        expr = v("x") - v("x")
        assert simplex_feasible([c(expr, Relation.EQ, 1)]) is False

    def test_zero_coefficient_true(self):
        expr = v("x") - v("x")
        assert simplex_feasible([c(expr, Relation.EQ, 0)]) is True

    def test_large_coefficients(self):
        system = [
            c(v("x", 1e6), Relation.LE, 1e9),
            c(v("x", 1e6), Relation.GE, 1e3),
        ]
        assert simplex_feasible(system) is True

    def test_tiny_band(self):
        system = [
            c(v("x"), Relation.GE, 1.0),
            c(v("x"), Relation.LE, 1.0 + 1e-6),
        ]
        assert simplex_feasible(system) is True

    def test_many_variables(self):
        system = []
        for i in range(20):
            system.append(c(v(f"x{i}"), Relation.GE, i))
            system.append(c(v(f"x{i}"), Relation.LE, i + 1))
        assert simplex_feasible(system) is True

    def test_chained_sum_constraint(self):
        total = LinearExpr.from_mapping({f"x{i}": 1.0 for i in range(10)})
        system = [c(total, Relation.LE, 5)]
        system += [c(v(f"x{i}"), Relation.GE, 1) for i in range(10)]
        assert simplex_feasible(system) is False  # sum >= 10 > 5


class TestStrictBoundaries:
    def test_strict_wedge_with_interior(self):
        # x + y < 10, x > 0, y > 0 has interior points.
        system = [
            c(v("x") + v("y"), Relation.LT, 10),
            c(v("x"), Relation.GT, 0),
            c(v("y"), Relation.GT, 0),
        ]
        assert simplex_feasible(system) is True

    def test_strict_wedge_degenerate_to_point(self):
        # x + y < 2, x > 1, y > 1 touches only at (1,1): empty interior.
        system = [
            c(v("x") + v("y"), Relation.LT, 2),
            c(v("x"), Relation.GT, 1),
            c(v("y"), Relation.GT, 1),
        ]
        assert simplex_feasible(system) is False

    def test_strict_against_equality(self):
        system = [c(v("x"), Relation.EQ, 5), c(v("x"), Relation.LT, 5)]
        assert simplex_feasible(system) is False

    def test_strict_with_slack_from_equality(self):
        system = [c(v("x"), Relation.EQ, 5), c(v("x"), Relation.LT, 6)]
        assert simplex_feasible(system) is True


@st.composite
def random_two_var_system(draw):
    """Small random systems over two variables, mixing couplings."""
    constraints = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        a = draw(st.integers(min_value=-3, max_value=3))
        b = draw(st.integers(min_value=-3, max_value=3))
        if a == 0 and b == 0:
            a = 1
        expr = LinearExpr.from_mapping({"x": float(a), "y": float(b)})
        relation = draw(st.sampled_from(
            [Relation.LE, Relation.LT, Relation.GE, Relation.GT, Relation.EQ]
        ))
        bound = draw(st.integers(min_value=-10, max_value=10))
        constraints.append(c(expr, relation, bound))
    return constraints


@given(random_two_var_system(),
       st.integers(min_value=-12, max_value=12),
       st.integers(min_value=-12, max_value=12))
@settings(max_examples=300, deadline=None)
def test_simplex_never_refutes_a_witness(system, x, y):
    """Soundness on coupled systems: an integer witness forces SAT."""
    assignment = {"x": float(x), "y": float(y)}
    if all(constraint.satisfied_by(assignment) for constraint in system):
        assert simplex_feasible(system) is True


@given(random_two_var_system())
@settings(max_examples=200, deadline=None)
def test_simplex_deterministic(system):
    """Same system, same verdict, every time (no RNG inside)."""
    assert simplex_feasible(system) == simplex_feasible(system)
