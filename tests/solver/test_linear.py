"""Unit tests for the linear-expression/constraint IR."""

import pytest

from repro.errors import SolverError
from repro.solver.linear import (
    LinearConstraint,
    LinearExpr,
    Relation,
    constraints_variables,
)


class TestLinearExpr:
    def test_var_and_const(self):
        t = LinearExpr.var("t")
        assert t.as_dict() == {"t": 1.0}
        assert LinearExpr.const(5).constant == 5.0

    def test_addition_merges_coefficients(self):
        expr = LinearExpr.var("t") + LinearExpr.var("t", 2.0) + 3
        assert expr.as_dict() == {"t": 3.0}
        assert expr.constant == 3.0

    def test_subtraction(self):
        expr = LinearExpr.var("a") - LinearExpr.var("b") - 1
        assert expr.as_dict() == {"a": 1.0, "b": -1.0}
        assert expr.constant == -1.0

    def test_zero_coefficients_dropped(self):
        expr = LinearExpr.var("t") - LinearExpr.var("t")
        assert expr.as_dict() == {}
        assert expr.variables() == set()

    def test_scaling(self):
        expr = (LinearExpr.var("t") + 1) * 2
        assert expr.as_dict() == {"t": 2.0}
        assert expr.constant == 2.0

    def test_rmul(self):
        expr = 3 * LinearExpr.var("t")
        assert expr.as_dict() == {"t": 3.0}

    def test_scale_by_non_number_rejected(self):
        with pytest.raises(SolverError):
            LinearExpr.var("t") * "two"

    def test_evaluate(self):
        expr = LinearExpr.var("a", 2.0) + LinearExpr.var("b", -1.0) + 4
        assert expr.evaluate({"a": 3.0, "b": 1.0}) == 9.0

    def test_evaluate_missing_variable(self):
        with pytest.raises(SolverError):
            LinearExpr.var("a").evaluate({})

    def test_str_is_readable(self):
        text = str(LinearExpr.var("t", 2.0) + 1)
        assert "t" in text and "+1" in text


class TestRelation:
    def test_strictness(self):
        assert Relation.LT.is_strict and Relation.GT.is_strict
        assert not Relation.LE.is_strict and not Relation.EQ.is_strict

    def test_flip(self):
        assert Relation.LE.flipped() is Relation.GE
        assert Relation.GT.flipped() is Relation.LT
        assert Relation.EQ.flipped() is Relation.EQ

    def test_negate(self):
        assert Relation.LE.negated() is Relation.GT
        assert Relation.GE.negated() is Relation.LT

    def test_negate_eq_raises(self):
        with pytest.raises(SolverError):
            Relation.EQ.negated()


class TestLinearConstraint:
    def test_make_canonicalizes_ge_to_le(self):
        # t >= 5  becomes  -t <= -5
        c = LinearConstraint.make(LinearExpr.var("t"), Relation.GE, 5)
        assert c.relation is Relation.LE
        assert c.expr.as_dict() == {"t": -1.0}
        assert c.bound == -5.0

    def test_make_moves_rhs_expression(self):
        # a <= b + 2  becomes  a - b <= 2
        c = LinearConstraint.make(
            LinearExpr.var("a"), Relation.LE, LinearExpr.var("b") + 2
        )
        assert c.expr.as_dict() == {"a": 1.0, "b": -1.0}
        assert c.bound == 2.0

    def test_satisfied_by(self):
        c = LinearConstraint.make(LinearExpr.var("t"), Relation.GT, 28)
        assert c.satisfied_by({"t": 30.0})
        assert not c.satisfied_by({"t": 28.0})
        assert not c.satisfied_by({"t": 20.0})

    def test_eq_satisfaction_uses_tolerance(self):
        c = LinearConstraint.make(LinearExpr.var("t"), Relation.EQ, 1.0)
        assert c.satisfied_by({"t": 1.0 + 1e-12})
        assert not c.satisfied_by({"t": 1.1})

    def test_negation_round_trip(self):
        c = LinearConstraint.make(LinearExpr.var("t"), Relation.LE, 5)
        negation = c.negated()
        assert not negation.satisfied_by({"t": 5.0})
        assert negation.satisfied_by({"t": 5.1})

    def test_negate_eq_raises(self):
        c = LinearConstraint.make(LinearExpr.var("t"), Relation.EQ, 5)
        with pytest.raises(SolverError):
            c.negated()

    def test_trivial_constraint(self):
        c = LinearConstraint.make(LinearExpr.const(1), Relation.LE, 2)
        assert c.is_trivial()
        assert c.trivially_true()
        c_false = LinearConstraint.make(LinearExpr.const(3), Relation.LE, 2)
        assert not c_false.trivially_true()

    def test_trivially_true_guard(self):
        c = LinearConstraint.make(LinearExpr.var("t"), Relation.LE, 2)
        with pytest.raises(SolverError):
            c.trivially_true()

    def test_constraints_variables_sorted_union(self):
        cs = [
            LinearConstraint.make(LinearExpr.var("b"), Relation.LE, 1),
            LinearConstraint.make(LinearExpr.var("a"), Relation.LE, 1),
        ]
        assert constraints_variables(cs) == ["a", "b"]
