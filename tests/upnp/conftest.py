"""Shared fixtures: a small device population on a fresh bus."""

import pytest

from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.upnp.control_point import ControlPoint
from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable


def make_lamp(name: str, location: str = "living room") -> UPnPDevice:
    """A minimal switchable lamp with a dimmer, used across UPnP tests."""
    device = UPnPDevice(
        name,
        "urn:repro:device:Lamp:1",
        location=location,
        keywords=("light", "lamp"),
        category="appliance",
    )
    service = Service("urn:repro:service:SwitchPower:1", "power")
    service.add_variable(StateVariable("on", "boolean", value=False))
    service.add_variable(
        StateVariable("level", "number", value=0.0, minimum=0.0, maximum=100.0,
                      unit="%")
    )

    def turn_on(args):
        service.set_variable("on", True)
        service.set_variable("level", float(args.get("level", 100.0)))
        return {"on": True}

    def turn_off(args):
        service.set_variable("on", False)
        service.set_variable("level", 0.0)
        return {"on": False}

    service.add_action(Action("TurnOn", turn_on, in_args=("level",),
                              out_args=("on",), description="switch the lamp on"))
    service.add_action(Action("TurnOff", turn_off, out_args=("on",),
                              description="switch the lamp off"))
    device.add_service(service)
    return device


def make_thermometer(name: str, location: str = "living room") -> UPnPDevice:
    """A temperature sensor whose reading is evented."""
    device = UPnPDevice(
        name,
        "urn:repro:device:Thermometer:1",
        location=location,
        keywords=("temperature", "sensor"),
        category="sensor",
    )
    service = Service("urn:repro:service:TemperatureSensor:1", "temperature")
    service.add_variable(
        StateVariable("temperature", "number", value=20.0, unit="celsius")
    )
    device.add_service(service)
    return device


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def bus(sim):
    return NetworkBus(sim)


@pytest.fixture
def lamp(sim, bus):
    device = make_lamp("floor lamp")
    device.attach(bus, sim)
    return device


@pytest.fixture
def thermometer(sim, bus):
    device = make_thermometer("thermometer")
    device.attach(bus, sim)
    return device


@pytest.fixture
def control_point(sim, bus):
    return ControlPoint(bus, sim, name="test-cp")
