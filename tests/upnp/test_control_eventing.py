"""Action invocation and eventing tests for the UPnP substrate."""

import pytest

from repro.errors import SubscriptionError, UPnPError
from repro.upnp import ssdp


class TestInvoke:
    def test_invoke_runs_action_and_returns_outputs(self, sim, bus, lamp,
                                                    control_point):
        control_point.search(ssdp.ST_ALL)
        outputs = control_point.invoke(lamp.udn, "power", "TurnOn", {"level": 40.0})
        assert outputs == {"on": True}
        assert lamp.get_state("power", "on") is True
        assert lamp.get_state("power", "level") == 40.0

    def test_invoke_unknown_action_raises(self, sim, bus, lamp, control_point):
        control_point.search(ssdp.ST_ALL)
        with pytest.raises(UPnPError, match="no such action"):
            control_point.invoke(lamp.udn, "power", "Explode")

    def test_invoke_unknown_service_raises(self, sim, bus, lamp, control_point):
        control_point.search(ssdp.ST_ALL)
        with pytest.raises(UPnPError):
            control_point.invoke(lamp.udn, "ghost", "TurnOn")

    def test_invoke_with_unknown_args_rejected(self, sim, bus, lamp, control_point):
        control_point.search(ssdp.ST_ALL)
        with pytest.raises(UPnPError, match="unknown arguments"):
            control_point.invoke(lamp.udn, "power", "TurnOn", {"wattage": 60})

    def test_invoke_unknown_udn_raises(self, sim, bus, control_point):
        with pytest.raises(UPnPError):
            control_point.invoke("ghost", "power", "TurnOn")


class TestEventing:
    def test_initial_notify_carries_snapshot(self, sim, bus, thermometer,
                                             control_point):
        control_point.search(ssdp.ST_ALL)
        events = []
        control_point.subscribe(
            thermometer.udn, "temperature",
            lambda udn, svc, changes: events.append(changes),
        )
        assert events == [{"temperature": 20.0}]

    def test_change_notifies_subscriber(self, sim, bus, thermometer, control_point):
        control_point.search(ssdp.ST_ALL)
        events = []
        control_point.subscribe(
            thermometer.udn, "temperature",
            lambda udn, svc, changes: events.append(changes),
        )
        thermometer.set_state("temperature", "temperature", 28.5)
        sim.run_until(sim.now + 1.0)
        assert events[-1] == {"temperature": 28.5}

    def test_no_notify_when_value_unchanged(self, sim, bus, thermometer,
                                            control_point):
        control_point.search(ssdp.ST_ALL)
        events = []
        control_point.subscribe(
            thermometer.udn, "temperature",
            lambda udn, svc, changes: events.append(changes),
        )
        thermometer.set_state("temperature", "temperature", 20.0)  # same value
        sim.run_until(sim.now + 1.0)
        assert len(events) == 1  # only the initial snapshot

    def test_unsubscribe_stops_events(self, sim, bus, thermometer, control_point):
        control_point.search(ssdp.ST_ALL)
        events = []
        sid = control_point.subscribe(
            thermometer.udn, "temperature",
            lambda udn, svc, changes: events.append(changes),
        )
        control_point.unsubscribe(sid)
        sim.run_until(sim.now + 1.0)
        thermometer.set_state("temperature", "temperature", 30.0)
        sim.run_until(sim.now + 1.0)
        assert events == [{"temperature": 20.0}]

    def test_subscription_expires_without_renewal(self, sim, bus, thermometer,
                                                  control_point):
        control_point.search(ssdp.ST_ALL)
        events = []
        control_point.subscribe(
            thermometer.udn, "temperature",
            lambda udn, svc, changes: events.append(changes),
            timeout=10.0,
            auto_renew=False,
        )
        sim.run_until(sim.now + 11.0)
        thermometer.set_state("temperature", "temperature", 30.0)
        sim.run_until(sim.now + 1.0)
        assert events == [{"temperature": 20.0}]

    def test_renewal_extends_subscription(self, sim, bus, thermometer,
                                          control_point):
        control_point.search(ssdp.ST_ALL)
        events = []
        sid = control_point.subscribe(
            thermometer.udn, "temperature",
            lambda udn, svc, changes: events.append(changes),
            timeout=10.0,
            auto_renew=False,
        )
        sim.run_until(sim.now + 8.0)
        control_point.renew(sid, timeout=10.0)
        sim.run_until(sim.now + 8.0)  # 16s after subscribe, inside renewed window
        thermometer.set_state("temperature", "temperature", 30.0)
        sim.run_until(sim.now + 1.0)
        assert events[-1] == {"temperature": 30.0}

    def test_subscribe_to_unknown_service_raises(self, sim, bus, thermometer,
                                                 control_point):
        control_point.search(ssdp.ST_ALL)
        with pytest.raises(SubscriptionError):
            control_point.subscribe(
                thermometer.udn, "ghost", lambda udn, svc, changes: None
            )

    def test_renew_unknown_sid_raises(self, sim, bus, thermometer, control_point):
        with pytest.raises(SubscriptionError):
            control_point.renew("uuid:sub-bogus")

    def test_two_subscribers_both_notified(self, sim, bus, thermometer,
                                           control_point):
        from repro.upnp.control_point import ControlPoint

        second = ControlPoint(bus, sim, name="second-cp")
        control_point.search(ssdp.ST_ALL)
        second.search(ssdp.ST_ALL)
        first_events, second_events = [], []
        control_point.subscribe(
            thermometer.udn, "temperature",
            lambda udn, svc, ch: first_events.append(ch),
        )
        second.subscribe(
            thermometer.udn, "temperature",
            lambda udn, svc, ch: second_events.append(ch),
        )
        thermometer.set_state("temperature", "temperature", 25.0)
        sim.run_until(sim.now + 1.0)
        assert first_events[-1] == {"temperature": 25.0}
        assert second_events[-1] == {"temperature": 25.0}


class TestServiceValidation:
    def test_number_range_enforced(self, lamp):
        with pytest.raises(UPnPError):
            lamp.set_state("power", "level", 150.0)

    def test_boolean_type_enforced(self, lamp):
        with pytest.raises(UPnPError):
            lamp.set_state("power", "on", "yes")

    def test_detach_requires_attached(self, sim, bus):
        from tests.upnp.conftest import make_lamp

        device = make_lamp("unattached")
        with pytest.raises(UPnPError):
            device.detach()

    def test_double_attach_rejected(self, sim, bus, lamp):
        with pytest.raises(UPnPError):
            lamp.attach(bus, sim)
