"""Unit tests for SSDP message construction and target matching."""

import pytest

from repro.upnp import ssdp


class TestTargetMatching:
    UDN = "dev-00042"
    DEVICE_TYPE = "urn:repro:device:Lamp:1"
    SERVICES = ["urn:repro:service:SwitchPower:1"]

    def match(self, target):
        return ssdp.target_matches(target, self.UDN, self.DEVICE_TYPE,
                                   self.SERVICES)

    def test_ssdp_all_matches_with_device_type(self):
        assert self.match(ssdp.ST_ALL) == self.DEVICE_TYPE

    def test_root_device_matches(self):
        assert self.match(ssdp.ST_ROOT_DEVICE) == self.DEVICE_TYPE

    def test_uuid_target(self):
        assert self.match(f"uuid:{self.UDN}") == f"uuid:{self.UDN}"

    def test_wrong_uuid_silent(self):
        assert self.match("uuid:other") is None

    def test_device_type_target(self):
        assert self.match(self.DEVICE_TYPE) == self.DEVICE_TYPE

    def test_service_type_target(self):
        assert self.match(self.SERVICES[0]) == self.SERVICES[0]

    def test_unrelated_target_silent(self):
        assert self.match("urn:repro:device:Toaster:1") is None


class TestMessageBuilders:
    def test_msearch_headers(self):
        message = ssdp.msearch("cp:x", "ssdp:all", search_id=7)
        assert message.destination == ssdp.MULTICAST_GROUP
        assert message.header("METHOD") == ssdp.METHOD_MSEARCH
        assert message.header("ST") == "ssdp:all"
        assert message.header("SEARCH-ID") == 7

    def test_msearch_response_echoes_search_id(self):
        request = ssdp.msearch("cp:x", "ssdp:all", search_id=9)
        response = ssdp.msearch_response(request, "dev:d1", "d1",
                                         "urn:repro:device:Lamp:1")
        assert response.destination == "cp:x"
        assert response.header("SEARCH-ID") == 9
        assert response.header("UDN") == "d1"
        assert response.header("USN").startswith("uuid:d1::")
        assert response.header("LOCATION") == "dev:d1"

    def test_notify_alive_and_byebye(self):
        alive = ssdp.notify("dev:d1", "d1", ssdp.NTS_ALIVE, "type")
        byebye = ssdp.notify("dev:d1", "d1", ssdp.NTS_BYEBYE, "type")
        assert alive.destination == ssdp.MULTICAST_GROUP
        assert alive.header("NTS") == ssdp.NTS_ALIVE
        assert byebye.header("NTS") == ssdp.NTS_BYEBYE
