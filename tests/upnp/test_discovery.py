"""Discovery, description and registry tests for the UPnP substrate."""

import pytest

from repro.errors import UPnPError
from repro.upnp import ssdp
from repro.upnp.registry import DeviceRecord, DeviceRegistry

from tests.upnp.conftest import make_lamp, make_thermometer


class TestSearch:
    def test_search_all_finds_every_device(self, sim, bus, lamp, thermometer,
                                            control_point):
        records = control_point.search(ssdp.ST_ALL)
        names = {r.friendly_name for r in records}
        assert names == {"floor lamp", "thermometer"}

    def test_search_by_device_type(self, sim, bus, lamp, thermometer, control_point):
        records = control_point.search("urn:repro:device:Lamp:1")
        assert [r.friendly_name for r in records] == ["floor lamp"]

    def test_search_by_service_type(self, sim, bus, lamp, thermometer, control_point):
        records = control_point.search("urn:repro:service:TemperatureSensor:1")
        assert [r.friendly_name for r in records] == ["thermometer"]

    def test_search_by_udn(self, sim, bus, lamp, control_point):
        records = control_point.search(f"uuid:{lamp.udn}")
        assert [r.udn for r in records] == [lamp.udn]

    def test_search_no_match_returns_empty(self, sim, bus, lamp, control_point):
        assert control_point.search("urn:repro:device:Toaster:1") == []

    def test_search_populates_registry(self, sim, bus, lamp, control_point):
        control_point.search(ssdp.ST_ALL)
        assert lamp.udn in control_point.registry

    def test_detached_device_not_found(self, sim, bus, lamp, control_point):
        lamp.detach()
        sim.run()
        assert control_point.search(ssdp.ST_ALL) == []

    def test_byebye_evicts_from_registry(self, sim, bus, lamp, control_point):
        control_point.search(ssdp.ST_ALL)
        assert lamp.udn in control_point.registry
        lamp.detach()
        sim.run()
        assert lamp.udn not in control_point.registry


class TestFindHelpers:
    def test_find_by_name_searches_lazily(self, sim, bus, lamp, control_point):
        record = control_point.find_by_name("floor lamp")
        assert record.udn == lamp.udn

    def test_find_by_name_case_insensitive(self, sim, bus, lamp, control_point):
        assert control_point.find_by_name("Floor Lamp").udn == lamp.udn

    def test_find_by_name_unknown_raises(self, sim, bus, control_point):
        with pytest.raises(UPnPError):
            control_point.find_by_name("teleporter")

    def test_find_by_service(self, sim, bus, lamp, thermometer, control_point):
        records = control_point.find_by_service("urn:repro:service:SwitchPower:1")
        assert [r.friendly_name for r in records] == ["floor lamp"]


class TestDescription:
    def test_description_contains_services(self, sim, bus, lamp, control_point):
        record = control_point.describe(lamp.address)
        assert record.friendly_name == "floor lamp"
        assert record.service_ids() == ["power"]
        power = record.service_description("power")
        action_names = {a["name"] for a in power["actions"]}
        assert action_names == {"TurnOn", "TurnOff"}

    def test_description_variables_carry_ranges(self, sim, bus, lamp, control_point):
        record = control_point.describe(lamp.address)
        level = next(
            v for v in record.service_description("power")["variables"]
            if v["name"] == "level"
        )
        assert level["minimum"] == 0.0
        assert level["maximum"] == 100.0
        assert level["unit"] == "%"

    def test_describe_offline_address_raises(self, sim, bus, control_point):
        with pytest.raises(UPnPError):
            control_point.describe("dev:ghost")

    def test_unknown_service_description_raises(self, sim, bus, lamp, control_point):
        record = control_point.describe(lamp.address)
        with pytest.raises(UPnPError):
            record.service_description("nope")


class TestRegistry:
    def _record(self, name="lamp", location="hall", keywords=("light",),
                device_type="urn:repro:device:Lamp:1", udn="u1"):
        return DeviceRecord.from_description(
            {
                "udn": udn,
                "address": f"dev:{udn}",
                "friendly_name": name,
                "device_type": device_type,
                "location": location,
                "category": "appliance",
                "keywords": list(keywords),
                "services": [
                    {"service_type": "urn:repro:service:SwitchPower:1",
                     "service_id": "power", "variables": [], "actions": []}
                ],
            }
        )

    def test_add_and_lookup_by_every_index(self):
        registry = DeviceRegistry()
        registry.add(self._record())
        assert len(registry.by_name("LAMP")) == 1
        assert len(registry.by_device_type("urn:repro:device:Lamp:1")) == 1
        assert len(registry.by_service_type("urn:repro:service:SwitchPower:1")) == 1
        assert len(registry.by_location("Hall")) == 1
        assert len(registry.by_keyword("Light")) == 1
        assert len(registry.by_category("appliance")) == 1

    def test_replace_on_re_add(self):
        registry = DeviceRegistry()
        registry.add(self._record(location="hall"))
        registry.add(self._record(location="kitchen"))
        assert len(registry) == 1
        assert registry.by_location("hall") == []
        assert len(registry.by_location("kitchen")) == 1

    def test_remove_cleans_every_index(self):
        registry = DeviceRegistry()
        registry.add(self._record())
        registry.remove("u1")
        assert len(registry) == 0
        assert registry.by_name("lamp") == []
        assert registry.by_keyword("light") == []

    def test_remove_unknown_is_noop(self):
        registry = DeviceRegistry()
        registry.remove("ghost")  # must not raise

    def test_get_unknown_raises(self):
        with pytest.raises(UPnPError):
            DeviceRegistry().get("ghost")

    def test_missing_description_fields_rejected(self):
        with pytest.raises(UPnPError):
            DeviceRecord.from_description({"udn": "x"})

    def test_scan_matches_indexed_lookup(self):
        registry = DeviceRegistry()
        for i in range(20):
            registry.add(self._record(name=f"lamp-{i % 3}", udn=f"u{i}"))
        assert {r.udn for r in registry.scan_by_name("lamp-1")} == {
            r.udn for r in registry.by_name("lamp-1")
        }


class TestFiftyDevicePopulation:
    """The E1 experiment shape: 50 virtual devices, name/service retrieval."""

    @pytest.fixture
    def population(self, sim, bus):
        devices = []
        for i in range(25):
            device = make_lamp(f"lamp-{i:02d}", location=f"room-{i % 5}")
            device.attach(bus, sim)
            devices.append(device)
        for i in range(25):
            device = make_thermometer(f"thermo-{i:02d}", location=f"room-{i % 5}")
            device.attach(bus, sim)
            devices.append(device)
        return devices

    def test_search_all_finds_fifty(self, sim, bus, population, control_point):
        assert len(control_point.search(ssdp.ST_ALL)) == 50

    def test_retrieval_by_name_unique(self, sim, bus, population, control_point):
        control_point.search(ssdp.ST_ALL)
        record = control_point.find_by_name("lamp-17")
        assert record.friendly_name == "lamp-17"

    def test_retrieval_by_service_returns_half(self, sim, bus, population,
                                               control_point):
        control_point.search(ssdp.ST_ALL)
        records = control_point.find_by_service(
            "urn:repro:service:TemperatureSensor:1"
        )
        assert len(records) == 25
