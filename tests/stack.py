"""The full-stack test harness shared by integration and support tests."""

from repro.cadel.binding import HomeDirectory
from repro.cadel.words import WordDictionary
from repro.core.server import HomeServer
from repro.home.builder import build_demo_home
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.support.authoring import AuthoringSession


class Stack:
    """A fully wired home: simulator, bus, server, home, sessions.

    Keyword arguments are forwarded to :class:`HomeServer` (e.g.
    ``incremental=False`` for the seed evaluation path, ``max_trace=``
    for the ring-buffer cap).
    """

    def __init__(self, **server_kwargs):
        self.simulator = Simulator()
        self.bus = NetworkBus(self.simulator)
        self.server = HomeServer(self.simulator, self.bus, **server_kwargs)
        self.home = build_demo_home(
            self.simulator, self.bus, event_sink=self.server.post_event
        )
        self.server.discover()
        self.directory = HomeDirectory(
            users=list(self.home.locator.residents),
            locator_udn=self.home.locator.udn,
            epg_udn=self.home.epg.udn,
        )
        self.shared_words = WordDictionary()
        self._sessions = {}

    def session(self, user: str) -> AuthoringSession:
        if user not in self._sessions:
            self._sessions[user] = AuthoringSession(
                self.server, user, self.directory,
                shared_words=self.shared_words,
            )
        return self._sessions[user]

    def run_for(self, seconds: float) -> None:
        self.simulator.run_until(self.simulator.now + seconds)
