"""Repository-wide fixtures: the fully wired home-server stack."""

import pytest

from tests.stack import Stack


@pytest.fixture
def stack():
    """A fully wired home: simulator, bus, server, demo home, sessions."""
    return Stack()
