"""Repo-root pytest hooks shared by ``tests/`` and ``benchmarks/``.

Provides the ``hard_timeout(seconds)`` marker: a SIGALRM-backed
deadline around the test call.  Process-backed suites talk to worker
children over blocking sockets; an IPC protocol bug could otherwise
wedge the whole run instead of failing one test.  No third-party
timeout plugin is assumed.
"""

import signal

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "hard_timeout(seconds): fail the test via SIGALRM once the "
        "wall-clock deadline passes (main thread, POSIX only)",
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("hard_timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        return (yield)
    seconds = float(marker.args[0]) if marker.args else 60.0

    def _expired(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded its hard_timeout of {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
