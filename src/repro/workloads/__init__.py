"""Synthetic workload generators for the evaluation harness.

Deterministic (seeded) generators reproducing the paper's experimental
setups:

* :mod:`repro.workloads.devices` — virtual UPnP device populations
  (E1: 50 devices; A4: sweeps).
* :mod:`repro.workloads.rules` — synthetic rule databases (E2: 10,000
  rules, 100 sharing one device, two inequalities per condition).
* :mod:`repro.workloads.fleet` — multi-home fleets with home-prefixed
  naming for the cluster layer (A6: sharded ingest).
"""

from repro.workloads.devices import build_device_population
from repro.workloads.fleet import (
    HomeFleet,
    build_home_fleet,
    fleet_event_stream,
    home_variable,
)
from repro.workloads.rules import RulePopulation, build_rule_population

__all__ = [
    "build_device_population",
    "HomeFleet",
    "build_home_fleet",
    "fleet_event_stream",
    "home_variable",
    "RulePopulation",
    "build_rule_population",
]
