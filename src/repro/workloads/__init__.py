"""Synthetic workload generators for the evaluation harness.

Deterministic (seeded) generators reproducing the paper's experimental
setups:

* :mod:`repro.workloads.devices` — virtual UPnP device populations
  (E1: 50 devices; A4: sweeps).
* :mod:`repro.workloads.rules` — synthetic rule databases (E2: 10,000
  rules, 100 sharing one device, two inequalities per condition).
"""

from repro.workloads.devices import build_device_population
from repro.workloads.rules import RulePopulation, build_rule_population

__all__ = [
    "build_device_population",
    "RulePopulation",
    "build_rule_population",
]
