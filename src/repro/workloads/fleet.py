"""Multi-home fleet populations (A6 sharding / A8 cross-shard workloads).

A *fleet* is many independent households, each with its own sensors,
devices and rule population, all named under the cluster layer's
home-prefixed scheme (``"home-0007/thermo:svc:temperature"``) so a
:class:`~repro.cluster.router.ShardRouter` places every home's rules on
one shard.  The per-home rule archetypes mirror the A5 mixed population
(numeric bulk, discrete presence, EPG membership, time windows); every
rule drives its own device, so ingest benchmarks measure evaluation
rather than arbitration contention — and every variable is coalesce-
safe, which is what a well-partitioned sensor feed looks like.

:func:`build_building_rules` layers *cross-home* rules on top: building
templates whose conditions span several apartments and are served via
the cluster's variable mirroring (benchmark A8 sweeps their fraction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    Condition,
    DiscreteAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.rule import Rule
from repro.sim.rng import seeded_rng
from repro.solver.linear import LinearConstraint, LinearExpr, Relation
from repro.workloads.rules import ROOMS, TIME_WINDOWS

FLEET_SENSORS = ("temperature", "humidity", "illuminance", "noise")

FLEET_KEYWORDS = ("baseball", "news", "movie", "jazz", "drama", "weather")


def home_variable(home: str, device: str, variable: str,
                  service: str = "svc") -> str:
    """Canonical home-prefixed variable id (routes to the home's shard)."""
    return f"{home}/{device}:{service}:{variable}"


@dataclass
class HomeFleet:
    """A generated multi-home population.

    Attributes:
        homes: home keys, e.g. ``("home-0000", "home-0001", ...)``.
        rules_by_home: each home's rule objects (not yet registered).
        sensors_by_home: each home's numeric sensor variable ids — the
            feed an ingest benchmark drives.
        total_rules: fleet-wide rule count.
    """

    homes: tuple[str, ...]
    rules_by_home: dict[str, list[Rule]]
    sensors_by_home: dict[str, tuple[str, ...]]
    total_rules: int

    def all_rules(self) -> list[Rule]:
        return [
            rule for home in self.homes for rule in self.rules_by_home[home]
        ]


def _home_numeric(home: str, rng, sensor: str | None = None) -> NumericAtom:
    if sensor is None:
        sensor = rng.choice(FLEET_SENSORS)
    relation = rng.choice((Relation.GT, Relation.LT))
    bound = rng.uniform(0.0, 100.0)
    return NumericAtom(
        LinearConstraint.make(
            LinearExpr.var(home_variable(home, "sense", sensor)),
            relation, bound,
        )
    )


def _fleet_condition(home: str, index: int, rng) -> Condition:
    """One of four archetypes, weighted toward the paper's numeric shape."""
    kind = index % 10
    if kind < 7:
        # Two inequalities over *distinct* sensors: always satisfiable,
        # so fleets pass the full registration pipeline unfiltered.
        first, second = rng.sample(FLEET_SENSORS, 2)
        return AndCondition([_home_numeric(home, rng, first),
                             _home_numeric(home, rng, second)])
    if kind == 7:
        return AndCondition([
            DiscreteAtom(home_variable(home, "presence", "room"),
                         rng.choice(ROOMS), negated=rng.random() < 0.2),
            _home_numeric(home, rng),
        ])
    if kind == 8:
        return AndCondition([
            MembershipAtom(home_variable(home, "epg", "keywords"),
                           rng.choice(FLEET_KEYWORDS),
                           negated=rng.random() < 0.2),
            _home_numeric(home, rng),
        ])
    start, end, label = TIME_WINDOWS[(index // 10) % len(TIME_WINDOWS)]
    return AndCondition([
        TimeWindowAtom(start, end, label=label),
        DiscreteAtom(home_variable(home, "presence", "room"),
                     rng.choice(ROOMS)),
    ])


def build_home_fleet(
    home_count: int = 8,
    rules_per_home: int = 1_000,
    seed: int | str = "fleet",
) -> HomeFleet:
    """Build ``home_count`` households of ``rules_per_home`` rules each.

    Deterministic per ``seed``; rule names and owners are home-scoped,
    every rule's variables and devices carry the home prefix, and each
    rule targets its own device.
    """
    rng = seeded_rng(seed)
    homes = tuple(f"home-{index:04d}" for index in range(home_count))
    rules_by_home: dict[str, list[Rule]] = {}
    sensors_by_home: dict[str, tuple[str, ...]] = {}
    for home in homes:
        sensors_by_home[home] = tuple(
            home_variable(home, "sense", sensor) for sensor in FLEET_SENSORS
        )
        rules = []
        for index in range(rules_per_home):
            rules.append(Rule(
                name=f"{home}-rule-{index:04d}",
                owner=f"{home}-user-{index % 3}",
                condition=_fleet_condition(home, index, rng),
                action=ActionSpec(
                    device_udn=f"{home}/dev-{index:04d}",
                    device_name=f"{home} device {index}",
                    service_id="svc",
                    action_name="Set",
                    settings=(Setting("level",
                                      round(rng.uniform(0.0, 100.0), 1)),),
                ),
            ))
        rules_by_home[home] = rules
    return HomeFleet(
        homes=homes,
        rules_by_home=rules_by_home,
        sensors_by_home=sensors_by_home,
        total_rules=home_count * rules_per_home,
    )


def build_building_rules(
    fleet: HomeFleet,
    *,
    building_size: int = 4,
    rules_per_building: int = 8,
    seed: int | str = "building",
) -> list[Rule]:
    """Cross-home rule templates over a fleet (the A8 workload).

    Consecutive homes are grouped into *buildings* of ``building_size``
    apartments; each building's rules read sensors of several member
    apartments while the action drives a dedicated device in the
    building's **anchor** home (the first member) — exactly the shape
    :class:`~repro.cluster.server.ClusterServer` places via variable
    mirroring.  Three archetypes rotate:

    * **any-of** — an ``Or`` over foreign apartments' sensors ("if any
      apartment's smoke sensor fires, unlock the lobby door");
    * **all-of** — an ``And`` across apartments (distinct variables, so
      every rule passes the satisfiability check);
    * **aggregate** — one multi-variable linear constraint summing two
      apartments' sensors ("cap the floor's aggregate aircon duty"),
      which exercises the database's generic recheck buckets across a
      mirror boundary.

    The conditions read the same ``sense`` variables
    :func:`fleet_event_stream` drives, so an ingest benchmark measures
    mirror fan-out without a separate stream; every rule targets its
    own device, keeping arbitration out of the measurement like the
    per-home archetypes.  Deterministic per ``seed``.
    """
    rng = seeded_rng(seed)
    rules: list[Rule] = []
    buildings = [
        fleet.homes[start:start + building_size]
        for start in range(0, len(fleet.homes), building_size)
    ]
    for building_index, members in enumerate(buildings):
        if len(members) < 2:
            continue  # a building of one home has nothing to span
        anchor = members[0]
        for rule_index in range(rules_per_building):
            foreign = rng.sample(
                list(members[1:]), min(2, len(members) - 1)
            )
            kind = rule_index % 3
            if kind == 0:
                condition: Condition = OrCondition(
                    [_home_numeric(home, rng) for home in foreign]
                )
            elif kind == 1:
                condition = AndCondition(
                    [_home_numeric(anchor, rng)]
                    + [_home_numeric(home, rng) for home in foreign]
                )
            else:
                first, second = (foreign * 2)[:2]
                expr = (
                    LinearExpr.var(home_variable(first, "sense",
                                                 "temperature"))
                    + LinearExpr.var(home_variable(second, "sense",
                                                   "humidity"))
                )
                condition = NumericAtom(LinearConstraint.make(
                    expr, Relation.GT, rng.uniform(60.0, 160.0)
                ))
            rules.append(Rule(
                name=f"bldg-{building_index:03d}-rule-{rule_index:03d}",
                owner=f"bldg-{building_index:03d}-manager",
                condition=condition,
                action=ActionSpec(
                    device_udn=(
                        f"{anchor}/bldg-{building_index:03d}"
                        f"-dev-{rule_index:03d}"
                    ),
                    device_name=(
                        f"building {building_index} device {rule_index}"
                    ),
                    service_id="svc",
                    action_name="Set",
                    settings=(Setting("level",
                                      round(rng.uniform(0.0, 100.0), 1)),),
                ),
            ))
    return rules


def fleet_event_stream(
    fleet: HomeFleet,
    *,
    events: int,
    burst: int = 1,
    seed: int | str = "fleet-stream",
) -> list[tuple[str, float]]:
    """A deterministic sensor stream over the fleet's numeric sensors.

    Emits bursts of ``burst`` consecutive ramping writes to one randomly
    chosen sensor (``burst=1`` ≈ a uniform trickle; larger bursts model
    chatty sensors flooding their home's feed).  Every write changes the
    value, so the engine never takes its no-change early-out.
    """
    rng = seeded_rng(seed)
    stream: list[tuple[str, float]] = []
    while len(stream) < events:
        home = fleet.homes[rng.randrange(len(fleet.homes))]
        sensors = fleet.sensors_by_home[home]
        variable = sensors[rng.randrange(len(sensors))]
        base = rng.uniform(0.0, 100.0)
        for step in range(burst):
            stream.append((variable, round(base + 0.37 * step, 3)))
    return stream[:events]
