"""Synthetic rule populations (E2 / A1 / A2 workloads).

The paper's conflict-detection experiment: "the server retains 10,000
registered rules, and ... among them 100 rules specify the same device
in their action parts.  We also assume that the condition part of each
rule contains a logical product of two inequalities.  Thus, a logical
product of four inequalities must be evaluated for each extracted rule."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    Condition,
    DiscreteAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
)
from repro.core.database import RuleDatabase
from repro.core.rule import Rule
from repro.sim.clock import SECONDS_PER_DAY, hhmm
from repro.sim.rng import seeded_rng
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

SENSOR_VARIABLES = (
    "sensor:temperature", "sensor:humidity", "sensor:illuminance",
    "sensor:noise", "sensor:co2", "sensor:pressure",
)

ROOMS = ("living room", "kitchen", "bedroom", "hall", "study")

EPG_KEYWORDS = ("baseball", "news", "movie", "jazz", "drama", "weather")

# A handful of canonical windows so time atoms deduplicate across rules.
TIME_WINDOWS = (
    (hhmm(6), hhmm(9), "in the morning"),
    (hhmm(17), hhmm(21), "in the evening"),
    (hhmm(21), hhmm(6), "at night"),
    (hhmm(12), hhmm(13), "at lunchtime"),
)


@dataclass
class RulePopulation:
    """A generated database plus the probe rule used by the benchmark."""

    database: RuleDatabase
    hot_device: str
    probe_rule: Rule
    total_rules: int
    same_device_rules: int


def _two_inequality_condition(rng) -> AndCondition:
    """A conjunction of two single-variable inequalities (the E2 shape)."""
    atoms = []
    for _ in range(2):
        variable = rng.choice(SENSOR_VARIABLES)
        relation = rng.choice((Relation.GT, Relation.LT))
        bound = rng.uniform(0.0, 100.0)
        atoms.append(NumericAtom(
            LinearConstraint.make(LinearExpr.var(variable), relation, bound)
        ))
    return AndCondition(atoms)


def _action_on(device: str, rng) -> ActionSpec:
    return ActionSpec(
        device_udn=device,
        device_name=device,
        service_id="svc",
        action_name="Set",
        settings=(Setting("level", round(rng.uniform(0.0, 100.0), 1)),),
    )


def build_rule_population(
    total_rules: int = 10_000,
    same_device_rules: int = 100,
    device_count: int = 500,
    seed: int | str = "e2-rules",
) -> RulePopulation:
    """Build the E2 database: ``total_rules`` rules across
    ``device_count`` devices, with exactly ``same_device_rules`` of them
    targeting the designated *hot* device; plus a probe rule targeting
    the hot device (not yet registered)."""
    rng = seeded_rng(seed)
    database = RuleDatabase()
    hot_device = "device-hot"
    other_devices = [f"device-{i:04d}" for i in range(device_count - 1)]
    for index in range(total_rules):
        if index < same_device_rules:
            device = hot_device
        else:
            device = rng.choice(other_devices)
        rule = Rule(
            name=f"synthetic-{index:05d}",
            owner=f"user-{index % 7}",
            condition=_two_inequality_condition(rng),
            action=_action_on(device, rng),
        )
        database.add(rule)
    probe = Rule(
        name="probe-rule",
        owner="prober",
        condition=_two_inequality_condition(rng),
        action=_action_on(hot_device, rng),
    )
    return RulePopulation(
        database=database,
        hot_device=hot_device,
        probe_rule=probe,
        total_rules=total_rules,
        same_device_rules=same_device_rules,
    )


# -- mixed-atom populations (A5 incremental-evaluation workload) ---------------


@dataclass
class MixedPopulation:
    """A mixed-atom rule database for the incremental-engine benchmarks.

    ``hot_variable`` is a shared sensor variable read by the numeric bulk
    of the population — the variable an A5 probe ingests so the seed
    full-re-eval path scales with rule count.
    """

    database: RuleDatabase
    hot_variable: str
    zone_count: int
    total_rules: int


def _zone_numeric(zone: str, rng) -> NumericAtom:
    relation = rng.choice((Relation.GT, Relation.LT))
    bound = rng.uniform(0.0, 100.0)
    return NumericAtom(
        LinearConstraint.make(
            LinearExpr.var(f"{zone}:sensor:temperature"), relation, bound
        )
    )


def _mixed_condition(index: int, rng, zone_count: int) -> Condition:
    """One of four archetypes, weighted toward the paper's numeric shape.

    The discrete / membership / time-window archetypes read per-zone and
    per-person variables, which is what per-home sharding looks like at
    scale; only the numeric bulk reads the shared sensor feed.
    """
    zone = f"zone-{rng.randrange(zone_count):04d}"
    kind = index % 10
    if kind < 7:
        # The E2 shape: conjunction of two shared-sensor inequalities.
        return _two_inequality_condition(rng)
    if kind == 7:
        person = f"person:resident-{index % 23}:place"
        return AndCondition([
            DiscreteAtom(person, rng.choice(ROOMS),
                         negated=rng.random() < 0.2),
            _zone_numeric(zone, rng),
        ])
    if kind == 8:
        return AndCondition([
            OrCondition([
                MembershipAtom("epg:guide:keywords", rng.choice(EPG_KEYWORDS),
                               negated=rng.random() < 0.2),
                DiscreteAtom(f"{zone}:occupancy:present", "true"),
            ]),
            _zone_numeric(zone, rng),
        ])
    # index % 10 == 9 here, so cycle windows on index // 10 to reach all
    # four shapes (including the midnight-wrapping "at night").
    start, end, label = TIME_WINDOWS[(index // 10) % len(TIME_WINDOWS)]
    return AndCondition([
        TimeWindowAtom(start, end, label=label),
        DiscreteAtom(f"{zone}:occupancy:present", "true"),
    ])


# -- templated / dense-window populations (A7 shared-network workloads) --------


@dataclass
class TemplatedPopulation:
    """A duplicated-template rule database for the A7 ingest benchmark.

    ``templates`` distinct two-atom conjunctions (a shared-sensor
    inequality ∧ a per-template occupancy equality) are each stamped out
    ``duplication`` times under fresh names/devices — the fleet shape
    where hundreds of apartments run the same vendor rule pack.  All
    thresholds sit inside ``(toggle_low, toggle_high)``, so one toggle
    of ``hot_variable`` flips every distinct atom while every clause
    stays false (occupancy is never set): exactly the delta the shared
    network absorbs in O(templates) and the per-rule path pays
    O(templates × duplication) for.
    """

    database: RuleDatabase
    hot_variable: str
    templates: int
    duplication: int
    total_rules: int
    toggle_low: float
    toggle_high: float


def build_templated_population(
    templates: int = 50,
    duplication: int = 100,
    seed: int | str = "a7-templated",
) -> TemplatedPopulation:
    rng = seeded_rng(seed)
    database = RuleDatabase()
    hot_variable = "sensor:temperature"
    toggle_low, toggle_high = 24.0, 26.0
    thresholds = sorted(
        rng.uniform(toggle_low + 0.1, toggle_high - 0.1)
        for _ in range(templates)
    )
    index = 0
    for template, threshold in enumerate(thresholds):
        for _copy in range(duplication):
            # Fresh condition objects per rule: dedup must happen through
            # atom/clause identity, not shared object memoization.
            condition = AndCondition([
                NumericAtom(LinearConstraint.make(
                    LinearExpr.var(hot_variable), Relation.GT, threshold)),
                DiscreteAtom(f"zone-{template:04d}:occupancy:present",
                             "true"),
            ])
            database.add(Rule(
                name=f"tmpl-{index:06d}",
                owner=f"user-{index % 7}",
                condition=condition,
                action=_action_on(f"tmpl-dev-{index:06d}", rng),
            ))
            index += 1
    return TemplatedPopulation(
        database=database,
        hot_variable=hot_variable,
        templates=templates,
        duplication=duplication,
        total_rules=index,
        toggle_low=toggle_low,
        toggle_high=toggle_high,
    )


@dataclass
class WindowPopulation:
    """A dense time-window rule database for the A7 tick benchmark.

    Every rule conjoins a time window (starts spread across the whole
    day, off the minute grid) with a never-true occupancy atom, so
    clock ticks measure pure evaluation cost: the per-tick path walks
    all ``total_rules`` rules every tick, the wheel path only the
    handful whose boundary a tick crossed — and no rule ever fires.
    """

    database: RuleDatabase
    total_rules: int


def build_window_population(
    total_rules: int = 4_096,
    seed: int | str = "a7-windows",
) -> WindowPopulation:
    rng = seeded_rng(seed)
    database = RuleDatabase()
    for index in range(total_rules):
        start = rng.uniform(0.0, SECONDS_PER_DAY - 1.0)
        length = rng.uniform(1_800.0, 10_800.0)
        end = (start + length) % SECONDS_PER_DAY
        condition = AndCondition([
            TimeWindowAtom(start, end),
            DiscreteAtom(f"wzone-{index:05d}:occupancy:present", "true"),
        ])
        database.add(Rule(
            name=f"window-{index:05d}",
            owner=f"user-{index % 7}",
            condition=condition,
            action=_action_on(f"window-dev-{index:05d}", rng),
        ))
    return WindowPopulation(database=database, total_rules=total_rules)


@dataclass
class ColumnarPopulation:
    """A threshold-sweep rule database for the A9 columnar benchmark.

    Every rule conjoins a distinct inequality over ``hot_variable``
    (thresholds spread across ``(toggle_low, toggle_high)``) with a
    shared never-true inequality over the same variable.  A write that
    jumps between ``toggle_low`` and ``toggle_high`` therefore flips
    *every* distinct threshold atom — the worst-case band sweep — while
    no clause ever turns true, so the benchmark isolates the atom-flip /
    clause-counter critical path from rule evaluation and arbitration.
    """

    database: RuleDatabase
    hot_variable: str
    total_rules: int
    toggle_low: float
    toggle_high: float


def build_columnar_population(
    total_rules: int = 10_000,
    seed: int | str = "a9-columnar",
) -> ColumnarPopulation:
    rng = seeded_rng(seed)
    database = RuleDatabase()
    hot_variable = "sensor:temperature"
    toggle_low, toggle_high = 10.0, 90.0
    for index in range(total_rules):
        threshold = rng.uniform(toggle_low + 0.5, toggle_high - 0.5)
        # Fresh atom objects per rule (dedup is by key); the companion
        # atom's key is identical across rules, so it collapses to one
        # shared never-true slot keeping every clause false.
        condition = AndCondition([
            NumericAtom(LinearConstraint.make(
                LinearExpr.var(hot_variable), Relation.GT, threshold)),
            NumericAtom(LinearConstraint.make(
                LinearExpr.var(hot_variable), Relation.GT, 1e9)),
        ])
        database.add(Rule(
            name=f"col-{index:06d}",
            owner=f"user-{index % 7}",
            condition=condition,
            action=_action_on(f"col-dev-{index:06d}", rng),
        ))
    return ColumnarPopulation(
        database=database,
        hot_variable=hot_variable,
        total_rules=total_rules,
        toggle_low=toggle_low,
        toggle_high=toggle_high,
    )


def build_mixed_population(
    total_rules: int = 10_000,
    zone_count: int | None = None,
    seed: int | str = "a5-mixed",
) -> MixedPopulation:
    """Build a mixed-atom database: 70% shared-sensor numeric rules plus
    discrete, membership and time-window archetypes over per-zone
    variables.  Each rule drives its own device so benchmark probes
    measure evaluation, not arbitration contention."""
    if zone_count is None:
        zone_count = max(8, total_rules // 50)
    rng = seeded_rng(seed)
    database = RuleDatabase()
    for index in range(total_rules):
        rule = Rule(
            name=f"mixed-{index:05d}",
            owner=f"user-{index % 7}",
            condition=_mixed_condition(index, rng, zone_count),
            action=_action_on(f"mixed-dev-{index:05d}", rng),
        )
        database.add(rule)
    return MixedPopulation(
        database=database,
        hot_variable="sensor:temperature",
        zone_count=zone_count,
        total_rules=total_rules,
    )
