"""Synthetic rule populations (E2 / A1 / A2 workloads).

The paper's conflict-detection experiment: "the server retains 10,000
registered rules, and ... among them 100 rules specify the same device
in their action parts.  We also assume that the condition part of each
rule contains a logical product of two inequalities.  Thus, a logical
product of four inequalities must be evaluated for each extracted rule."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.action import ActionSpec, Setting
from repro.core.condition import AndCondition, NumericAtom
from repro.core.database import RuleDatabase
from repro.core.rule import Rule
from repro.sim.rng import seeded_rng
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

SENSOR_VARIABLES = (
    "sensor:temperature", "sensor:humidity", "sensor:illuminance",
    "sensor:noise", "sensor:co2", "sensor:pressure",
)


@dataclass
class RulePopulation:
    """A generated database plus the probe rule used by the benchmark."""

    database: RuleDatabase
    hot_device: str
    probe_rule: Rule
    total_rules: int
    same_device_rules: int


def _two_inequality_condition(rng) -> AndCondition:
    """A conjunction of two single-variable inequalities (the E2 shape)."""
    atoms = []
    for _ in range(2):
        variable = rng.choice(SENSOR_VARIABLES)
        relation = rng.choice((Relation.GT, Relation.LT))
        bound = rng.uniform(0.0, 100.0)
        atoms.append(NumericAtom(
            LinearConstraint.make(LinearExpr.var(variable), relation, bound)
        ))
    return AndCondition(atoms)


def _action_on(device: str, rng) -> ActionSpec:
    return ActionSpec(
        device_udn=device,
        device_name=device,
        service_id="svc",
        action_name="Set",
        settings=(Setting("level", round(rng.uniform(0.0, 100.0), 1)),),
    )


def build_rule_population(
    total_rules: int = 10_000,
    same_device_rules: int = 100,
    device_count: int = 500,
    seed: int | str = "e2-rules",
) -> RulePopulation:
    """Build the E2 database: ``total_rules`` rules across
    ``device_count`` devices, with exactly ``same_device_rules`` of them
    targeting the designated *hot* device; plus a probe rule targeting
    the hot device (not yet registered)."""
    rng = seeded_rng(seed)
    database = RuleDatabase()
    hot_device = "device-hot"
    other_devices = [f"device-{i:04d}" for i in range(device_count - 1)]
    for index in range(total_rules):
        if index < same_device_rules:
            device = hot_device
        else:
            device = rng.choice(other_devices)
        rule = Rule(
            name=f"synthetic-{index:05d}",
            owner=f"user-{index % 7}",
            condition=_two_inequality_condition(rng),
            action=_action_on(device, rng),
        )
        database.add(rule)
    probe = Rule(
        name="probe-rule",
        owner="prober",
        condition=_two_inequality_condition(rng),
        action=_action_on(hot_device, rng),
    )
    return RulePopulation(
        database=database,
        hot_device=hot_device,
        probe_rule=probe,
        total_rules=total_rules,
        same_device_rules=same_device_rules,
    )
