"""Virtual UPnP device populations (E1 / A4 workloads).

The paper: "We invoked 50 instances of virtual UPnP devices on the PCs
connected to the home server, and measured the time for retrieving a
specified device by its device name [and] by their service names."
"""

from __future__ import annotations

from repro.home.appliances import Lamp
from repro.home.environment import Room
from repro.home.sensors import Hygrometer, Thermometer
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.upnp.device import UPnPDevice

ROOM_NAMES = ("living room", "kitchen", "bedroom", "hall", "study")


def build_device_population(
    simulator: Simulator,
    bus: NetworkBus,
    count: int = 50,
) -> list[UPnPDevice]:
    """Attach ``count`` virtual devices (a mix of lamps, thermometers and
    hygrometers across five rooms) and return them.

    Device names are ``lamp-NN`` / ``thermo-NN`` / ``hygro-NN`` so
    retrieval benchmarks can pick a deterministic mid-population target.
    """
    devices: list[UPnPDevice] = []
    rooms = {name: Room(name) for name in ROOM_NAMES}
    for index in range(count):
        room = rooms[ROOM_NAMES[index % len(ROOM_NAMES)]]
        family = index % 3
        if family == 0:
            device: UPnPDevice = Lamp(f"lamp-{index:03d}", location=room.name)
        elif family == 1:
            device = Thermometer(f"thermo-{index:03d}", room)
        else:
            device = Hygrometer(f"hygro-{index:03d}", room)
        device.attach(bus, simulator)
        devices.append(device)
    return devices
