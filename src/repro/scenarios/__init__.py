"""End-to-end scenarios reproducing the paper's narratives."""

from repro.scenarios.fig1 import Fig1Result, run_fig1_scenario

__all__ = ["Fig1Result", "run_fig1_scenario"]
