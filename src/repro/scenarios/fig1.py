"""Figure 1 — the three-resident control scenario, end to end.

Reproduces the paper's time-chart (Sect. 3.1, Fig. 1) on the full stack:
CADEL text → parser → compiler → registration pipeline (consistency +
conflict + priority prompts) → rule engine → UPnP commands → appliance
state → sensors → back into the engine.

Cast and preferences (verbatim from the paper):

* **Tom** — jazz on the stereo when he's in the living room in the
  evening (s1; headphones s'1 when the TV is on), half-lighting floor
  lamps (l1), air-conditioner at 25 °C/60 % when hot-and-stuffy by his
  definition 26 °C/65 % (a1).
* **Alan** — the baseball game on the TV when one is on air (t2),
  recorded on the video recorder when the TV is unavailable (r2),
  air-conditioner 24 °C/55 % at thresholds 25 °C/60 % (a2).
* **Emily** — her movie on the TV (t3) with sound through the stereo
  (s3) and the fluorescent light bright (l3), air-conditioner
  27 °C/65 % at thresholds 29 °C/75 % (a3).

Priorities (context-attached, Sect. 3.2): Alan > Tom while "Alan got
home from work"; Emily > Alan > Tom while "Emily got home from
shopping".

Timeline: Tom arrives 17:05 (from school), the baseball game airs
17:30-19:30 on channel 4, Alan arrives 17:40 (from work), Emily's movie
airs 18:15-20:30 on channel 7, Emily arrives 18:30 (from shopping); the
run ends 20:00.

Weather is a muggy heat wave (the only way the paper's own a3 thresholds
of 29 °C/75 % can trigger at 18:30), and each arrival briefly opens the
entrance door, bumping living-room temperature and humidity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import TraceEntry
from repro.core.server import HomeServer
from repro.home.builder import LIVING_ROOM, DemoHome, build_demo_home
from repro.home.sensors.epg import Program
from repro.net.bus import NetworkBus
from repro.sim.clock import hhmm
from repro.sim.events import Simulator
from repro.support.authoring import AuthoringSession
from repro.cadel.binding import HomeDirectory
from repro.cadel.words import WordDictionary

BASEBALL_CHANNEL = 4
MOVIE_CHANNEL = 7

ARRIVAL_TEMP_BUMP = 1.5    # °C let in by the opened entrance door
ARRIVAL_HUMID_BUMP = 12.0  # % relative humidity (muggy outside air)


@dataclass
class Snapshot:
    """Device ownership and state at one timeline instant."""

    label: str
    time: float
    tv_holder: str | None
    stereo_holder: str | None
    recorder_holder: str | None
    aircon_holder: str | None
    tv_on: bool
    tv_channel: float
    stereo_output: str
    stereo_source: str
    recording: bool
    aircon_target: float
    floor_lamp_level: float
    fluorescent_on: bool
    room_temperature: float
    room_humidity: float


@dataclass
class Fig1Result:
    """Everything the scenario produced, for tests/benches/reports."""

    home: DemoHome
    server: HomeServer
    snapshots: dict[str, Snapshot] = field(default_factory=dict)
    registration_conflicts: list[str] = field(default_factory=list)

    @property
    def trace(self) -> list[TraceEntry]:
        return self.server.engine.trace

    def timeline_rows(self) -> list[str]:
        """The Fig. 1 time-chart as printable rows."""
        rows = []
        for snap in self.snapshots.values():
            rows.append(
                f"{snap.label:<18} TV={snap.tv_holder or '-':<10}"
                f" stereo={snap.stereo_holder or '-':<10}"
                f" recorder={snap.recorder_holder or '-':<10}"
                f" aircon={snap.aircon_holder or '-':<10}"
                f" room={snap.room_temperature:.1f}C/{snap.room_humidity:.0f}%"
            )
        return rows


def _heatwave_temperature(time_of_day: float) -> float:
    """A muggy 33-36 °C day peaking late afternoon."""
    import math

    from repro.sim.clock import SECONDS_PER_DAY

    phase = 2.0 * math.pi * (time_of_day - 15.0 * 3600.0) / SECONDS_PER_DAY
    return 34.5 + 1.5 * math.cos(phase)


def _heatwave_humidity(time_of_day: float) -> float:
    import math

    from repro.sim.clock import SECONDS_PER_DAY

    phase = 2.0 * math.pi * (time_of_day - 5.0 * 3600.0) / SECONDS_PER_DAY
    return 82.0 + 6.0 * math.cos(phase)


def run_fig1_scenario(*, verbose: bool = False) -> Fig1Result:
    """Run the full Fig. 1 scenario; returns the result bundle."""
    simulator = Simulator()
    bus = NetworkBus(simulator)
    server = HomeServer(simulator, bus)
    home = build_demo_home(
        simulator, bus, event_sink=server.post_event, start_environment=False
    )
    home.environment.outdoor_temperature = _heatwave_temperature
    home.environment.outdoor_humidity = _heatwave_humidity
    # Weak wall insulation + modest AC for a hot, hard-to-cool room.
    home.environment.LEAK_RATE_PER_HOUR = 0.9
    home.aircon.PULL_RATE_PER_HOUR = 1.4
    living = home.environment.room(LIVING_ROOM)
    living.temperature = 31.0
    living.humidity = 78.0
    home.environment.start()

    home.epg.schedule(Program(
        title="pro baseball: swallows vs tigers",
        channel=BASEBALL_CHANNEL,
        start=hhmm(17, 30),
        end=hhmm(19, 30),
        keywords=("baseball game", "sports"),
    ))
    home.epg.schedule(Program(
        title="an affair to remember",
        channel=MOVIE_CHANNEL,
        start=hhmm(18, 15),
        end=hhmm(20, 30),
        keywords=("movie", "romance"),
    ))

    server.discover()

    directory = HomeDirectory(
        users=list(home.locator.residents),
        locator_udn=home.locator.udn,
        epg_udn=home.epg.udn,
    )
    shared_words = WordDictionary()
    sessions = {
        name: AuthoringSession(server, name, directory,
                               shared_words=shared_words)
        for name in ("Tom", "Alan", "Emily")
    }
    result = Fig1Result(home=home, server=server)

    def submit(user: str, text: str, rule_name: str) -> None:
        outcome = sessions[user].submit(text, rule_name=rule_name)
        if outcome.conflicts:
            result.registration_conflicts.extend(
                report.describe() for report in outcome.conflicts
            )

    # ---- Tom's preferences (Sect. 3.1) -------------------------------------
    tom = sessions["Tom"]
    tom.submit('Let\'s call the condition that temperature is higher than '
               '26 degrees and humidity is higher than 65 percent '
               '"hot and stuffy"')
    tom.submit('Let\'s call the configuration that 50 percent of level '
               'setting "half-lighting"')
    submit("Tom",
           "When I am in the living room at evening and the TV is turned off, "
           "play the stereo with jazz of genre setting and "
           "speakers of output setting",
           "tom-s1-jazz-speakers")
    submit("Tom",
           "When I am in the living room at evening and the TV is turned on, "
           "play the stereo with jazz of genre setting and "
           "headphones of output setting",
           "tom-s1p-jazz-headphones")
    submit("Tom",
           'When I am in the living room at evening, turn on the floor lamp '
           'with "half-lighting"',
           "tom-l1-half-lighting")
    submit("Tom",
           'When I am in the living room and the living room is '
           '"hot and stuffy", turn on the air conditioner with 25 degrees of '
           'temperature setting and 60 percent of humidity setting',
           "tom-a1-aircon")

    # ---- Alan's preferences --------------------------------------------------
    alan = sessions["Alan"]
    alan.submit('Let\'s call the condition that temperature is higher than '
                '25 degrees and humidity is higher than 60 percent '
                '"hot and stuffy"')
    submit("Alan",
           "When I am in the living room and a baseball game is on air, "
           f"turn on the TV with {BASEBALL_CHANNEL} of channel setting, "
           f"otherwise record the video recorder with {BASEBALL_CHANNEL} "
           "of channel setting",
           "alan-t2-baseball")
    submit("Alan",
           'When I am in the living room and the living room is '
           '"hot and stuffy", turn on the air conditioner with 24 degrees of '
           'temperature setting and 55 percent of humidity setting',
           "alan-a2-aircon")

    # ---- Emily's preferences ----------------------------------------------------
    emily = sessions["Emily"]
    emily.submit('Let\'s call the condition that temperature is higher than '
                 '29 degrees and humidity is higher than 75 percent '
                 '"hot and stuffy"')
    submit("Emily",
           "When I am in the living room and a movie is on air, "
           f"turn on the TV with {MOVIE_CHANNEL} of channel setting",
           "emily-t3-movie")
    submit("Emily",
           "When I am in the living room and a movie is on air, "
           "play back the stereo with tv sound of source setting and "
           "speakers of output setting",
           "emily-s3-movie-sound")
    submit("Emily",
           "When I am in the living room and a movie is on air, "
           "turn on the fluorescent light with 100 of level setting",
           "emily-l3-bright")
    submit("Emily",
           'When I am in the living room and the living room is '
           '"hot and stuffy", turn on the air conditioner with 27 degrees of '
           'temperature setting and 65 percent of humidity setting',
           "emily-a3-aircon")

    # ---- Priority orders (Sect. 3.2, Fig. 7) ----------------------------------
    for device in ("TV", "stereo", "air conditioner", "video recorder"):
        alan.set_priority(device, ["Alan", "Tom"],
                          context="alan got home from work")
    for device in ("TV", "stereo", "air conditioner", "video recorder",
                   "fluorescent light"):
        emily.set_priority(device, ["Emily", "Alan", "Tom"],
                           context="emily got home from shopping")

    # ---- The timeline -------------------------------------------------------------
    household = home.household

    def arrival_bump() -> None:
        living.temperature += ARRIVAL_TEMP_BUMP
        living.humidity = min(100.0, living.humidity + ARRIVAL_HUMID_BUMP)

    def snapshot(label: str) -> None:
        engine = server.engine

        def holder(udn: str) -> str | None:
            holding = engine.holder_of(udn)
            return holding[0] if holding else None

        result.snapshots[label] = Snapshot(
            label=label,
            time=simulator.now,
            tv_holder=holder(home.tv.udn),
            stereo_holder=holder(home.stereo.udn),
            recorder_holder=holder(home.recorder.udn),
            aircon_holder=holder(home.aircon.udn),
            tv_on=home.tv.is_on,
            tv_channel=home.tv.channel,
            stereo_output=home.stereo.output,
            stereo_source=home.stereo.source,
            recording=home.recorder.is_recording,
            aircon_target=home.aircon.target_temperature,
            floor_lamp_level=home.floor_lamp.level,
            fluorescent_on=home.fluorescent.is_on,
            room_temperature=living.temperature,
            room_humidity=living.humidity,
        )
        if verbose:
            print(result.timeline_rows()[-1])

    simulator.run_until(hhmm(17, 5))
    arrival_bump()
    household.arrive_home("Tom", "school", LIVING_ROOM)
    simulator.run_until(hhmm(17, 10))
    snapshot("17:10 Tom home")

    simulator.run_until(hhmm(17, 35))
    snapshot("17:35 game on air")

    arrival_bump()
    household.arrive_home("Alan", "work", LIVING_ROOM)
    simulator.run_until(hhmm(17, 45))
    snapshot("17:45 Alan home")

    simulator.run_until(hhmm(18, 20))
    snapshot("18:20 movie on air")

    simulator.run_until(hhmm(18, 30))
    arrival_bump()
    household.arrive_home("Emily", "shopping", LIVING_ROOM)
    simulator.run_until(hhmm(18, 32))
    snapshot("18:32 Emily home")

    simulator.run_until(hhmm(20, 0))
    snapshot("20:00 evening ends")

    server.shutdown()
    return result
