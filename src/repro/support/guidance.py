"""Guidance: what a device can do and what sensors currently read.

Backs the action-configuration interface (Fig. 6): "By selecting a
specific device in the retrieved device list, the I/F shows what actions
are allowed in the device", and the condition side's live sensor values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import RuleEngine
from repro.core.server import variable_id
from repro.upnp.registry import DeviceRecord


@dataclass(frozen=True)
class ActionInfo:
    """One allowed action of a device, with its accepted settings."""

    service_id: str
    name: str
    arguments: tuple[str, ...]
    description: str


@dataclass(frozen=True)
class ReadingInfo:
    """One live variable of a device as the rule engine currently sees it."""

    service_id: str
    variable: str
    value: object
    unit: str


class GuidanceService:
    """Answers "what can this device do?" and "what does it read now?"."""

    def __init__(self, engine: RuleEngine):
        self._engine = engine

    def allowed_actions(self, record: DeviceRecord) -> list[ActionInfo]:
        actions = []
        for service in record.description.get("services", ()):
            for action in service.get("actions", ()):
                actions.append(ActionInfo(
                    service_id=service["service_id"],
                    name=action["name"],
                    arguments=tuple(action.get("in_args", ())),
                    description=action.get("description", ""),
                ))
        return actions

    def current_readings(self, record: DeviceRecord) -> list[ReadingInfo]:
        """Every evented variable with its latest value in the world
        state (None when no event has arrived yet)."""
        readings = []
        world = self._engine.world
        for service in record.description.get("services", ()):
            for variable in service.get("variables", ()):
                if not variable.get("sends_events"):
                    continue
                vid = variable_id(record.udn, service["service_id"],
                                  variable["name"])
                value: object = world.numeric(vid)
                if value is None:
                    value = world.discrete(vid)
                if value is None:
                    members = world.set_members(vid)
                    value = set(members) if members else None
                readings.append(ReadingInfo(
                    service_id=service["service_id"],
                    variable=variable["name"],
                    value=value,
                    unit=variable.get("unit", ""),
                ))
        return readings

    def configuration_parameters(self, record: DeviceRecord) -> dict[str, list[str]]:
        """Action name → accepted setting parameters, for the
        configuration half of the dialog."""
        return {
            info.name: list(info.arguments)
            for info in self.allowed_actions(record)
            if info.arguments
        }
