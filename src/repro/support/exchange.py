"""Rule import/export (Sect. 4.3 (iv)).

"Our framework provides an import/export mechanism for rules.  Users can
import a rule registered in the database, and customize it to suit their
preferences."

Rules are exchanged as their CADEL *source text* plus the word
definitions they rely on, packaged as plain JSON.  Exchanging source
(not compiled objects) is what makes customization possible: the
importer re-parses under their own authoring session, re-binds against
their device population, and may tweak thresholds or devices first.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.cadel.ast import CondDef, ConfDef
from repro.core.rule import Rule
from repro.errors import RuleError
from repro.support.authoring import AuthoringResult, AuthoringSession

PACKAGE_FORMAT = "cadel-rule-package/1"


@dataclass
class RulePackage:
    """A portable bundle of CADEL sentences."""

    rules: list[str] = field(default_factory=list)
    condition_words: dict[str, str] = field(default_factory=dict)
    configuration_words: dict[str, str] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "format": PACKAGE_FORMAT,
                "rules": self.rules,
                "condition_words": self.condition_words,
                "configuration_words": self.configuration_words,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "RulePackage":
        data = json.loads(text)
        if data.get("format") != PACKAGE_FORMAT:
            raise RuleError(
                f"unsupported rule package format: {data.get('format')!r}"
            )
        return cls(
            rules=list(data.get("rules", ())),
            condition_words=dict(data.get("condition_words", {})),
            configuration_words=dict(data.get("configuration_words", {})),
        )


class RuleExporter:
    """Packages a user's rules and word definitions for exchange."""

    def __init__(self, session: AuthoringSession):
        self.session = session

    def export_rules(self, rules: list[Rule]) -> RulePackage:
        package = RulePackage()
        for rule in rules:
            if not rule.source_text:
                raise RuleError(
                    f"rule {rule.name!r} has no CADEL source to export"
                )
            package.rules.append(rule.source_text)
        words = self.session.words
        for word in words.condition_words():
            expr = words.condition(word)
            package.condition_words[word] = (
                f"let us call the condition that {expr.to_text()} \"{word}\""
            )
        for word in words.configuration_words():
            settings = words.configuration(word)
            rows = " and ".join(s.to_text() for s in settings)
            package.configuration_words[word] = (
                f"let us call the configuration that {rows} \"{word}\""
            )
        return package

    def export_owner(self) -> RulePackage:
        rules = self.session.server.database.rules_of_owner(self.session.user)
        return self.export_rules(rules)


class RuleImporter:
    """Replays a package through the importer's own authoring session."""

    def __init__(self, session: AuthoringSession):
        self.session = session

    def import_package(
        self, package: RulePackage, *, register_rules: bool = True
    ) -> list[AuthoringResult]:
        """Define the packaged words, then (optionally) register every
        rule; returns one result per registered rule."""
        parser = self.session.parser
        for sentence in package.condition_words.values():
            command = parser.parse(sentence)
            assert isinstance(command, CondDef)
            self.session.words.define_condition(command.word, command.expr)
        for sentence in package.configuration_words.values():
            command = parser.parse(sentence)
            assert isinstance(command, ConfDef)
            self.session.words.define_configuration(command.word,
                                                    command.settings)
        results = []
        if register_rules:
            for sentence in package.rules:
                results.append(self.session.submit(sentence))
        return results
