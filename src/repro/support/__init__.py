"""Rule-description support (the paper's Sect. 4.3 module).

* :mod:`repro.support.authoring` — per-user authoring sessions: parse
  CADEL text, maintain the user's word dictionary (with household-shared
  fallback), compile and register rules, set priority orders with CADEL
  contexts.
* :mod:`repro.support.lookup` — the sensor/device lookup service behind
  the condition-description and action-configuration GUIs (Figs. 4-6):
  retrieval by keyword, sensor type, name, location, action, and by
  user-defined word — plus the reverse direction.
* :mod:`repro.support.guidance` — allowed actions of a device, live
  sensor values, configuration parameters.
* :mod:`repro.support.exchange` — rule import/export ("users can import
  a rule registered in the database, and customize it").
* :mod:`repro.support.fsio` — crash-safe atomic file replacement.
* :mod:`repro.support.wal` — framed, checksummed write-ahead logging.
"""

from repro.support.authoring import AuthoringSession
from repro.support.console import ConsoleFrontend
from repro.support.exchange import RuleExporter, RuleImporter, RulePackage
from repro.support.fsio import atomic_write_bytes, atomic_write_text
from repro.support.guidance import GuidanceService
from repro.support.lookup import LookupQuery, LookupService
from repro.support.persistence import restore_household, save_household
from repro.support.wal import WalReadReport, WalWriter, read_wal

__all__ = [
    "AuthoringSession",
    "ConsoleFrontend",
    "RuleExporter",
    "RuleImporter",
    "RulePackage",
    "GuidanceService",
    "LookupQuery",
    "LookupService",
    "WalReadReport",
    "WalWriter",
    "atomic_write_bytes",
    "atomic_write_text",
    "read_wal",
    "restore_household",
    "save_household",
]
