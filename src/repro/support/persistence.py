"""Whole-household persistence.

A home server restarts (power cut, upgrade); the registered rules, every
user's word definitions and the negotiated priority orders must survive.
Persistence stores *CADEL source* rather than compiled objects — device
UDNs are regenerated on every boot, so rules and priority contexts are
re-parsed and re-bound against the freshly discovered population, which
also means an archive restores cleanly onto a home whose devices moved
or were replaced (binding errors surface per rule, not as a corrupt
database).

Format: one JSON document (versioned), building on the per-user package
format of :mod:`repro.support.exchange`.  Undecodable or unversioned
documents raise :class:`~repro.errors.ArchiveError`; damage *inside* a
well-formed archive (an unbindable rule, a word that no longer parses, a
priority naming a vanished device) is reported per item and never stops
the rest of the restore — the engine stays serviceable with whatever did
bind.  :func:`save_household` writes through the atomic-replace helper
(:mod:`repro.support.fsio`), so a crash mid-save never corrupts an
existing archive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.server import HomeServer
from repro.errors import ArchiveError, CadelError, ReproError, RuleError
from repro.support.authoring import AuthoringSession
from repro.support.fsio import atomic_write_text

ARCHIVE_FORMAT = "cadel-household/1"


@dataclass
class RestoreReport:
    """What a restore managed to bring back — and what it had to skip."""

    rules_restored: int = 0
    rules_failed: list[tuple[str, str]] = field(default_factory=list)
    words_restored: int = 0
    words_failed: list[tuple[str, str]] = field(default_factory=list)
    priorities_restored: int = 0
    priorities_failed: list[tuple[str, str]] = field(default_factory=list)

    def ok(self) -> bool:
        return not (
            self.rules_failed or self.words_failed or self.priorities_failed
        )


def _word_sentences(session: AuthoringSession,
                    personal_only: bool) -> tuple[dict[str, str], dict[str, str]]:
    """Render a session's word definitions back to CADEL sentences."""
    words = session.personal_words if personal_only else session.words
    conditions = {}
    for word in words.condition_words():
        expr = words.condition(word)
        conditions[word] = (
            f'let us call the condition that {expr.to_text()} "{word}"'
        )
    configurations = {}
    for word in words.configuration_words():
        rows = " and ".join(s.to_text() for s in words.configuration(word))
        configurations[word] = (
            f'let us call the configuration that {rows} "{word}"'
        )
    return conditions, configurations


def save_household(
    server: HomeServer,
    sessions: dict[str, AuthoringSession],
    path: str | None = None,
) -> str:
    """Serialize rules, words and priorities to a JSON document; with
    ``path``, also commit it to disk atomically (temp file + rename), so
    an interrupted save leaves any previous archive intact."""
    users: dict[str, Any] = {}
    shared_conditions: dict[str, str] = {}
    shared_configurations: dict[str, str] = {}
    for name, session in sessions.items():
        conditions, configurations = _word_sentences(session,
                                                     personal_only=True)
        rules = []
        for rule in server.database.rules_of_owner(name):
            if not rule.source_text:
                raise RuleError(
                    f"rule {rule.name!r} has no CADEL source; "
                    "programmatic rules cannot be archived"
                )
            rules.append({"name": rule.name, "text": rule.source_text})
        users[name] = {
            "rules": rules,
            "condition_words": conditions,
            "configuration_words": configurations,
        }
        shared = session.shared_words
        for word in shared.condition_words():
            expr = shared.condition(word)
            shared_conditions[word] = (
                f'let us call the condition that {expr.to_text()} "{word}"'
            )
        for word in shared.configuration_words():
            rows = " and ".join(
                s.to_text() for s in shared.configuration(word)
            )
            shared_configurations[word] = (
                f'let us call the configuration that {rows} "{word}"'
            )

    priorities = []
    registry = server.control_point.registry
    for record in registry.all():
        for order in server.priorities.orders_for_device(record.udn):
            priorities.append({
                "device": record.friendly_name,
                "ranking": list(order.ranking),
                "context": order.label or None,
            })

    document = json.dumps(
        {
            "format": ARCHIVE_FORMAT,
            "users": users,
            "shared_condition_words": shared_conditions,
            "shared_configuration_words": shared_configurations,
            "priorities": priorities,
        },
        indent=2,
    )
    if path is not None:
        atomic_write_text(path, document)
    return document


def _parse_archive(archive_json: str) -> dict:
    """Decode and version-check an archive document, raising the typed
    :class:`~repro.errors.ArchiveError` on anything undecodable —
    truncated or invalid JSON, a non-object document, a missing or
    unsupported format marker."""
    try:
        data = json.loads(archive_json)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ArchiveError(
            f"archive is not valid JSON (truncated or corrupt): {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ArchiveError(
            "archive must be a JSON object, got "
            f"{type(data).__name__}"
        )
    if data.get("format") != ARCHIVE_FORMAT:
        raise ArchiveError(
            f"unsupported archive format: {data.get('format')!r}"
        )
    return data


def restore_household(
    sessions: dict[str, AuthoringSession], archive_json: str
) -> RestoreReport:
    """Replay an archive through fresh authoring sessions.

    Rules that no longer bind (device gone), words that no longer parse
    and priorities naming vanished devices are reported per item, not
    fatal — every other item still restores, and the engine stays
    serviceable.  Priority orders are restored by the first session
    whose user appears in the ranking (matching who would have created
    them).
    """
    data = _parse_archive(archive_json)
    if not sessions:
        raise ArchiveError("no authoring sessions to restore into")
    report = RestoreReport()

    any_session = next(iter(sessions.values()))
    for word, sentence in data.get("shared_condition_words", {}).items():
        try:
            command = any_session.parser.parse(sentence)
            any_session.shared_words.define_condition(
                command.word, command.expr)
            report.words_restored += 1
        except ReproError as exc:
            report.words_failed.append((word, str(exc)))
    for word, sentence in data.get("shared_configuration_words", {}).items():
        try:
            command = any_session.parser.parse(sentence)
            any_session.shared_words.define_configuration(
                command.word, command.settings
            )
            report.words_restored += 1
        except ReproError as exc:
            report.words_failed.append((word, str(exc)))

    for user, payload in data.get("users", {}).items():
        session = sessions.get(user)
        if session is None:
            report.rules_failed.extend(
                (rule["name"], f"no session for user {user!r}")
                for rule in payload.get("rules", ())
            )
            continue
        for word, sentence in payload.get("condition_words", {}).items():
            try:
                command = session.parser.parse(sentence)
                session.words.define_condition(command.word, command.expr)
                report.words_restored += 1
            except ReproError as exc:
                report.words_failed.append((word, str(exc)))
        for word, sentence in payload.get("configuration_words", {}).items():
            try:
                command = session.parser.parse(sentence)
                session.words.define_configuration(
                    command.word, command.settings)
                report.words_restored += 1
            except ReproError as exc:
                report.words_failed.append((word, str(exc)))
        for rule in payload.get("rules", ()):
            try:
                session.submit(rule["text"], rule_name=rule["name"])
                report.rules_restored += 1
            except (CadelError, RuleError) as exc:
                report.rules_failed.append((rule["name"], str(exc)))

    for order in data.get("priorities", ()):
        owner_session = next(
            (sessions[user] for user in order["ranking"] if user in sessions),
            any_session,
        )
        try:
            owner_session.set_priority(
                order["device"], list(order["ranking"]),
                context=order.get("context"),
            )
            report.priorities_restored += 1
        except ReproError as exc:
            report.priorities_failed.append((order["device"], str(exc)))
    return report
