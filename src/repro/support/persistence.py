"""Whole-household persistence.

A home server restarts (power cut, upgrade); the registered rules, every
user's word definitions and the negotiated priority orders must survive.
Persistence stores *CADEL source* rather than compiled objects — device
UDNs are regenerated on every boot, so rules and priority contexts are
re-parsed and re-bound against the freshly discovered population, which
also means an archive restores cleanly onto a home whose devices moved
or were replaced (binding errors surface per rule, not as a corrupt
database).

Format: one JSON document (versioned), building on the per-user package
format of :mod:`repro.support.exchange`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.core.server import HomeServer
from repro.errors import CadelError, RuleError
from repro.support.authoring import AuthoringSession

ARCHIVE_FORMAT = "cadel-household/1"


@dataclass
class RestoreReport:
    """What a restore managed to bring back."""

    rules_restored: int = 0
    rules_failed: list[tuple[str, str]] = field(default_factory=list)
    words_restored: int = 0
    priorities_restored: int = 0

    def ok(self) -> bool:
        return not self.rules_failed


def _word_sentences(session: AuthoringSession,
                    personal_only: bool) -> tuple[dict[str, str], dict[str, str]]:
    """Render a session's word definitions back to CADEL sentences."""
    words = session.personal_words if personal_only else session.words
    conditions = {}
    for word in words.condition_words():
        expr = words.condition(word)
        conditions[word] = (
            f'let us call the condition that {expr.to_text()} "{word}"'
        )
    configurations = {}
    for word in words.configuration_words():
        rows = " and ".join(s.to_text() for s in words.configuration(word))
        configurations[word] = (
            f'let us call the configuration that {rows} "{word}"'
        )
    return conditions, configurations


def save_household(
    server: HomeServer, sessions: dict[str, AuthoringSession]
) -> str:
    """Serialize rules, words and priorities to a JSON document."""
    users: dict[str, Any] = {}
    shared_conditions: dict[str, str] = {}
    shared_configurations: dict[str, str] = {}
    for name, session in sessions.items():
        conditions, configurations = _word_sentences(session,
                                                     personal_only=True)
        rules = []
        for rule in server.database.rules_of_owner(name):
            if not rule.source_text:
                raise RuleError(
                    f"rule {rule.name!r} has no CADEL source; "
                    "programmatic rules cannot be archived"
                )
            rules.append({"name": rule.name, "text": rule.source_text})
        users[name] = {
            "rules": rules,
            "condition_words": conditions,
            "configuration_words": configurations,
        }
        shared = session.shared_words
        for word in shared.condition_words():
            expr = shared.condition(word)
            shared_conditions[word] = (
                f'let us call the condition that {expr.to_text()} "{word}"'
            )
        for word in shared.configuration_words():
            rows = " and ".join(
                s.to_text() for s in shared.configuration(word)
            )
            shared_configurations[word] = (
                f'let us call the configuration that {rows} "{word}"'
            )

    priorities = []
    registry = server.control_point.registry
    for record in registry.all():
        for order in server.priorities.orders_for_device(record.udn):
            priorities.append({
                "device": record.friendly_name,
                "ranking": list(order.ranking),
                "context": order.label or None,
            })

    return json.dumps(
        {
            "format": ARCHIVE_FORMAT,
            "users": users,
            "shared_condition_words": shared_conditions,
            "shared_configuration_words": shared_configurations,
            "priorities": priorities,
        },
        indent=2,
    )


def restore_household(
    sessions: dict[str, AuthoringSession], archive_json: str
) -> RestoreReport:
    """Replay an archive through fresh authoring sessions.

    Rules that no longer bind (device gone) are reported, not fatal.
    Priority orders are restored by the first session whose user appears
    in the ranking (matching who would have created them).
    """
    data = json.loads(archive_json)
    if data.get("format") != ARCHIVE_FORMAT:
        raise RuleError(f"unsupported archive format: {data.get('format')!r}")
    report = RestoreReport()

    any_session = next(iter(sessions.values()))
    for sentence in data.get("shared_condition_words", {}).values():
        command = any_session.parser.parse(sentence)
        any_session.shared_words.define_condition(command.word, command.expr)
        report.words_restored += 1
    for sentence in data.get("shared_configuration_words", {}).values():
        command = any_session.parser.parse(sentence)
        any_session.shared_words.define_configuration(
            command.word, command.settings
        )
        report.words_restored += 1

    for user, payload in data.get("users", {}).items():
        session = sessions.get(user)
        if session is None:
            report.rules_failed.extend(
                (rule["name"], f"no session for user {user!r}")
                for rule in payload.get("rules", ())
            )
            continue
        for sentence in payload.get("condition_words", {}).values():
            command = session.parser.parse(sentence)
            session.words.define_condition(command.word, command.expr)
            report.words_restored += 1
        for sentence in payload.get("configuration_words", {}).values():
            command = session.parser.parse(sentence)
            session.words.define_configuration(command.word, command.settings)
            report.words_restored += 1
        for rule in payload.get("rules", ()):
            try:
                session.submit(rule["text"], rule_name=rule["name"])
                report.rules_restored += 1
            except (CadelError, RuleError) as exc:
                report.rules_failed.append((rule["name"], str(exc)))

    for order in data.get("priorities", ()):
        owner_session = next(
            (sessions[user] for user in order["ranking"] if user in sessions),
            any_session,
        )
        owner_session.set_priority(
            order["device"], list(order["ranking"]),
            context=order.get("context"),
        )
        report.priorities_restored += 1
    return report
