"""Sensor/device lookup service (the paper's Figs. 5-6 retrieval).

Sect. 4.3: "The retrieval of contexts and sensors can be done by
specifying combination of the following items: (1) keyword, (2) action,
(3) sensor type, (4) sensor name, and (5) location. ... Moreover,
sensors can be retrieved by the user defined word. ... Contrarily,
information about sensor types and the user defined words can be
retrieved by specifying sensors."

Queries are conjunctive: every specified criterion must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cadel.ast import CondAtom, CondExpr, CondAnd, CondOr, TimeCond, UserCondRef
from repro.cadel.binding import SENSOR_KIND_TABLE
from repro.cadel.words import WordDictionary
from repro.errors import LookupServiceError
from repro.upnp.registry import DeviceRecord, DeviceRegistry


@dataclass
class LookupQuery:
    """A conjunctive retrieval query; None fields are wildcards."""

    keyword: str | None = None
    action: str | None = None
    sensor_type: str | None = None
    name: str | None = None
    location: str | None = None
    category: str | None = None
    word: str | None = None

    def is_empty(self) -> bool:
        return all(
            value is None
            for value in (self.keyword, self.action, self.sensor_type,
                          self.name, self.location, self.category, self.word)
        )


class LookupService:
    """Indexed retrieval over the discovered device population."""

    def __init__(self, registry: DeviceRegistry,
                 words: WordDictionary | None = None):
        self.registry = registry
        self.words = words or WordDictionary()

    # -- forward retrieval -------------------------------------------------------

    def search(self, query: LookupQuery) -> list[DeviceRecord]:
        """All devices matching every specified criterion."""
        if query.is_empty():
            return sorted(self.registry.all(), key=lambda r: r.udn)
        candidates: list[DeviceRecord] | None = None

        def narrow(records: list[DeviceRecord]) -> None:
            nonlocal candidates
            if candidates is None:
                candidates = list(records)
            else:
                udns = {r.udn for r in records}
                candidates = [r for r in candidates if r.udn in udns]

        if query.name is not None:
            narrow(self.registry.by_name(query.name))
        if query.keyword is not None:
            narrow(self.registry.by_keyword(query.keyword))
        if query.location is not None:
            narrow(self.registry.by_location(query.location))
        if query.category is not None:
            narrow(self.registry.by_category(query.category))
        if query.sensor_type is not None:
            narrow(self._by_sensor_type(query.sensor_type))
        if query.action is not None:
            narrow(self._by_action(query.action))
        if query.word is not None:
            narrow(self.by_word(query.word))
        assert candidates is not None
        return sorted(candidates, key=lambda r: r.udn)

    def _by_sensor_type(self, sensor_type: str) -> list[DeviceRecord]:
        """Devices *concerning* a sensor kind: the sensors measuring it
        plus appliances tagged with it (the paper: "the air-conditioner,
        the temperature meter and so on can be retrieved by specifying
        temperature as the sensor type")."""
        entry = SENSOR_KIND_TABLE.get(sensor_type)
        results: dict[str, DeviceRecord] = {}
        if entry is not None:
            for record in self.registry.by_service_type(entry[0]):
                results[record.udn] = record
        for record in self.registry.by_keyword(sensor_type):
            results[record.udn] = record
        return list(results.values())

    def _by_action(self, action: str) -> list[DeviceRecord]:
        wanted = action.lower()
        matches = []
        for record in self.registry.all():
            for service in record.description.get("services", ()):
                if any(a["name"].lower() == wanted
                       for a in service.get("actions", ())):
                    matches.append(record)
                    break
        return matches

    # -- word-based retrieval (both directions) ----------------------------------------

    def by_word(self, word: str) -> list[DeviceRecord]:
        """Devices whose readings a user-defined condition word tests —
        "sensors which can measure temperature and humidity can be
        retrieved by the word 'hot and stuffy'"."""
        if not self.words.has_condition(word):
            raise LookupServiceError(f"unknown condition word {word!r}")
        kinds = self._sensor_kinds_of(self.words.condition(word))
        results: dict[str, DeviceRecord] = {}
        for kind in sorted(kinds):
            for record in self._by_sensor_type(kind):
                results[record.udn] = record
        return list(results.values())

    def words_for_device(self, record: DeviceRecord) -> list[str]:
        """Reverse lookup: the user-defined words that involve a device's
        sensor kinds."""
        device_kinds = self._kinds_of_record(record)
        matches = []
        for word in self.words.condition_words():
            kinds = self._sensor_kinds_of(self.words.condition(word))
            if kinds & device_kinds:
                matches.append(word)
        return matches

    def _sensor_kinds_of(self, expr: CondExpr) -> set[str]:
        """Sensor kinds a condition AST references ("temperature"...)."""
        kinds: set[str] = set()
        if isinstance(expr, (CondAnd, CondOr)):
            for child in expr.children:
                kinds |= self._sensor_kinds_of(child)
        elif isinstance(expr, CondAtom):
            subject = tuple(expr.subject_words)
            for phrase, kind in (
                (("temperature",), "temperature"),
                (("humidity",), "humidity"),
                (("brightness",), "illuminance"),
                (("illuminance",), "illuminance"),
            ):
                if subject == phrase:
                    kinds.add(kind)
        elif isinstance(expr, UserCondRef):
            if self.words.has_condition(expr.word):
                kinds |= self._sensor_kinds_of(self.words.condition(expr.word))
        elif isinstance(expr, TimeCond):
            pass
        return kinds

    def _kinds_of_record(self, record: DeviceRecord) -> set[str]:
        kinds = set()
        service_types = set(record.service_types())
        for kind, (service_type, _) in SENSOR_KIND_TABLE.items():
            if service_type in service_types:
                kinds.add(kind)
        return kinds
