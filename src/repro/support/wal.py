"""Write-ahead log of drained ingest batches.

One WAL file per shard per checkpoint generation.  Each record is::

    [u32 length][u32 crc32][length bytes of UTF-8 JSON payload]

(little-endian prefix, CRC over the payload bytes).  Records are
appended *before* the batch they describe is applied, so a crash at any
later point leaves the batch recoverable; a crash mid-append leaves a
torn tail the reader truncates at.  ``fsync`` is batched — every
``fsync_interval`` appends plus an explicit :meth:`WalWriter.sync` at
checkpoints — which is where the A11 benchmark's ≤10% steady-state
overhead budget comes from.

The reader is deliberately forgiving at the tail and strict before it:
a short prefix, short payload, CRC mismatch or undecodable JSON stops
the scan and reports what was dropped, because a torn tail is exactly
what a power cut during an append produces; anything *after* valid
bytes is unreachable by construction (appends are sequential), so
stopping loses only the suffix a real crash already lost.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass

from repro.sim.faults import FaultInjector, SimulatedCrash

_PREFIX = struct.Struct("<II")

CRASH_BEFORE_APPEND = "wal-before-append"
CRASH_TORN_APPEND = "wal-torn-append"
CRASH_AFTER_APPEND = "wal-after-append"

WAL_CRASH_SITES = (
    CRASH_BEFORE_APPEND, CRASH_TORN_APPEND, CRASH_AFTER_APPEND,
)


def encode_record(payload: dict) -> bytes:
    """One framed WAL record for a JSON payload."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(body), zlib.crc32(body)) + body


@dataclass
class WalReadReport:
    """What a WAL scan recovered and where (and why) it stopped."""

    records: int = 0
    valid_bytes: int = 0
    total_bytes: int = 0
    truncated: bool = False
    reason: str = ""

    def ok(self) -> bool:
        return not self.truncated


class WalWriter:
    """Appends framed records to one shard's log, fsync-batched.

    ``faults`` threads the durability plane's crash-point injector
    through the append path: before the write (the record is lost, like
    a cut during queue drain), torn mid-write (a prefix of the frame
    reaches the disk) and after the write (the record is durable but
    its batch never applied).
    """

    def __init__(
        self,
        path: str,
        *,
        fsync_interval: int = 16,
        faults: FaultInjector | None = None,
    ) -> None:
        if fsync_interval <= 0:
            raise ValueError(
                f"fsync_interval must be positive: {fsync_interval}"
            )
        self.path = path
        self.fsync_interval = fsync_interval
        self.faults = faults
        self.records_appended = 0
        self._unsynced = 0
        self._handle = open(path, "ab")

    def append(self, payload: dict) -> int:
        """Frame and append one record; returns its size in bytes."""
        return self.append_frame(encode_record(payload))

    def append_frame(self, frame: bytes) -> int:
        """Append one already-framed record (the durability plane
        encodes once and ships the same bytes to local writers and
        remote shard workers); returns its size in bytes."""
        faults = self.faults
        if faults is not None:
            faults.check(CRASH_BEFORE_APPEND)
        if faults is not None:
            try:
                faults.check(CRASH_TORN_APPEND)
            except SimulatedCrash:
                # A real cut mid-append leaves a prefix of the frame on
                # disk; reproduce that exactly, then crash.
                torn = frame[: max(1, len(frame) // 2)]
                self._handle.write(torn)
                self._handle.flush()
                raise
        self._handle.write(frame)
        self._handle.flush()
        self.records_appended += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_interval:
            self.sync()
        if faults is not None:
            faults.check(CRASH_AFTER_APPEND)
        return len(frame)

    def sync(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()


def read_wal(path: str) -> tuple[list[dict], WalReadReport]:
    """Scan a WAL file; returns the decodable record payloads plus a
    report describing any truncation (torn tail, checksum mismatch,
    undecodable payload).  A missing file reads as empty — a checkpoint
    that crashed before creating its WAL recovers from snapshot alone.
    """
    report = WalReadReport()
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], report
    report.total_bytes = len(data)
    records: list[dict] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _PREFIX.size > size:
            report.truncated = True
            report.reason = "torn record prefix"
            break
        length, crc = _PREFIX.unpack_from(data, offset)
        body_start = offset + _PREFIX.size
        body_end = body_start + length
        if body_end > size:
            report.truncated = True
            report.reason = "torn record payload"
            break
        body = data[body_start:body_end]
        if zlib.crc32(body) != crc:
            report.truncated = True
            report.reason = "checksum mismatch"
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            report.truncated = True
            report.reason = "undecodable payload"
            break
        records.append(payload)
        report.records += 1
        offset = body_end
        report.valid_bytes = offset
    return records, report


__all__: list[str] = [
    "CRASH_AFTER_APPEND",
    "CRASH_BEFORE_APPEND",
    "CRASH_TORN_APPEND",
    "WAL_CRASH_SITES",
    "WalReadReport",
    "WalWriter",
    "encode_record",
    "read_wal",
]
