"""Text front-end for rule description — the headless stand-in for the
paper's GUI dialogs (Figs. 4-7).

The GUI screens in the paper are thin shells over framework calls; this
module renders the same information as text so every dialog flow is
exercisable (and testable) without a display:

* the condition-description panel (Fig. 5): retrieval results with
  live sensor values;
* the action-configuration panel (Fig. 6): a device's allowed actions
  and their setting parameters;
* the priority-setup dialog (Fig. 7): conflicting rules listed in
  priority order, with the owner ranking editable by callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.conflict import ConflictReport
from repro.core.rule import Rule
from repro.core.server import HomeServer
from repro.support.guidance import GuidanceService
from repro.support.lookup import LookupQuery, LookupService
from repro.support.authoring import AuthoringSession


def render_device_list(lookup: LookupService, query: LookupQuery) -> str:
    """The Fig. 5/6 retrieval panel as text."""
    records = lookup.search(query)
    if not records:
        return "(no devices match)"
    lines = []
    for record in records:
        location = record.location or "(whole home)"
        lines.append(
            f"{record.friendly_name:<28} {record.category:<10} {location}"
        )
    return "\n".join(lines)


def render_guidance(guidance: GuidanceService, lookup: LookupService,
                    device_name: str) -> str:
    """One device's allowed actions and current readings, as text."""
    records = lookup.search(LookupQuery(name=device_name))
    if not records:
        return f"(no device named {device_name!r})"
    record = records[0]
    lines = [f"device: {record.friendly_name} [{record.location}]",
             "actions:"]
    for action in guidance.allowed_actions(record):
        arguments = ", ".join(action.arguments) or "(no settings)"
        lines.append(f"  {action.name:<14} {arguments:<36} "
                     f"{action.description}")
    readings = guidance.current_readings(record)
    if readings:
        lines.append("current readings:")
        for reading in readings:
            unit = f" {reading.unit}" if reading.unit else ""
            lines.append(f"  {reading.variable:<14} = "
                         f"{reading.value}{unit}")
    return "\n".join(lines)


def render_telemetry(snapshot: dict) -> str:
    """The cluster health snapshot (:meth:`ClusterServer.telemetry`) as
    a live admin table: one row per shard — rules hosted, queue depth,
    ingest latency p50/p95 (batch entry point), ticks, wheel wakes,
    rule-churn epochs — plus the cluster aggregate row and the bus's
    counters and derived rates."""
    header = (
        f"{'shard':>9} {'rules':>6} {'queue':>6} {'p50 ms':>9} "
        f"{'p95 ms':>9} {'ticks':>6} {'wakes':>6} {'epochs':>7}"
    )
    lines = [header, "-" * len(header)]

    def _row(label: str, view: dict) -> str:
        counters = view.get("counters", {})
        gauges = view.get("gauges", {})
        batch = view.get("histograms", {}).get("ingest.batch_ms", {})
        single = view.get("histograms", {}).get("ingest.write_ms", {})
        source = batch if batch.get("count") else single

        def _quantile(name: str) -> str:
            value = source.get(name)
            if value is None:
                return "-"
            return value if isinstance(value, str) else f"{value:.4f}"

        return (
            f"{label:>9} {gauges.get('shard.rules', 0):>6.0f} "
            f"{gauges.get('bus.queue_depth', 0):>6.0f} "
            f"{_quantile('p50'):>9} {_quantile('p95'):>9} "
            f"{counters.get('shard.ticks', 0):>6} "
            f"{counters.get('wheel.wakes', 0):>6} "
            f"{counters.get('shard.epochs', 0):>7}"
        )

    for shard_view in snapshot.get("shards", ()):
        lines.append(_row(str(shard_view.get("shard", "?")), shard_view))
    lines.append(_row("all", snapshot.get("aggregate", {})))
    bus = snapshot.get("bus", {})
    counters = bus.get("counters", {})
    if counters:
        lines.append("bus: " + " ".join(
            f"{key.removeprefix('bus.')}={value}"
            for key, value in counters.items()
        ))
    rates = bus.get("rates", {})
    if rates:
        lines.append("rates: " + " ".join(
            f"{key}={value:.3f}" for key, value in rates.items()
        ))
    return "\n".join(lines)


def render_priority_dialog(server: HomeServer, rule: Rule,
                           reports: list[ConflictReport]) -> str:
    """The Fig. 7 dialog: conflicting rules in current priority order."""
    lines = ["Priority setup", f"new rule: {rule.describe()}", "conflicts:"]
    for report in reports:
        existing = server.database.get(report.existing_rule)
        lines.append(f"  {existing.owner:<8} {existing.describe()}")
        orders = server.priorities.orders_for_device(report.device_udn)
        if orders:
            lines.append("  existing orders: "
                         + "; ".join(o.describe() for o in orders))
    return "\n".join(lines)


@dataclass
class ConsoleFrontend:
    """An interactive-style loop over an authoring session.

    ``submit_line`` routes input: lookup queries starting with ``?``,
    guidance queries with ``!``, everything else as a CADEL sentence.
    Output goes through ``emit`` (print by default) so tests can capture
    it.
    """

    session: AuthoringSession
    emit: Callable[[str], None] = print

    def __post_init__(self) -> None:
        registry = self.session.server.control_point.registry
        self._lookup = LookupService(registry, words=self.session.words)
        self._guidance = GuidanceService(self.session.server.engine)

    def submit_line(self, line: str) -> None:
        line = line.strip()
        if not line:
            return
        if line.startswith("?"):
            self._handle_lookup(line[1:].strip())
            return
        if line.startswith("!"):
            self.emit(render_guidance(self._guidance, self._lookup,
                                      line[1:].strip()))
            return
        try:
            outcome = self.session.submit(line)
        except Exception as exc:  # surfaced to the user, like a dialog
            self.emit(f"error: {exc}")
            return
        if outcome.kind == "rule":
            self.emit(f"registered: {outcome.rule.describe()}")
            for report in outcome.conflicts or ():
                self.emit(f"conflict: {report.describe()}")
        else:
            self.emit(f"defined {outcome.kind.replace('-', ' ')}: "
                      f"{outcome.word!r}")

    def _handle_lookup(self, query_text: str) -> None:
        query = LookupQuery()
        if "=" in query_text:
            for part in query_text.split():
                key, _, value = part.partition("=")
                if hasattr(query, key) and value:
                    setattr(query, key, value.replace("+", " "))
        elif query_text:
            query.keyword = query_text
        self.emit(render_device_list(self._lookup, query))
