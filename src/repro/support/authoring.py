"""Per-user rule authoring sessions.

An :class:`AuthoringSession` is the programmatic equivalent of the
paper's rule-description dialog (Fig. 4): one user types CADEL text;
word definitions land in the user's personal dictionary (which falls
back to the household's shared dictionary, so everyone benefits from
predefined words — the paper's advantage (a)); rule definitions are
compiled against the live device registry and pushed through the
server's consistency/conflict pipeline.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cadel.ast import CondDef, CondExpr, ConfDef, RuleDef, SettingNode
from repro.cadel.binding import Binder, HomeDirectory
from repro.cadel.compiler import RuleCompiler
from repro.cadel.parser import CadelParser
from repro.cadel.vocabulary import Vocabulary, english_vocabulary
from repro.cadel.words import WordDictionary
from repro.core.conflict import ConflictReport
from repro.core.condition import Condition
from repro.core.priority import PriorityOrder
from repro.core.rule import Rule
from repro.core.server import HomeServer
from repro.errors import CadelBindingError

_auto_names = itertools.count(1)


class _LayeredWords(WordDictionary):
    """User dictionary with read-through to the household dictionary."""

    def __init__(self, personal: WordDictionary, shared: WordDictionary):
        super().__init__()
        self._personal = personal
        self._shared = shared

    # Definitions land in the personal layer.
    def define_condition(self, word, expr):
        self._personal.define_condition(word, expr)

    def define_configuration(self, word, settings):
        self._personal.define_configuration(word, settings)

    def condition(self, word):
        if self._personal.has_condition(word):
            return self._personal.condition(word)
        return self._shared.condition(word)

    def configuration(self, word):
        if self._personal.has_configuration(word):
            return self._personal.configuration(word)
        return self._shared.configuration(word)

    def has_condition(self, word):
        return self._personal.has_condition(word) or self._shared.has_condition(word)

    def has_configuration(self, word):
        return (self._personal.has_configuration(word)
                or self._shared.has_configuration(word))

    def condition_words(self):
        merged = set(self._personal.condition_words())
        merged.update(self._shared.condition_words())
        return sorted(merged)

    def configuration_words(self):
        merged = set(self._personal.configuration_words())
        merged.update(self._shared.configuration_words())
        return sorted(merged)

    def match_condition_word(self, words):
        personal = self._personal.match_condition_word(words)
        shared = self._shared.match_condition_word(words)
        if personal is None:
            return shared
        if shared is None or len(personal) >= len(shared):
            return personal
        return shared

    def match_configuration_word(self, words):
        personal = self._personal.match_configuration_word(words)
        shared = self._shared.match_configuration_word(words)
        if personal is None:
            return shared
        if shared is None or len(personal) >= len(shared):
            return personal
        return shared


@dataclass
class AuthoringResult:
    """Outcome of submitting one CADEL sentence."""

    kind: str                     # "rule" | "condition-word" | "configuration-word"
    rule: Rule | None = None
    word: str | None = None
    conflicts: list[ConflictReport] | None = None


class AuthoringSession:
    """One user's CADEL front-end onto a home server.

    Args:
        server: the home server (device registry + rule pipeline).
        user: the authoring resident; "I" in sentences binds to them.
        directory: household facts (users, locator, EPG); the session
            clones it with ``current_user`` set.
        shared_words: the household word dictionary (optional).
        vocabulary: CADEL language binding (default English).
    """

    def __init__(
        self,
        server: HomeServer,
        user: str,
        directory: HomeDirectory,
        *,
        shared_words: WordDictionary | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> None:
        self.server = server
        self.user = user
        self.vocabulary = vocabulary or english_vocabulary()
        self.personal_words = WordDictionary()
        self.shared_words = shared_words or WordDictionary()
        self.words = _LayeredWords(self.personal_words, self.shared_words)
        self._directory = HomeDirectory(
            users=list(directory.users),
            current_user=user,
            locator_udn=directory.locator_udn,
            epg_udn=directory.epg_udn,
        )
        self.parser = CadelParser(vocabulary=self.vocabulary, words=self.words)
        binder = Binder(server.control_point.registry, self._directory)
        self.compiler = RuleCompiler(binder, words=self.words,
                                     vocabulary=self.vocabulary)

    # -- submitting sentences ---------------------------------------------------

    def submit(self, text: str, *, rule_name: str | None = None) -> AuthoringResult:
        """Parse one CADEL sentence and act on it: register a rule or
        record a word definition."""
        command = self.parser.parse(text)
        if isinstance(command, CondDef):
            self.words.define_condition(command.word, command.expr)
            return AuthoringResult(kind="condition-word", word=command.word)
        if isinstance(command, ConfDef):
            self.words.define_configuration(command.word, command.settings)
            return AuthoringResult(kind="configuration-word", word=command.word)
        assert isinstance(command, RuleDef)
        rule = self.compile_rule(command, rule_name=rule_name)
        conflicts = self.server.register_rule(rule)
        return AuthoringResult(kind="rule", rule=rule, conflicts=conflicts)

    def compile_rule(self, ruledef: RuleDef, *,
                     rule_name: str | None = None) -> Rule:
        name = rule_name or f"{self.user.lower()}-rule-{next(_auto_names)}"
        return self.compiler.compile_rule(ruledef, name=name, owner=self.user)

    # -- priority orders with CADEL contexts ---------------------------------------

    def compile_context(self, text: str) -> Condition:
        """Compile a CADEL condition fragment ("alan got home from work")
        for use as a priority-order context."""
        return self.compiler.compile_condexpr(self.parser.parse_condition(text))

    def set_priority(
        self,
        device_name: str,
        ranking: list[str],
        *,
        context: str | None = None,
    ) -> PriorityOrder:
        """Register a priority order over owners for a named device —
        the programmatic Fig. 7 dialog."""
        record = self.server.control_point.find_by_name(device_name)
        condition = self.compile_context(context) if context else None
        kwargs = {"label": context or ""}
        if condition is not None:
            kwargs["context"] = condition
        order = PriorityOrder(record.udn, tuple(ranking), **kwargs)
        return self.server.add_priority_order(order)

    # -- word-definition helpers used by GUIs and tests -------------------------------

    def define_condition_word(self, word: str, condition_text: str) -> None:
        self.words.define_condition(word, self.parser.parse_condition(condition_text))

    def known_words(self) -> dict[str, list[str]]:
        return {
            "conditions": self.words.condition_words(),
            "configurations": self.words.configuration_words(),
        }
