"""Crash-safe file commits.

Every durable artifact in the repository — household archives, shard
snapshots, the cluster recovery manifest, the benchmark ledger — goes
through one primitive: write the new content to a temporary file in the
*same directory*, flush and ``fsync`` it, then ``os.replace`` it over
the destination and fsync the directory.  POSIX rename atomicity then
guarantees a reader (or a recovery pass after a power cut) observes
either the complete old file or the complete new file, never a torn
mixture — the property the durability plane's fault-injection suite
pins down by crashing between every pair of steps.
"""

from __future__ import annotations

import os
import tempfile


def fsync_directory(path: str) -> None:
    """Flush a directory's entry table (best effort: some platforms and
    filesystems reject ``open``/``fsync`` on directories)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + rename).

    The temporary file lives next to the destination so the rename
    never crosses filesystems; on any failure it is removed, leaving
    the previous content of ``path`` untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)


def atomic_write_text(path: str, text: str,
                      encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding))
