"""The simulated network bus.

A :class:`NetworkBus` is a software switch: endpoints bind addresses,
optionally join multicast groups, and send :class:`~repro.net.message.Message`
datagrams.  Delivery is always asynchronous — the bus schedules the
receiver callback on the shared :class:`~repro.sim.events.Simulator`
after the latency model's delay — which preserves the ordering and
re-entrancy behaviour of a real protocol stack (a device answering an
SSDP search does so in a *later* event, exactly like real UPnP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import NetworkError
from repro.net.latency import LatencyModel, ZeroLatency
from repro.net.message import Message
from repro.sim.events import Simulator

ReceiveCallback = Callable[[Message], None]


@dataclass
class Endpoint:
    """A bound network address with its receive callback."""

    address: str
    on_receive: ReceiveCallback
    groups: set[str] = field(default_factory=set)


class NetworkBus:
    """Unicast + multicast datagram delivery over the simulation queue.

    Args:
        simulator: shared event kernel used for deferred delivery.
        latency: one-way delay model (default: zero).
        drop_rate: fraction of datagrams silently dropped, for failure
            injection tests (default 0; deterministic via ``seed``).
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: LatencyModel | None = None,
        drop_rate: float = 0.0,
        seed: int | str | None = None,
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise NetworkError(f"drop_rate must be in [0, 1]: {drop_rate}")
        self.simulator = simulator
        self.latency = latency if latency is not None else ZeroLatency()
        self.drop_rate = drop_rate
        self._endpoints: dict[str, Endpoint] = {}
        self._groups: dict[str, set[str]] = {}
        self._rng = None
        if drop_rate > 0.0:
            from repro.sim.rng import seeded_rng

            self._rng = seeded_rng(seed if seed is not None else "bus-drops")
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0

    # -- endpoint management -------------------------------------------------

    def bind(self, address: str, on_receive: ReceiveCallback) -> Endpoint:
        """Register ``address``; raises if it is already bound."""
        if address in self._endpoints:
            raise NetworkError(f"address already bound: {address!r}")
        endpoint = Endpoint(address=address, on_receive=on_receive)
        self._endpoints[address] = endpoint
        return endpoint

    def unbind(self, address: str) -> None:
        """Remove an endpoint and its group memberships."""
        endpoint = self._endpoints.pop(address, None)
        if endpoint is None:
            raise NetworkError(f"address not bound: {address!r}")
        for group in endpoint.groups:
            members = self._groups.get(group)
            if members is not None:
                members.discard(address)

    def join_group(self, address: str, group: str) -> None:
        """Subscribe a bound endpoint to a multicast group."""
        endpoint = self._require_endpoint(address)
        endpoint.groups.add(group)
        self._groups.setdefault(group, set()).add(address)

    def leave_group(self, address: str, group: str) -> None:
        endpoint = self._require_endpoint(address)
        endpoint.groups.discard(group)
        members = self._groups.get(group)
        if members is not None:
            members.discard(address)

    def is_bound(self, address: str) -> bool:
        return address in self._endpoints

    def addresses(self) -> list[str]:
        return sorted(self._endpoints)

    def group_members(self, group: str) -> list[str]:
        return sorted(self._groups.get(group, ()))

    # -- datagram delivery ---------------------------------------------------

    def send(self, message: Message) -> None:
        """Deliver to a unicast address or fan out to a multicast group.

        Unknown unicast destinations are a silent drop (datagram
        semantics), counted in ``dropped_count`` for observability.
        """
        self.sent_count += 1
        if message.destination in self._groups:
            for member in sorted(self._groups[message.destination]):
                if member == message.source:
                    continue  # no multicast loopback, matching SSDP practice
                self._deliver_later(message, member)
            return
        if message.destination in self._endpoints:
            self._deliver_later(message, message.destination)
            return
        self.dropped_count += 1

    def _deliver_later(self, message: Message, receiver_address: str) -> None:
        if self._rng is not None and self._rng.random() < self.drop_rate:
            self.dropped_count += 1
            return
        delay = self.latency.delay(message.source, receiver_address)

        def deliver() -> None:
            endpoint = self._endpoints.get(receiver_address)
            if endpoint is None:
                self.dropped_count += 1  # receiver unbound in flight
                return
            self.delivered_count += 1
            endpoint.on_receive(message)

        self.simulator.call_after(delay, deliver)

    def _require_endpoint(self, address: str) -> Endpoint:
        endpoint = self._endpoints.get(address)
        if endpoint is None:
            raise NetworkError(f"address not bound: {address!r}")
        return endpoint
