"""Delivery-latency models for the simulated network.

The paper's timing experiments ran on a real LAN whose latency is not
part of the contribution; we expose it as a pluggable model so the
benchmarks can report both the pure-framework cost (ZeroLatency) and a
LAN-like configuration (JitteredLatency around a few hundred µs).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import NetworkError
from repro.sim.rng import seeded_rng


class LatencyModel(ABC):
    """Strategy giving a one-way delivery delay, in simulated seconds."""

    @abstractmethod
    def delay(self, source: str, destination: str) -> float:
        """One-way latency for a message from ``source`` to ``destination``."""


class ZeroLatency(LatencyModel):
    """Instantaneous delivery (still asynchronous through the queue)."""

    def delay(self, source: str, destination: str) -> float:
        return 0.0


class FixedLatency(LatencyModel):
    """Constant one-way latency for every pair of endpoints."""

    def __init__(self, seconds: float):
        if seconds < 0:
            raise NetworkError(f"latency cannot be negative: {seconds}")
        self.seconds = seconds

    def delay(self, source: str, destination: str) -> float:
        return self.seconds


class JitteredLatency(LatencyModel):
    """Uniform jitter around a base latency, deterministic per seed.

    Models a lightly loaded home LAN: ``base`` is the propagation plus
    protocol-stack cost, ``jitter`` the uniform half-width added on top.
    """

    def __init__(self, base: float, jitter: float, seed: int | str | None = None):
        if base < 0 or jitter < 0:
            raise NetworkError("base and jitter must be non-negative")
        self.base = base
        self.jitter = jitter
        self._rng = seeded_rng(seed if seed is not None else "net-latency")

    def delay(self, source: str, destination: str) -> float:
        return self.base + self._rng.uniform(0.0, self.jitter)
