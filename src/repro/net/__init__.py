"""Simulated in-process network.

The paper's prototype ran UPnP over a real home LAN.  We substitute an
in-process message bus with the same observable semantics: endpoints
have addresses, can join multicast groups (SSDP discovery uses one),
and delivery is asynchronous through the simulation event queue with a
configurable latency model.

Public API:

* :class:`~repro.net.message.Message` — immutable datagram.
* :class:`~repro.net.bus.NetworkBus` — the switch: endpoint registry,
  unicast/multicast delivery, drop/latency injection.
* :class:`~repro.net.bus.Endpoint` — a bound address with a receive
  callback.
* :class:`~repro.net.latency.LatencyModel` and friends.
"""

from repro.net.bus import Endpoint, NetworkBus
from repro.net.latency import FixedLatency, JitteredLatency, LatencyModel, ZeroLatency
from repro.net.message import Message

__all__ = [
    "Endpoint",
    "NetworkBus",
    "FixedLatency",
    "JitteredLatency",
    "LatencyModel",
    "ZeroLatency",
    "Message",
]
