"""Datagrams exchanged on the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

_message_ids = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """An immutable datagram.

    ``headers`` carries protocol metadata (UPnP uses HTTP-like headers:
    method, search target, subscription ids); ``body`` carries the
    payload (description documents, action arguments, event values).

    Attributes:
        source: sender address.
        destination: unicast address or multicast group name.
        headers: protocol metadata, read-only mapping.
        body: payload object; by convention a plain dict so messages
            stay printable and copyable.
        message_id: unique per-process id, useful for request/response
            correlation and traces.
    """

    source: str
    destination: str
    headers: Mapping[str, Any] = field(default_factory=dict)
    body: Any = None
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def header(self, name: str, default: Any = None) -> Any:
        """Case-insensitive header lookup (HTTP-like convention)."""
        lowered = name.lower()
        for key, value in self.headers.items():
            if key.lower() == lowered:
                return value
        return default

    def reply(self, headers: Mapping[str, Any], body: Any = None) -> "Message":
        """Build a response addressed back to this message's sender."""
        return Message(
            source=self.destination,
            destination=self.source,
            headers=dict(headers),
            body=body,
        )
