"""The no-op telemetry facade — the only obs module core code may import.

Every instrument here has the exact duck-typed surface of its live
counterpart in :mod:`repro.obs.metrics` / :mod:`repro.obs.trace` but
does nothing: no state, no allocation, no timing calls.  Hot layers
default their ``telemetry`` seam to :data:`NOOP_TELEMETRY` (or to
``None`` plus an ``enabled`` guard), so an engine built without the
observability plane pays one attribute read — unmeasurable next to any
evaluation work.

This module deliberately imports **nothing** (not even other obs
modules): ``tools/check_obs_imports.py`` lints that ``repro.core.*``
never imports the obs package at module top level *except* this facade,
keeping the evaluation core importable and testable with the telemetry
subsystem absent, stubbed, or broken.
"""

from __future__ import annotations


class NoopCounter:
    """Counter that counts nothing (``value`` reads as 0)."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class NoopGauge:
    """Gauge that holds nothing (``value`` reads as 0)."""

    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NoopHistogram:
    """Histogram that observes nothing (empty percentiles)."""

    __slots__ = ()
    count = 0
    total = 0.0

    def observe(self, value: float) -> None:
        pass

    def percentile(self, quantile: float):
        return None


_NOOP_COUNTER = NoopCounter()
_NOOP_GAUGE = NoopGauge()
_NOOP_HISTOGRAM = NoopHistogram()


class NoopRegistry:
    """Registry whose instruments are shared do-nothing singletons."""

    __slots__ = ()

    def counter(self, name: str, **labels: str) -> NoopCounter:
        return _NOOP_COUNTER

    def gauge(self, name: str, **labels: str) -> NoopGauge:
        return _NOOP_GAUGE

    def histogram(self, name: str, bounds=None, **labels: str) -> NoopHistogram:
        return _NOOP_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


class NoopSpans:
    """Span recorder whose begin/end pair is two empty calls."""

    __slots__ = ()

    def span_begin(self, stage: str, *, home=None, size=None):
        return None

    def span_end(self, token, *, size=None):
        return 0.0

    def recent(self):
        return []


class NoopTelemetry:
    """The disabled telemetry seam: ``enabled`` is False so guarded hot
    paths skip instrumentation entirely; unguarded calls still no-op."""

    __slots__ = ()
    enabled = False
    shard = None
    registry = NoopRegistry()
    spans = NoopSpans()


NOOP_TELEMETRY = NoopTelemetry()
