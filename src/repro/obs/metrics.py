"""Zero-dependency metrics registry: counters, gauges, bucket histograms.

The registry is the storage half of the observability plane
(:mod:`repro.obs.trace` is the timing half).  Design constraints, in
order:

no per-sample allocation on the hot path
    A histogram is a tuple of precomputed log-spaced bucket bounds plus
    one flat count list — ``observe`` is a bisect and two integer adds.
    Counters and gauges are one attribute write.  Instruments are
    memoized by ``(name, labels)``, so hot code binds them once at
    construction and never goes through the registry per event.

snapshots are JSON-ready
    :meth:`MetricsRegistry.snapshot` returns plain dicts/lists/scalars;
    the overflow bucket and overflow percentiles render as the string
    ``"+Inf"`` (the Prometheus spelling) rather than ``math.inf`` so
    ``json.dumps`` output stays strict-JSON parseable.

per-shard snapshots merge into cluster aggregates
    :func:`merge_snapshots` sums counters and gauges and adds histogram
    buckets bound-for-bound, then recomputes percentiles from the merged
    cumulative counts — the cluster facade's aggregate view is exactly a
    fold of its shard views.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS_MS",
    "SIZE_BOUNDS",
    "merge_snapshots",
]

INF_LABEL = "+Inf"
"""JSON/Prometheus spelling of the overflow bucket bound."""

# Log-spaced latency buckets: 1 µs → 10 s in quarter-decade steps (ms
# units).  Precomputed once; every latency histogram shares the tuple.
DEFAULT_LATENCY_BOUNDS_MS: tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 4.0), 9) for exponent in range(-12, 17)
)

# Power-of-two size buckets (batch sizes, wake fan-outs): 1 → 65536.
SIZE_BOUNDS: tuple[float, ...] = tuple(float(2 ** i) for i in range(17))

_QUANTILES = (0.5, 0.95, 0.99)


class Counter:
    """Monotonic event count.  ``inc`` is one integer add."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time level (queue depth, armed boundaries)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with quantile estimates.

    ``bounds`` are the inclusive upper bounds of each bucket; one extra
    overflow bucket catches values beyond the last bound.  ``observe``
    never allocates: one bisect into the (shared, precomputed) bounds
    tuple, one list-index increment, two scalar adds.

    :meth:`percentile` returns the upper bound of the bucket holding the
    requested quantile — a conservative (over-) estimate with relative
    error bounded by the bucket spacing (≤ one quarter-decade for the
    default latency bounds) — ``math.inf`` when the quantile lands in
    the overflow bucket, and ``None`` while the histogram is empty.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total")

    def __init__(self, bounds: Iterable[float] | None = None) -> None:
        self.bounds: tuple[float, ...] = (
            tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BOUNDS_MS
        )
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must increase strictly")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def percentile(self, quantile: float) -> float | None:
        if self.count == 0:
            return None
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1]: {quantile}")
        rank = max(1, math.ceil(quantile * self.count))
        cumulative = 0
        for index, bucket in enumerate(self.bucket_counts):
            cumulative += bucket
            if cumulative >= rank:
                if index == len(self.bounds):
                    return math.inf
                return self.bounds[index]
        return math.inf  # unreachable: cumulative ends at self.count

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def reset(self) -> None:
        for index in range(len(self.bucket_counts)):
            self.bucket_counts[index] = 0
        self.count = 0
        self.total = 0.0

    def snapshot(self) -> dict:
        """JSON-ready view: cumulative buckets (Prometheus style) plus
        count/sum and the standard quantile estimates."""
        cumulative: list[list] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            cumulative.append([bound, running])
        cumulative.append([INF_LABEL, self.count])
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "buckets": cumulative,
            **{
                f"p{int(q * 100)}": _json_value(self.percentile(q))
                for q in _QUANTILES
            },
        }


def _json_value(value: float | None):
    if value is None:
        return None
    if value == math.inf:
        return INF_LABEL
    return value


def _label_key(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class MetricsRegistry:
    """Named, optionally labelled instruments, memoized per identity.

    ``counter("bus.published")`` always returns the same object, so hot
    paths bind instruments once; labels become part of the identity
    (``gauge("bus.queue_depth", shard="0")``) and of the snapshot key
    (``'bus.queue_depth{shard="0"}'``) — the exact spelling the
    Prometheus formatter emits.
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = name + _label_key(labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = name + _label_key(labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None,
        **labels: str,
    ) -> Histogram:
        key = name + _label_key(labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    def snapshot(self) -> dict:
        """One JSON-ready dict of every instrument's current value."""
        return {
            "counters": {
                key: counter.value
                for key, counter in sorted(self._counters.items())
            },
            "gauges": {
                key: gauge.value
                for key, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                key: histogram.snapshot()
                for key, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument in place (bound references stay valid —
        resetting must not detach hot-path instruments)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.reset()


def _merge_histograms(snapshots: list[dict]) -> dict:
    """Fold same-name histogram snapshots: buckets add bound-for-bound,
    percentiles are re-derived from the merged cumulative counts."""
    first = snapshots[0]
    bounds = [bucket[0] for bucket in first["buckets"]]
    for other in snapshots[1:]:
        if [bucket[0] for bucket in other["buckets"]] != bounds:
            raise ValueError("cannot merge histograms with differing bounds")
    count = sum(snap["count"] for snap in snapshots)
    total = round(sum(snap["sum"] for snap in snapshots), 9)
    cumulative = [
        [bound, sum(snap["buckets"][i][1] for snap in snapshots)]
        for i, bound in enumerate(bounds)
    ]
    merged = {"count": count, "sum": total, "buckets": cumulative}
    for quantile in _QUANTILES:
        label = f"p{int(quantile * 100)}"
        if count == 0:
            merged[label] = None
            continue
        rank = max(1, math.ceil(quantile * count))
        value: float | str = INF_LABEL
        for bound, running in cumulative:
            if running >= rank:
                value = bound
                break
        merged[label] = value
    return merged


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Aggregate per-shard registry snapshots into one cluster view.

    Counters and gauges sum (a fleet's queue depth is the sum of its
    shards'); histograms merge bucket-by-bucket with percentiles
    recomputed over the union.  Unknown top-level keys are ignored, so
    shard snapshots may carry extra context (shard id, span rings)."""
    snapshots = list(snapshots)
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histogram_parts: dict[str, list[dict]] = {}
    for snap in snapshots:
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0) + value
        for key, value in snap.get("histograms", {}).items():
            histogram_parts.setdefault(key, []).append(value)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            key: _merge_histograms(parts)
            for key, parts in sorted(histogram_parts.items())
        },
    }
