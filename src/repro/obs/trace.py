"""Span-style stage timing — where a write's latency decomposes.

The engine and bus wrap each hot stage in an explicit
``span_begin``/``span_end`` pair; every span carries the simulated time
it started at (attribution against the scenario timeline) and a
wall-clock duration from ``perf_counter_ns`` (the real cost).  Durations
land in per-stage latency histograms in the owning shard's registry
(``span.<stage>_ms``), and the most recent spans are kept in a capped
ring for the admin view — so "where did this write's 0.66 ms go?" is
answered by reading six histograms instead of attaching a debugger.

The span taxonomy (one entry per pipeline stage, in flow order):

========  ==========================================================
stage     wraps
========  ==========================================================
drain     one ingest-bus drain of a shard queue (size = entries)
batch     one ``RuleEngine.ingest_batch`` run (size = writes applied)
sweep     one columnar numeric threshold sweep (one write)
fanout    wake-set assembly + rule evaluation after a write
wheel     one ``clock_tick`` wheel advance + evaluations (size = wakes)
action    one device dispatch (including the access check)
========  ==========================================================

A begin/end pair costs two ``perf_counter_ns`` calls, one bisect-based
histogram observe and one capped-deque append — a few µs, which is what
keeps the enabled-vs-disabled A10 overhead budget under 3% on the
columnar ingest workload.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Callable

from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS_MS, MetricsRegistry

__all__ = ["STAGES", "SpanRecord", "SpanRecorder", "Telemetry"]

STAGES = ("drain", "batch", "sweep", "fanout", "wheel", "action")
"""The span taxonomy, in pipeline-flow order."""

DEFAULT_MAX_SPANS = 256


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span in the recent-spans ring."""

    stage: str
    at: float        # simulated time the span began
    ms: float        # wall-clock duration, milliseconds
    home: str | None = None
    size: int | None = None

    def describe(self) -> str:
        parts = [f"t={self.at:9.1f} {self.stage:<7} {self.ms:9.4f} ms"]
        if self.size is not None:
            parts.append(f"size={self.size}")
        if self.home is not None:
            parts.append(f"home={self.home}")
        return "  ".join(parts)


class SpanRecorder:
    """Begin/end stage timing into a registry plus a recent-spans ring.

    Per-stage histograms are memoized on first use so steady-state spans
    never touch the registry's name lookup.  ``clock`` supplies the
    simulated time (``Simulator.now``); when absent, spans are stamped
    with 0.0 — durations are always wall-clock.
    """

    __slots__ = ("registry", "clock", "ring", "_stage_hists")

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        clock: Callable[[], float] | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.registry = registry
        self.clock = clock
        self.ring: deque[SpanRecord] = deque(maxlen=max_spans)
        self._stage_hists: dict[str, object] = {}

    def span_begin(
        self, stage: str, *, home: str | None = None, size: int | None = None,
    ) -> tuple:
        """Open a span; returns the token ``span_end`` closes.  The
        perf-counter read is last so setup cost stays outside the span."""
        at = self.clock() if self.clock is not None else 0.0
        return (stage, home, size, at, perf_counter_ns())

    def span_end(self, token: tuple, *, size: int | None = None) -> float:
        """Close a span: observe its duration into ``span.<stage>_ms``
        and push it onto the ring.  ``size`` overrides the begin-time
        value for stages whose size is only known afterwards (a batch's
        applied-write count).  Returns the duration in ms."""
        elapsed_ms = (perf_counter_ns() - token[4]) / 1e6
        stage = token[0]
        hist = self._stage_hists.get(stage)
        if hist is None:
            hist = self.registry.histogram(
                f"span.{stage}_ms", DEFAULT_LATENCY_BOUNDS_MS
            )
            self._stage_hists[stage] = hist
        hist.observe(elapsed_ms)
        self.ring.append(SpanRecord(
            stage=stage, at=token[3], ms=elapsed_ms, home=token[1],
            size=size if size is not None else token[2],
        ))
        return elapsed_ms

    def recent(self) -> list[SpanRecord]:
        """The ring's contents, oldest first."""
        return list(self.ring)


class Telemetry:
    """The live telemetry seam one shard (or engine) carries: a metrics
    registry plus a span recorder writing into it.

    Duck-type twin of :class:`repro.obs.noop.NoopTelemetry`; hot paths
    guard on ``enabled`` and skip instrumentation when it is False, so
    the disabled configuration costs one attribute read per seam.
    """

    __slots__ = ("registry", "spans", "shard", "enabled")

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        shard: int | None = None,
        clock: Callable[[], float] | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = SpanRecorder(
            self.registry, clock=clock, max_spans=max_spans
        )
        self.shard = shard
        self.enabled = True
