"""Observability plane: metrics registry, span tracing, exposition.

Lazy facade — ``repro.obs`` resolves submodule attributes on first use
so that importing the no-op seam (:mod:`repro.obs.noop`, the only obs
module the evaluation core is allowed to touch) never pulls the live
metrics/tracing machinery in.  Everything here is stdlib-only.
"""

from __future__ import annotations

_EXPORTS = {
    "Counter": "repro.obs.metrics",
    "Gauge": "repro.obs.metrics",
    "Histogram": "repro.obs.metrics",
    "MetricsRegistry": "repro.obs.metrics",
    "DEFAULT_LATENCY_BOUNDS_MS": "repro.obs.metrics",
    "SIZE_BOUNDS": "repro.obs.metrics",
    "merge_snapshots": "repro.obs.metrics",
    "STAGES": "repro.obs.trace",
    "SpanRecord": "repro.obs.trace",
    "SpanRecorder": "repro.obs.trace",
    "Telemetry": "repro.obs.trace",
    "render_prometheus": "repro.obs.prom",
    "parse_prometheus": "repro.obs.prom",
    "NOOP_TELEMETRY": "repro.obs.noop",
    "NoopTelemetry": "repro.obs.noop",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    from importlib import import_module

    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return __all__
