"""Prometheus text exposition of telemetry snapshots.

:func:`render_prometheus` turns the JSON-ready snapshot structures of
:mod:`repro.obs.metrics` (a single registry snapshot, or the cluster
facade's merged per-shard view) into the Prometheus text format —
counters as ``_total``, gauges bare, histograms as the canonical
``_bucket{le=...}`` / ``_sum`` / ``_count`` triple.  Metric names are
sanitised (dots → underscores, ``repro_`` prefix) and labels carried in
snapshot keys (``'bus.queue_depth{shard="0"}'``) pass through; an extra
label set (e.g. ``{"shard": "2"}``) can be folded into every sample,
which is how the cluster exposition distinguishes shards.

:func:`parse_prometheus` is the inverse used by the round-trip tests
(and by any scraper-less consumer): text → ``{(name, labels): value}``.
Together they pin the exposition format — a rendered snapshot parses
back to exactly the values the registry held.
"""

from __future__ import annotations

import re

from repro.obs.metrics import INF_LABEL

__all__ = ["render_prometheus", "parse_prometheus", "metric_name"]

_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def metric_name(key: str) -> tuple[str, dict[str, str]]:
    """Split a snapshot key into (sanitised metric name, labels)."""
    labels: dict[str, str] = {}
    base = key
    brace = key.find("{")
    if brace != -1:
        base = key[:brace]
        for match in _LABEL.finditer(key[brace:]):
            labels[match.group("key")] = match.group("value")
    return "repro_" + _SANITIZE.sub("_", base), labels


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    snapshot: dict, *, extra_labels: dict[str, str] | None = None,
) -> str:
    """One registry snapshot → Prometheus exposition text.

    ``snapshot`` is the dict :meth:`MetricsRegistry.snapshot` (or a
    :func:`merge_snapshots` aggregate) returns; unknown top-level keys
    are ignored.  ``extra_labels`` are merged into every sample."""
    extra = extra_labels or {}
    lines: list[str] = []
    for key, value in snapshot.get("counters", {}).items():
        name, labels = metric_name(key)
        labels.update(extra)
        lines.append(f"# TYPE {name}_total counter")
        lines.append(f"{name}_total{_label_text(labels)} "
                     f"{_format_value(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = metric_name(key)
        labels.update(extra)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_label_text(labels)} {_format_value(value)}")
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = metric_name(key)
        labels.update(extra)
        lines.append(f"# TYPE {name} histogram")
        for bound, cumulative in hist["buckets"]:
            le = INF_LABEL if bound == INF_LABEL else _format_value(bound)
            bucket_labels = dict(labels)
            bucket_labels["le"] = le
            lines.append(f"{name}_bucket{_label_text(bucket_labels)} "
                         f"{cumulative}")
        lines.append(f"{name}_sum{_label_text(labels)} "
                     f"{_format_value(hist['sum'])}")
        lines.append(f"{name}_count{_label_text(labels)} {hist['count']}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Exposition text → ``{(metric name, sorted label items): value}``.

    Comment/TYPE lines are skipped; ``+Inf`` bucket bounds parse to
    ``float('inf')`` in the ``le`` label's place (kept as the string so
    round-trips compare exactly)."""
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for pair in _LABEL.finditer(match.group("labels")):
                labels[pair.group("key")] = pair.group("value")
        key = (match.group("name"), tuple(sorted(labels.items())))
        if key in samples:
            raise ValueError(f"duplicate sample: {key}")
        samples[key] = float(match.group("value"))
    return samples
