"""CADEL tokenizer.

Produces a flat stream of word / number / quoted-string / punctuation
tokens.  All multi-word constructs ("turn on", "is higher than", device
names like "air conditioner") are assembled by the parser against the
vocabulary — the lexer stays dumb and language-agnostic.

Normalization choices:

* everything is lower-cased (CADEL is case-insensitive);
* common English contractions expand ("I'm" → "i am", "let's" →
  "let us") so the grammar only deals in plain words;
* ``%`` becomes the word ``percent``; clock times ("17:30") stay single
  tokens of kind CLOCK.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import CadelSyntaxError

_CONTRACTIONS = {
    "i'm": ("i", "am"),
    "it's": ("it", "is"),
    "let's": ("let", "us"),
    "don't": ("do", "not"),
    "doesn't": ("does", "not"),
    "isn't": ("is", "not"),
    "aren't": ("are", "not"),
    "that's": ("that", "is"),
}

_PUNCTUATION = {",", ";", "(", ")", "."}


class TokenKind(Enum):
    WORD = "word"
    NUMBER = "number"
    CLOCK = "clock"      # "17:30"
    QUOTED = "quoted"    # "hot and stuffy"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int
    value: float | None = None  # numeric payload for NUMBER tokens

    def is_word(self, *texts: str) -> bool:
        return self.kind is TokenKind.WORD and self.text in texts

    def __repr__(self) -> str:
        return f"Token({self.kind.value}:{self.text!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize one CADEL sentence; raises CadelSyntaxError on stray
    characters and unterminated quotes."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == '"' or ch == "“":
            end_quote = '"' if ch == '"' else "”"
            j = text.find(end_quote, i + 1)
            if j < 0:
                raise CadelSyntaxError("unterminated quote", text, i)
            tokens.append(
                Token(TokenKind.QUOTED, text[i + 1:j].strip().lower(), i)
            )
            i = j + 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenKind.PUNCT, ch, i))
            i += 1
            continue
        if ch == "%":
            tokens.append(Token(TokenKind.WORD, "percent", i))
            i += 1
            continue
        if ch.isdigit():
            j = i
            seen_colon = False
            seen_dot = False
            while j < n and (text[j].isdigit() or text[j] in ":."):
                if text[j] == ":":
                    seen_colon = True
                if text[j] == ".":
                    if seen_dot or j + 1 >= n or not text[j + 1].isdigit():
                        break  # sentence-final period, not a decimal point
                    seen_dot = True
                j += 1
            chunk = text[i:j]
            if seen_colon:
                tokens.append(Token(TokenKind.CLOCK, chunk, i))
            else:
                tokens.append(Token(TokenKind.NUMBER, chunk, i, value=float(chunk)))
            i = j
            continue
        if ch.isalpha():
            j = i
            while j < n and (text[j].isalnum() or text[j] in "'-_"):
                j += 1
            raw = text[i:j].lower()
            if raw in _CONTRACTIONS:
                for part in _CONTRACTIONS[raw]:
                    tokens.append(Token(TokenKind.WORD, part, i))
            else:
                tokens.append(Token(TokenKind.WORD, raw.rstrip("'"), i))
            i = j
            continue
        raise CadelSyntaxError(f"unexpected character {ch!r}", text, i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
