"""CADEL — the Context-Aware rule DEfinition Language (paper Sect. 4.2).

CADEL sentences read like controlled English ("If humidity is higher
than 80 percent and temperature is higher than 28 degrees, turn on the
air conditioner with 25 degrees of temperature setting.") and come in
three command forms, per Table 1 of the paper:

* ``<RuleDef>``  — an automation rule;
* ``<CondDef>``  — "Let's call the condition that ... <new word>",
  defining a named compound context such as *hot and stuffy*;
* ``<ConfDef>``  — "Let's call the configuration that ... <new word>",
  defining a named device configuration such as *half-lighting*.

Pipeline::

    text ──lexer──▶ tokens ──parser──▶ AST ──compiler──▶ core Rule object
                                        ▲                    │ binding
                                 WordDictionary        BindingEnvironment
                                 (user words)          (devices & sensors)

The vocabulary is pluggable (:class:`~repro.cadel.vocabulary.Vocabulary`)
so that, as the paper notes, "different versions of CADEL based on any
other languages can be defined".
"""

from repro.cadel.ast import (
    CondAnd,
    CondAtom,
    CondDef,
    CondOr,
    ConfDef,
    ConfigNode,
    ObjectRef,
    PeriodNode,
    RuleDef,
    SettingNode,
    StateKind,
    TimeSpecNode,
    UserCondRef,
)
from repro.cadel.compiler import RuleCompiler
from repro.cadel.lexer import Token, TokenKind, tokenize
from repro.cadel.parser import CadelParser, parse_command
from repro.cadel.vocabulary import Vocabulary, english_vocabulary
from repro.cadel.words import WordDictionary

__all__ = [
    "CondAnd",
    "CondAtom",
    "CondDef",
    "CondOr",
    "ConfDef",
    "ConfigNode",
    "ObjectRef",
    "PeriodNode",
    "RuleDef",
    "SettingNode",
    "StateKind",
    "TimeSpecNode",
    "UserCondRef",
    "RuleCompiler",
    "Token",
    "TokenKind",
    "tokenize",
    "CadelParser",
    "parse_command",
    "Vocabulary",
    "english_vocabulary",
    "WordDictionary",
]
