"""CADEL abstract syntax trees.

Nodes mirror Table 1's productions, staying close to the surface
sentence: subjects and device names remain word tuples until the binder
resolves them against the discovered device population.  Every node can
render itself back to CADEL text (:meth:`to_text`), which powers rule
export and the paper's "import a rule ... and customize it" workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.cadel.vocabulary import StateKind
from repro.sim.clock import format_time_of_day

_WEEKDAY_NAMES = ["monday", "tuesday", "wednesday", "thursday", "friday",
                  "saturday", "sunday"]


def _join(words: tuple[str, ...]) -> str:
    return " ".join(words)


@dataclass(frozen=True)
class TimeSpecNode:
    """``after evening`` / ``at night`` / ``until 23:00`` / ``at every
    sunday noon``."""

    preposition: str                 # after | at | until | before
    time_of_day: float | None = None
    named: str | None = None         # the original word ("evening")
    weekday: int | None = None

    def to_text(self) -> str:
        if self.named is not None:
            time_text = self.named
        elif self.time_of_day is not None:
            time_text = format_time_of_day(self.time_of_day)[:5]
        else:
            time_text = "?"
        if self.weekday is not None:
            time_text = f"every {_WEEKDAY_NAMES[self.weekday]} {time_text}"
        return f"{self.preposition} {time_text}"


@dataclass(frozen=True)
class PeriodNode:
    """``for 1 hour`` — attaches a held-duration to a condition."""

    seconds: float
    source: str = ""

    def to_text(self) -> str:
        return self.source or f"for {self.seconds:g} seconds"


@dataclass(frozen=True)
class CondAtom:
    """``<Sensor> [<Modifier>] <State>`` with optional value/period.

    Attributes:
        subject_words: the sensor/person/place/event words ("humidity",
            "i", "entrance door", "baseball game").
        place_words: location modifier words ("living room"), if any.
        state: semantic category of the matched state phrase.
        value: numeric payload for comparison states.
        unit: unit name of the numeric payload ("celsius", "percent").
        value_words: trailing words for AT_PLACE / ARRIVED_FROM states.
        period: held-duration ("for 1 hour").
    """

    subject_words: tuple[str, ...]
    state: StateKind
    place_words: tuple[str, ...] = ()
    value: float | None = None
    unit: str | None = None
    value_words: tuple[str, ...] = ()
    period: PeriodNode | None = None

    def to_text(self) -> str:
        subject = _join(self.subject_words)
        if self.place_words:
            subject += f" at the {_join(self.place_words)}"
        state_text = {
            StateKind.NUMERIC_GT: "is higher than",
            StateKind.NUMERIC_LT: "is lower than",
            StateKind.NUMERIC_GE: "is at least",
            StateKind.NUMERIC_LE: "is at most",
            StateKind.NUMERIC_EQ: "is exactly",
            StateKind.TURNED_ON: "is turned on",
            StateKind.TURNED_OFF: "is turned off",
            StateKind.DARK: "is dark",
            StateKind.BRIGHT: "is bright",
            StateKind.AT_PLACE: "is at",
            StateKind.ON_AIR: "is on air",
            StateKind.UNLOCKED: "is unlocked",
            StateKind.LOCKED: "is locked",
            StateKind.OPEN: "is open",
            StateKind.CLOSED: "is closed",
            StateKind.RETURNS_HOME: "returns home",
            StateKind.ARRIVED_FROM: "got home from",
        }[self.state]
        parts = [subject, state_text]
        if self.value is not None:
            unit_text = {"celsius": "degrees", "fahrenheit": "degrees fahrenheit",
                         "percent": "percent", "lux": "lux"}.get(
                self.unit or "", self.unit or "")
            parts.append(f"{self.value:g} {unit_text}".strip())
        if self.value_words:
            if self.state is StateKind.AT_PLACE:
                parts.append(f"the {_join(self.value_words)}")
            else:
                parts.append(_join(self.value_words))
        if self.period is not None:
            parts.append(self.period.to_text())
        return " ".join(parts)


@dataclass(frozen=True)
class UserCondRef:
    """Reference to a user-defined condition word ("hot and stuffy")."""

    word: str
    subject_words: tuple[str, ...] = ()
    place_words: tuple[str, ...] = ()

    def to_text(self) -> str:
        if self.subject_words:
            return f"{_join(self.subject_words)} is {self.word}"
        return self.word


@dataclass(frozen=True)
class CondAnd:
    children: tuple["CondExpr", ...]

    def to_text(self) -> str:
        return " and ".join(
            f"({c.to_text()})" if isinstance(c, CondOr) else c.to_text()
            for c in self.children
        )


@dataclass(frozen=True)
class CondOr:
    children: tuple["CondExpr", ...]

    def to_text(self) -> str:
        return " or ".join(c.to_text() for c in self.children)


@dataclass(frozen=True)
class TimeCond:
    """A TimeSpec used *inside* a condition expression (the grammar's
    ``<Cond> <TimeSpec>`` tail, e.g. "door is unlocked after 22:00")."""

    spec: TimeSpecNode

    def to_text(self) -> str:
        return self.spec.to_text()


CondExpr = Union[CondAtom, UserCondRef, CondAnd, CondOr, TimeCond]


@dataclass(frozen=True)
class SettingNode:
    """``25 degrees of temperature setting`` / ``jazz of genre setting``."""

    parameter: str
    value: float | str
    unit: str | None = None

    def to_text(self) -> str:
        if isinstance(self.value, float):
            value_text = f"{self.value:g}"
            if self.unit == "celsius":
                value_text += " degrees"
            elif self.unit:
                value_text += f" {self.unit}"
        else:
            value_text = str(self.value)
        return f"{value_text} of {self.parameter} setting"


@dataclass(frozen=True)
class ConfigNode:
    """``with <RowOfConfs>`` — explicit settings and/or config words."""

    settings: tuple[SettingNode, ...] = ()
    word_refs: tuple[str, ...] = ()

    def to_text(self) -> str:
        parts = [s.to_text() for s in self.settings] + list(self.word_refs)
        return "with " + " and ".join(parts)


@dataclass(frozen=True)
class ObjectRef:
    """``[<Article>] <DeviceName> [<Modifier>]``."""

    name_words: tuple[str, ...]
    place_words: tuple[str, ...] = ()

    def to_text(self) -> str:
        text = f"the {_join(self.name_words)}"
        if self.place_words:
            text += f" at the {_join(self.place_words)}"
        return text


@dataclass(frozen=True)
class ActionClause:
    """One verb + object + optional configuration."""

    verb: str
    target: ObjectRef
    config: ConfigNode | None = None

    def to_text(self) -> str:
        text = f"{self.verb} {self.target.to_text()}"
        if self.config is not None:
            text += f" {self.config.to_text()}"
        return text


@dataclass(frozen=True)
class RuleDef:
    """A full ``<RuleDef>`` sentence.

    ``otherwise`` is this reproduction's (documented) grammar extension
    carrying the paper's fallback semantics ("If it is impossible to use
    the TV, I want to record the game with the video recorder").
    """

    action: ActionClause
    pre_time: TimeSpecNode | None = None
    precondition: CondExpr | None = None
    post_time: TimeSpecNode | None = None
    postcondition: CondExpr | None = None
    otherwise: ActionClause | None = None
    source_text: str = ""

    def to_text(self) -> str:
        parts = []
        if self.pre_time is not None:
            parts.append(self.pre_time.to_text() + ",")
        if self.precondition is not None:
            parts.append(f"if {self.precondition.to_text()},")
        parts.append(self.action.to_text())
        if self.otherwise is not None:
            parts.append(f", otherwise {self.otherwise.to_text()}")
        if self.postcondition is not None:
            parts.append(f"when {self.postcondition.to_text()}")
        elif self.post_time is not None:
            parts.append(self.post_time.to_text())
        return " ".join(parts)


@dataclass(frozen=True)
class CondDef:
    """``Let's call the condition that <CondExpr> <word>``."""

    expr: CondExpr
    word: str

    def to_text(self) -> str:
        return (
            f"let us call the condition that {self.expr.to_text()} "
            f'"{self.word}"'
        )


@dataclass(frozen=True)
class ConfDef:
    """``Let's call the configuration that <RowOfConfs> <word>``."""

    settings: tuple[SettingNode, ...]
    word: str

    def to_text(self) -> str:
        rows = " and ".join(s.to_text() for s in self.settings)
        return f'let us call the configuration that {rows} "{self.word}"'


Command = Union[RuleDef, CondDef, ConfDef]
