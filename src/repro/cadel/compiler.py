"""CADEL compiler: AST → core rule objects.

Implements the paper's "a CADEL description is expressed as equivalent a
'rule object'" (Sect. 4.1): the output is a fully bound
:class:`~repro.core.rule.Rule` whose condition tree references concrete
sensor variable ids and whose action names a concrete UPnP action —
nothing textual remains to interpret at runtime.
"""

from __future__ import annotations

from repro.cadel.ast import (
    ActionClause,
    CondAnd,
    CondAtom,
    CondExpr,
    CondOr,
    ConfigNode,
    RuleDef,
    TimeCond,
    TimeSpecNode,
    UserCondRef,
)
from repro.cadel.binding import (
    BRIGHT_ABOVE_LUX,
    DARK_BELOW_LUX,
    Binder,
)
from repro.cadel.vocabulary import (
    NUMERIC_KINDS,
    StateKind,
    Vocabulary,
    english_vocabulary,
)
from repro.cadel.words import WordDictionary
from repro.core.action import ActionSpec, Setting
from repro.core.condition import (
    AndCondition,
    Condition,
    DiscreteAtom,
    DurationAtom,
    EventAtom,
    MembershipAtom,
    NumericAtom,
    OrCondition,
    TimeWindowAtom,
    conjoin,
)
from repro.core.rule import Rule
from repro.errors import CadelBindingError, CadelTypeError
from repro.sim.clock import SECONDS_PER_DAY, hhmm
from repro.solver.linear import LinearConstraint, LinearExpr, Relation

# Named time-of-day windows for "at <named time>".
NAMED_WINDOWS: dict[str, tuple[float, float]] = {
    "morning": (hhmm(6), hhmm(12)),
    "noon": (hhmm(12), hhmm(13)),
    "afternoon": (hhmm(12), hhmm(17)),
    "evening": (hhmm(17), hhmm(21)),
    "night": (hhmm(21), hhmm(6)),
    "midnight": (hhmm(0), hhmm(1)),
}

_RELATION_FOR_KIND = {
    StateKind.NUMERIC_GT: Relation.GT,
    StateKind.NUMERIC_LT: Relation.LT,
    StateKind.NUMERIC_GE: Relation.GE,
    StateKind.NUMERIC_LE: Relation.LE,
    StateKind.NUMERIC_EQ: Relation.EQ,
}

_DEVICE_STATE_KEYS = {
    StateKind.TURNED_ON: "on",
    StateKind.TURNED_OFF: "off",
    StateKind.UNLOCKED: "unlocked",
    StateKind.LOCKED: "locked",
    StateKind.OPEN: "open",
    StateKind.CLOSED: "closed",
}


class RuleCompiler:
    """Compiles parsed CADEL commands into bound rule objects."""

    def __init__(
        self,
        binder: Binder,
        words: WordDictionary | None = None,
        vocabulary: Vocabulary | None = None,
    ) -> None:
        self.binder = binder
        self.words = words or WordDictionary()
        self.vocabulary = vocabulary or english_vocabulary()

    # -- rules --------------------------------------------------------------------

    def compile_rule(self, ruledef: RuleDef, *, name: str, owner: str) -> Rule:
        """Lower a parsed RuleDef into an executable Rule object."""
        conjuncts: list[Condition] = []
        if ruledef.pre_time is not None:
            conjuncts.append(self.compile_timespec(ruledef.pre_time))
        if ruledef.precondition is not None:
            conjuncts.append(self.compile_condexpr(ruledef.precondition))
        condition = conjoin(conjuncts)

        action_spec = self.compile_action(ruledef.action)
        fallback_spec = None
        if ruledef.otherwise is not None:
            fallback_spec = self.compile_action(ruledef.otherwise)

        until = None
        stop_action = None
        if ruledef.postcondition is not None:
            until = self.compile_condexpr(ruledef.postcondition)
        elif ruledef.post_time is not None:
            until = self.compile_timespec(ruledef.post_time, as_until=True)
        if until is not None:
            stop_action = self._derive_stop_action(ruledef.action)

        return Rule(
            name=name,
            owner=owner,
            condition=condition,
            action=action_spec,
            fallback=fallback_spec,
            until=until,
            stop_action=stop_action,
            source_text=ruledef.source_text or ruledef.to_text(),
        )

    # -- conditions ---------------------------------------------------------------------

    def compile_condexpr(self, expr: CondExpr) -> Condition:
        if isinstance(expr, CondAnd):
            return AndCondition(
                [self.compile_condexpr(child) for child in expr.children]
            )
        if isinstance(expr, CondOr):
            return OrCondition(
                [self.compile_condexpr(child) for child in expr.children]
            )
        if isinstance(expr, TimeCond):
            return self.compile_timespec(expr.spec)
        if isinstance(expr, UserCondRef):
            definition = self.words.condition(expr.word)
            return self.compile_condexpr(definition)
        if isinstance(expr, CondAtom):
            return self._compile_atom(expr)
        raise CadelTypeError(f"unknown condition node: {type(expr).__name__}")

    def _compile_atom(self, atom: CondAtom) -> Condition:
        inner = self._compile_atom_core(atom)
        if atom.period is not None:
            inner = DurationAtom(inner, atom.period.seconds)
        return inner

    def _compile_atom_core(self, atom: CondAtom) -> Condition:
        subject = " ".join(atom.subject_words)
        text = atom.to_text()

        # Person-centric states -------------------------------------------------
        if atom.state is StateKind.RETURNS_HOME:
            person = self._optional_person(atom.subject_words)
            return EventAtom("returns home", subject=person, text=text)
        if atom.state is StateKind.ARRIVED_FROM:
            person = self._required_person(atom.subject_words)
            origin = " ".join(atom.value_words)
            return DiscreteAtom(
                self.binder.person_arrival_variable(person), origin, text=text
            )
        if atom.state is StateKind.AT_PLACE:
            place = self.binder.place_name(atom.value_words)
            if subject == "nobody":
                return DiscreteAtom(
                    self.binder.occupancy_variable(atom.value_words),
                    "false",
                    text=text,
                )
            if subject in ("someone", "somebody"):
                return DiscreteAtom(
                    self.binder.occupancy_variable(atom.value_words),
                    "true",
                    text=text,
                )
            person = self._required_person(atom.subject_words)
            return DiscreteAtom(
                self.binder.person_place_variable(person), place, text=text
            )

        # Broadcast events --------------------------------------------------------
        if atom.state is StateKind.ON_AIR:
            return MembershipAtom(
                self.binder.epg_keywords_variable(), subject, text=text
            )

        # Ambient light -------------------------------------------------------------
        if atom.state in (StateKind.DARK, StateKind.BRIGHT):
            place_words = atom.place_words or atom.subject_words
            variable = self.binder.resolve_sensor_variable(
                "illuminance", place_words
            )
            if atom.state is StateKind.DARK:
                constraint = LinearConstraint.make(
                    LinearExpr.var(variable), Relation.LT, DARK_BELOW_LUX
                )
            else:
                constraint = LinearConstraint.make(
                    LinearExpr.var(variable), Relation.GE, BRIGHT_ABOVE_LUX
                )
            return NumericAtom(constraint, text=text)

        # Numeric comparisons ----------------------------------------------------------
        if atom.state in NUMERIC_KINDS:
            variable = self._numeric_variable(atom)
            if atom.value is None:
                raise CadelTypeError(f"comparison without a value: {text!r}")
            constraint = LinearConstraint.make(
                LinearExpr.var(variable),
                _RELATION_FOR_KIND[atom.state],
                atom.value,
            )
            return NumericAtom(constraint, text=text)

        # Device discrete states ----------------------------------------------------------
        state_key = _DEVICE_STATE_KEYS.get(atom.state)
        if state_key is not None:
            record = self.binder.resolve_device(
                atom.subject_words, atom.place_words
            )
            variable, value = self.binder.device_state_variable(record, state_key)
            return DiscreteAtom(variable, value, text=text)

        raise CadelTypeError(f"unhandled state kind {atom.state} in {text!r}")

    def _numeric_variable(self, atom: CondAtom) -> str:
        """Resolve the subject of a numeric comparison to a variable id:
        a sensor kind word ("temperature"), else a named sensor device."""
        kind = self.vocabulary.sensor_kinds.get(atom.subject_words)
        if kind is not None:
            return self.binder.resolve_sensor_variable(kind, atom.place_words)
        record = self.binder.resolve_device(atom.subject_words, atom.place_words)
        return self.binder.device_numeric_variable(record)

    def _optional_person(self, subject_words: tuple[str, ...]) -> str | None:
        if len(subject_words) == 1:
            word = subject_words[0]
            if word in ("someone", "somebody", "anybody", "anyone"):
                return None
            person = self.binder.person_from_word(word)
            if person is not None:
                return person
        raise CadelBindingError(
            f"expected a person, got {' '.join(subject_words)!r}"
        )

    def _required_person(self, subject_words: tuple[str, ...]) -> str:
        if len(subject_words) == 1:
            person = self.binder.person_from_word(subject_words[0])
            if person is not None:
                return person
        raise CadelBindingError(
            f"expected a person, got {' '.join(subject_words)!r}"
        )

    # -- time specs ------------------------------------------------------------------------

    def compile_timespec(
        self, spec: TimeSpecNode, as_until: bool = False
    ) -> TimeWindowAtom:
        """Lower a TimeSpec to a window atom.

        ``as_until`` handles the postcondition reading of a TimeSpec
        ("... until 23:00"): the produced window *starts* at the given
        time so the rule's ``until`` trigger fires when it is reached.
        """
        label = spec.to_text()
        if as_until:
            if spec.time_of_day is None:
                raise CadelTypeError(f"cannot use {label!r} as a stop time")
            start = spec.time_of_day
            end = (spec.time_of_day + hhmm(1)) % SECONDS_PER_DAY
            return TimeWindowAtom(start, end, weekday=spec.weekday, label=label)
        if spec.named is not None and spec.preposition == "at":
            start, end = NAMED_WINDOWS[spec.named]
            return TimeWindowAtom(start, end, weekday=spec.weekday, label=label)
        if spec.time_of_day is None:
            # Pure weekday spec: "at every sunday".
            return TimeWindowAtom(0.0, SECONDS_PER_DAY, weekday=spec.weekday,
                                  label=label)
        if spec.preposition == "after":
            return TimeWindowAtom(spec.time_of_day, SECONDS_PER_DAY,
                                  weekday=spec.weekday, label=label)
        if spec.preposition in ("until", "before"):
            return TimeWindowAtom(0.0, spec.time_of_day, weekday=spec.weekday,
                                  label=label)
        # "at <clock time>": a one-minute trigger window.
        end = min(spec.time_of_day + 60.0, SECONDS_PER_DAY)
        return TimeWindowAtom(spec.time_of_day, end, weekday=spec.weekday,
                              label=label)

    # -- actions --------------------------------------------------------------------------------

    def compile_action(self, clause: ActionClause) -> ActionSpec:
        record = self.binder.resolve_device(
            clause.target.name_words, clause.target.place_words,
            prefer_category="appliance",
        )
        command = self.binder.resolve_command(record, clause.verb)
        settings = self._compile_settings(clause.config, command.in_args,
                                          record.friendly_name)
        return ActionSpec(
            device_udn=record.udn,
            device_name=record.friendly_name,
            service_id=command.service_id,
            action_name=command.action_name,
            settings=settings,
            verb_text=clause.verb,
        )

    def _compile_settings(
        self,
        config: ConfigNode | None,
        accepted_args: tuple[str, ...],
        device_name: str,
    ) -> tuple[Setting, ...]:
        if config is None:
            return ()
        rows = list(config.settings)
        for word in config.word_refs:
            rows.extend(self.words.configuration(word))
        settings = []
        for row in rows:
            if row.parameter not in accepted_args:
                raise CadelTypeError(
                    f"device {device_name!r} does not accept a "
                    f"{row.parameter!r} setting (accepted: "
                    f"{sorted(accepted_args)})"
                )
            settings.append(Setting(row.parameter, row.value))
        return tuple(settings)

    def _derive_stop_action(self, clause: ActionClause) -> ActionSpec | None:
        record = self.binder.resolve_device(
            clause.target.name_words, clause.target.place_words,
            prefer_category="appliance",
        )
        command = self.binder.opposite_command(record, clause.verb)
        if command is None:
            return None
        return ActionSpec(
            device_udn=record.udn,
            device_name=record.friendly_name,
            service_id=command.service_id,
            action_name=command.action_name,
            settings=(),
            verb_text=f"stop ({clause.verb})",
        )
