"""User-defined word dictionary (the paper's CondDef / ConfDef facility).

Users extend CADEL's vocabulary at runtime: "Let's call the condition
that humidity is higher than 60 percent and temperature is higher than
28 degrees *hot and stuffy*".  From then on, any rule (by any user —
the paper highlights "(a) each user can easily describe rules for other
devices with the predefined words") may simply say
"if the living room is hot and stuffy, ...".

The dictionary also backs the lookup service's reverse queries: sensors
can be retrieved by word ("hot and stuffy" → thermometer, hygrometer)
and words can be retrieved by sensor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import CadelBindingError

if TYPE_CHECKING:  # circular-import avoidance; only for annotations
    from repro.cadel.ast import CondExpr, SettingNode


@dataclass
class WordDictionary:
    """Named compound conditions and configurations.

    Words are stored as lowercase word tuples; lookups do longest-match
    against a token stream so "hot and stuffy" wins over any shorter
    prefix word.
    """

    _conditions: dict[tuple[str, ...], "CondExpr"] = field(default_factory=dict)
    _configurations: dict[tuple[str, ...], tuple["SettingNode", ...]] = field(
        default_factory=dict
    )

    @staticmethod
    def _key(word: str) -> tuple[str, ...]:
        key = tuple(word.lower().split())
        if not key:
            raise CadelBindingError("a defined word cannot be empty")
        return key

    # -- definitions ---------------------------------------------------------

    def define_condition(self, word: str, expr: "CondExpr") -> None:
        self._conditions[self._key(word)] = expr

    def define_configuration(
        self, word: str, settings: tuple["SettingNode", ...]
    ) -> None:
        self._configurations[self._key(word)] = tuple(settings)

    # -- lookups ----------------------------------------------------------------

    def condition(self, word: str) -> "CondExpr":
        expr = self._conditions.get(self._key(word))
        if expr is None:
            raise CadelBindingError(f"unknown condition word: {word!r}")
        return expr

    def configuration(self, word: str) -> tuple["SettingNode", ...]:
        settings = self._configurations.get(self._key(word))
        if settings is None:
            raise CadelBindingError(f"unknown configuration word: {word!r}")
        return settings

    def has_condition(self, word: str) -> bool:
        return self._key(word) in self._conditions

    def has_configuration(self, word: str) -> bool:
        return self._key(word) in self._configurations

    def condition_words(self) -> list[str]:
        return [" ".join(key) for key in sorted(self._conditions)]

    def configuration_words(self) -> list[str]:
        return [" ".join(key) for key in sorted(self._configurations)]

    # -- longest-match helpers for the parser ------------------------------------

    def match_condition_word(self, words: list[str]) -> tuple[str, ...] | None:
        """Longest defined condition word that prefixes ``words``."""
        return self._longest_match(self._conditions, words)

    def match_configuration_word(self, words: list[str]) -> tuple[str, ...] | None:
        return self._longest_match(self._configurations, words)

    @staticmethod
    def _longest_match(
        table: dict[tuple[str, ...], object], words: list[str]
    ) -> tuple[str, ...] | None:
        best: tuple[str, ...] | None = None
        for key in table:
            if len(key) <= len(words) and tuple(words[: len(key)]) == key:
                if best is None or len(key) > len(best):
                    best = key
        return best
