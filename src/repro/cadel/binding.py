"""Binding environment: CADEL names → concrete devices and variables.

The parser leaves subjects and device names as word tuples; this module
resolves them against the discovered UPnP population, implementing the
conventions the :mod:`repro.home` device models follow:

=====================  ==========================================================
CADEL construct        Resolution
=====================  ==========================================================
"the air conditioner"  device by friendly name (optionally location-scoped)
"temperature"          sensor *kind* → service-type table → variable id
"I" / "Tom"            person → locator variables (place, last_arrival)
"nobody is at X"       presence sensor of place X → ``occupied`` variable
"the hall is dark"     illuminance sensor of place → threshold comparison
"baseball game on air" EPG guide keywords (set-valued variable)
"turn on" + device     verb → action-name candidates scanned in the
                       device's description
=====================  ==========================================================

All lookups raise :class:`~repro.errors.CadelBindingError` with a
message naming what was searched, so the rule-description GUI can show
actionable feedback (the paper's guidance function).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import CadelBindingError
from repro.upnp.registry import DeviceRecord, DeviceRegistry

# Illuminance thresholds (lux) implementing "is dark" / "is bright".
DARK_BELOW_LUX = 50.0
BRIGHT_ABOVE_LUX = 200.0

# sensor kind -> (service_type, variable name)
SENSOR_KIND_TABLE: dict[str, tuple[str, str]] = {
    "temperature": ("urn:repro:service:TemperatureSensor:1", "temperature"),
    "humidity": ("urn:repro:service:HumiditySensor:1", "humidity"),
    "illuminance": ("urn:repro:service:LightSensor:1", "illuminance"),
    "noise": ("urn:repro:service:NoiseSensor:1", "noise"),
}

# verb -> candidate action names, scanned in order in the device description
VERB_ACTION_TABLE: dict[str, tuple[str, ...]] = {
    "turn on": ("TurnOn", "On", "Start", "Play"),
    "turn off": ("TurnOff", "Off", "Stop"),
    "record": ("Record",),
    "play": ("Play", "PlayMusic"),
    "play back": ("PlayBack", "Play", "PlayMusic"),
    "start": ("Start", "TurnOn", "Record"),
    "stop": ("Stop", "TurnOff"),
    "lock": ("Lock",),
    "unlock": ("Unlock",),
    "show": ("Show", "ShowProgram"),
    "dim": ("Dim", "SetLevel"),
    "set": ("Set", "Configure"),
    "open": ("Open",),
    "close": ("Close",),
}

# verb -> verb whose action naturally undoes it (auto stop actions)
OPPOSITE_VERB = {
    "turn on": "turn off",
    "play": "stop",
    "play back": "stop",
    "record": "stop",
    "start": "stop",
    "show": "turn off",
    "lock": "unlock",
    "unlock": "lock",
    "open": "close",
    "close": "open",
}

# device discrete states: StateKind value -> (variable name, value)
DEVICE_STATE_TABLE: dict[str, tuple[str, str]] = {
    "on": ("on", "true"),
    "off": ("on", "false"),
    "unlocked": ("locked", "false"),
    "locked": ("locked", "true"),
    "open": ("open", "true"),
    "closed": ("open", "false"),
}


def variable_id(udn: str, service_id: str, variable: str) -> str:
    return f"{udn}:{service_id}:{variable}"


@dataclass(frozen=True)
class BoundCommand:
    """A verb resolved to a concrete UPnP action on a device."""

    record: DeviceRecord
    service_id: str
    action_name: str
    in_args: tuple[str, ...]


@dataclass
class HomeDirectory:
    """Household facts the binder needs beyond the device registry.

    Attributes:
        users: registered residents ("Tom", "Alan", "Emily").
        current_user: who "I" refers to while authoring a rule.
        locator_udn: UDN of the person-locator sensor device.
        epg_udn: UDN of the EPG (program guide) feed device.
    """

    users: list[str] = field(default_factory=list)
    current_user: str = ""
    locator_udn: str = ""
    epg_udn: str = ""

    def is_user(self, word: str) -> bool:
        return word.lower() in {u.lower() for u in self.users}

    def canonical_user(self, word: str) -> str:
        for user in self.users:
            if user.lower() == word.lower():
                return user
        raise CadelBindingError(f"unknown person: {word!r}")


class Binder:
    """Resolves parsed CADEL names against a device registry."""

    def __init__(self, registry: DeviceRegistry, directory: HomeDirectory):
        self.registry = registry
        self.directory = directory

    # -- devices -------------------------------------------------------------

    def resolve_device(
        self,
        name_words: tuple[str, ...],
        place_words: tuple[str, ...] = (),
        prefer_category: str | None = None,
    ) -> DeviceRecord:
        """Find a device by (partial) friendly name, optionally scoped to
        a place; ambiguous and missing names raise with candidates.

        ``prefer_category`` breaks ties: action targets prefer
        ``"appliance"`` so "the light" resolves to the lamp, not the
        light *sensor* sharing the location.
        """
        name = " ".join(name_words)
        records = self.registry.by_name(name)
        if not records:
            # Substring fallback: "light" matches "fluorescent light".
            lowered = name.lower()
            records = [
                r for r in self.registry.all()
                if lowered in r.friendly_name.lower()
            ]
        if place_words:
            place = " ".join(place_words).lower()
            records = [r for r in records if r.location.lower() == place]
        if len(records) > 1 and prefer_category is not None:
            preferred = [r for r in records if r.category == prefer_category]
            if preferred:
                records = preferred
        if not records:
            raise CadelBindingError(
                f"no device named {name!r}"
                + (f" at {' '.join(place_words)!r}" if place_words else "")
            )
        if len(records) > 1:
            names = ", ".join(
                f"{r.friendly_name} ({r.location})" for r in records
            )
            raise CadelBindingError(
                f"ambiguous device name {name!r}: candidates are {names}; "
                "add a location ('at the ...')"
            )
        return records[0]

    def resolve_command(self, record: DeviceRecord, verb: str) -> BoundCommand:
        """Map a CADEL verb onto one of the device's declared actions."""
        candidates = VERB_ACTION_TABLE.get(verb)
        if candidates is None:
            raise CadelBindingError(f"unknown verb: {verb!r}")
        for service in record.description.get("services", ()):
            actions = {a["name"]: a for a in service.get("actions", ())}
            for candidate in candidates:
                if candidate in actions:
                    return BoundCommand(
                        record=record,
                        service_id=service["service_id"],
                        action_name=candidate,
                        in_args=tuple(actions[candidate].get("in_args", ())),
                    )
        raise CadelBindingError(
            f"device {record.friendly_name!r} does not support {verb!r} "
            f"(looked for actions {list(candidates)})"
        )

    def opposite_command(
        self, record: DeviceRecord, verb: str
    ) -> BoundCommand | None:
        opposite = OPPOSITE_VERB.get(verb)
        if opposite is None:
            return None
        try:
            return self.resolve_command(record, opposite)
        except CadelBindingError:
            return None

    # -- sensors -----------------------------------------------------------------

    def resolve_sensor_variable(
        self, kind: str, place_words: tuple[str, ...] = ()
    ) -> str:
        """Variable id of the sensor measuring ``kind``, location-scoped.

        With no location and several matching sensors the reference is
        ambiguous and raises (the guidance UI then lists candidates).
        """
        entry = SENSOR_KIND_TABLE.get(kind)
        if entry is None:
            raise CadelBindingError(f"unknown sensor kind: {kind!r}")
        service_type, variable = entry
        records = self.registry.by_service_type(service_type)
        if place_words:
            place = " ".join(place_words).lower()
            records = [r for r in records if r.location.lower() == place]
        if not records:
            where = f" at {' '.join(place_words)!r}" if place_words else ""
            raise CadelBindingError(f"no {kind} sensor found{where}")
        if len(records) > 1:
            places = ", ".join(sorted(r.location for r in records))
            raise CadelBindingError(
                f"several {kind} sensors found ({places}); "
                "add a location ('at the ...')"
            )
        record = records[0]
        service_id = self._service_id_for_type(record, service_type)
        return variable_id(record.udn, service_id, variable)

    def device_state_variable(
        self, record: DeviceRecord, state_key: str
    ) -> tuple[str, str]:
        """(variable id, expected value) for a device discrete state."""
        entry = DEVICE_STATE_TABLE.get(state_key)
        if entry is None:
            raise CadelBindingError(f"unsupported device state: {state_key!r}")
        variable, value = entry
        for service in record.description.get("services", ()):
            for var in service.get("variables", ()):
                if var["name"] == variable:
                    return (
                        variable_id(record.udn, service["service_id"], variable),
                        value,
                    )
        raise CadelBindingError(
            f"device {record.friendly_name!r} has no {variable!r} state"
        )

    def device_numeric_variable(self, record: DeviceRecord) -> str:
        """The single numeric evented variable of a sensor device, for
        "the thermometer is higher than 28 degrees" phrasings."""
        numeric = []
        for service in record.description.get("services", ()):
            for var in service.get("variables", ()):
                if var["data_type"] == "number" and var.get("sends_events"):
                    numeric.append((service["service_id"], var["name"]))
        if not numeric:
            raise CadelBindingError(
                f"device {record.friendly_name!r} has no numeric reading"
            )
        if len(numeric) > 1:
            raise CadelBindingError(
                f"device {record.friendly_name!r} has several numeric "
                f"readings {sorted(n for _, n in numeric)}; name the "
                "quantity instead ('temperature', 'humidity', ...)"
            )
        service_id, variable = numeric[0]
        return variable_id(record.udn, service_id, variable)

    # -- people & places ----------------------------------------------------------------

    def person_from_word(self, word: str) -> str | None:
        """Resolve "i"/user names to a canonical person; None for
        non-person words ('someone' resolves to None-subject events and
        is handled by the caller)."""
        if word == "i":
            if not self.directory.current_user:
                raise CadelBindingError(
                    "'I' used but no current user is set for this session"
                )
            return self.directory.current_user
        if self.directory.is_user(word):
            return self.directory.canonical_user(word)
        return None

    def person_place_variable(self, person: str) -> str:
        self._require_locator()
        return variable_id(self.directory.locator_udn, "locator",
                           f"{person}_place")

    def person_arrival_variable(self, person: str) -> str:
        self._require_locator()
        return variable_id(self.directory.locator_udn, "locator",
                           f"{person}_last_arrival")

    def occupancy_variable(self, place_words: tuple[str, ...]) -> str:
        """The presence sensor's ``occupied`` flag for a place."""
        place = " ".join(place_words)
        records = [
            r
            for r in self.registry.by_service_type(
                "urn:repro:service:PresenceSensor:1"
            )
            if r.location.lower() == place.lower()
        ]
        if not records:
            raise CadelBindingError(f"no presence sensor at {place!r}")
        record = records[0]
        service_id = self._service_id_for_type(
            record, "urn:repro:service:PresenceSensor:1"
        )
        return variable_id(record.udn, service_id, "occupied")

    def epg_keywords_variable(self) -> str:
        if not self.directory.epg_udn:
            raise CadelBindingError(
                "no program-guide (EPG) device registered in this home"
            )
        return variable_id(self.directory.epg_udn, "guide", "keywords")

    def place_name(self, words: tuple[str, ...]) -> str:
        return " ".join(words)

    # -- helpers ----------------------------------------------------------------------------

    @staticmethod
    def _service_id_for_type(record: DeviceRecord, service_type: str) -> str:
        for service in record.description.get("services", ()):
            if service["service_type"] == service_type:
                return service["service_id"]
        raise CadelBindingError(
            f"device {record.friendly_name!r} lost service {service_type!r}"
        )

    def _require_locator(self) -> None:
        if not self.directory.locator_udn:
            raise CadelBindingError(
                "no person-locator device registered in this home"
            )
