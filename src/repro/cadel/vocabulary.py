"""CADEL vocabulary: the terminal phrase tables of Table 1.

The parser consults a :class:`Vocabulary` for every multi-word terminal
(verbs, state phrases, time words, units...), so a vocabulary instance
*is* a concrete natural-language binding of CADEL.  The paper:
"different versions of CADEL based on any other languages can be
defined.  Users can use their mother language based CADEL to describe
rules" — to localize, construct a Vocabulary with translated phrase
tables (see ``tests/cadel/test_localization.py`` for a miniature
Japanese-romaji example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.sim.clock import hhmm


class StateKind(Enum):
    """Semantic category of a ``<State>`` phrase."""

    NUMERIC_GT = "gt"
    NUMERIC_LT = "lt"
    NUMERIC_GE = "ge"
    NUMERIC_LE = "le"
    NUMERIC_EQ = "eq"
    TURNED_ON = "on"
    TURNED_OFF = "off"
    DARK = "dark"
    BRIGHT = "bright"
    AT_PLACE = "at-place"
    ON_AIR = "on-air"
    UNLOCKED = "unlocked"
    LOCKED = "locked"
    OPEN = "open"
    CLOSED = "closed"
    RETURNS_HOME = "returns-home"   # instantaneous event
    ARRIVED_FROM = "arrived-from"   # sticky arrival context ("got home from work")
    USER_WORD = "user-word"         # reference to a <CondDef> word


# Which state kinds need a numeric value ("higher than *28 degrees*")
NUMERIC_KINDS = frozenset({
    StateKind.NUMERIC_GT,
    StateKind.NUMERIC_LT,
    StateKind.NUMERIC_GE,
    StateKind.NUMERIC_LE,
    StateKind.NUMERIC_EQ,
})

# Which state kinds take trailing words ("at *the living room*",
# "got home from *work*")
WORDED_KINDS = frozenset({StateKind.AT_PLACE, StateKind.ARRIVED_FROM})


@dataclass
class Vocabulary:
    """Phrase tables for one natural-language binding of CADEL.

    Phrases are stored as tuples of lower-case words; the parser always
    tries the longest phrase first, so "is on air" shadows "is on".
    """

    verbs: dict[tuple[str, ...], str] = field(default_factory=dict)
    articles: frozenset[str] = frozenset({"a", "an", "the"})
    be_words: frozenset[str] = frozenset({"is", "are", "am"})
    state_phrases: dict[tuple[str, ...], StateKind] = field(default_factory=dict)
    # units: phrase -> (unit name, multiplier to canonical unit)
    value_units: dict[tuple[str, ...], tuple[str, float]] = field(default_factory=dict)
    period_units: dict[str, float] = field(default_factory=dict)
    named_times: dict[str, float] = field(default_factory=dict)
    weekdays: dict[str, int] = field(default_factory=dict)
    time_prepositions: frozenset[str] = frozenset({"after", "at", "until", "before"})
    parameters: frozenset[str] = field(default_factory=frozenset)
    sensor_kinds: dict[tuple[str, ...], str] = field(default_factory=dict)
    person_words: frozenset[str] = frozenset({"i", "someone", "somebody", "nobody"})
    conddef_prefix: tuple[str, ...] = ()
    confdef_prefix: tuple[str, ...] = ()

    def phrases_by_length(
        self, table: dict[tuple[str, ...], object]
    ) -> list[tuple[str, ...]]:
        return sorted(table, key=len, reverse=True)


def english_vocabulary() -> Vocabulary:
    """The English CADEL binding used throughout the paper's examples."""
    verbs = {
        ("turn", "on"): "turn on",
        ("switch", "on"): "turn on",
        ("turn", "off"): "turn off",
        ("switch", "off"): "turn off",
        ("record",): "record",
        ("play",): "play",
        ("play", "back"): "play back",
        ("start",): "start",
        ("stop",): "stop",
        ("lock",): "lock",
        ("unlock",): "unlock",
        ("show",): "show",
        ("dim",): "dim",
        ("set",): "set",
        ("open",): "open",
        ("close",): "close",
    }
    state_phrases = {
        ("is", "higher", "than"): StateKind.NUMERIC_GT,
        ("is", "greater", "than"): StateKind.NUMERIC_GT,
        ("is", "hotter", "than"): StateKind.NUMERIC_GT,
        ("is", "more", "than"): StateKind.NUMERIC_GT,
        ("is", "over"): StateKind.NUMERIC_GT,
        ("is", "above"): StateKind.NUMERIC_GT,
        ("is", "lower", "than"): StateKind.NUMERIC_LT,
        ("is", "less", "than"): StateKind.NUMERIC_LT,
        ("is", "colder", "than"): StateKind.NUMERIC_LT,
        ("is", "under"): StateKind.NUMERIC_LT,
        ("is", "below"): StateKind.NUMERIC_LT,
        ("is", "at", "least"): StateKind.NUMERIC_GE,
        ("is", "at", "most"): StateKind.NUMERIC_LE,
        ("is", "exactly"): StateKind.NUMERIC_EQ,
        ("is", "turned", "on"): StateKind.TURNED_ON,
        ("are", "turned", "on"): StateKind.TURNED_ON,
        ("is", "turned", "off"): StateKind.TURNED_OFF,
        ("are", "turned", "off"): StateKind.TURNED_OFF,
        ("is", "dark"): StateKind.DARK,
        ("is", "bright"): StateKind.BRIGHT,
        ("is", "at"): StateKind.AT_PLACE,
        ("are", "at"): StateKind.AT_PLACE,
        ("is", "in"): StateKind.AT_PLACE,
        ("are", "in"): StateKind.AT_PLACE,
        ("am", "at"): StateKind.AT_PLACE,
        ("am", "in"): StateKind.AT_PLACE,
        ("is", "on", "air"): StateKind.ON_AIR,
        ("is", "unlocked"): StateKind.UNLOCKED,
        ("is", "locked"): StateKind.LOCKED,
        ("is", "open"): StateKind.OPEN,
        ("is", "closed"): StateKind.CLOSED,
        ("returns", "home"): StateKind.RETURNS_HOME,
        ("return", "home"): StateKind.RETURNS_HOME,
        ("comes", "back"): StateKind.RETURNS_HOME,
        ("come", "back"): StateKind.RETURNS_HOME,
        ("got", "home", "from"): StateKind.ARRIVED_FROM,
        ("get", "home", "from"): StateKind.ARRIVED_FROM,
    }
    value_units = {
        ("degrees", "celsius"): ("celsius", 1.0),
        ("degree", "celsius"): ("celsius", 1.0),
        ("degrees", "fahrenheit"): ("fahrenheit", 1.0),
        ("degree", "fahrenheit"): ("fahrenheit", 1.0),
        ("degrees", "c"): ("celsius", 1.0),
        ("degrees", "f"): ("fahrenheit", 1.0),
        ("degrees",): ("celsius", 1.0),
        ("degree",): ("celsius", 1.0),
        ("percent",): ("percent", 1.0),
        ("lux",): ("lux", 1.0),
        ("decibels",): ("decibel", 1.0),
    }
    period_units = {
        "second": 1.0,
        "seconds": 1.0,
        "minute": 60.0,
        "minutes": 60.0,
        "hour": 3600.0,
        "hours": 3600.0,
    }
    named_times = {
        "morning": hhmm(6),
        "noon": hhmm(12),
        "afternoon": hhmm(12),
        "evening": hhmm(17),
        "night": hhmm(21),
        "midnight": hhmm(0),
    }
    weekdays = {
        "monday": 0, "tuesday": 1, "wednesday": 2, "thursday": 3,
        "friday": 4, "saturday": 5, "sunday": 6,
    }
    parameters = frozenset({
        "temperature", "humidity", "channel", "volume", "brightness",
        "genre", "output", "mode", "level", "source", "speed", "program",
    })
    sensor_kinds = {
        ("temperature",): "temperature",
        ("room", "temperature"): "temperature",
        ("humidity",): "humidity",
        ("brightness",): "illuminance",
        ("illuminance",): "illuminance",
        ("light", "level"): "illuminance",
        ("noise", "level"): "noise",
    }
    return Vocabulary(
        verbs=verbs,
        state_phrases=state_phrases,
        value_units=value_units,
        period_units=period_units,
        named_times=named_times,
        weekdays=weekdays,
        parameters=parameters,
        sensor_kinds=sensor_kinds,
        conddef_prefix=("let", "us", "call", "the", "condition", "that"),
        confdef_prefix=("let", "us", "call", "the", "configuration", "that"),
    )
