"""Recursive-descent parser for CADEL (Table 1 of the paper).

The grammar is word-based with multi-word terminals, so the parser works
on the lexer's flat token stream and performs longest-match against the
vocabulary's phrase tables ("is on air" before "is on").  Backtracking
is explicit via save/restore of the cursor, used where the grammar is
locally ambiguous:

* "at ..." starts either a TimeSpec ("at night") or a place modifier
  ("at the hall") — try the TimeSpec, fall back;
* the trailing word of a ``<CondDef>`` may itself contain "and"
  ("hot **and** stuffy"): the conjunction loop backtracks when the next
  conjunct fails to parse and leaves the words to the definition.
"""

from __future__ import annotations

from repro.cadel.ast import (
    ActionClause,
    Command,
    CondAnd,
    CondAtom,
    CondDef,
    CondExpr,
    CondOr,
    ConfDef,
    ConfigNode,
    ObjectRef,
    PeriodNode,
    RuleDef,
    SettingNode,
    TimeCond,
    TimeSpecNode,
    UserCondRef,
)
from repro.cadel.lexer import Token, TokenKind, tokenize
from repro.cadel.vocabulary import (
    NUMERIC_KINDS,
    StateKind,
    Vocabulary,
    WORDED_KINDS,
    english_vocabulary,
)
from repro.cadel.words import WordDictionary
from repro.errors import CadelSyntaxError
from repro.sim.clock import hhmm

# Words that terminate a free-word run (subjects, place names, values).
_STOP_WORDS = frozenset({
    "and", "or", "then", "if", "when", "with", "for", "from",
    "after", "until", "before", "otherwise",
})


class _Cursor:
    """Token cursor with save/restore backtracking."""

    def __init__(self, tokens: list[Token], text: str):
        self.tokens = tokens
        self.text = text
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().kind is TokenKind.EOF

    def save(self) -> int:
        return self.pos

    def restore(self, mark: int) -> None:
        self.pos = mark

    def skip_punct(self, *texts: str) -> bool:
        if self.peek().kind is TokenKind.PUNCT and (
            not texts or self.peek().text in texts
        ):
            self.advance()
            return True
        return False

    def error(self, message: str) -> CadelSyntaxError:
        return CadelSyntaxError(message, self.text, self.peek().position)


class CadelParser:
    """Parses CADEL commands into AST nodes.

    Args:
        vocabulary: natural-language phrase tables (default: English).
        words: user-defined word dictionary consulted when recognizing
            ``<UserDefinedCond>`` / ``<UserDefinedConf>`` references.
    """

    def __init__(
        self,
        vocabulary: Vocabulary | None = None,
        words: WordDictionary | None = None,
    ) -> None:
        self.vocabulary = vocabulary or english_vocabulary()
        self.words = words or WordDictionary()

    # -- entry points ----------------------------------------------------------

    def parse_condition(self, text: str) -> CondExpr:
        """Parse a bare condition expression ("alan got home from work"),
        used for priority-order contexts and tests."""
        cursor = _Cursor(tokenize(text), text)
        expr = self._parse_condexpr(cursor)
        cursor.skip_punct(".")
        if not cursor.at_eof():
            raise cursor.error(
                f"unexpected trailing input: {cursor.peek().text!r}"
            )
        return expr

    def parse(self, text: str) -> Command:
        """Parse one CADEL sentence into a RuleDef, CondDef or ConfDef."""
        cursor = _Cursor(tokenize(text), text)
        if self._try_phrase(cursor, self.vocabulary.conddef_prefix):
            command: Command = self._parse_conddef(cursor)
        elif self._try_phrase(cursor, self.vocabulary.confdef_prefix):
            command = self._parse_confdef(cursor)
        else:
            command = self._parse_ruledef(cursor, text)
        cursor.skip_punct(".")
        if not cursor.at_eof():
            raise cursor.error(
                f"unexpected trailing input: {cursor.peek().text!r}"
            )
        return command

    # -- phrase matching helpers --------------------------------------------------

    def _try_phrase(self, cursor: _Cursor, phrase: tuple[str, ...]) -> bool:
        if not phrase:
            return False
        mark = cursor.save()
        for word in phrase:
            token = cursor.peek()
            if token.kind is not TokenKind.WORD or token.text != word:
                cursor.restore(mark)
                return False
            cursor.advance()
        return True

    def _match_table(self, cursor: _Cursor, table: dict) -> object | None:
        """Longest-phrase match against a vocabulary table; consumes it."""
        for phrase in self.vocabulary.phrases_by_length(table):
            if self._try_phrase(cursor, phrase):
                return table[phrase]
        return None

    def _peek_table(self, cursor: _Cursor, table: dict, offset: int = 0) -> bool:
        mark = cursor.save()
        for _ in range(offset):
            cursor.advance()
        matched = self._match_table(cursor, table) is not None
        cursor.restore(mark)
        return matched

    # -- RuleDef --------------------------------------------------------------------

    def _parse_ruledef(self, cursor: _Cursor, source_text: str) -> RuleDef:
        pre_time = self._try_timespec(cursor)
        cursor.skip_punct(",")
        precondition: CondExpr | None = None
        if cursor.peek().is_word("if", "when"):
            cursor.advance()
            precondition = self._parse_condexpr(cursor)
            if cursor.peek().is_word("then"):
                cursor.advance()
            cursor.skip_punct(",")
        if pre_time is None:
            # Grammar also allows <TimeSpec> after the "if" clause's comma.
            pre_time = self._try_timespec(cursor)
            cursor.skip_punct(",")
        action = self._parse_action_clause(cursor)
        otherwise = None
        cursor.skip_punct(",", ";")
        if cursor.peek().is_word("otherwise"):
            cursor.advance()
            otherwise = self._parse_action_clause(cursor)
            cursor.skip_punct(",", ";")
        post_time = None
        postcondition = None
        if cursor.peek().is_word("if", "when"):
            cursor.advance()
            postcondition = self._parse_condexpr(cursor)
        else:
            post_time = self._try_timespec(cursor)
        return RuleDef(
            action=action,
            pre_time=pre_time,
            precondition=precondition,
            post_time=post_time,
            postcondition=postcondition,
            otherwise=otherwise,
            source_text=source_text,
        )

    def _parse_action_clause(self, cursor: _Cursor) -> ActionClause:
        verb = self._match_table(cursor, self.vocabulary.verbs)
        if verb is None:
            raise cursor.error(
                f"expected an action verb, got {cursor.peek().text!r}"
            )
        target = self._parse_object(cursor)
        config = None
        if cursor.peek().is_word("with"):
            cursor.advance()
            config = self._parse_configuration(cursor)
        return ActionClause(verb=str(verb), target=target, config=config)

    def _parse_object(self, cursor: _Cursor) -> ObjectRef:
        if cursor.peek().text in self.vocabulary.articles:
            cursor.advance()
        name_words = self._collect_words(cursor, allow_at=False)
        if not name_words:
            raise cursor.error("expected a device name")
        place_words: tuple[str, ...] = ()
        if cursor.peek().is_word("at"):
            mark = cursor.save()
            if self._try_timespec_from(cursor) is None:
                cursor.restore(mark)
                cursor.advance()  # "at"
                if cursor.peek().text in self.vocabulary.articles:
                    cursor.advance()
                place_words = self._collect_words(cursor, allow_at=False)
                if not place_words:
                    raise cursor.error("expected a place after 'at'")
            else:
                cursor.restore(mark)  # it was a TimeSpec; leave for caller
        return ObjectRef(name_words=name_words, place_words=place_words)

    def _collect_words(self, cursor: _Cursor, allow_at: bool) -> tuple[str, ...]:
        """Consume a run of free words (device/place/subject names);
        "at" terminates the run unless ``allow_at`` keeps it inline (for
        subjects with location modifiers, "temperature at the hall")."""
        collected: list[str] = []
        while True:
            token = cursor.peek()
            if token.kind is not TokenKind.WORD:
                break
            if token.text in _STOP_WORDS:
                break
            if token.text == "at" and not allow_at:
                break
            collected.append(token.text)
            cursor.advance()
        return tuple(collected)

    # -- configuration --------------------------------------------------------------

    def _parse_configuration(self, cursor: _Cursor) -> ConfigNode:
        settings: list[SettingNode] = []
        word_refs: list[str] = []
        while True:
            parsed = self._parse_config_item(cursor, settings, word_refs)
            if not parsed:
                raise cursor.error("expected a setting or configuration word")
            if cursor.peek().is_word("and"):
                cursor.advance()
                continue
            break
        return ConfigNode(settings=tuple(settings), word_refs=tuple(word_refs))

    def _parse_config_item(
        self,
        cursor: _Cursor,
        settings: list[SettingNode],
        word_refs: list[str],
    ) -> bool:
        token = cursor.peek()
        if token.kind is TokenKind.QUOTED:
            cursor.advance()
            word_refs.append(token.text)
            return True
        # Try an explicit "<value> of <parameter> setting" row.
        mark = cursor.save()
        setting = self._try_setting_row(cursor)
        if setting is not None:
            settings.append(setting)
            return True
        cursor.restore(mark)
        # Try a defined configuration word (longest match).
        upcoming = self._upcoming_words(cursor)
        match = self.words.match_configuration_word(upcoming)
        if match is not None:
            for _ in match:
                cursor.advance()
            word_refs.append(" ".join(match))
            return True
        # Unknown bare word(s): accept a free word run as a word reference
        # (binding will fail later with a clear error if undefined).
        free = self._collect_words(cursor, allow_at=False)
        if free:
            word_refs.append(" ".join(free))
            return True
        return False

    def _try_setting_row(self, cursor: _Cursor) -> SettingNode | None:
        token = cursor.peek()
        value: float | str
        unit = None
        if token.kind is TokenKind.NUMBER:
            cursor.advance()
            value = float(token.value)
            unit_info = self._match_table(cursor, self.vocabulary.value_units)
            if unit_info is not None:
                unit = unit_info[0]
        elif token.kind is TokenKind.WORD and token.text not in _STOP_WORDS:
            # word value, possibly multi-word ("tv sound of source setting")
            value_words = []
            offset = 0
            while True:
                ahead = cursor.peek(offset)
                if ahead.kind is not TokenKind.WORD or ahead.text in _STOP_WORDS:
                    return None
                if ahead.text == "of":
                    break
                value_words.append(ahead.text)
                offset += 1
                if offset > 6:
                    return None
            if not value_words:
                return None
            for _ in value_words:
                cursor.advance()
            value = " ".join(value_words)
        else:
            return None
        if not cursor.peek().is_word("of"):
            return None
        cursor.advance()
        parameter = cursor.peek()
        if parameter.kind is not TokenKind.WORD or \
                parameter.text not in self.vocabulary.parameters:
            return None
        cursor.advance()
        if not cursor.peek().is_word("setting"):
            return None
        cursor.advance()
        if unit == "fahrenheit" and isinstance(value, float):
            value = (value - 32.0) * 5.0 / 9.0
            unit = "celsius"
        return SettingNode(parameter=parameter.text, value=value, unit=unit)

    def _upcoming_words(self, cursor: _Cursor, limit: int = 8) -> list[str]:
        words = []
        for offset in range(limit):
            token = cursor.peek(offset)
            if token.kind is not TokenKind.WORD:
                break
            words.append(token.text)
        return words

    # -- conditions -------------------------------------------------------------------

    def _parse_condexpr(self, cursor: _Cursor) -> CondExpr:
        return self._parse_or(cursor)

    def _parse_or(self, cursor: _Cursor) -> CondExpr:
        children = [self._parse_and(cursor)]
        while cursor.peek().is_word("or"):
            mark = cursor.save()
            cursor.advance()
            try:
                children.append(self._parse_and(cursor))
            except CadelSyntaxError:
                cursor.restore(mark)
                break
        if len(children) == 1:
            return children[0]
        return CondOr(children=tuple(children))

    def _parse_and(self, cursor: _Cursor) -> CondExpr:
        children = [self._parse_primary(cursor)]
        while cursor.peek().is_word("and"):
            mark = cursor.save()
            cursor.advance()
            try:
                children.append(self._parse_primary(cursor))
            except CadelSyntaxError:
                cursor.restore(mark)
                break
        if len(children) == 1:
            return children[0]
        return CondAnd(children=tuple(children))

    def _parse_primary(self, cursor: _Cursor) -> CondExpr:
        if cursor.peek().kind is TokenKind.PUNCT and cursor.peek().text == "(":
            cursor.advance()
            expr = self._parse_condexpr(cursor)
            if not cursor.skip_punct(")"):
                raise cursor.error("expected ')'")
            return expr
        # A TimeSpec can stand alone inside a condition ("after 22:00").
        spec = self._try_timespec(cursor)
        if spec is not None:
            return TimeCond(spec=spec)
        token = cursor.peek()
        if token.kind is TokenKind.QUOTED:
            cursor.advance()
            return self._with_tail(cursor, UserCondRef(word=token.text))
        # Direct user-word reference ("hot and stuffy" with no subject).
        match = self.words.match_condition_word(self._upcoming_words(cursor))
        if match is not None:
            for _ in match:
                cursor.advance()
            return self._with_tail(cursor, UserCondRef(word=" ".join(match)))
        return self._parse_cond_atom(cursor)

    def _with_tail(self, cursor: _Cursor, expr: CondExpr) -> CondExpr:
        """Attach an optional trailing TimeSpec as a conjunction."""
        spec = self._try_timespec(cursor)
        if spec is None:
            return expr
        return CondAnd(children=(expr, TimeCond(spec=spec)))

    def _parse_cond_atom(self, cursor: _Cursor) -> CondExpr:
        subject, place = self._parse_subject(cursor)
        # "<subject> is <user word>" — defined word used as an adjective.
        mark = cursor.save()
        if cursor.peek().text in self.vocabulary.be_words:
            cursor.advance()
            match = self.words.match_condition_word(self._upcoming_words(cursor))
            if match is not None:
                for _ in match:
                    cursor.advance()
                ref = UserCondRef(word=" ".join(match), subject_words=subject,
                                  place_words=place)
                return self._with_tail(cursor, ref)
            if cursor.peek().kind is TokenKind.QUOTED:
                token = cursor.advance()
                ref = UserCondRef(word=token.text, subject_words=subject,
                                  place_words=place)
                return self._with_tail(cursor, ref)
            cursor.restore(mark)
        state = self._match_table(cursor, self.vocabulary.state_phrases)
        if state is None:
            raise cursor.error(
                f"expected a state phrase after {' '.join(subject)!r}"
            )
        value: float | None = None
        unit: str | None = None
        value_words: tuple[str, ...] = ()
        if state in NUMERIC_KINDS:
            number = cursor.peek()
            if number.kind is not TokenKind.NUMBER:
                raise cursor.error("expected a number in the comparison")
            cursor.advance()
            value = float(number.value)
            unit_info = self._match_table(cursor, self.vocabulary.value_units)
            if unit_info is not None:
                unit = unit_info[0]
                if unit == "fahrenheit":
                    value = (value - 32.0) * 5.0 / 9.0
                    unit = "celsius"
        elif state in WORDED_KINDS:
            if cursor.peek().text in self.vocabulary.articles:
                cursor.advance()
            value_words = self._collect_words(cursor, allow_at=False)
            if not value_words:
                raise cursor.error("expected words after the state phrase")
        period = self._try_period(cursor)
        atom = CondAtom(
            subject_words=subject,
            state=state,  # type: ignore[arg-type]
            place_words=place,
            value=value,
            unit=unit,
            value_words=value_words,
            period=period,
        )
        return self._with_tail(cursor, atom)

    def _parse_subject(
        self, cursor: _Cursor
    ) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Collect subject words, stopping where a state phrase (or a
        bare be-word, for user-word adjectives) begins."""
        if cursor.peek().text in self.vocabulary.articles:
            cursor.advance()
        collected: list[str] = []
        while True:
            token = cursor.peek()
            if token.kind is not TokenKind.WORD:
                break
            if token.text in _STOP_WORDS:
                break
            if token.text in self.vocabulary.be_words:
                break
            if self._peek_table(cursor, self.vocabulary.state_phrases):
                break
            if token.text not in self.vocabulary.articles:
                collected.append(token.text)
            cursor.advance()
        words = tuple(collected)
        if not words:
            raise cursor.error("expected a sensor, person, place or event")
        if "at" in words:
            split = words.index("at")
            subject = tuple(words[:split])
            place = tuple(w for w in words[split + 1:]
                          if w not in self.vocabulary.articles)
            if not subject or not place:
                raise cursor.error("malformed location modifier")
            return subject, place
        return tuple(words), ()

    def _try_period(self, cursor: _Cursor) -> PeriodNode | None:
        if not cursor.peek().is_word("for"):
            return None
        mark = cursor.save()
        cursor.advance()
        number = cursor.peek()
        if number.kind is not TokenKind.NUMBER:
            cursor.restore(mark)
            return None
        cursor.advance()
        unit = cursor.peek()
        multiplier = self.vocabulary.period_units.get(unit.text)
        if unit.kind is not TokenKind.WORD or multiplier is None:
            cursor.restore(mark)
            return None
        cursor.advance()
        seconds = float(number.value) * multiplier
        return PeriodNode(seconds=seconds,
                          source=f"for {number.value:g} {unit.text}")

    # -- time specs ------------------------------------------------------------------------

    def _try_timespec(self, cursor: _Cursor) -> TimeSpecNode | None:
        mark = cursor.save()
        spec = self._try_timespec_from(cursor)
        if spec is None:
            cursor.restore(mark)
        return spec

    def _try_timespec_from(self, cursor: _Cursor) -> TimeSpecNode | None:
        token = cursor.peek()
        if token.kind is not TokenKind.WORD or \
                token.text not in self.vocabulary.time_prepositions:
            return None
        preposition = token.text
        cursor.advance()
        weekday = None
        if cursor.peek().is_word("every"):
            cursor.advance()
            day = cursor.peek()
            weekday = self.vocabulary.weekdays.get(day.text)
            if weekday is None:
                return None
            cursor.advance()
        token = cursor.peek()
        if token.kind is TokenKind.WORD and token.text in self.vocabulary.named_times:
            cursor.advance()
            return TimeSpecNode(
                preposition=preposition,
                time_of_day=self.vocabulary.named_times[token.text],
                named=token.text,
                weekday=weekday,
            )
        if token.kind is TokenKind.CLOCK:
            cursor.advance()
            hour_text, _, minute_text = token.text.partition(":")
            try:
                tod = hhmm(int(hour_text) % 24, int(minute_text))
            except Exception:
                return None
            tod = self._apply_am_pm(cursor, tod, int(hour_text))
            return TimeSpecNode(preposition=preposition, time_of_day=tod,
                                weekday=weekday)
        if token.kind is TokenKind.NUMBER and token.value is not None \
                and float(token.value).is_integer() and 0 <= token.value <= 24:
            cursor.advance()
            hour = int(token.value)
            tod = hhmm(hour % 24)
            tod = self._apply_am_pm(cursor, tod, hour)
            return TimeSpecNode(preposition=preposition, time_of_day=tod,
                                weekday=weekday)
        if weekday is not None:
            # "at every sunday" with no time-of-day: whole-day spec.
            return TimeSpecNode(preposition=preposition, weekday=weekday)
        return None

    def _apply_am_pm(self, cursor: _Cursor, tod: float, hour: int) -> float:
        token = cursor.peek()
        if token.is_word("pm") and hour < 12:
            cursor.advance()
            return tod + hhmm(12)
        if token.is_word("pm") or token.is_word("am"):
            cursor.advance()
            if token.text == "am" and hour == 12:
                return tod - hhmm(12)
        return tod

    # -- CondDef / ConfDef --------------------------------------------------------------------

    def _parse_conddef(self, cursor: _Cursor) -> CondDef:
        expr = self._parse_condexpr(cursor)
        word = self._trailing_word(cursor)
        return CondDef(expr=expr, word=word)

    def _parse_confdef(self, cursor: _Cursor) -> ConfDef:
        settings: list[SettingNode] = []
        while True:
            setting = self._try_setting_row(cursor)
            if setting is None:
                raise cursor.error("expected '<value> of <parameter> setting'")
            settings.append(setting)
            if cursor.peek().is_word("and") and \
                    self._peek_setting_follows(cursor):
                cursor.advance()
                continue
            break
        word = self._trailing_word(cursor)
        return ConfDef(settings=tuple(settings), word=word)

    def _peek_setting_follows(self, cursor: _Cursor) -> bool:
        mark = cursor.save()
        cursor.advance()  # "and"
        ok = self._try_setting_row(cursor) is not None
        cursor.restore(mark)
        return ok

    def _trailing_word(self, cursor: _Cursor) -> str:
        token = cursor.peek()
        if token.kind is TokenKind.QUOTED:
            cursor.advance()
            return token.text
        words: list[str] = []
        while cursor.peek().kind is TokenKind.WORD:
            words.append(cursor.advance().text)
        if not words:
            raise cursor.error("expected the new word being defined")
        return " ".join(words)


def parse_command(
    text: str,
    vocabulary: Vocabulary | None = None,
    words: WordDictionary | None = None,
) -> Command:
    """One-shot convenience wrapper around :class:`CadelParser`."""
    return CadelParser(vocabulary=vocabulary, words=words).parse(text)
