"""Satisfiability of conjunctions of linear inequalities.

The paper detects rule conflicts by checking whether the conjunction of
two rules' conditions "has feasible solutions or not", solved in the
prototype by a C library implementing the Simplex method.  This package
is the Python equivalent:

* :mod:`repro.solver.linear` — linear-expression and constraint IR.
* :mod:`repro.solver.simplex` — two-phase Simplex feasibility with
  strict-inequality support (gap-variable formulation).
* :mod:`repro.solver.intervals` — an interval-propagation fast path that
  decides the (very common) single-variable-per-constraint case without
  building a tableau; the A1 ablation benchmark quantifies the gain.

:func:`feasible` is the public entry point; it dispatches to the fast
path when applicable and falls back to Simplex otherwise.
"""

from repro.solver.linear import LinearConstraint, LinearExpr, Relation
from repro.solver.intervals import interval_feasible
from repro.solver.simplex import simplex_feasible


def feasible(
    constraints: list[LinearConstraint], *, prefer_intervals: bool = True
) -> bool:
    """Decide whether a conjunction of linear constraints is satisfiable
    over the reals.

    Args:
        constraints: the conjunction to test (empty conjunction is True).
        prefer_intervals: try interval propagation first; it decides any
            system whose constraints each mention a single variable.

    Returns:
        True iff some real assignment satisfies every constraint.
    """
    if prefer_intervals:
        verdict = interval_feasible(constraints)
        if verdict is not None:
            return verdict
    return simplex_feasible(constraints)


__all__ = [
    "LinearConstraint",
    "LinearExpr",
    "Relation",
    "feasible",
    "interval_feasible",
    "simplex_feasible",
]
