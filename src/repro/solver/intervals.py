"""Interval-propagation fast path for single-variable constraint systems.

Every CADEL atom the paper shows compares one sensor value against one
threshold ("temperature is higher than 28 degrees"), so most conflict
checks reduce to intersecting per-variable intervals — no tableau
needed.  :func:`interval_feasible` decides exactly that fragment and
declines (returns ``None``) as soon as a constraint couples two or more
variables, letting the caller fall back to Simplex.  Benchmark A1
quantifies the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.solver.linear import LinearConstraint, Relation

_INF = float("inf")


@dataclass
class _Interval:
    """A (possibly open) interval with strictness flags on each end."""

    low: float = -_INF
    low_strict: bool = False
    high: float = _INF
    high_strict: bool = False

    def tighten_upper(self, bound: float, strict: bool) -> None:
        if bound < self.high or (bound == self.high and strict):
            self.high = bound
            self.high_strict = strict

    def tighten_lower(self, bound: float, strict: bool) -> None:
        if bound > self.low or (bound == self.low and strict):
            self.low = bound
            self.low_strict = strict

    def is_empty(self) -> bool:
        if self.low > self.high:
            return True
        if self.low == self.high:
            return self.low_strict or self.high_strict
        return False


def interval_feasible(constraints: list[LinearConstraint]) -> bool | None:
    """Decide feasibility when every constraint mentions ≤ 1 variable.

    Returns:
        True/False when decidable by interval intersection;
        None when some constraint couples several variables (caller
        should fall back to :func:`repro.solver.simplex.simplex_feasible`).
    """
    intervals: dict[str, _Interval] = {}
    for constraint in constraints:
        names = constraint.variables()
        if len(names) > 1:
            return None
        if not names:  # ground constraint
            if not constraint.trivially_true():
                return False
            continue
        name = next(iter(names))
        coef = constraint.expr.as_dict()[name]
        bound = constraint.bound / coef
        interval = intervals.setdefault(name, _Interval())
        relation = constraint.relation
        if relation is Relation.EQ:
            interval.tighten_lower(bound, strict=False)
            interval.tighten_upper(bound, strict=False)
            continue
        strict = relation.is_strict
        # coef*x REL bound: dividing by a negative coef mirrors the relation.
        upper_side = coef > 0
        if upper_side:
            interval.tighten_upper(bound, strict)
        else:
            interval.tighten_lower(bound, strict)
    for interval in intervals.values():
        if interval.is_empty():
            return False
    return True
