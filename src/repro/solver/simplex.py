"""Two-phase Simplex feasibility for conjunctions of linear constraints.

This mirrors the paper's prototype, which "implemented a C library for
solving the satisfiability of given linear expressions using the Simplex
Method".  Feasibility over the reals with *strict* inequalities uses the
standard gap-variable formulation:

    maximize δ
    subject to  a·x     ≤ b   for every weak row,
                a·x + δ ≤ b   for every strict row,
                a·x     = b   for every equality row,
                0 ≤ δ ≤ 1

The original system is satisfiable iff this LP is feasible and its
optimum δ* is strictly positive (when strict rows exist; with no strict
rows plain phase-1 feasibility decides).  Free variables are split as
``x = x⁺ − x⁻`` to reach standard form; Bland's rule guarantees
termination.

The implementation is dense and pure-Python: conflict checks in the
paper involve conjunctions of ~4 inequalities, for which tableau setup
dominates and sparse machinery would be pure overhead.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.solver.linear import (
    LinearConstraint,
    Relation,
    constraints_variables,
)

_TOL = 1e-9
_MAX_PIVOTS = 10_000

_GAP = "__gap__"  # reserved column name for the strictness variable δ


def simplex_feasible(constraints: list[LinearConstraint]) -> bool:
    """True iff the conjunction of ``constraints`` is satisfiable over ℝ."""
    ground_verdict, live = _split_ground(constraints)
    if ground_verdict is False:
        return False
    if not live:
        return True

    variables = constraints_variables(live)
    if _GAP in variables:
        raise SolverError(f"variable name {_GAP!r} is reserved")
    has_strict = any(c.relation is Relation.LT for c in live)

    tableau, basis, num_structural = _build_tableau(live, variables, has_strict)
    phase1_ok = _phase1(tableau, basis, num_structural)
    if not phase1_ok:
        return False
    if not has_strict:
        return True
    gap_value = _phase2_maximize_gap(tableau, basis, num_structural, variables)
    return gap_value > _TOL


def _split_ground(
    constraints: list[LinearConstraint],
) -> tuple[bool | None, list[LinearConstraint]]:
    """Peel off variable-free constraints; returns (False, _) when one of
    them is already violated, else (None, live_constraints)."""
    live: list[LinearConstraint] = []
    for constraint in constraints:
        if constraint.is_trivial():
            if not constraint.trivially_true():
                return False, []
        else:
            live.append(constraint)
    return None, live


def _build_tableau(
    constraints: list[LinearConstraint],
    variables: list[str],
    has_strict: bool,
) -> tuple[list[list[float]], list[int], int]:
    """Assemble the phase-1 tableau in standard equality form.

    Columns: [x⁺ per variable][x⁻ per variable][δ (if strict)]
             [slack per inequality row][artificial per row][RHS].
    Every row gets an artificial variable so the initial basis is
    trivially the artificials (slack columns may carry negative RHS
    after sign normalization, so we don't reuse them as a basis).
    """
    var_index = {name: i for i, name in enumerate(variables)}
    n_vars = len(variables)
    gap_col = 2 * n_vars if has_strict else None
    n_structural = 2 * n_vars + (1 if has_strict else 0)

    rows: list[tuple[list[float], float, bool]] = []  # (coeffs, rhs, needs_slack)
    for constraint in constraints:
        coeffs = [0.0] * n_structural
        for name, coef in constraint.expr.coefficients:
            j = var_index[name]
            coeffs[j] += coef          # x⁺
            coeffs[n_vars + j] -= coef  # x⁻
        if constraint.relation is Relation.LT:
            assert gap_col is not None
            coeffs[gap_col] += 1.0
        needs_slack = constraint.relation is not Relation.EQ
        rows.append((coeffs, constraint.bound, needs_slack))
    if has_strict:
        assert gap_col is not None
        coeffs = [0.0] * n_structural
        coeffs[gap_col] = 1.0
        rows.append((coeffs, 1.0, True))  # δ ≤ 1 keeps phase 2 bounded

    n_rows = len(rows)
    n_slacks = sum(1 for _, _, needs in rows if needs)
    total_cols = n_structural + n_slacks + n_rows + 1  # + artificials + RHS

    tableau: list[list[float]] = []
    basis: list[int] = []
    slack_cursor = n_structural
    for i, (coeffs, rhs, needs_slack) in enumerate(rows):
        row = [0.0] * total_cols
        row[:n_structural] = coeffs
        if needs_slack:
            row[slack_cursor] = 1.0
            slack_cursor += 1
        row[-1] = rhs
        if rhs < 0:  # standard form requires b >= 0
            row = [-v for v in row]
        artificial_col = n_structural + n_slacks + i
        row[artificial_col] = 1.0
        tableau.append(row)
        basis.append(artificial_col)
    return tableau, basis, n_structural


def _phase1(tableau: list[list[float]], basis: list[int], n_structural: int) -> bool:
    """Minimize the sum of artificials; True iff it reaches ~0."""
    total_cols = len(tableau[0])
    n_rows = len(tableau)
    first_artificial = total_cols - 1 - n_rows

    # Reduced-cost row for cost = 1 on artificials, basis = artificials:
    # z_j = c_j − Σ_i A[i][j]; objective value = Σ_i b_i.
    cost_row = [0.0] * total_cols
    for j in range(total_cols):
        column_sum = sum(tableau[i][j] for i in range(n_rows))
        base_cost = 1.0 if first_artificial <= j < total_cols - 1 else 0.0
        cost_row[j] = base_cost - column_sum
    objective = sum(tableau[i][-1] for i in range(n_rows))
    cost_row[-1] = -objective

    allowed = list(range(total_cols - 1))
    _iterate(tableau, basis, cost_row, allowed)
    phase1_value = -cost_row[-1]
    if phase1_value > 1e-7:
        return False
    _drive_out_artificials(tableau, basis, first_artificial, total_cols)
    return True


def _drive_out_artificials(
    tableau: list[list[float]],
    basis: list[int],
    first_artificial: int,
    total_cols: int,
) -> None:
    """Pivot basic artificials out (or mark redundant rows harmless)."""
    for i, basic in enumerate(basis):
        if basic < first_artificial:
            continue
        pivot_col = None
        for j in range(first_artificial):
            if abs(tableau[i][j]) > _TOL:
                pivot_col = j
                break
        if pivot_col is None:
            continue  # 0 = 0 row; leaving the artificial basic at 0 is safe
        _pivot(tableau, basis, i, pivot_col)


def _phase2_maximize_gap(
    tableau: list[list[float]],
    basis: list[int],
    n_structural: int,
    variables: list[str],
) -> float:
    """Phase 2: maximize δ (minimize −δ) from the phase-1 basic solution."""
    total_cols = len(tableau[0])
    n_rows = len(tableau)
    first_artificial = total_cols - 1 - n_rows
    gap_col = 2 * len(variables)

    cost = [0.0] * total_cols
    cost[gap_col] = -1.0  # minimize −δ
    cost_row = cost[:]
    for i, basic in enumerate(basis):
        basic_cost = cost[basic]
        if basic_cost != 0.0:
            for j in range(total_cols):
                cost_row[j] -= basic_cost * tableau[i][j]
    allowed = list(range(first_artificial))  # artificials stay out
    status = _iterate(tableau, basis, cost_row, allowed)
    if status == "unbounded":
        # Cannot happen: δ ≤ 1 is an explicit row.  Defensive only.
        raise SolverError("phase-2 gap objective unbounded despite δ ≤ 1")
    return _basic_value(tableau, basis, gap_col)


def _basic_value(tableau: list[list[float]], basis: list[int], col: int) -> float:
    for i, basic in enumerate(basis):
        if basic == col:
            return tableau[i][-1]
    return 0.0


def _iterate(
    tableau: list[list[float]],
    basis: list[int],
    cost_row: list[float],
    allowed_cols: list[int],
) -> str:
    """Run simplex pivots with Bland's rule until optimal or unbounded.

    ``cost_row`` is updated in place alongside the tableau rows.
    """
    for _ in range(_MAX_PIVOTS):
        pivot_col = None
        for j in allowed_cols:
            if cost_row[j] < -_TOL:
                pivot_col = j
                break
        if pivot_col is None:
            return "optimal"
        pivot_row = None
        best_ratio = None
        for i, row in enumerate(tableau):
            a = row[pivot_col]
            if a > _TOL:
                ratio = row[-1] / a
                if (
                    best_ratio is None
                    or ratio < best_ratio - _TOL
                    or (abs(ratio - best_ratio) <= _TOL
                        and basis[i] < basis[pivot_row])
                ):
                    best_ratio = ratio
                    pivot_row = i
        if pivot_row is None:
            return "unbounded"
        _pivot(tableau, basis, pivot_row, pivot_col, cost_row)
    raise SolverError("simplex exceeded the pivot budget (cycling?)")


def _pivot(
    tableau: list[list[float]],
    basis: list[int],
    pivot_row: int,
    pivot_col: int,
    cost_row: list[float] | None = None,
) -> None:
    """Gauss-Jordan pivot on (pivot_row, pivot_col)."""
    row = tableau[pivot_row]
    factor = row[pivot_col]
    if abs(factor) <= _TOL:
        raise SolverError("pivot on a (near-)zero element")
    tableau[pivot_row] = [v / factor for v in row]
    row = tableau[pivot_row]
    for i, other in enumerate(tableau):
        if i == pivot_row:
            continue
        multiplier = other[pivot_col]
        if multiplier != 0.0:
            tableau[i] = [o - multiplier * r for o, r in zip(other, row)]
    if cost_row is not None:
        multiplier = cost_row[pivot_col]
        if multiplier != 0.0:
            for j in range(len(cost_row)):
                cost_row[j] -= multiplier * row[j]
    basis[pivot_row] = pivot_col
