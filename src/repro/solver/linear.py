"""Linear expressions and constraints over named real variables.

Variables are plain strings — the rule compiler uses fully qualified
sensor-variable names such as ``"living room/thermometer/temperature"``
— so constraint systems assembled from *different* rules automatically
share variables exactly when they reference the same sensor, which is
what makes cross-rule conflict checking meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

from repro.errors import SolverError


class Relation(Enum):
    """Comparison operator of a linear constraint."""

    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"
    EQ = "=="

    @property
    def is_strict(self) -> bool:
        return self in (Relation.LT, Relation.GT)

    def flipped(self) -> "Relation":
        """Mirror the relation (used when negating or normalizing sides)."""
        return {
            Relation.LE: Relation.GE,
            Relation.LT: Relation.GT,
            Relation.GE: Relation.LE,
            Relation.GT: Relation.LT,
            Relation.EQ: Relation.EQ,
        }[self]

    def negated(self) -> "Relation":
        """Logical complement: not(x <= c) is x > c.  EQ has no single
        complement (it splits into a disjunction), so it raises."""
        if self is Relation.EQ:
            raise SolverError("negation of == is a disjunction (< or >)")
        return {
            Relation.LE: Relation.GT,
            Relation.LT: Relation.GE,
            Relation.GE: Relation.LT,
            Relation.GT: Relation.LE,
        }[self]


@dataclass(frozen=True)
class LinearExpr:
    """An immutable linear combination of variables plus a constant.

    ``LinearExpr.var("t") * 2 + 3`` builds ``2*t + 3``.
    """

    coefficients: tuple[tuple[str, float], ...] = ()
    constant: float = 0.0

    @classmethod
    def var(cls, name: str, coefficient: float = 1.0) -> "LinearExpr":
        return cls(coefficients=((name, coefficient),))

    @classmethod
    def const(cls, value: float) -> "LinearExpr":
        return cls(constant=float(value))

    @classmethod
    def from_mapping(cls, coeffs: Mapping[str, float], constant: float = 0.0
                     ) -> "LinearExpr":
        filtered = tuple(sorted((v, float(c)) for v, c in coeffs.items() if c != 0.0))
        return cls(coefficients=filtered, constant=float(constant))

    def as_dict(self) -> dict[str, float]:
        return dict(self.coefficients)

    def variables(self) -> set[str]:
        return {name for name, _ in self.coefficients}

    def __add__(self, other: "LinearExpr | float | int") -> "LinearExpr":
        if isinstance(other, (int, float)):
            other = LinearExpr.const(other)
        merged = self.as_dict()
        for name, coef in other.coefficients:
            merged[name] = merged.get(name, 0.0) + coef
        return LinearExpr.from_mapping(merged, self.constant + other.constant)

    def __sub__(self, other: "LinearExpr | float | int") -> "LinearExpr":
        if isinstance(other, (int, float)):
            other = LinearExpr.const(other)
        return self + (other * -1.0)

    def __mul__(self, scalar: float | int) -> "LinearExpr":
        if not isinstance(scalar, (int, float)):
            raise SolverError(f"can only scale by a number, got {scalar!r}")
        return LinearExpr.from_mapping(
            {name: coef * scalar for name, coef in self.coefficients},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Value of the expression under a full variable assignment."""
        total = self.constant
        for name, coef in self.coefficients:
            if name not in assignment:
                raise SolverError(f"assignment missing variable {name!r}")
            total += coef * assignment[name]
        return total

    def __str__(self) -> str:
        parts = [f"{coef:+g}*{name}" for name, coef in self.coefficients]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


@dataclass(frozen=True)
class LinearConstraint:
    """A constraint ``expr REL rhs`` in canonical left-hand form.

    Stored canonically as ``sum(coef*var) REL bound`` where REL is one of
    LE / LT / EQ — GE/GT inputs are flipped by negating coefficients, so
    downstream solvers only see three relation kinds.
    """

    expr: LinearExpr
    relation: Relation
    bound: float

    @classmethod
    def make(
        cls, expr: LinearExpr, relation: Relation, rhs: "LinearExpr | float | int"
    ) -> "LinearConstraint":
        """Build and canonicalize ``expr REL rhs`` (rhs may be an expr)."""
        if isinstance(rhs, (int, float)):
            rhs = LinearExpr.const(rhs)
        moved = expr - rhs  # moved REL 0
        bound = -moved.constant
        lhs = LinearExpr.from_mapping(moved.as_dict())
        if relation in (Relation.GE, Relation.GT):
            lhs = lhs * -1.0
            bound = -bound
            relation = relation.flipped()
        return cls(expr=lhs, relation=relation, bound=bound)

    def variables(self) -> set[str]:
        return self.expr.variables()

    def is_trivial(self) -> bool:
        """True when no variables remain (constraint is a ground fact)."""
        return not self.expr.coefficients

    def trivially_true(self) -> bool:
        if not self.is_trivial():
            raise SolverError("trivially_true on a non-ground constraint")
        if self.relation is Relation.LE:
            return 0.0 <= self.bound
        if self.relation is Relation.LT:
            return 0.0 < self.bound
        return self.bound == 0.0  # EQ

    def satisfied_by(self, assignment: Mapping[str, float],
                     tolerance: float = 1e-9) -> bool:
        value = self.expr.evaluate(assignment)
        if self.relation is Relation.LE:
            return value <= self.bound + tolerance
        if self.relation is Relation.LT:
            return value < self.bound - tolerance
        return abs(value - self.bound) <= tolerance  # EQ

    def negated(self) -> "LinearConstraint":
        """Logical complement (EQ raises; callers split it themselves)."""
        if self.relation is Relation.EQ:
            raise SolverError("negation of == is a disjunction")
        if self.relation is Relation.LE:  # not(e <= b)  ==  e > b  ==  -e < -b
            return LinearConstraint(self.expr * -1.0, Relation.LT, -self.bound)
        # not(e < b)  ==  e >= b  ==  -e <= -b
        return LinearConstraint(self.expr * -1.0, Relation.LE, -self.bound)

    def __str__(self) -> str:
        return f"{self.expr} {self.relation.value} {self.bound:g}"


def constraints_variables(constraints: Iterable[LinearConstraint]) -> list[str]:
    """Sorted union of all variables mentioned by a constraint system."""
    names: set[str] = set()
    for constraint in constraints:
        names |= constraint.variables()
    return sorted(names)
