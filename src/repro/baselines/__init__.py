"""Baseline implementations for the ablation benchmarks.

Each baseline is the naive counterpart of a framework design choice, so
the benchmarks can quantify what the design buys:

* :mod:`repro.baselines.naive_conflict` — sampling-based conflict check
  instead of exact Simplex satisfiability (A1 companion).
* :mod:`repro.baselines.interpreter` — re-parse-and-rebind CADEL
  evaluation instead of compiled rule objects (A3; the paper explicitly
  notes the execution module "does not execute rules by interpreting
  CADEL descriptions").

The unindexed retrieval/extraction baselines (A2/A4) live on the indexed
structures themselves (``DeviceRegistry.scan_by_name``,
``RuleDatabase.rules_for_device_scan``) so both paths share storage.
"""

from repro.baselines.interpreter import InterpretedRule
from repro.baselines.naive_conflict import sampling_conflict_check

__all__ = ["InterpretedRule", "sampling_conflict_check"]
