"""Interpretive rule evaluation baseline (A3).

The paper (Sect. 4.1): "The rule execution module does not execute rules
by interpreting CADEL descriptions, but ... a CADEL description is
expressed as equivalent a 'rule object'".  This baseline is the road not
taken: it keeps only the CADEL *text* and, on every evaluation,
re-parses it, re-binds names against the registry and walks the freshly
built condition — measuring exactly what compilation avoids.
"""

from __future__ import annotations

from repro.cadel.ast import RuleDef
from repro.cadel.binding import Binder
from repro.cadel.compiler import RuleCompiler
from repro.cadel.parser import CadelParser
from repro.cadel.words import WordDictionary
from repro.core.condition import EvaluationContext
from repro.errors import CadelError


class InterpretedRule:
    """A rule kept as CADEL source and interpreted on every evaluation."""

    def __init__(
        self,
        source_text: str,
        binder: Binder,
        *,
        owner: str = "user",
        words: WordDictionary | None = None,
    ) -> None:
        self.source_text = source_text
        self.owner = owner
        self._binder = binder
        self._words = words or WordDictionary()
        self._parser = CadelParser(words=self._words)
        self._compiler = RuleCompiler(binder, words=self._words)

    def evaluate(self, ctx: EvaluationContext) -> bool:
        """Parse + bind + evaluate the trigger condition, from scratch."""
        command = self._parser.parse(self.source_text)
        if not isinstance(command, RuleDef):
            raise CadelError(
                f"not a rule sentence: {self.source_text!r}"
            )
        conjuncts = []
        if command.pre_time is not None:
            conjuncts.append(self._compiler.compile_timespec(command.pre_time))
        if command.precondition is not None:
            conjuncts.append(
                self._compiler.compile_condexpr(command.precondition)
            )
        return all(condition.evaluate(ctx) for condition in conjuncts)
