"""Sampling-based conflict detection baseline.

Instead of deciding joint satisfiability exactly (Simplex / interval
propagation), sample random assignments over the referenced variables'
plausible ranges and report a conflict when any sample satisfies both
conditions.  Cheap per sample but *incomplete*: thin overlap regions are
missed, and cost grows with the sample budget — the A1 ablation
quantifies both effects against the exact solver.
"""

from __future__ import annotations

from repro.core.condition import Condition, NumericAtom
from repro.sim.rng import seeded_rng

DEFAULT_SAMPLES = 256
_RANGE_PADDING = 10.0


def _bounds_of(conditions: list[Condition]) -> dict[str, list[float]]:
    """Per-variable threshold anchors, in *variable units*.

    Constraints are stored canonically (``-1*x < -83`` for ``x > 83``),
    so the anchor is bound/coefficient for single-variable constraints;
    multi-variable constraints contribute the raw bound as a coarse
    anchor for each variable they touch.
    """
    anchors: dict[str, list[float]] = {}
    for condition in conditions:
        for conjunct in condition.dnf():
            for atom in conjunct:
                if not isinstance(atom, NumericAtom):
                    continue
                coefficients = atom.constraint.expr.as_dict()
                for variable, coefficient in coefficients.items():
                    if len(coefficients) == 1 and coefficient != 0.0:
                        anchor = atom.constraint.bound / coefficient
                    else:
                        anchor = atom.constraint.bound
                    anchors.setdefault(variable, []).append(anchor)
    return anchors


def _sample_value(anchors: list[float], rng) -> float:
    """Mixture sampler: half the draws are uniform over the padded bound
    span, half land just around a randomly chosen mentioned bound — the
    latter is what gives thin overlap bands a fighting chance."""
    low = min(anchors) - _RANGE_PADDING
    high = max(anchors) + _RANGE_PADDING
    if rng.random() < 0.5:
        return rng.uniform(low, high)
    anchor = rng.choice(anchors)
    return anchor + rng.uniform(-2.0, 2.0)


def _numeric_conjuncts(condition: Condition):
    for conjunct in condition.dnf():
        yield [atom.constraint for atom in conjunct
               if isinstance(atom, NumericAtom)]


def sampling_conflict_check(
    first: Condition,
    second: Condition,
    samples: int = DEFAULT_SAMPLES,
    seed: int | str = "naive-conflict",
) -> bool:
    """Monte-Carlo joint-satisfiability check over the numeric fragment.

    Returns True when some sampled assignment satisfies a conjunct of
    each condition simultaneously.  False negatives are possible; the
    exact checker is the reference.
    """
    rng = seeded_rng(seed)
    anchors = _bounds_of([first, second])
    if not anchors:
        return True  # no numeric constraints: nothing to separate them
    variables = sorted(anchors)
    first_systems = list(_numeric_conjuncts(first))
    second_systems = list(_numeric_conjuncts(second))
    for _ in range(samples):
        assignment = {
            variable: _sample_value(anchors[variable], rng)
            for variable in variables
        }
        first_ok = any(
            all(c.satisfied_by(assignment) for c in system if
                c.variables() <= assignment.keys())
            for system in first_systems
        )
        if not first_ok:
            continue
        second_ok = any(
            all(c.satisfied_by(assignment) for c in system
                if c.variables() <= assignment.keys())
            for system in second_systems
        )
        if second_ok:
            return True
    return False
