"""Deterministic random number generation.

Every stochastic element of the reproduction (workload generators,
latency jitter, synthetic rule populations) draws from an explicitly
seeded :class:`random.Random` so that benchmark rows and scenario traces
are identical run-to-run.
"""

from __future__ import annotations

import random

DEFAULT_SEED = 20050610  # ICDCS 2005 presentation month, as a memorable seed


def seeded_rng(seed: int | str | None = None) -> random.Random:
    """Return an isolated ``random.Random`` with a stable default seed.

    Strings hash stably (Python's ``random.Random`` seeds from the string
    itself, not ``hash()``), so subsystem names make good seeds:
    ``seeded_rng("bus-latency")``.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return random.Random(seed)
