"""Virtual time.

Simulated time is a float number of seconds since the start of the
scenario day (00:00).  Keeping the unit at seconds-in-a-day makes the
paper's time-of-day constructs ("after 5pm", "at night", "every Monday")
direct arithmetic; multi-day scenarios carry a day counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

SimTime = float

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

_DAY_NAMES = [
    "monday",
    "tuesday",
    "wednesday",
    "thursday",
    "friday",
    "saturday",
    "sunday",
]


def hhmm(hours: int, minutes: int = 0, seconds: float = 0.0) -> SimTime:
    """Build a time-of-day in simulated seconds; ``hhmm(17, 30)`` is 5:30pm."""
    if not 0 <= hours < 24:
        raise SimulationError(f"hour out of range: {hours}")
    if not 0 <= minutes < 60:
        raise SimulationError(f"minute out of range: {minutes}")
    if not 0 <= seconds < 60:
        raise SimulationError(f"second out of range: {seconds}")
    return hours * SECONDS_PER_HOUR + minutes * SECONDS_PER_MINUTE + seconds


def parse_time_of_day(text: str) -> SimTime:
    """Parse the clock-time spellings CADEL accepts into a time-of-day.

    Accepted forms: ``"17:30"``, ``"5pm"``, ``"5:30pm"``, ``"12am"``,
    ``"noon"``, ``"midnight"``, and the named periods ``"morning"`` (6am),
    ``"evening"`` (5pm), ``"night"`` (9pm).
    """
    t = text.strip().lower()
    named = {
        "noon": hhmm(12),
        "midnight": hhmm(0),
        "morning": hhmm(6),
        "evening": hhmm(17),
        "night": hhmm(21),
    }
    if t in named:
        return named[t]
    suffix = None
    if t.endswith("am") or t.endswith("pm"):
        suffix = t[-2:]
        t = t[:-2].strip()
    if ":" in t:
        hour_text, _, minute_text = t.partition(":")
    else:
        hour_text, minute_text = t, "0"
    try:
        hours = int(hour_text)
        minutes = int(minute_text)
    except ValueError:
        raise SimulationError(f"unparseable time of day: {text!r}") from None
    if suffix == "pm" and hours != 12:
        hours += 12
    if suffix == "am" and hours == 12:
        hours = 0
    if hours == 24 and minutes == 0:
        return SECONDS_PER_DAY
    return hhmm(hours, minutes)


def format_time_of_day(t: SimTime) -> str:
    """Render a time-of-day as ``HH:MM:SS`` (wraps past midnight)."""
    t = t % SECONDS_PER_DAY
    hours = int(t // SECONDS_PER_HOUR)
    minutes = int((t % SECONDS_PER_HOUR) // SECONDS_PER_MINUTE)
    seconds = int(t % SECONDS_PER_MINUTE)
    return f"{hours:02d}:{minutes:02d}:{seconds:02d}"


@dataclass
class VirtualClock:
    """Monotonic simulated clock.

    ``now`` is absolute simulated seconds since day 0, 00:00.  The clock
    only moves forward, and only via :meth:`advance_to` (driven by the
    event queue) — components never advance it themselves.

    Args:
        start: initial absolute time (default: day 0, 00:00).
        start_weekday: which weekday day 0 is (0 = Monday), so CADEL
            "every sunday" specs resolve correctly.
    """

    start: SimTime = 0.0
    start_weekday: int = 0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise SimulationError("clock cannot start before time 0")
        if not 0 <= self.start_weekday < 7:
            raise SimulationError("start_weekday must be 0..6 (Monday..Sunday)")
        self._now: SimTime = self.start

    @property
    def now(self) -> SimTime:
        """Absolute simulated seconds since day 0, 00:00."""
        return self._now

    @property
    def time_of_day(self) -> SimTime:
        """Seconds since the most recent midnight."""
        return self._now % SECONDS_PER_DAY

    @property
    def day(self) -> int:
        """Completed days since the scenario start."""
        return int(self._now // SECONDS_PER_DAY)

    @property
    def weekday(self) -> int:
        """Current weekday, 0 = Monday ... 6 = Sunday."""
        return (self.start_weekday + self.day) % 7

    @property
    def weekday_name(self) -> str:
        return _DAY_NAMES[self.weekday]

    def advance_to(self, t: SimTime) -> None:
        """Move the clock forward to absolute time ``t`` (never backward)."""
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backward: now={self._now}, requested={t}"
            )
        self._now = t

    def timestamp(self) -> str:
        """Human-readable ``day N HH:MM:SS`` stamp for logs and traces."""
        return f"day {self.day} {format_time_of_day(self.time_of_day)}"


def weekday_index(name: str) -> int:
    """Map a weekday name (any case) to 0..6; raises on unknown names."""
    try:
        return _DAY_NAMES.index(name.strip().lower())
    except ValueError:
        raise SimulationError(f"unknown weekday: {name!r}") from None
