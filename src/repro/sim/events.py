"""Event queue and run loop — the heart of the discrete-event kernel.

The queue holds ``(time, sequence, callback)`` entries; ties on time are
broken by insertion order so runs are fully deterministic.  Components
schedule work with :meth:`Simulator.call_at` / :meth:`call_after` and the
owner drives the loop with :meth:`run_until` / :meth:`run`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import SimTime, VirtualClock


@dataclass
class EventHandle:
    """Cancellable reference to a scheduled event."""

    time: SimTime
    seq: int
    callback: Callable[[], None] | None
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True
        self.callback = None


class EventQueue:
    """Min-heap of scheduled events ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[tuple[SimTime, int, EventHandle]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    def push(self, time: SimTime, callback: Callable[[], None]) -> EventHandle:
        handle = EventHandle(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def peek_time(self) -> SimTime | None:
        """Time of the next live event, or None when the queue is drained."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> EventHandle:
        while self._heap:
            _, _, handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                return handle
        raise SimulationError("pop from an empty event queue")


class Simulator:
    """Virtual clock + event queue + run loop.

    One Simulator instance is shared by the whole scenario: the network
    bus uses it to deliver messages after latency, appliances use it for
    physics ticks, and the rule engine uses it for duration timers.
    """

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue = EventQueue()
        self._running = False
        self._max_events_per_run = 10_000_000

    @property
    def now(self) -> SimTime:
        return self.clock.now

    def call_at(self, time: SimTime, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time``."""
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.clock.now}, at={time}"
            )
        return self._queue.push(time, callback)

    def call_after(self, delay: SimTime, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self.clock.now + delay, callback)

    def every(
        self,
        period: SimTime,
        callback: Callable[[], None],
        *,
        start_after: SimTime | None = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``period`` seconds until cancelled."""
        if period <= 0:
            raise SimulationError(f"period must be positive: {period}")
        task = PeriodicTask(self, period, callback)
        task.start(start_after if start_after is not None else period)
        return task

    def pending_events(self) -> int:
        return len(self._queue)

    def next_event_time(self) -> SimTime | None:
        """Absolute time of the next scheduled event, or None when idle."""
        return self._queue.peek_time()

    def step(self) -> bool:
        """Fire the single next event; returns False when queue is empty."""
        next_time = self._queue.peek_time()
        if next_time is None:
            return False
        handle = self._queue.pop()
        self.clock.advance_to(handle.time)
        callback = handle.callback
        handle.callback = None
        if callback is not None:
            callback()
        return True

    def run_until(self, time: SimTime) -> None:
        """Fire every event scheduled up to and including ``time``,
        then advance the clock to exactly ``time``."""
        if time < self.clock.now:
            raise SimulationError("run_until target is in the past")
        fired = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            fired += 1
            if fired > self._max_events_per_run:
                raise SimulationError(
                    "event cascade exceeded the per-run safety limit; "
                    "likely a zero-delay scheduling loop"
                )
        self.clock.advance_to(time)

    def catch_up(self, time: SimTime) -> None:
        """Advance to ``time`` if it is ahead; no-op otherwise.

        The cross-process clock seam: every time-bearing wire frame
        carries the parent simulator's ``now``, and the shard worker
        catches its private simulator up before applying the payload —
        firing grid-snapped clock ticks and held-duration timers in the
        same order the parent's shared-simulator drain would have."""
        if time > self.clock.now:
            self.run_until(time)

    def run(self) -> None:
        """Drain the queue completely (use run_until for open-ended loops)."""
        fired = 0
        while self.step():
            fired += 1
            if fired > self._max_events_per_run:
                raise SimulationError(
                    "event cascade exceeded the per-run safety limit; "
                    "likely a zero-delay scheduling loop"
                )


@dataclass
class PeriodicTask:
    """Handle to a recurring callback; cancel() stops future firings."""

    simulator: Simulator
    period: SimTime
    callback: Callable[[], None]
    _handle: EventHandle | None = field(default=None, repr=False)
    _stopped: bool = False

    def start(self, initial_delay: SimTime) -> None:
        if self._handle is not None:
            raise SimulationError("periodic task already started")
        self._handle = self.simulator.call_after(initial_delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            self._handle = self.simulator.call_after(self.period, self._fire)

    def cancel(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
