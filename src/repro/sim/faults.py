"""Deterministic crash-point injection for the durability plane.

The recovery suite proves restart equivalence by crashing a cluster at
*arbitrary* points — mid-drain before the WAL append, after it, between
two applied entries, halfway through a snapshot write — and checking
that snapshot + WAL-tail replay reproduces the uninterrupted twin
exactly.  A :class:`FaultInjector` holds a countdown per named crash
site; instrumented code calls :meth:`check` as it passes each site, and
the injector raises :class:`SimulatedCrash` when a countdown reaches
zero.  Plans are either spelled out explicitly or drawn from the shared
deterministic RNG (:func:`repro.sim.rng.seeded_rng`), so every crash a
randomized run discovers is replayable from its seed.

:class:`SimulatedCrash` deliberately does **not** derive from
:class:`~repro.errors.ReproError`: the engine's dispatch guard swallows
`ReproError` to keep a home running past a misbehaving appliance, and a
simulated power cut must never be absorbed that way — it has to unwind
the whole stack like a real one.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.sim.rng import seeded_rng


class SimulatedCrash(Exception):
    """An injected crash; carries the site that tripped it."""

    def __init__(self, site: str) -> None:
        super().__init__(f"simulated crash at {site!r}")
        self.site = site

    def __reduce__(self):
        # args holds the formatted message; rebuild from the site so a
        # crash forwarded across a process boundary stays typed.
        return (type(self), (self.site,))


class FaultInjector:
    """Countdown-per-site crash planner.

    ``plan`` maps site names to hit counts: a countdown of 1 crashes on
    the first pass through the site, 3 on the third.  Once a crash has
    fired the injector is *spent* — subsequent checks pass, so the
    restarted system can run through the same sites unharmed.
    """

    def __init__(self, plan: Mapping[str, int] | None = None) -> None:
        self._plan: dict[str, int] = dict(plan or {})
        for site, countdown in self._plan.items():
            if countdown <= 0:
                raise ValueError(
                    f"countdown for site {site!r} must be positive: "
                    f"{countdown}"
                )
        self.crashed_at: str | None = None
        self.hits: dict[str, int] = {}

    @classmethod
    def random(
        cls, seed: int | str, sites: Iterable[str], max_countdown: int = 5
    ) -> "FaultInjector":
        """One crash at a seeded-random site and countdown — the
        randomized equivalence suite's plan factory."""
        rng = seeded_rng(seed)
        ordered = sorted(sites)
        if not ordered:
            raise ValueError("no crash sites to choose from")
        site = ordered[rng.randrange(len(ordered))]
        return cls({site: rng.randint(1, max_countdown)})

    @property
    def spent(self) -> bool:
        return self.crashed_at is not None

    def check(self, site: str) -> None:
        """Pass through a crash site; raises :class:`SimulatedCrash`
        when this visit exhausts the site's countdown."""
        self.hits[site] = self.hits.get(site, 0) + 1
        if self.crashed_at is not None:
            return
        remaining = self._plan.get(site)
        if remaining is None:
            return
        remaining -= 1
        if remaining > 0:
            self._plan[site] = remaining
            return
        del self._plan[site]
        self.crashed_at = site
        raise SimulatedCrash(site)

    def describe(self) -> str:
        plan = ", ".join(
            f"{site}@{count}" for site, count in sorted(self._plan.items())
        )
        status = f"crashed at {self.crashed_at!r}" if self.spent else "armed"
        return f"FaultInjector({plan or 'empty'}; {status})"
