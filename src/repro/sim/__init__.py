"""Discrete-event simulation kernel.

Everything in the reproduction — the network bus, UPnP message exchange,
appliance physics, the rule engine's timers — runs on one shared virtual
clock so scenario runs are deterministic and independent of wall-clock
speed.

Public API:

* :class:`~repro.sim.clock.VirtualClock` — monotonically advancing
  simulated time, with a wall-clock anchor for human-readable timestamps.
* :class:`~repro.sim.events.EventQueue` — priority queue of scheduled
  callbacks (the kernel).
* :class:`~repro.sim.events.Simulator` — clock + queue + run loop.
* :class:`~repro.sim.events.PeriodicTask` — recurring callback handle.
* :func:`~repro.sim.rng.seeded_rng` — deterministic RNG factory.
* :class:`~repro.sim.faults.FaultInjector` /
  :class:`~repro.sim.faults.SimulatedCrash` — deterministic crash-point
  injection for the durability plane's recovery suite.
"""

from repro.sim.clock import SimTime, VirtualClock, hhmm, parse_time_of_day
from repro.sim.events import EventHandle, EventQueue, PeriodicTask, Simulator
from repro.sim.faults import FaultInjector, SimulatedCrash
from repro.sim.rng import seeded_rng

__all__ = [
    "SimTime",
    "VirtualClock",
    "hhmm",
    "parse_time_of_day",
    "EventHandle",
    "EventQueue",
    "FaultInjector",
    "PeriodicTask",
    "SimulatedCrash",
    "Simulator",
    "seeded_rng",
]
