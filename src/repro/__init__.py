"""repro — reproduction of "Framework and Rule-based Language for
Facilitating Context-aware Computing using Information Appliances"
(Nishigaki, Yasumoto, Shibata, Ito, Higashino — ICDCS 2005).

Subsystem map (see README.md for the architecture diagram):

* :mod:`repro.sim` / :mod:`repro.net` — discrete-event kernel and
  simulated LAN.
* :mod:`repro.upnp` — the UPnP substrate (discovery, control, eventing).
* :mod:`repro.home` — the virtual home: appliances, sensors, residents.
* :mod:`repro.cadel` — the CADEL language: lexer, parser, words, binder,
  compiler.
* :mod:`repro.solver` — Simplex / interval satisfiability of linear
  inequality conjunctions.
* :mod:`repro.core` — rule objects, database, consistency and conflict
  checks, priorities, access control, the execution engine, and the
  :class:`~repro.core.server.HomeServer` facade.
* :mod:`repro.support` — authoring sessions, lookup, guidance,
  import/export, text console.
* :mod:`repro.workloads` / :mod:`repro.baselines` /
  :mod:`repro.scenarios` — the evaluation harness.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
