"""Exception hierarchy shared by every subsystem of the reproduction.

All framework errors derive from :class:`ReproError` so applications can
catch one base class.  Subsystems raise the most specific subclass that
applies; error messages carry enough context (names, positions, values)
to be actionable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """Simulated-network failures (unknown address, closed bus...)."""


class UPnPError(ReproError):
    """UPnP substrate failures (bad description, unknown action...)."""


class ActionError(UPnPError):
    """An action invocation was rejected by the target service."""

    def __init__(self, device: str, action: str, reason: str):
        super().__init__(f"action {action!r} on device {device!r} failed: {reason}")
        self.device = device
        self.action = action
        self.reason = reason


class SubscriptionError(UPnPError):
    """Eventing subscription could not be established or renewed."""


class HomeModelError(ReproError):
    """Inconsistent virtual-home model (unknown room, bad setpoint...)."""


class CadelError(ReproError):
    """Base class for CADEL language-processing errors."""


class CadelSyntaxError(CadelError):
    """Raised by the lexer/parser with the offending position.

    Attributes:
        text: the full source sentence.
        position: 0-based character offset where the error was detected.
    """

    def __init__(self, message: str, text: str = "", position: int = 0):
        self.text = text
        self.position = position
        if text:
            pointer = " " * min(position, len(text)) + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)


class CadelBindingError(CadelError):
    """A name in a rule could not be bound to a device, sensor or word."""


class CadelTypeError(CadelError):
    """A bound rule mixes incompatible kinds (e.g. numeric op on a place)."""


class SolverError(ReproError):
    """Internal failure of the satisfiability engine."""


class UnboundedProblemError(SolverError):
    """The simplex objective is unbounded (cannot happen for feasibility
    problems built by this library; kept for defensive completeness)."""


class RuleError(ReproError):
    """Base class for rule-database and rule-engine errors."""


class InconsistentRuleError(RuleError):
    """A newly registered rule has a condition that can never hold.

    Mirrors the paper's inconsistency check: the consistency module
    "evaluates the condition in the new rule to check whether it can
    hold" and warns the user otherwise.
    """

    def __init__(self, rule_name: str, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"rule {rule_name!r} is inconsistent (its condition can never hold){detail}"
        )
        self.rule_name = rule_name


class UnresolvedConflictError(RuleError):
    """A conflict was detected and no priority order resolves it."""

    def __init__(self, rule_names: list[str], device: str):
        super().__init__(
            "conflicting rules "
            + ", ".join(repr(n) for n in rule_names)
            + f" target device {device!r} and no priority order applies"
        )
        self.rule_names = list(rule_names)
        self.device = device


class DuplicateRuleError(RuleError):
    """A rule with the same name is already registered."""


class UnknownRuleError(RuleError):
    """Lookup of a rule name that is not in the database."""


class ArchiveError(RuleError):
    """A household archive could not be decoded: truncated or invalid
    JSON, a missing or unsupported format marker, or a structurally
    malformed document.  Subclasses :class:`RuleError` so existing
    callers catching rule errors around :func:`restore_household`
    keep working."""


class RecoveryError(ReproError):
    """Cluster crash recovery could not proceed at all: missing or
    undecodable manifest, unsupported snapshot format, or a snapshot
    file the manifest references that cannot be read.  Tolerable damage
    (torn WAL tails, checksum failures, epoch mismatches) does *not*
    raise — it truncates replay and is surfaced in the
    ``RecoveryReport`` instead."""


class LookupServiceError(ReproError):
    """Malformed query to the sensor/device lookup service."""
