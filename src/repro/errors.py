"""Exception hierarchy shared by every subsystem of the reproduction.

All framework errors derive from :class:`ReproError` so applications can
catch one base class.  Subsystems raise the most specific subclass that
applies; error messages carry enough context (names, positions, values)
to be actionable without a debugger.

Every class here must **pickle round-trip** exactly (type, message and
attributes): the process-distribution layer forwards worker-side
failures to the parent as pickled payloads, and an exception that loses
its arguments in transit would surface as an opaque ``TypeError`` in the
wrong process.  Classes whose ``__init__`` signature differs from the
stored ``args`` therefore define ``__reduce__``;
``tests/test_error_pickling.py`` pins the round-trip for the whole
taxonomy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """Simulated-network failures (unknown address, closed bus...)."""


class UPnPError(ReproError):
    """UPnP substrate failures (bad description, unknown action...)."""


class ActionError(UPnPError):
    """An action invocation was rejected by the target service."""

    def __init__(self, device: str, action: str, reason: str):
        super().__init__(f"action {action!r} on device {device!r} failed: {reason}")
        self.device = device
        self.action = action
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.device, self.action, self.reason))


class SubscriptionError(UPnPError):
    """Eventing subscription could not be established or renewed."""


class HomeModelError(ReproError):
    """Inconsistent virtual-home model (unknown room, bad setpoint...)."""


class CadelError(ReproError):
    """Base class for CADEL language-processing errors."""


class CadelSyntaxError(CadelError):
    """Raised by the lexer/parser with the offending position.

    Attributes:
        text: the full source sentence.
        position: 0-based character offset where the error was detected.
    """

    def __init__(self, message: str, text: str = "", position: int = 0):
        self.message = message
        self.text = text
        self.position = position
        if text:
            pointer = " " * min(position, len(text)) + "^"
            message = f"{message}\n  {text}\n  {pointer}"
        super().__init__(message)

    def __reduce__(self):
        # args holds the pointer-decorated message; re-construct from the
        # raw parts so unpickling never decorates twice.
        return (type(self), (self.message, self.text, self.position))


class CadelBindingError(CadelError):
    """A name in a rule could not be bound to a device, sensor or word."""


class CadelTypeError(CadelError):
    """A bound rule mixes incompatible kinds (e.g. numeric op on a place)."""


class SolverError(ReproError):
    """Internal failure of the satisfiability engine."""


class UnboundedProblemError(SolverError):
    """The simplex objective is unbounded (cannot happen for feasibility
    problems built by this library; kept for defensive completeness)."""


class RuleError(ReproError):
    """Base class for rule-database and rule-engine errors."""


class InconsistentRuleError(RuleError):
    """A newly registered rule has a condition that can never hold.

    Mirrors the paper's inconsistency check: the consistency module
    "evaluates the condition in the new rule to check whether it can
    hold" and warns the user otherwise.
    """

    def __init__(self, rule_name: str, reason: str = ""):
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"rule {rule_name!r} is inconsistent (its condition can never hold){detail}"
        )
        self.rule_name = rule_name
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.rule_name, self.reason))


class UnresolvedConflictError(RuleError):
    """A conflict was detected and no priority order resolves it."""

    def __init__(self, rule_names: list[str], device: str):
        super().__init__(
            "conflicting rules "
            + ", ".join(repr(n) for n in rule_names)
            + f" target device {device!r} and no priority order applies"
        )
        self.rule_names = list(rule_names)
        self.device = device

    def __reduce__(self):
        return (type(self), (self.rule_names, self.device))


class DuplicateRuleError(RuleError):
    """A rule with the same name is already registered."""


class UnknownRuleError(RuleError):
    """Lookup of a rule name that is not in the database."""


class ArchiveError(RuleError):
    """A household archive could not be decoded: truncated or invalid
    JSON, a missing or unsupported format marker, or a structurally
    malformed document.  Subclasses :class:`RuleError` so existing
    callers catching rule errors around :func:`restore_household`
    keep working."""


class RecoveryError(ReproError):
    """Cluster crash recovery could not proceed at all: missing or
    undecodable manifest, unsupported snapshot format, or a snapshot
    file the manifest references that cannot be read.  Tolerable damage
    (torn WAL tails, checksum failures, epoch mismatches) does *not*
    raise — it truncates replay and is surfaced in the
    ``RecoveryReport`` instead."""


class LookupServiceError(ReproError):
    """Malformed query to the sensor/device lookup service."""


class WireError(ReproError):
    """A malformed frame on the cluster wire protocol: bad length
    prefix, unknown frame type, oversized frame, truncated stream, or a
    key-table reference the connection never defined."""


class WorkerError(ReproError):
    """Base class for shard-worker process failures (spawn, handshake,
    protocol misuse, use after shutdown)."""


class WorkerCrashed(WorkerError):
    """A shard worker process died mid-conversation.  Carries the shard
    id and, when known, the process exit code — a negative code is the
    signal that killed it, mirroring ``Process.exitcode``."""

    def __init__(self, shard_id: int, exitcode: int | None = None,
                 detail: str = ""):
        note = f" (exit code {exitcode})" if exitcode is not None else ""
        extra = f": {detail}" if detail else ""
        super().__init__(
            f"worker process for shard {shard_id} died{note}{extra}"
        )
        self.shard_id = shard_id
        self.exitcode = exitcode
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.shard_id, self.exitcode, self.detail))
