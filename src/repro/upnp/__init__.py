"""Simulated UPnP stack.

The paper's prototype used CyberLink UPnP for Java on a real LAN; this
package is a from-scratch functional equivalent running on the simulated
network bus.  It implements the three UPnP pillars the framework relies
on:

* **Discovery** (:mod:`repro.upnp.ssdp`): SSDP-style multicast search
  (``M-SEARCH``) and presence announcements (``NOTIFY`` alive/byebye).
* **Description & control** (:mod:`repro.upnp.service`,
  :mod:`repro.upnp.device`): devices expose typed services with state
  variables and invocable actions, described by plain-data documents.
* **Eventing** (:mod:`repro.upnp.eventing`): GENA-style subscriptions
  with subscription ids, initial-state notification, and renewal.

The consumer side is :class:`~repro.upnp.control_point.ControlPoint`,
which the home server uses to retrieve sensors/devices (the paper's E1
experiment), read sensor values, and issue appliance commands.
"""

from repro.upnp.control_point import ControlPoint
from repro.upnp.device import UPnPDevice
from repro.upnp.registry import DeviceRecord, DeviceRegistry
from repro.upnp.service import Action, Service, StateVariable

__all__ = [
    "ControlPoint",
    "UPnPDevice",
    "DeviceRecord",
    "DeviceRegistry",
    "Action",
    "Service",
    "StateVariable",
]
