"""UPnP control point: the home server's window onto the device network.

Supports the full consumer-side protocol:

* multicast **search** with a search target, harvesting unicast replies;
* **description** fetch and registry maintenance (including alive/byebye
  presence tracking);
* synchronous **action invocation** with call-id correlation;
* **event subscription** with a user callback per (device, service).

"Synchronous" here means the call drives the shared simulator until the
matching response message arrives (or a simulated-time deadline passes),
which is the event-loop analogue of a blocking UPnP call and is what the
E1 benchmark times.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SubscriptionError, UPnPError
from repro.net.bus import NetworkBus
from repro.net.message import Message
from repro.sim.events import Simulator
from repro.upnp import ssdp
from repro.upnp.device import (
    METHOD_DESCRIPTION,
    METHOD_ERROR,
    METHOD_GET_DESCRIPTION,
    METHOD_INVOKE,
    METHOD_INVOKE_ERROR,
    METHOD_INVOKE_OK,
)
from repro.upnp.eventing import (
    DEFAULT_TIMEOUT,
    METHOD_EVENT_NOTIFY,
    METHOD_RENEW,
    METHOD_SUBSCRIBE,
    METHOD_SUBSCRIBE_OK,
    METHOD_UNSUBSCRIBE,
)
from repro.upnp.registry import DeviceRecord, DeviceRegistry

EventCallback = Callable[[str, str, dict[str, Any]], None]
"""Signature: callback(udn, service_id, {variable: value, ...})."""

_cp_counter = itertools.count(1)


@dataclass
class _PendingCall:
    call_id: int
    response: Message | None = None


class ControlPoint:
    """Discovers, describes, controls and observes UPnP devices."""

    DEFAULT_SEARCH_WINDOW = 0.25  # simulated seconds to wait for replies

    def __init__(self, bus: NetworkBus, simulator: Simulator, name: str | None = None):
        self.name = name or f"control-point-{next(_cp_counter)}"
        self.address = f"cp:{self.name}"
        self._bus = bus
        self._simulator = simulator
        self.registry = DeviceRegistry()
        self._call_counter = itertools.count(1)
        self._search_counter = itertools.count(1)
        self._pending_calls: dict[int, _PendingCall] = {}
        self._search_results: dict[int, list[Message]] = {}
        self._event_callbacks: dict[str, EventCallback] = {}  # sid -> callback
        self._sid_owner: dict[str, tuple[str, str]] = {}  # sid -> (udn, service_id)
        bus.bind(self.address, self._on_message)
        bus.join_group(self.address, ssdp.MULTICAST_GROUP)

    # -- discovery ---------------------------------------------------------------

    def search(
        self,
        search_target: str = ssdp.ST_ALL,
        *,
        window: float | None = None,
        fetch_descriptions: bool = True,
    ) -> list[DeviceRecord]:
        """Multicast an M-SEARCH, wait ``window`` simulated seconds,
        ingest every response (optionally fetching full descriptions) and
        return the matching records."""
        window = self.DEFAULT_SEARCH_WINDOW if window is None else window
        search_id = next(self._search_counter)
        self._search_results[search_id] = []
        self._bus.send(ssdp.msearch(self.address, search_target, search_id))
        self._simulator.run_until(self._simulator.now + window)
        responses = self._search_results.pop(search_id, [])
        records: list[DeviceRecord] = []
        seen: set[str] = set()
        for response in responses:
            udn = response.header("UDN")
            if udn is None or udn in seen:
                continue
            seen.add(udn)
            if fetch_descriptions:
                try:
                    records.append(
                        self.describe(response.header("LOCATION"), udn)
                    )
                except UPnPError:
                    # A lost description fetch must not abort the whole
                    # search; the device reappears on the next one.
                    continue
            elif udn in self.registry:
                records.append(self.registry.get(udn))
        return records

    def describe(self, device_address: str, udn: str | None = None) -> DeviceRecord:
        """Fetch a device's description document and index it."""
        response = self._call(
            device_address,
            {"METHOD": METHOD_GET_DESCRIPTION},
            expect=(METHOD_DESCRIPTION,),
        )
        record = DeviceRecord.from_description(
            dict(response.body), last_seen=self._simulator.now
        )
        if udn is not None and record.udn != udn:
            raise UPnPError(
                f"description UDN mismatch: expected {udn!r}, got {record.udn!r}"
            )
        self.registry.add(record)
        return record

    # -- convenience retrieval (E1 queries) ------------------------------------------

    def find_by_name(self, friendly_name: str) -> DeviceRecord:
        """Resolve a device by friendly name, searching if not yet known."""
        records = self.registry.by_name(friendly_name)
        if not records:
            self.search(ssdp.ST_ALL)
            records = self.registry.by_name(friendly_name)
        if not records:
            raise UPnPError(f"no device named {friendly_name!r} found")
        return records[0]

    def find_by_service(self, service_type: str) -> list[DeviceRecord]:
        """Resolve devices offering a service type, searching if needed."""
        records = self.registry.by_service_type(service_type)
        if not records:
            self.search(service_type)
            records = self.registry.by_service_type(service_type)
        return records

    # -- control ------------------------------------------------------------------------

    def invoke(
        self,
        udn: str,
        service_id: str,
        action: str,
        args: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Invoke an action and return its outputs; raises UPnPError on
        device-side rejection."""
        record = self.registry.get(udn)
        response = self._call(
            record.address,
            {"METHOD": METHOD_INVOKE, "SERVICE-ID": service_id, "ACTION": action},
            body=dict(args or {}),
            expect=(METHOD_INVOKE_OK, METHOD_INVOKE_ERROR),
        )
        if response.header("METHOD") == METHOD_INVOKE_ERROR:
            raise UPnPError(
                f"invoke {action!r} on {record.friendly_name!r} failed: "
                f"{(response.body or {}).get('reason', 'unknown')}"
            )
        return dict(response.body or {})

    # -- eventing ------------------------------------------------------------------------

    def subscribe(
        self,
        udn: str,
        service_id: str,
        callback: EventCallback,
        timeout: float = DEFAULT_TIMEOUT,
        auto_renew: bool = True,
    ) -> str:
        """Subscribe to a service; returns the subscription id (SID).

        The callback fires once immediately with the full variable
        snapshot (INITIAL notify), then on every evented change.  With
        ``auto_renew`` (the default, matching long-lived control points)
        the subscription is renewed at 80 % of each timeout window until
        :meth:`unsubscribe` is called.
        """
        record = self.registry.get(udn)
        response = self._call(
            record.address,
            {
                "METHOD": METHOD_SUBSCRIBE,
                "SERVICE-ID": service_id,
                "TIMEOUT": timeout,
            },
            expect=(METHOD_SUBSCRIBE_OK, METHOD_ERROR),
        )
        if response.header("METHOD") == METHOD_ERROR:
            raise SubscriptionError(
                f"subscribe to {record.friendly_name!r}/{service_id!r} failed: "
                f"{(response.body or {}).get('reason', 'unknown')}"
            )
        sid = response.header("SID")
        self._event_callbacks[sid] = callback
        self._sid_owner[sid] = (udn, service_id)
        if auto_renew:
            self._arm_auto_renew(sid, timeout)
        # Deliver the initial NOTIFY (already queued right behind the OK).
        self._simulator.run_until(self._simulator.now)
        return sid

    def _arm_auto_renew(self, sid: str, timeout: float) -> None:
        def renew_and_rearm() -> None:
            if sid not in self._sid_owner:
                return  # unsubscribed in the meantime
            try:
                self.renew(sid, timeout)
            except (SubscriptionError, UPnPError):
                self._event_callbacks.pop(sid, None)
                self._sid_owner.pop(sid, None)
                return
            self._arm_auto_renew(sid, timeout)

        self._simulator.call_after(timeout * 0.8, renew_and_rearm)

    def renew(self, sid: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        udn, _ = self._require_sid(sid)
        record = self.registry.get(udn)
        response = self._call(
            record.address,
            {"METHOD": METHOD_RENEW, "SID": sid, "TIMEOUT": timeout},
            expect=(METHOD_SUBSCRIBE_OK, METHOD_ERROR),
        )
        if response.header("METHOD") == METHOD_ERROR:
            raise SubscriptionError(f"renew of {sid!r} rejected")

    def unsubscribe(self, sid: str) -> None:
        udn, _ = self._require_sid(sid)
        record = self.registry.get(udn)
        self._bus.send(
            Message(
                source=self.address,
                destination=record.address,
                headers={"METHOD": METHOD_UNSUBSCRIBE, "SID": sid},
            )
        )
        self._event_callbacks.pop(sid, None)
        self._sid_owner.pop(sid, None)

    def _require_sid(self, sid: str) -> tuple[str, str]:
        owner = self._sid_owner.get(sid)
        if owner is None:
            raise SubscriptionError(f"unknown subscription id {sid!r}")
        return owner

    # -- message plumbing -----------------------------------------------------------------

    def _call(
        self,
        destination: str,
        headers: dict[str, Any],
        body: Any = None,
        expect: tuple[str, ...] = (),
        deadline: float = 5.0,
    ) -> Message:
        """Send a request and drive the simulator until its response."""
        call_id = next(self._call_counter)
        pending = _PendingCall(call_id=call_id)
        self._pending_calls[call_id] = pending
        headers = dict(headers)
        headers["CALL-ID"] = call_id
        self._bus.send(
            Message(
                source=self.address,
                destination=destination,
                headers=headers,
                body=body,
            )
        )
        limit = self._simulator.now + deadline
        while pending.response is None:
            next_time = self._simulator.next_event_time()
            if next_time is None or next_time > limit:
                break
            self._simulator.step()
        self._pending_calls.pop(call_id, None)
        if pending.response is None:
            raise UPnPError(
                f"no response from {destination!r} for {headers.get('METHOD')!r} "
                f"within {deadline}s (device offline or address wrong)"
            )
        method = pending.response.header("METHOD")
        if expect and method not in expect:
            raise UPnPError(f"unexpected response method {method!r}")
        return pending.response

    def _on_message(self, message: Message) -> None:
        method = message.header("METHOD")
        if method == ssdp.METHOD_RESPONSE:
            bucket = self._search_results.get(message.header("SEARCH-ID"))
            if bucket is not None:
                bucket.append(message)
            return
        if method == ssdp.METHOD_NOTIFY:
            self._handle_presence(message)
            return
        if method == METHOD_EVENT_NOTIFY:
            self._handle_event(message)
            return
        call_id = message.header("CALL-ID")
        if call_id is not None:
            pending = self._pending_calls.get(call_id)
            if pending is not None and pending.response is None:
                pending.response = message

    def _handle_presence(self, message: Message) -> None:
        nts = message.header("NTS")
        udn = message.header("UDN")
        if nts == ssdp.NTS_BYEBYE and udn is not None:
            self.registry.remove(udn)
        # ssdp:alive announcements are lazy: the registry is refreshed on
        # the next search/describe, matching common control-point practice.

    def _handle_event(self, message: Message) -> None:
        sid = message.header("SID")
        callback = self._event_callbacks.get(sid)
        if callback is None:
            return  # stale subscription; device will expire it
        owner = self._sid_owner.get(sid)
        if owner is None:
            return
        udn, service_id = owner
        callback(udn, service_id, dict(message.body or {}))
