"""GENA-style eventing: subscriptions, notifications, expiry.

A device hosts one :class:`EventingEngine`.  Control points SUBSCRIBE to
a service and receive (1) an immediate initial NOTIFY carrying the full
variable snapshot — real UPnP behaviour, and what lets the rule engine
seed its variable table — then (2) incremental NOTIFYs on every evented
variable change.  Subscriptions expire unless renewed; expiry runs on
the virtual clock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from repro.errors import SubscriptionError
from repro.net.bus import NetworkBus
from repro.net.message import Message
from repro.sim.events import EventHandle, Simulator

METHOD_SUBSCRIBE = "SUBSCRIBE"
METHOD_UNSUBSCRIBE = "UNSUBSCRIBE"
METHOD_RENEW = "RENEW"
METHOD_EVENT_NOTIFY = "EVENT-NOTIFY"
METHOD_SUBSCRIBE_OK = "SUBSCRIBE-OK"

DEFAULT_TIMEOUT = 1800.0  # seconds, the common UPnP default of 30 minutes

_sid_counter = itertools.count(1)


@dataclass
class Subscription:
    """One control point's subscription to one service."""

    sid: str
    service_id: str
    subscriber: str
    expires_at: float
    expiry_handle: EventHandle | None = None
    event_seq: int = 0


class EventingEngine:
    """Per-device subscription table and notification dispatcher."""

    def __init__(self, device_address: str, bus: NetworkBus, simulator: Simulator):
        self._address = device_address
        self._bus = bus
        self._simulator = simulator
        self._subscriptions: dict[str, Subscription] = {}

    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def subscriptions_for(self, service_id: str) -> list[Subscription]:
        return [s for s in self._subscriptions.values() if s.service_id == service_id]

    def subscribe(
        self,
        service_id: str,
        subscriber: str,
        snapshot: dict[str, Any] | None = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> Subscription:
        """Create a subscription; when ``snapshot`` is given, immediately
        send the initial full-state NOTIFY (otherwise the caller sends it
        later via :meth:`send_initial`, e.g. after acknowledging)."""
        if timeout <= 0:
            raise SubscriptionError(f"timeout must be positive: {timeout}")
        sid = f"uuid:sub-{next(_sid_counter)}"
        sub = Subscription(
            sid=sid,
            service_id=service_id,
            subscriber=subscriber,
            expires_at=self._simulator.now + timeout,
        )
        self._subscriptions[sid] = sub
        self._arm_expiry(sub, timeout)
        if snapshot is not None:
            self._notify(sub, dict(snapshot), initial=True)
        return sub

    def send_initial(self, sub: Subscription, snapshot: dict[str, Any]) -> None:
        """Send the full-state NOTIFY for a freshly created subscription."""
        self._notify(sub, dict(snapshot), initial=True)

    def renew(self, sid: str, timeout: float = DEFAULT_TIMEOUT) -> Subscription:
        sub = self._subscriptions.get(sid)
        if sub is None:
            raise SubscriptionError(f"unknown subscription id {sid!r}")
        if sub.expiry_handle is not None:
            sub.expiry_handle.cancel()
        sub.expires_at = self._simulator.now + timeout
        self._arm_expiry(sub, timeout)
        return sub

    def unsubscribe(self, sid: str) -> None:
        sub = self._subscriptions.pop(sid, None)
        if sub is None:
            raise SubscriptionError(f"unknown subscription id {sid!r}")
        if sub.expiry_handle is not None:
            sub.expiry_handle.cancel()

    def publish_change(self, service_id: str, variable: str, value: Any) -> None:
        """Push an incremental change to every live subscriber of a service."""
        for sub in self.subscriptions_for(service_id):
            self._notify(sub, {variable: value}, initial=False)

    def _arm_expiry(self, sub: Subscription, timeout: float) -> None:
        def expire() -> None:
            self._subscriptions.pop(sub.sid, None)

        sub.expiry_handle = self._simulator.call_after(timeout, expire)

    def _notify(self, sub: Subscription, changes: dict[str, Any], initial: bool) -> None:
        sub.event_seq += 1
        self._bus.send(
            Message(
                source=self._address,
                destination=sub.subscriber,
                headers={
                    "METHOD": METHOD_EVENT_NOTIFY,
                    "SID": sub.sid,
                    "SEQ": sub.event_seq,
                    "SERVICE-ID": sub.service_id,
                    "INITIAL": initial,
                },
                body=changes,
            )
        )
