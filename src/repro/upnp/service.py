"""UPnP services: typed state variables and invocable actions.

A service is the unit of control and eventing.  Appliances in
:mod:`repro.home` are built by composing services (a TV has a
``SwitchPower`` service, an ``AVTransport``-like playback service, and a
``Display`` service; a thermometer has a single ``TemperatureSensor``
service whose ``temperature`` variable is evented).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ActionError, UPnPError


@dataclass
class StateVariable:
    """A named, typed piece of service state.

    Attributes:
        name: variable name, unique within the service.
        data_type: ``"number"``, ``"string"`` or ``"boolean"``.
        value: current value; assigned through ``Service.set_variable``
            so eventing fires.
        sends_events: whether changes are pushed to subscribers.
        allowed_values: for strings, the closed set of legal values
            (None = unconstrained).
        minimum/maximum: for numbers, the legal range (None = open).
        unit: human-readable unit for guidance UIs ("celsius", "%").
    """

    name: str
    data_type: str
    value: Any = None
    sends_events: bool = True
    allowed_values: tuple[str, ...] | None = None
    minimum: float | None = None
    maximum: float | None = None
    unit: str = ""

    _VALID_TYPES = ("number", "string", "boolean")

    def __post_init__(self) -> None:
        if self.data_type not in self._VALID_TYPES:
            raise UPnPError(
                f"state variable {self.name!r}: bad data_type {self.data_type!r}"
            )
        if self.value is not None:
            self.validate(self.value)

    def validate(self, value: Any) -> None:
        """Raise UPnPError if ``value`` is illegal for this variable."""
        if self.data_type == "number":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise UPnPError(f"{self.name!r} expects a number, got {value!r}")
            if self.minimum is not None and value < self.minimum:
                raise UPnPError(f"{self.name!r}: {value} below minimum {self.minimum}")
            if self.maximum is not None and value > self.maximum:
                raise UPnPError(f"{self.name!r}: {value} above maximum {self.maximum}")
        elif self.data_type == "boolean":
            if not isinstance(value, bool):
                raise UPnPError(f"{self.name!r} expects a boolean, got {value!r}")
        else:  # string
            if not isinstance(value, str):
                raise UPnPError(f"{self.name!r} expects a string, got {value!r}")
            if self.allowed_values is not None and value not in self.allowed_values:
                raise UPnPError(
                    f"{self.name!r}: {value!r} not in allowed values "
                    f"{self.allowed_values}"
                )

    def describe(self) -> dict[str, Any]:
        """Plain-data description, the UPnP SCPD analogue."""
        doc: dict[str, Any] = {
            "name": self.name,
            "data_type": self.data_type,
            "sends_events": self.sends_events,
        }
        if self.allowed_values is not None:
            doc["allowed_values"] = list(self.allowed_values)
        if self.minimum is not None:
            doc["minimum"] = self.minimum
        if self.maximum is not None:
            doc["maximum"] = self.maximum
        if self.unit:
            doc["unit"] = self.unit
        return doc


ActionHandler = Callable[[dict[str, Any]], dict[str, Any]]


@dataclass
class Action:
    """An invocable service action.

    Attributes:
        name: action name, unique within the service.
        handler: callable taking the argument dict and returning the
            output dict; raise :class:`~repro.errors.ActionError` for
            domain rejections.
        in_args: declared input argument names (validated on invoke).
        out_args: declared output argument names (documentation only).
        description: one-line human text shown by the guidance UI.
    """

    name: str
    handler: ActionHandler
    in_args: tuple[str, ...] = ()
    out_args: tuple[str, ...] = ()
    description: str = ""

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "in_args": list(self.in_args),
            "out_args": list(self.out_args),
            "description": self.description,
        }


class Service:
    """A collection of state variables and actions under one type URN.

    Args:
        service_type: UPnP-style URN, e.g.
            ``"urn:repro:service:TemperatureSensor:1"``.
        service_id: short id unique within the owning device.
    """

    def __init__(self, service_type: str, service_id: str) -> None:
        self.service_type = service_type
        self.service_id = service_id
        self._variables: dict[str, StateVariable] = {}
        self._actions: dict[str, Action] = {}
        self._change_listeners: list[Callable[[str, str, Any], None]] = []
        self.owner_name: str = "<unattached>"  # set by UPnPDevice.add_service

    # -- schema construction --------------------------------------------------

    def add_variable(self, variable: StateVariable) -> StateVariable:
        if variable.name in self._variables:
            raise UPnPError(f"duplicate state variable {variable.name!r}")
        self._variables[variable.name] = variable
        return variable

    def add_action(self, action: Action) -> Action:
        if action.name in self._actions:
            raise UPnPError(f"duplicate action {action.name!r}")
        self._actions[action.name] = action
        return action

    # -- state access ----------------------------------------------------------

    def has_variable(self, name: str) -> bool:
        return name in self._variables

    def variable(self, name: str) -> StateVariable:
        try:
            return self._variables[name]
        except KeyError:
            raise UPnPError(
                f"service {self.service_id!r} has no variable {name!r}"
            ) from None

    def get_variable(self, name: str) -> Any:
        return self.variable(name).value

    def set_variable(self, name: str, value: Any) -> None:
        """Assign a variable; fires change listeners when the value moves."""
        var = self.variable(name)
        var.validate(value)
        if var.value == value:
            return
        var.value = value
        if var.sends_events:
            for listener in list(self._change_listeners):
                listener(self.service_id, name, value)

    def variables(self) -> list[StateVariable]:
        return list(self._variables.values())

    def snapshot(self) -> dict[str, Any]:
        """Current value of every variable (initial eventing payload)."""
        return {name: var.value for name, var in self._variables.items()}

    def on_change(self, listener: Callable[[str, str, Any], None]) -> None:
        """Register ``listener(service_id, variable, value)`` for evented
        variable changes; used by the device's eventing engine."""
        self._change_listeners.append(listener)

    # -- control ----------------------------------------------------------------

    def actions(self) -> list[Action]:
        return list(self._actions.values())

    def has_action(self, name: str) -> bool:
        return name in self._actions

    def invoke(self, action_name: str, args: dict[str, Any] | None = None) -> dict[str, Any]:
        """Run an action handler after validating declared arguments."""
        action = self._actions.get(action_name)
        if action is None:
            raise ActionError(self.owner_name, action_name, "no such action")
        args = dict(args or {})
        unknown = set(args) - set(action.in_args)
        if unknown:
            raise ActionError(
                self.owner_name,
                action_name,
                f"unknown arguments: {sorted(unknown)}",
            )
        return action.handler(args)

    # -- description --------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Plain-data service description document."""
        return {
            "service_type": self.service_type,
            "service_id": self.service_id,
            "variables": [v.describe() for v in self.variables()],
            "actions": [a.describe() for a in self.actions()],
        }
