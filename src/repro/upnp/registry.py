"""Control-point-side registry of discovered devices.

The registry indexes description documents by UDN, friendly name, device
type, service type, location and keyword so that the home server's
lookup service (and the paper's E1 retrieval experiment) resolve targets
in constant time after discovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import UPnPError


@dataclass
class DeviceRecord:
    """One discovered device: its address plus parsed description."""

    udn: str
    address: str
    friendly_name: str
    device_type: str
    location: str
    category: str
    keywords: tuple[str, ...]
    description: dict[str, Any] = field(default_factory=dict)
    last_seen: float = 0.0

    @classmethod
    def from_description(
        cls, description: dict[str, Any], last_seen: float = 0.0
    ) -> "DeviceRecord":
        required = ("udn", "address", "friendly_name", "device_type")
        missing = [key for key in required if key not in description]
        if missing:
            raise UPnPError(f"description missing fields: {missing}")
        return cls(
            udn=description["udn"],
            address=description["address"],
            friendly_name=description["friendly_name"],
            device_type=description["device_type"],
            location=description.get("location", ""),
            category=description.get("category", "appliance"),
            keywords=tuple(description.get("keywords", ())),
            description=description,
            last_seen=last_seen,
        )

    def service_types(self) -> list[str]:
        return [s["service_type"] for s in self.description.get("services", ())]

    def service_ids(self) -> list[str]:
        return [s["service_id"] for s in self.description.get("services", ())]

    def service_description(self, service_id: str) -> dict[str, Any]:
        for svc in self.description.get("services", ()):
            if svc["service_id"] == service_id:
                return svc
        raise UPnPError(f"device {self.friendly_name!r} has no service {service_id!r}")


class DeviceRegistry:
    """Indexed store of :class:`DeviceRecord` entries."""

    def __init__(self) -> None:
        self._by_udn: dict[str, DeviceRecord] = {}
        self._by_name: dict[str, set[str]] = {}
        self._by_type: dict[str, set[str]] = {}
        self._by_service_type: dict[str, set[str]] = {}
        self._by_location: dict[str, set[str]] = {}
        self._by_keyword: dict[str, set[str]] = {}

    def __len__(self) -> int:
        return len(self._by_udn)

    def __contains__(self, udn: str) -> bool:
        return udn in self._by_udn

    def add(self, record: DeviceRecord) -> None:
        """Insert or replace (re-discovery refreshes the description)."""
        if record.udn in self._by_udn:
            self.remove(record.udn)
        self._by_udn[record.udn] = record
        self._by_name.setdefault(record.friendly_name.lower(), set()).add(record.udn)
        self._by_type.setdefault(record.device_type, set()).add(record.udn)
        for service_type in record.service_types():
            self._by_service_type.setdefault(service_type, set()).add(record.udn)
        if record.location:
            self._by_location.setdefault(record.location.lower(), set()).add(record.udn)
        for keyword in record.keywords:
            self._by_keyword.setdefault(keyword.lower(), set()).add(record.udn)

    def remove(self, udn: str) -> None:
        record = self._by_udn.pop(udn, None)
        if record is None:
            return
        self._discard(self._by_name, record.friendly_name.lower(), udn)
        self._discard(self._by_type, record.device_type, udn)
        for service_type in record.service_types():
            self._discard(self._by_service_type, service_type, udn)
        if record.location:
            self._discard(self._by_location, record.location.lower(), udn)
        for keyword in record.keywords:
            self._discard(self._by_keyword, keyword.lower(), udn)

    @staticmethod
    def _discard(index: dict[str, set[str]], key: str, udn: str) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(udn)
            if not bucket:
                del index[key]

    # -- lookups ---------------------------------------------------------------

    def get(self, udn: str) -> DeviceRecord:
        try:
            return self._by_udn[udn]
        except KeyError:
            raise UPnPError(f"unknown device udn {udn!r}") from None

    def all(self) -> list[DeviceRecord]:
        return list(self._by_udn.values())

    def by_name(self, friendly_name: str) -> list[DeviceRecord]:
        """Exact (case-insensitive) friendly-name lookup — E1's primary query."""
        return self._records(self._by_name.get(friendly_name.lower(), ()))

    def by_device_type(self, device_type: str) -> list[DeviceRecord]:
        return self._records(self._by_type.get(device_type, ()))

    def by_service_type(self, service_type: str) -> list[DeviceRecord]:
        """Service-type lookup — E1's secondary query."""
        return self._records(self._by_service_type.get(service_type, ()))

    def by_location(self, location: str) -> list[DeviceRecord]:
        return self._records(self._by_location.get(location.lower(), ()))

    def by_keyword(self, keyword: str) -> list[DeviceRecord]:
        return self._records(self._by_keyword.get(keyword.lower(), ()))

    def by_category(self, category: str) -> list[DeviceRecord]:
        return [r for r in self._by_udn.values() if r.category == category]

    def scan_by_name(self, friendly_name: str) -> list[DeviceRecord]:
        """Unindexed linear scan — the baseline for ablation A2/A4."""
        wanted = friendly_name.lower()
        return [
            record
            for record in self._by_udn.values()
            if record.friendly_name.lower() == wanted
        ]

    def _records(self, udns: Iterable[str]) -> list[DeviceRecord]:
        return sorted(
            (self._by_udn[udn] for udn in udns if udn in self._by_udn),
            key=lambda r: r.udn,
        )
