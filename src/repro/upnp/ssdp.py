"""SSDP-style discovery protocol constants and message builders.

Mirrors the real Simple Service Discovery Protocol closely enough that
the control-point logic reads like a UPnP implementation: multicast
``M-SEARCH`` with a search target (ST), unicast responses, and
``NOTIFY`` presence announcements with ``ssdp:alive`` / ``ssdp:byebye``.
"""

from __future__ import annotations

from repro.net.message import Message

MULTICAST_GROUP = "ssdp:multicast"

METHOD_MSEARCH = "M-SEARCH"
METHOD_NOTIFY = "NOTIFY"
METHOD_RESPONSE = "200-OK"

ST_ALL = "ssdp:all"
ST_ROOT_DEVICE = "upnp:rootdevice"

NTS_ALIVE = "ssdp:alive"
NTS_BYEBYE = "ssdp:byebye"


def msearch(source: str, search_target: str, search_id: int) -> Message:
    """Build a multicast search request for ``search_target``.

    ``search_target`` follows UPnP conventions: ``ssdp:all``, a device
    type URN, a service type URN, or ``uuid:<udn>``.
    """
    return Message(
        source=source,
        destination=MULTICAST_GROUP,
        headers={
            "METHOD": METHOD_MSEARCH,
            "ST": search_target,
            "SEARCH-ID": search_id,
        },
    )


def msearch_response(
    request: Message, device_address: str, udn: str, matched_target: str
) -> Message:
    """Build the unicast response a device sends back to a searcher."""
    return Message(
        source=device_address,
        destination=request.source,
        headers={
            "METHOD": METHOD_RESPONSE,
            "ST": matched_target,
            "USN": f"uuid:{udn}::{matched_target}",
            "UDN": udn,
            "LOCATION": device_address,
            "SEARCH-ID": request.header("SEARCH-ID"),
        },
    )


def notify(source: str, udn: str, nts: str, device_type: str) -> Message:
    """Build a presence announcement (alive or byebye)."""
    return Message(
        source=source,
        destination=MULTICAST_GROUP,
        headers={
            "METHOD": METHOD_NOTIFY,
            "NTS": nts,
            "UDN": udn,
            "NT": device_type,
            "LOCATION": source,
        },
    )


def target_matches(search_target: str, udn: str, device_type: str,
                   service_types: list[str]) -> str | None:
    """Decide whether a device answers a search target.

    Returns the matched target string (echoed in the response ST header)
    or None when the device should stay silent — the same matching rules
    real UPnP devices apply.
    """
    if search_target == ST_ALL or search_target == ST_ROOT_DEVICE:
        return device_type
    if search_target == f"uuid:{udn}":
        return search_target
    if search_target == device_type:
        return device_type
    if search_target in service_types:
        return search_target
    return None
