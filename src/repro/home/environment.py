"""Room physics on the simulation clock.

Each :class:`Room` carries temperature (°C), relative humidity (%) and
illuminance (lux).  The :class:`Environment` advances them on a periodic
tick: values relax toward the ambient profile (a daily outdoor cycle),
climate devices pull temperature/humidity toward their setpoints, and
luminaires add to the daylight illuminance.  After the physical update,
registered sensors sample their rooms and publish over UPnP eventing.

The model is deliberately first-order — the paper's evaluation does not
depend on thermodynamics — but it is *causal*: turning the
air-conditioner on genuinely changes what the thermometer publishes,
which is what closes the sense → rule → actuate loop end-to-end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import HomeModelError
from repro.sim.clock import SECONDS_PER_DAY
from repro.sim.events import PeriodicTask, Simulator


@dataclass
class Room:
    """One physical space with its environmental state."""

    name: str
    temperature: float = 22.0      # °C
    humidity: float = 55.0         # % relative
    illuminance: float = 0.0       # lux, recomputed every tick
    has_window: bool = True
    volume_factor: float = 1.0     # larger rooms react more slowly

    def __post_init__(self) -> None:
        if not self.name:
            raise HomeModelError("room needs a name")
        if self.volume_factor <= 0:
            raise HomeModelError("volume_factor must be positive")


class ClimateActor(Protocol):
    """A device that pulls a room's climate toward a setpoint."""

    def climate_effect(self, room: Room, dt: float) -> None:
        """Apply this device's effect over ``dt`` seconds."""


class LightActor(Protocol):
    """A device contributing illuminance to a room."""

    def light_output(self, room: Room) -> float:
        """Current lux contribution to the room."""


class RoomSensor(Protocol):
    """A sensor that samples its room after each physics tick."""

    def sample(self) -> None: ...


def default_outdoor_temperature(time_of_day: float) -> float:
    """A summer-day outdoor profile: ~24 °C at dawn, ~31 °C mid-afternoon."""
    phase = 2.0 * math.pi * (time_of_day - 14.0 * 3600.0) / SECONDS_PER_DAY
    return 27.5 + 3.5 * math.cos(phase)


def default_outdoor_humidity(time_of_day: float) -> float:
    """Humidity runs inverse to temperature: ~75 % at dawn, ~60 % afternoon."""
    phase = 2.0 * math.pi * (time_of_day - 14.0 * 3600.0) / SECONDS_PER_DAY
    return 67.0 - 8.0 * math.cos(phase)


def default_daylight(time_of_day: float) -> float:
    """Daylight lux through a window: 0 at night, peaking ~500 at 13:00."""
    hours = time_of_day / 3600.0
    if hours < 6.0 or hours > 20.0:
        return 0.0
    return 500.0 * math.sin(math.pi * (hours - 6.0) / 14.0)


class Environment:
    """All rooms plus the actors and sensors coupled to them."""

    # Fraction of the gap to ambient closed per hour by passive leakage.
    LEAK_RATE_PER_HOUR = 0.35

    def __init__(
        self,
        simulator: Simulator,
        *,
        tick_period: float = 60.0,
        outdoor_temperature: Callable[[float], float] | None = None,
        outdoor_humidity: Callable[[float], float] | None = None,
        daylight: Callable[[float], float] | None = None,
    ) -> None:
        if tick_period <= 0:
            raise HomeModelError("tick_period must be positive")
        self.simulator = simulator
        self.tick_period = tick_period
        self.outdoor_temperature = outdoor_temperature or default_outdoor_temperature
        self.outdoor_humidity = outdoor_humidity or default_outdoor_humidity
        self.daylight = daylight or default_daylight
        self._rooms: dict[str, Room] = {}
        self._climate_actors: dict[str, list[ClimateActor]] = {}
        self._light_actors: dict[str, list[LightActor]] = {}
        self._sensors: list[RoomSensor] = []
        self._task: PeriodicTask | None = None

    # -- composition -----------------------------------------------------------

    def add_room(self, room: Room) -> Room:
        if room.name in self._rooms:
            raise HomeModelError(f"duplicate room {room.name!r}")
        self._rooms[room.name] = room
        return room

    def room(self, name: str) -> Room:
        try:
            return self._rooms[name]
        except KeyError:
            raise HomeModelError(f"unknown room {name!r}") from None

    def rooms(self) -> list[Room]:
        return list(self._rooms.values())

    def add_climate_actor(self, room_name: str, actor: ClimateActor) -> None:
        self.room(room_name)  # validate
        self._climate_actors.setdefault(room_name, []).append(actor)

    def add_light_actor(self, room_name: str, actor: LightActor) -> None:
        self.room(room_name)
        self._light_actors.setdefault(room_name, []).append(actor)

    def add_sensor(self, sensor: RoomSensor) -> None:
        self._sensors.append(sensor)

    # -- dynamics -----------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic physics ticks (idempotent)."""
        if self._task is None:
            self._task = self.simulator.every(self.tick_period, self.step)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def step(self) -> None:
        """One physics tick: leakage, device effects, lighting, sampling."""
        dt = self.tick_period
        time_of_day = self.simulator.clock.time_of_day
        ambient_t = self.outdoor_temperature(time_of_day)
        ambient_h = self.outdoor_humidity(time_of_day)
        daylight = self.daylight(time_of_day)
        for room in self._rooms.values():
            leak = self.LEAK_RATE_PER_HOUR * dt / 3600.0 / room.volume_factor
            leak = min(leak, 1.0)
            room.temperature += (ambient_t - room.temperature) * leak
            room.humidity += (ambient_h - room.humidity) * leak
            for actor in self._climate_actors.get(room.name, ()):
                actor.climate_effect(room, dt)
            room.humidity = min(100.0, max(0.0, room.humidity))
            light = daylight if room.has_window else 0.0
            for lamp in self._light_actors.get(room.name, ()):
                light += lamp.light_output(room)
            room.illuminance = light
        for sensor in self._sensors:
            sensor.sample()
