"""Canned home configurations.

:func:`build_demo_home` assembles the paper's Sect. 3.1 environment: a
living room with "a stereo system, a flat-panel TV, a video recorder, a
fluorescent light, floor lamps, and an air conditioner", plus the hall
and entrance used by the example rules (2) and (3), the sensing
infrastructure, and the three residents Tom, Alan and Emily.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.home.appliances import (
    AirConditioner,
    Alarm,
    DoorLock,
    ElectricFan,
    Lamp,
    Stereo,
    Television,
    VideoRecorder,
)
from repro.home.environment import Environment, Room
from repro.home.residents import EventSink, Household
from repro.home.sensors import (
    EPGFeed,
    Hygrometer,
    LightSensor,
    PersonLocator,
    PresenceSensor,
    Thermometer,
)
from repro.net.bus import NetworkBus
from repro.sim.events import Simulator
from repro.upnp.device import UPnPDevice

LIVING_ROOM = "living room"
HALL = "hall"
ENTRANCE = "entrance"

RESIDENTS = ["Tom", "Alan", "Emily"]


@dataclass
class DemoHome:
    """Everything :func:`build_demo_home` creates, by name."""

    simulator: Simulator
    bus: NetworkBus
    environment: Environment
    household: Household
    tv: Television
    stereo: Stereo
    recorder: VideoRecorder
    aircon: AirConditioner
    fan: ElectricFan
    floor_lamp: Lamp
    fluorescent: Lamp
    hall_light: Lamp
    door: DoorLock
    alarm: Alarm
    thermometer: Thermometer
    hygrometer: Hygrometer
    living_light_sensor: LightSensor
    hall_light_sensor: LightSensor
    locator: PersonLocator
    epg: EPGFeed
    presence: dict[str, PresenceSensor] = field(default_factory=dict)

    def all_devices(self) -> list[UPnPDevice]:
        devices: list[UPnPDevice] = [
            self.tv, self.stereo, self.recorder, self.aircon, self.fan,
            self.floor_lamp, self.fluorescent, self.hall_light, self.door,
            self.alarm, self.thermometer, self.hygrometer,
            self.living_light_sensor, self.hall_light_sensor, self.locator,
            self.epg,
        ]
        devices.extend(self.presence.values())
        return devices


def build_demo_home(
    simulator: Simulator,
    bus: NetworkBus,
    *,
    event_sink: EventSink | None = None,
    start_environment: bool = True,
) -> DemoHome:
    """Assemble and attach the paper's demo home.

    Args:
        simulator: shared event kernel.
        bus: shared network bus; every device attaches to it.
        event_sink: receives ("returns home", person) events — wire this
            to ``HomeServer.post_event`` to close the loop.
        start_environment: begin physics ticks immediately.
    """
    environment = Environment(simulator)
    living = environment.add_room(Room(LIVING_ROOM, temperature=24.0,
                                       humidity=58.0))
    environment.add_room(Room(HALL, temperature=23.0, humidity=55.0,
                              has_window=False))
    environment.add_room(Room(ENTRANCE, temperature=23.0, humidity=55.0,
                              has_window=False))

    tv = Television("TV", location=LIVING_ROOM)
    stereo = Stereo("stereo", location=LIVING_ROOM)
    recorder = VideoRecorder("video recorder", location=LIVING_ROOM)
    aircon = AirConditioner("air conditioner", location=LIVING_ROOM,
                            room=living)
    fan = ElectricFan("electric fan", location=LIVING_ROOM)
    floor_lamp = Lamp("floor lamp", location=LIVING_ROOM, max_lux=150.0)
    fluorescent = Lamp("fluorescent light", location=LIVING_ROOM,
                       max_lux=400.0)
    hall_light = Lamp("hall light", location=HALL, max_lux=250.0)
    door = DoorLock("entrance door", location=ENTRANCE)
    alarm = Alarm("alarm", location=ENTRANCE)

    thermometer = Thermometer("thermometer", living)
    hygrometer = Hygrometer("hygrometer", living)
    living_light_sensor = LightSensor("living room light sensor", living)
    hall_light_sensor = LightSensor("hall light sensor",
                                    environment.room(HALL))
    locator = PersonLocator(RESIDENTS)
    epg = EPGFeed()
    presence = {
        place: PresenceSensor(f"{place} presence sensor", place)
        for place in (LIVING_ROOM, HALL, ENTRANCE)
    }

    environment.add_climate_actor(LIVING_ROOM, aircon)
    environment.add_climate_actor(LIVING_ROOM, fan)
    environment.add_light_actor(LIVING_ROOM, floor_lamp)
    environment.add_light_actor(LIVING_ROOM, fluorescent)
    environment.add_light_actor(HALL, hall_light)
    for sensor in (thermometer, hygrometer, living_light_sensor,
                   hall_light_sensor):
        environment.add_sensor(sensor)

    household = Household(locator, presence, event_sink=event_sink)

    home = DemoHome(
        simulator=simulator,
        bus=bus,
        environment=environment,
        household=household,
        tv=tv,
        stereo=stereo,
        recorder=recorder,
        aircon=aircon,
        fan=fan,
        floor_lamp=floor_lamp,
        fluorescent=fluorescent,
        hall_light=hall_light,
        door=door,
        alarm=alarm,
        thermometer=thermometer,
        hygrometer=hygrometer,
        living_light_sensor=living_light_sensor,
        hall_light_sensor=hall_light_sensor,
        locator=locator,
        epg=epg,
        presence=presence,
    )
    for device in home.all_devices():
        device.attach(bus, simulator)
    epg.start_feed(simulator)
    if start_environment:
        environment.start()
    return home
