"""The virtual home: rooms, appliance models, sensor models, residents.

Substitutes the paper's physical living room (Sect. 3.1) with
state-faithful simulations.  Everything is exposed through the UPnP
substrate, so the framework only ever interacts with these models the
way the prototype interacted with CyberLink virtual devices.

* :mod:`repro.home.environment` — rooms with temperature / humidity /
  illuminance dynamics on the simulation clock.
* :mod:`repro.home.appliances` — TV, stereo, video recorder, lights,
  air-conditioner, electric fan, alarm, door lock.
* :mod:`repro.home.sensors` — thermometer, hygrometer, light sensor,
  presence sensors, the person locator and the EPG broadcast feed.
* :mod:`repro.home.residents` — user avatars generating presence,
  arrival contexts and "returns home" events.
* :mod:`repro.home.builder` — canned home configurations, including the
  paper's three-resident living room.
"""

from repro.home.environment import Environment, Room
from repro.home.builder import DemoHome, build_demo_home
from repro.home.residents import Household, Resident

__all__ = [
    "Environment",
    "Room",
    "DemoHome",
    "build_demo_home",
    "Household",
    "Resident",
]
