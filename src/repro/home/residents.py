"""Resident avatars: the humans whose movement generates context.

A :class:`Resident` carries an RFID tag; moving between places updates
the per-room presence sensors and the whole-home person locator, and
coming home fires the "returns home" event plus the sticky arrival
context ("got home from work") that scopes priority orders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import HomeModelError
from repro.home.sensors.locator import AWAY, PersonLocator
from repro.home.sensors.presence import PresenceSensor

EventSink = Callable[[str, str], None]
"""Callback (event_type, subject) — usually HomeServer.post_event."""


@dataclass
class Resident:
    name: str
    place: str = AWAY


class Household:
    """The residents plus the sensing infrastructure they interact with."""

    def __init__(
        self,
        locator: PersonLocator,
        presence_sensors: dict[str, PresenceSensor],
        *,
        event_sink: EventSink | None = None,
    ) -> None:
        self.locator = locator
        self.presence = dict(presence_sensors)
        self.event_sink = event_sink
        self._residents: dict[str, Resident] = {
            name: Resident(name) for name in locator.residents
        }

    def resident(self, name: str) -> Resident:
        try:
            return self._residents[name]
        except KeyError:
            raise HomeModelError(f"unknown resident {name!r}") from None

    def residents(self) -> list[Resident]:
        return list(self._residents.values())

    # -- movement --------------------------------------------------------------

    def move(self, name: str, place: str) -> None:
        """Move a resident between places inside the home."""
        resident = self.resident(name)
        if resident.place == place:
            return
        old_sensor = self.presence.get(resident.place)
        if old_sensor is not None:
            old_sensor.person_left(name)
        resident.place = place
        new_sensor = self.presence.get(place)
        if new_sensor is not None:
            new_sensor.person_entered(name)
        self.locator.set_place(name, place)

    def arrive_home(self, name: str, from_activity: str, place: str) -> None:
        """A resident returns home: sets the arrival context, moves them
        into ``place``, and fires the "returns home" event."""
        resident = self.resident(name)
        if resident.place != AWAY:
            raise HomeModelError(f"{name!r} is already home (at {resident.place!r})")
        self.locator.set_last_arrival(name, from_activity)
        self.move(name, place)
        if self.event_sink is not None:
            self.event_sink("returns home", name)

    def leave_home(self, name: str) -> None:
        """A resident leaves; their arrival context clears."""
        resident = self.resident(name)
        sensor = self.presence.get(resident.place)
        if sensor is not None:
            sensor.person_left(name)
        resident.place = AWAY
        self.locator.set_place(name, AWAY)
        self.locator.set_last_arrival(name, "none")

    def whereabouts(self) -> dict[str, str]:
        return {name: r.place for name, r in self._residents.items()}
