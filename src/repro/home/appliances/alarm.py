"""Home security alarm model."""

from __future__ import annotations

from typing import Any

from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable


class Alarm(UPnPDevice):
    """A siren for the paper's rule (3): "At night, if entrance door is
    unlocked for 1 hour, turn on the alarm"."""

    DEVICE_TYPE = "urn:repro:device:Alarm:1"

    def __init__(self, friendly_name: str = "alarm", *, location: str = "") -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("alarm", "siren", "security"),
            category="appliance",
        )
        service = Service("urn:repro:service:Alarm:1", "alarm")
        service.add_variable(StateVariable("on", "boolean", value=False))
        service.add_action(Action(
            "TurnOn", self._turn_on, out_args=("on",),
            description="sound the alarm",
        ))
        service.add_action(Action(
            "TurnOff", self._turn_off, out_args=("on",),
            description="silence the alarm",
        ))
        self._service = service
        self.add_service(service)

    def _turn_on(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", True)
        return {"on": True}

    def _turn_off(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", False)
        return {"on": False}

    @property
    def is_on(self) -> bool:
        return bool(self.get_state("alarm", "on"))
