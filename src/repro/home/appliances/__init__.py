"""Appliance models (actuators) for the virtual home.

Each appliance is a :class:`~repro.upnp.device.UPnPDevice` exposing the
action/variable conventions the CADEL binder understands (power services
with ``TurnOn``/``TurnOff`` and an ``on`` variable, locks with a
``locked`` variable, and so on).  Appliances with physical side effects
(air-conditioner, lights, fan) also implement the environment's actor
protocols so their actions feed back into what sensors measure.
"""

from repro.home.appliances.aircon import AirConditioner
from repro.home.appliances.alarm import Alarm
from repro.home.appliances.door import DoorLock
from repro.home.appliances.fan import ElectricFan
from repro.home.appliances.lights import Lamp
from repro.home.appliances.recorder import VideoRecorder
from repro.home.appliances.stereo import Stereo
from repro.home.appliances.tv import Television

__all__ = [
    "AirConditioner",
    "Alarm",
    "DoorLock",
    "ElectricFan",
    "Lamp",
    "VideoRecorder",
    "Stereo",
    "Television",
]
