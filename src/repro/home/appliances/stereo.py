"""Stereo system model."""

from __future__ import annotations

from typing import Any

from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable

OUTPUTS = ("speakers", "headphones", "tv")
SOURCES = ("music", "tv sound", "radio")


class Stereo(UPnPDevice):
    """A stereo with genre selection and switchable output.

    The switchable ``output`` ("speakers" / "headphones") carries the
    Fig. 1 transition s1 → s'1: when Alan takes the living-room audio,
    Tom's jazz continues on headphones.
    """

    DEVICE_TYPE = "urn:repro:device:Stereo:1"

    def __init__(self, friendly_name: str = "stereo", *, location: str = "") -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("stereo", "audio", "music", "speaker"),
            category="appliance",
        )
        service = Service("urn:repro:service:AudioPlayer:1", "player")
        service.add_variable(StateVariable("on", "boolean", value=False))
        service.add_variable(StateVariable("genre", "string", value=""))
        service.add_variable(StateVariable(
            "output", "string", value="speakers", allowed_values=OUTPUTS
        ))
        service.add_variable(StateVariable(
            "source", "string", value="music", allowed_values=SOURCES
        ))
        service.add_variable(StateVariable(
            "volume", "number", value=30.0, minimum=0.0, maximum=100.0, unit="%"
        ))
        service.add_action(Action(
            "PlayMusic", self._play,
            in_args=("genre", "volume", "output", "source"),
            description="play music of a genre through a chosen output",
        ))
        service.add_action(Action(
            "Stop", self._stop, description="stop playback",
        ))
        service.add_action(Action(
            "SetOutput", self._set_output, in_args=("output",),
            description="route audio to speakers or headphones",
        ))
        self._service = service
        self.add_service(service)

    def _play(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", True)
        if "genre" in args:
            self._service.set_variable("genre", str(args["genre"]))
        if "volume" in args:
            self._service.set_variable("volume", float(args["volume"]))
        if "output" in args:
            self._service.set_variable("output", str(args["output"]))
        if "source" in args:
            self._service.set_variable("source", str(args["source"]))
        return {"on": True}

    def _stop(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", False)
        return {"on": False}

    def _set_output(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("output", str(args["output"]))
        return {}

    @property
    def is_on(self) -> bool:
        return bool(self.get_state("player", "on"))

    @property
    def output(self) -> str:
        return str(self.get_state("player", "output"))

    @property
    def source(self) -> str:
        return str(self.get_state("player", "source"))
