"""Video recorder model (the paper's DVD/video recorder)."""

from __future__ import annotations

from typing import Any

from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable


class VideoRecorder(UPnPDevice):
    """Records a program — Alan's fallback when he loses the TV (r2)."""

    DEVICE_TYPE = "urn:repro:device:VideoRecorder:1"

    def __init__(
        self, friendly_name: str = "video recorder", *, location: str = ""
    ) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("recorder", "video", "dvd", "recording"),
            category="appliance",
        )
        service = Service("urn:repro:service:Recorder:1", "recorder")
        service.add_variable(StateVariable("recording", "boolean", value=False))
        service.add_variable(StateVariable("program", "string", value=""))
        service.add_variable(StateVariable(
            "channel", "number", value=1.0, minimum=1.0, maximum=999.0
        ))
        service.add_action(Action(
            "Record", self._record, in_args=("channel", "program"),
            out_args=("recording",),
            description="start recording a channel or named program",
        ))
        service.add_action(Action(
            "Stop", self._stop, out_args=("recording",),
            description="stop recording",
        ))
        self._service = service
        self.add_service(service)

    def _record(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("recording", True)
        if "channel" in args:
            self._service.set_variable("channel", float(args["channel"]))
        if "program" in args:
            self._service.set_variable("program", str(args["program"]))
        return {"recording": True}

    def _stop(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("recording", False)
        return {"recording": False}

    @property
    def is_recording(self) -> bool:
        return bool(self.get_state("recorder", "recording"))
