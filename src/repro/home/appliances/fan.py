"""Electric fan — a second climate appliance, useful for retrieval
queries ("which devices can cool this room?") and conflict scenarios."""

from __future__ import annotations

from typing import Any

from repro.home.environment import Room
from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable


class ElectricFan(UPnPDevice):
    """A fan with mild cooling effect (perceived, modelled as small)."""

    DEVICE_TYPE = "urn:repro:device:Fan:1"
    COOLING_PER_HOUR = 0.6  # °C of perceived cooling per hour at full speed

    def __init__(
        self, friendly_name: str = "electric fan", *, location: str = ""
    ) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("fan", "cooling", "temperature"),
            category="appliance",
        )
        service = Service("urn:repro:service:Fan:1", "fan")
        service.add_variable(StateVariable("on", "boolean", value=False))
        service.add_variable(StateVariable(
            "speed", "number", value=50.0, minimum=0.0, maximum=100.0, unit="%",
        ))
        service.add_action(Action(
            "TurnOn", self._turn_on, in_args=("speed",), out_args=("on",),
            description="start the fan",
        ))
        service.add_action(Action(
            "TurnOff", self._turn_off, out_args=("on",),
            description="stop the fan",
        ))
        self._service = service
        self.add_service(service)

    def _turn_on(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", True)
        if "speed" in args:
            self._service.set_variable("speed", float(args["speed"]))
        return {"on": True}

    def _turn_off(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", False)
        return {"on": False}

    @property
    def is_on(self) -> bool:
        return bool(self.get_state("fan", "on"))

    # -- ClimateActor protocol ----------------------------------------------------

    def climate_effect(self, room: Room, dt: float) -> None:
        if not self.is_on:
            return
        speed = float(self.get_state("fan", "speed")) / 100.0
        room.temperature -= self.COOLING_PER_HOUR * speed * dt / 3600.0
