"""Air-conditioner model with real climate feedback."""

from __future__ import annotations

from typing import Any

from repro.home.environment import Room
from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable

MODES = ("cool", "heat", "dehumidify", "auto")


class AirConditioner(UPnPDevice):
    """An air-conditioner driving its room toward a setpoint.

    Implements the environment's ``ClimateActor`` protocol: while on, it
    closes a fraction of the gap between the room's state and the
    targets every tick — so the thermometer/hygrometer the rules read
    genuinely respond to the commands the rules issue.
    """

    DEVICE_TYPE = "urn:repro:device:AirConditioner:1"

    # Fraction of the setpoint gap closed per hour of runtime.
    PULL_RATE_PER_HOUR = 3.0

    def __init__(
        self, friendly_name: str = "air conditioner", *,
        location: str = "", room: Room | None = None,
    ) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("air", "conditioner", "climate", "temperature",
                      "humidity", "cooling"),
            category="appliance",
        )
        self.room = room
        service = Service("urn:repro:service:Climate:1", "climate")
        service.add_variable(StateVariable("on", "boolean", value=False))
        service.add_variable(StateVariable(
            "target_temperature", "number", value=25.0, minimum=16.0,
            maximum=32.0, unit="celsius",
        ))
        service.add_variable(StateVariable(
            "target_humidity", "number", value=55.0, minimum=30.0,
            maximum=80.0, unit="%",
        ))
        service.add_variable(StateVariable(
            "mode", "string", value="auto", allowed_values=MODES
        ))
        service.add_action(Action(
            "TurnOn", self._turn_on,
            in_args=("temperature", "humidity", "mode"),
            out_args=("on",),
            description="start climate control with optional setpoints",
        ))
        service.add_action(Action(
            "TurnOff", self._turn_off, out_args=("on",),
            description="stop climate control",
        ))
        self._service = service
        self.add_service(service)

    def _turn_on(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", True)
        if "temperature" in args:
            self._service.set_variable("target_temperature",
                                       float(args["temperature"]))
        if "humidity" in args:
            self._service.set_variable("target_humidity",
                                       float(args["humidity"]))
        if "mode" in args:
            self._service.set_variable("mode", str(args["mode"]))
        return {"on": True}

    def _turn_off(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", False)
        return {"on": False}

    @property
    def is_on(self) -> bool:
        return bool(self.get_state("climate", "on"))

    @property
    def target_temperature(self) -> float:
        return float(self.get_state("climate", "target_temperature"))

    @property
    def target_humidity(self) -> float:
        return float(self.get_state("climate", "target_humidity"))

    # -- ClimateActor protocol ---------------------------------------------------

    def climate_effect(self, room: Room, dt: float) -> None:
        if not self.is_on:
            return
        pull = min(1.0, self.PULL_RATE_PER_HOUR * dt / 3600.0)
        room.temperature += (self.target_temperature - room.temperature) * pull
        room.humidity += (self.target_humidity - room.humidity) * pull
