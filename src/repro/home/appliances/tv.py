"""Flat-panel TV model."""

from __future__ import annotations

from typing import Any

from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable


class Television(UPnPDevice):
    """A TV with power, channel and volume control.

    ``TurnOn`` accepts optional ``channel`` and ``volume`` settings so
    that two users' "turn on the TV" rules with different channels are
    *different* actions (the paper's TV conflict between Alan's baseball
    game and Emily's movie).
    """

    DEVICE_TYPE = "urn:repro:device:TV:1"

    def __init__(self, friendly_name: str = "TV", *, location: str = "") -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("tv", "television", "video", "screen"),
            category="appliance",
        )
        service = Service("urn:repro:service:TVControl:1", "power")
        service.add_variable(StateVariable("on", "boolean", value=False))
        service.add_variable(
            StateVariable("channel", "number", value=1.0, minimum=1.0,
                          maximum=999.0)
        )
        service.add_variable(
            StateVariable("volume", "number", value=20.0, minimum=0.0,
                          maximum=100.0, unit="%")
        )
        service.add_action(Action(
            "TurnOn", self._turn_on, in_args=("channel", "volume"),
            out_args=("on",),
            description="switch the TV on, optionally selecting a channel",
        ))
        service.add_action(Action(
            "TurnOff", self._turn_off, out_args=("on",),
            description="switch the TV off",
        ))
        service.add_action(Action(
            "SetChannel", self._set_channel, in_args=("channel",),
            description="change the channel",
        ))
        self._service = service
        self.add_service(service)

    def _turn_on(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", True)
        if "channel" in args:
            self._service.set_variable("channel", float(args["channel"]))
        if "volume" in args:
            self._service.set_variable("volume", float(args["volume"]))
        return {"on": True}

    def _turn_off(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", False)
        return {"on": False}

    def _set_channel(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("channel", float(args["channel"]))
        return {}

    @property
    def is_on(self) -> bool:
        return bool(self.get_state("power", "on"))

    @property
    def channel(self) -> float:
        return float(self.get_state("power", "channel"))
