"""Luminaire models: floor lamps, fluorescent ceiling lights, hall lights."""

from __future__ import annotations

from typing import Any

from repro.home.environment import Room
from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable


class Lamp(UPnPDevice):
    """A dimmable light contributing illuminance to its room.

    ``max_lux`` differentiates fixture classes: floor lamps (~150 lux at
    full) support the paper's *half-lighting* configuration, the
    fluorescent ceiling light (~400 lux) realizes Emily's "make the room
    bright".
    """

    DEVICE_TYPE = "urn:repro:device:Lamp:1"

    def __init__(
        self, friendly_name: str, *, location: str = "",
        max_lux: float = 150.0,
    ) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("light", "lamp", "lighting", "brightness"),
            category="appliance",
        )
        self.max_lux = max_lux
        service = Service("urn:repro:service:Lighting:1", "power")
        service.add_variable(StateVariable("on", "boolean", value=False))
        service.add_variable(StateVariable(
            "level", "number", value=0.0, minimum=0.0, maximum=100.0, unit="%",
        ))
        service.add_action(Action(
            "TurnOn", self._turn_on, in_args=("level",), out_args=("on",),
            description="switch on, optionally at a dim level (percent)",
        ))
        service.add_action(Action(
            "TurnOff", self._turn_off, out_args=("on",),
            description="switch off",
        ))
        service.add_action(Action(
            "Dim", self._dim, in_args=("level",),
            description="set the dim level without toggling power",
        ))
        self._service = service
        self.add_service(service)

    def _turn_on(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", True)
        self._service.set_variable("level", float(args.get("level", 100.0)))
        return {"on": True}

    def _turn_off(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("on", False)
        self._service.set_variable("level", 0.0)
        return {"on": False}

    def _dim(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("level", float(args["level"]))
        return {}

    @property
    def is_on(self) -> bool:
        return bool(self.get_state("power", "on"))

    @property
    def level(self) -> float:
        return float(self.get_state("power", "level"))

    # -- LightActor protocol ------------------------------------------------------

    def light_output(self, room: Room) -> float:
        if not self.is_on:
            return 0.0
        return self.max_lux * self.level / 100.0
