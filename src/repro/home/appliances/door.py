"""Entrance door with lock and open/close state."""

from __future__ import annotations

from typing import Any

from repro.upnp.device import UPnPDevice
from repro.upnp.service import Action, Service, StateVariable


class DoorLock(UPnPDevice):
    """A door that is both sensor (locked/open states are evented) and
    actuator (Lock/Unlock/Open/Close actions)."""

    DEVICE_TYPE = "urn:repro:device:Door:1"

    def __init__(
        self, friendly_name: str = "entrance door", *, location: str = ""
    ) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("door", "lock", "entrance", "security"),
            category="appliance",
        )
        service = Service("urn:repro:service:DoorLock:1", "lock")
        service.add_variable(StateVariable("locked", "boolean", value=True))
        service.add_variable(StateVariable("open", "boolean", value=False))
        service.add_action(Action(
            "Lock", self._lock, out_args=("locked",), description="lock the door",
        ))
        service.add_action(Action(
            "Unlock", self._unlock, out_args=("locked",),
            description="unlock the door",
        ))
        service.add_action(Action(
            "Open", self._open, description="open the door (unlocks first)",
        ))
        service.add_action(Action(
            "Close", self._close, description="close the door",
        ))
        self._service = service
        self.add_service(service)

    def _lock(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("open", False)
        self._service.set_variable("locked", True)
        return {"locked": True}

    def _unlock(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("locked", False)
        return {"locked": False}

    def _open(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("locked", False)
        self._service.set_variable("open", True)
        return {}

    def _close(self, args: dict[str, Any]) -> dict[str, Any]:
        self._service.set_variable("open", False)
        return {}

    @property
    def is_locked(self) -> bool:
        return bool(self.get_state("lock", "locked"))

    @property
    def is_open(self) -> bool:
        return bool(self.get_state("lock", "open"))
