"""Electronic program guide (EPG) feed.

The paper's scenarios key on broadcast content ("a TV program on air
includes a keyword which he is interested in", "a baseball game is on
air").  This device simulates the broadcast schedule: programs carry
keyword sets, and the currently-airing union of keywords is published as
a set-valued variable that CADEL's ``<Event> is on air`` atoms test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HomeModelError
from repro.sim.events import Simulator
from repro.upnp.device import UPnPDevice
from repro.upnp.service import Service, StateVariable


@dataclass(frozen=True)
class Program:
    """One scheduled broadcast."""

    title: str
    channel: int
    start: float          # absolute simulated seconds
    end: float
    keywords: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise HomeModelError(
                f"program {self.title!r} ends before it starts"
            )


class EPGFeed(UPnPDevice):
    """Publishes the keyword union and titles of programs now on air."""

    DEVICE_TYPE = "urn:repro:device:EPG:1"

    def __init__(self, friendly_name: str = "program guide") -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location="",
            keywords=("tv", "program", "guide", "broadcast", "epg"),
            category="sensor",
        )
        service = Service("urn:repro:service:ProgramGuide:1", "guide")
        service.add_variable(StateVariable(
            "keywords", "string", value="", unit="set",
        ))
        service.add_variable(StateVariable(
            "titles", "string", value="", unit="set",
        ))
        self._service = service
        self.add_service(service)
        self._schedule: list[Program] = []
        self._simulator: Simulator | None = None

    def schedule(self, program: Program) -> Program:
        """Add a program and (when attached) arm its start/end updates."""
        self._schedule.append(program)
        if self._simulator is not None:
            self._arm(program)
        return program

    def programs_on_air(self, now: float) -> list[Program]:
        return [p for p in self._schedule if p.start <= now < p.end]

    def channel_showing(self, keyword: str, now: float) -> int | None:
        """Channel currently airing a program tagged with ``keyword``."""
        for program in self.programs_on_air(now):
            if keyword in program.keywords:
                return program.channel
        return None

    def start_feed(self, simulator: Simulator) -> None:
        """Begin publishing; arms timers for every scheduled program."""
        self._simulator = simulator
        for program in self._schedule:
            self._arm(program)
        self._publish()

    def _arm(self, program: Program) -> None:
        assert self._simulator is not None
        now = self._simulator.now
        if program.start >= now:
            self._simulator.call_at(program.start, self._publish)
        if program.end >= now:
            self._simulator.call_at(program.end, self._publish)

    def _publish(self) -> None:
        assert self._simulator is not None
        airing = self.programs_on_air(self._simulator.now)
        keywords: set[str] = set()
        titles: set[str] = set()
        for program in airing:
            keywords.update(program.keywords)
            titles.add(program.title)
        self._service.set_variable("keywords", ",".join(sorted(keywords)))
        self._service.set_variable("titles", ",".join(sorted(titles)))
