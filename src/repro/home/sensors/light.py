"""Illuminance sensor — backs CADEL's "is dark" / "is bright"."""

from __future__ import annotations

from repro.home.environment import Room
from repro.upnp.device import UPnPDevice
from repro.upnp.service import Service, StateVariable


class LightSensor(UPnPDevice):
    """Publishes its room's illuminance in lux (quantized to 1 lux)."""

    DEVICE_TYPE = "urn:repro:device:LightSensor:1"

    def __init__(self, friendly_name: str, room: Room) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=room.name,
            keywords=("light", "brightness", "illuminance", "lux"),
            category="sensor",
        )
        self.room = room
        service = Service("urn:repro:service:LightSensor:1", "light")
        service.add_variable(StateVariable(
            "illuminance", "number", value=round(room.illuminance), unit="lux",
        ))
        self._service = service
        self.add_service(service)

    def sample(self) -> None:
        self._service.set_variable("illuminance", float(round(self.room.illuminance)))

    @property
    def reading(self) -> float:
        return float(self.get_state("light", "illuminance"))
