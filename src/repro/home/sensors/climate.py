"""Temperature and humidity sensors."""

from __future__ import annotations

from repro.home.environment import Room
from repro.upnp.device import UPnPDevice
from repro.upnp.service import Service, StateVariable


class Thermometer(UPnPDevice):
    """Publishes its room's temperature, quantized to 0.1 °C so eventing
    traffic only flows on meaningful changes."""

    DEVICE_TYPE = "urn:repro:device:Thermometer:1"

    def __init__(self, friendly_name: str, room: Room, *,
                 quantum: float = 0.1) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=room.name,
            keywords=("temperature", "thermometer", "climate"),
            category="sensor",
        )
        self.room = room
        self.quantum = quantum
        service = Service("urn:repro:service:TemperatureSensor:1", "temperature")
        service.add_variable(StateVariable(
            "temperature", "number", value=round(room.temperature, 1),
            unit="celsius",
        ))
        self._service = service
        self.add_service(service)

    def sample(self) -> None:
        reading = round(self.room.temperature / self.quantum) * self.quantum
        self._service.set_variable("temperature", round(reading, 6))

    @property
    def reading(self) -> float:
        return float(self.get_state("temperature", "temperature"))


class Hygrometer(UPnPDevice):
    """Publishes its room's relative humidity, quantized to 0.5 %."""

    DEVICE_TYPE = "urn:repro:device:Hygrometer:1"

    def __init__(self, friendly_name: str, room: Room, *,
                 quantum: float = 0.5) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=room.name,
            keywords=("humidity", "hygrometer", "climate"),
            category="sensor",
        )
        self.room = room
        self.quantum = quantum
        service = Service("urn:repro:service:HumiditySensor:1", "humidity")
        service.add_variable(StateVariable(
            "humidity", "number", value=round(room.humidity, 1), unit="%",
        ))
        self._service = service
        self.add_service(service)

    def sample(self) -> None:
        reading = round(self.room.humidity / self.quantum) * self.quantum
        self._service.set_variable("humidity", round(reading, 6))

    @property
    def reading(self) -> float:
        return float(self.get_state("humidity", "humidity"))
