"""Whole-home person locator.

Aggregates the RFID presence infrastructure into per-person variables:
``<name>_place`` (current room, or "away") and ``<name>_last_arrival``
(what the person last arrived home from: "work", "shopping", ... or
"none").  The latter realizes the paper's *arrival contexts* — "Alan has
higher priority ... in the context that Alan got home from work".
"""

from __future__ import annotations

from repro.errors import HomeModelError
from repro.upnp.device import UPnPDevice
from repro.upnp.service import Service, StateVariable

AWAY = "away"
NO_ARRIVAL = "none"


class PersonLocator(UPnPDevice):
    """One per home; variables are created from the resident roster."""

    DEVICE_TYPE = "urn:repro:device:PersonLocator:1"

    def __init__(self, residents: list[str], *,
                 friendly_name: str = "person locator") -> None:
        if not residents:
            raise HomeModelError("locator needs at least one resident")
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location="",
            keywords=("person", "location", "rfid", "presence"),
            category="sensor",
        )
        self.residents = list(residents)
        service = Service("urn:repro:service:PersonLocator:1", "locator")
        for name in residents:
            service.add_variable(StateVariable(
                f"{name}_place", "string", value=AWAY,
            ))
            service.add_variable(StateVariable(
                f"{name}_last_arrival", "string", value=NO_ARRIVAL,
            ))
        self._service = service
        self.add_service(service)

    def _require_resident(self, name: str) -> None:
        if name not in self.residents:
            raise HomeModelError(f"unknown resident {name!r}")

    def set_place(self, name: str, place: str) -> None:
        self._require_resident(name)
        self._service.set_variable(f"{name}_place", place)

    def set_last_arrival(self, name: str, origin: str) -> None:
        self._require_resident(name)
        self._service.set_variable(f"{name}_last_arrival", origin)

    def place_of(self, name: str) -> str:
        self._require_resident(name)
        return str(self.get_state("locator", f"{name}_place"))

    def last_arrival_of(self, name: str) -> str:
        self._require_resident(name)
        return str(self.get_state("locator", f"{name}_last_arrival"))
