"""Per-room presence sensing (the paper's RFID-tag readers)."""

from __future__ import annotations

from repro.upnp.device import UPnPDevice
from repro.upnp.service import Service, StateVariable


class PresenceSensor(UPnPDevice):
    """Tracks who is in one room.

    Publishes ``occupied`` (boolean — backs "nobody is at X" /
    "someone is at X") and ``occupants`` (a set-valued variable holding
    the RFID-identified residents currently present).
    """

    DEVICE_TYPE = "urn:repro:device:PresenceSensor:1"

    def __init__(self, friendly_name: str, location: str) -> None:
        super().__init__(
            friendly_name,
            self.DEVICE_TYPE,
            location=location,
            keywords=("presence", "rfid", "occupancy", "person"),
            category="sensor",
        )
        service = Service("urn:repro:service:PresenceSensor:1", "presence")
        service.add_variable(StateVariable("occupied", "boolean", value=False))
        service.add_variable(StateVariable(
            "occupants", "string", value="", unit="set",
        ))
        self._service = service
        self.add_service(service)
        self._present: set[str] = set()

    def person_entered(self, name: str) -> None:
        self._present.add(name)
        self._publish()

    def person_left(self, name: str) -> None:
        self._present.discard(name)
        self._publish()

    def occupants(self) -> frozenset[str]:
        return frozenset(self._present)

    def _publish(self) -> None:
        self._service.set_variable("occupied", bool(self._present))
        self._service.set_variable("occupants", ",".join(sorted(self._present)))
