"""Sensor models for the virtual home.

Sensors sample their room (or global state) on every environment tick
and publish readings through UPnP eventing, which is how the home
server's rule engine sees the world.
"""

from repro.home.sensors.climate import Hygrometer, Thermometer
from repro.home.sensors.epg import EPGFeed, Program
from repro.home.sensors.light import LightSensor
from repro.home.sensors.locator import PersonLocator
from repro.home.sensors.presence import PresenceSensor

__all__ = [
    "Hygrometer",
    "Thermometer",
    "EPGFeed",
    "Program",
    "LightSensor",
    "PersonLocator",
    "PresenceSensor",
]
