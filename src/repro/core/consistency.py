"""Registration-time inconsistency check.

Paper, Sect. 4.4: "Whenever a new rule is described and registered in
the system, the module evaluates the condition in the new rule to check
whether it can hold.  If the condition cannot hold, the module warns the
user to modify the condition in the rule."
"""

from __future__ import annotations

from repro.core.rule import Rule
from repro.core.satisfiability import condition_satisfiable
from repro.errors import InconsistentRuleError


class ConsistencyChecker:
    """Decides whether a rule's condition can ever hold.

    Args:
        prefer_intervals: use the interval fast path before Simplex
            (ablation A1 toggles this).
    """

    def __init__(self, prefer_intervals: bool = True):
        self.prefer_intervals = prefer_intervals

    def is_consistent(self, rule: Rule) -> bool:
        """True iff the rule's condition (and its ``until`` postcondition,
        when present) are each satisfiable."""
        if not condition_satisfiable(
            rule.condition, prefer_intervals=self.prefer_intervals
        ):
            return False
        if rule.until is not None and not condition_satisfiable(
            rule.until, prefer_intervals=self.prefer_intervals
        ):
            return False
        return True

    def require_consistent(self, rule: Rule) -> None:
        """Raise :class:`InconsistentRuleError` when the rule can't hold."""
        if not condition_satisfiable(
            rule.condition, prefer_intervals=self.prefer_intervals
        ):
            raise InconsistentRuleError(rule.name, "the trigger condition")
        if rule.until is not None and not condition_satisfiable(
            rule.until, prefer_intervals=self.prefer_intervals
        ):
            raise InconsistentRuleError(rule.name, "the 'until' postcondition")
